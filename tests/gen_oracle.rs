//! The generator + oracle contract, end to end:
//!
//! * property tests (vendored `proptest`): every generated program
//!   passes the IR validator, through both the builder and the
//!   `wmm-lang` text back ends, and programs are unique per
//!   `(shape, distance)`;
//! * the agreement test: the SC oracle's derived weak predicates
//!   exactly reproduce the legacy hand-written `is_weak` of the Fig. 2
//!   trio, at several distances;
//! * suite determinism: campaign histograms are bit-identical across
//!   1/2/8 workers, including under stress.

use gpu_wmm::core::stress::Scratchpad;
use gpu_wmm::core::suite::{run_suite, SuiteConfig, SuiteStrategy};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::LitmusLayout;
use gpu_wmm::sim::ir::validate::validate;
use proptest::prelude::*;
use std::collections::BTreeSet;
use wmm_sim::chip::Chip;

fn shape_of(idx: usize) -> Shape {
    Shape::ALL[idx % Shape::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program validates, at arbitrary distances, via
    /// the builder back end.
    #[test]
    fn generated_programs_validate(si in 0usize..Shape::ALL.len(), d in 0u32..256) {
        let inst = shape_of(si).instance(LitmusLayout::standard(d, 8192));
        prop_assert!(validate(&inst.program).is_ok());
    }

    /// …and via the wmm-lang textual round-trip.
    #[test]
    fn lang_round_trip_validates(si in 0usize..Shape::ALL.len(), d in 0u32..256) {
        let shape = shape_of(si);
        let layout = LitmusLayout::standard(d, 8192);
        let inst = shape.instance_via_lang(layout);
        prop_assert!(inst.is_ok(), "{shape} d={d}: {:?}", inst.err());
        prop_assert!(validate(&inst.unwrap().program).is_ok());
    }

    /// The derived SC set never covers the whole observed-value space:
    /// every instance retains at least one forbidden (weak) outcome over
    /// the 0/1/2 value range its writes could produce.
    #[test]
    fn every_instance_keeps_a_forbidden_outcome(si in 0usize..Shape::ALL.len(), d in 0u32..200) {
        let shape = shape_of(si);
        let inst = shape.instance(LitmusLayout::standard(d, 8192));
        let width = inst.observers.len();
        let mut found_weak = false;
        let mut v = vec![0u32; width];
        'outer: loop {
            if inst.is_weak(&v) {
                found_weak = true;
                break;
            }
            for slot in v.iter_mut() {
                *slot += 1;
                if *slot <= 2 {
                    continue 'outer;
                }
                *slot = 0;
            }
            break;
        }
        prop_assert!(found_weak, "{shape}: no weak outcome in value range");
    }
}

/// Distinct `(shape, distance)` pairs yield distinct programs — the
/// generator does not collapse the catalogue. Full disassembly
/// (including the distance-tagged kernel name) is unique everywhere;
/// for shapes with more than one location the *instruction stream*
/// itself must also change with the distance, because the embedded
/// location addresses move.
#[test]
fn programs_unique_per_shape_and_distance() {
    let distances = [0u32, 16, 32, 64, 128];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut n = 0;
    for shape in Shape::ALL {
        let mut bodies: BTreeSet<String> = BTreeSet::new();
        for &d in &distances {
            let inst = shape.instance(LitmusLayout::standard(d, 8192));
            // The disassembly is a faithful fingerprint of the program.
            seen.insert(inst.program.to_string());
            n += 1;
            bodies.insert(format!("{:?}", inst.program.insts));
        }
        if shape.events().num_locs() >= 2 {
            assert_eq!(
                bodies.len(),
                distances.len(),
                "{shape}: instruction streams collapsed across distances"
            );
        }
    }
    assert_eq!(seen.len(), n, "two (shape, distance) pairs share a program");
}

/// The oracle-derived weak predicates agree *exactly* with the legacy
/// hand-written Fig. 2 predicates, for every observable register pair
/// and several distances. (The legacy predicates are restated here —
/// they no longer exist in the library, which is the point.)
#[test]
fn oracle_agrees_with_legacy_trio_predicates() {
    type LegacyPredicate = fn(u32, u32) -> bool;
    let legacy: [(&str, Shape, LegacyPredicate); 3] = [
        ("MP", Shape::Mp, |r1, r2| r1 == 1 && r2 == 0),
        ("LB", Shape::Lb, |r1, r2| r1 == 1 && r2 == 1),
        ("SB", Shape::Sb, |r1, r2| r1 == 0 && r2 == 0),
    ];
    for (name, shape, is_weak) in legacy {
        for d in [0u32, 1, 16, 64, 128, 255] {
            let inst = shape.instance(LitmusLayout::standard(d, 8192));
            for r1 in 0..=1u32 {
                for r2 in 0..=1u32 {
                    assert_eq!(
                        inst.is_weak(&[r1, r2]),
                        is_weak(r1, r2),
                        "{name} d={d} at ({r1},{r2})"
                    );
                }
            }
        }
    }
}

/// Suite histograms are bit-identical across 1/2/8 workers, under both
/// the native and the tuned systematic stressing strategy.
#[test]
fn suite_is_deterministic_across_worker_counts() {
    let chips = [
        Chip::by_short("Titan").unwrap(),
        Chip::by_short("K20").unwrap(),
    ];
    let strategies = vec![SuiteStrategy::native(), SuiteStrategy::sys_str_plus(40)];
    let shapes = [Shape::Mp, Shape::Sb, Shape::TwoPlusTwoW, Shape::Iriw];
    let run = |workers: usize| {
        run_suite(
            &shapes,
            &chips,
            &strategies,
            &SuiteConfig {
                execs: 16,
                pad: Scratchpad::new(2048, 2048),
                workers,
                ..Default::default()
            },
        )
    };
    let reference = run(1);
    assert_eq!(reference.len(), shapes.len() * chips.len() * 2);
    for workers in [2usize, 8] {
        let got = run(workers);
        assert_eq!(reference.len(), got.len());
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                a.hist, b.hist,
                "{}/{}/{} diverged at {workers} workers",
                a.shape, a.chip, a.strategy
            );
        }
    }
}
