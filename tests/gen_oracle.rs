//! The generator + oracle contract, end to end:
//!
//! * property tests (vendored `proptest`): every generated program
//!   passes the IR validator, through both the builder and the
//!   `wmm-lang` text back ends, and programs are unique per
//!   `(shape, distance)`;
//! * the extended-oracle properties: RMW events never interleave
//!   internally (atomicAdd chains observe exact prefix sums),
//!   shared-space events on different blocks never communicate, and
//!   every derived outcome vector is unique, well-formed and accepted
//!   by its own instance's validator;
//! * the agreement tests: the SC oracle's derived weak predicates
//!   exactly reproduce the legacy hand-written `is_weak` of the Fig. 2
//!   trio at several distances, and the RMW cycles' derived sets equal
//!   their hand-enumerated SC sets at distance 0;
//! * suite determinism: campaign histograms are bit-identical across
//!   1/2/8 workers, including under stress.

use gpu_wmm::core::stress::Scratchpad;
use gpu_wmm::core::suite::{run_suite, SuiteConfig, SuiteStrategy};
use gpu_wmm::gen::{oracle, Event, Placement, Shape, TestEvents};
use gpu_wmm::litmus::LitmusLayout;
use gpu_wmm::sim::ir::validate::validate;
use gpu_wmm::sim::ir::Space;
use proptest::prelude::*;
use std::collections::BTreeSet;
use wmm_sim::chip::Chip;

fn shape_of(idx: usize) -> Shape {
    Shape::ALL[idx % Shape::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program validates, at arbitrary distances, via
    /// the builder back end.
    #[test]
    fn generated_programs_validate(si in 0usize..Shape::ALL.len(), d in 0u32..256) {
        let inst = shape_of(si).instance(LitmusLayout::standard(d, 8192));
        prop_assert!(validate(&inst.program).is_ok());
    }

    /// …and via the wmm-lang textual round-trip.
    #[test]
    fn lang_round_trip_validates(si in 0usize..Shape::ALL.len(), d in 0u32..256) {
        let shape = shape_of(si);
        let layout = LitmusLayout::standard(d, 8192);
        let inst = shape.instance_via_lang(layout);
        prop_assert!(inst.is_ok(), "{shape} d={d}: {:?}", inst.err());
        prop_assert!(validate(&inst.unwrap().program).is_ok());
    }

    /// The derived SC set never covers the whole observed-value space:
    /// every instance retains at least one forbidden (weak) outcome over
    /// the 0/1/2 value range its writes could produce.
    #[test]
    fn every_instance_keeps_a_forbidden_outcome(si in 0usize..Shape::ALL.len(), d in 0u32..200) {
        let shape = shape_of(si);
        let inst = shape.instance(LitmusLayout::standard(d, 8192));
        let width = inst.observers.len();
        let mut found_weak = false;
        let mut v = vec![0u32; width];
        'outer: loop {
            if inst.is_weak(&v) {
                found_weak = true;
                break;
            }
            for slot in v.iter_mut() {
                *slot += 1;
                if *slot <= 2 {
                    continue 'outer;
                }
                *slot = 0;
            }
            break;
        }
        prop_assert!(found_weak, "{shape}: no weak outcome in value range");
    }

    /// RMW events never interleave internally: a chain of `atomicAdd`s
    /// on one location always observes exact prefix sums of the added
    /// values (each old value equals the pre-state of its own step), in
    /// *some* interleaving order, and memory ends at the full sum.
    #[test]
    fn rmw_adds_never_tear(nthreads in 2usize..5, val in 1u32..4) {
        let ev = TestEvents {
            name: "add-chain".into(),
            threads: (0..nthreads)
                .map(|_| vec![Event::Add { loc: 0, val, space: Space::Global }])
                .collect(),
            placement: Placement::InterBlock,
        };
        let outcomes = oracle::sc_outcomes(&ev);
        // nthreads! interleavings all collapse to the same multiset of
        // olds {0, v, 2v, …}; the outcome vectors are its permutations.
        for obs in &outcomes {
            let olds = &obs[..nthreads];
            let mut sorted = olds.to_vec();
            sorted.sort_unstable();
            let expected: Vec<u32> = (0..nthreads as u32).map(|i| i * val).collect();
            prop_assert_eq!(&sorted, &expected, "torn RMW: {:?}", obs);
            // Final memory (the multi-written location's observer).
            prop_assert_eq!(obs[nthreads], nthreads as u32 * val);
        }
    }

    /// Shared-space events on different blocks never communicate: under
    /// inter-block placement each thread owns a private copy, so a
    /// thread that writes then reads a shared location always sees its
    /// own write — and nothing else — no matter how threads interleave.
    #[test]
    fn inter_block_shared_events_are_isolated(nthreads in 2usize..5, seed in 0u32..1000) {
        let vals: Vec<u32> = (0..nthreads as u32).map(|t| 1 + (seed + t) % 7).collect();
        let ev = TestEvents {
            name: "shared-isolated".into(),
            threads: vals
                .iter()
                .map(|&v| vec![
                    Event::W { loc: 0, val: v, space: Space::Shared },
                    Event::R { loc: 0, space: Space::Shared },
                ])
                .collect(),
            placement: Placement::InterBlock,
        };
        let outcomes = oracle::sc_outcomes(&ev);
        // One reachable outcome: every thread reads its own value.
        prop_assert_eq!(outcomes.len(), 1, "{:?}", outcomes);
        prop_assert!(outcomes.contains(&vals));
        // The same program intra-block *does* communicate: later
        // readers may observe other threads' writes too.
        let intra = TestEvents { placement: Placement::IntraBlock, ..ev };
        prop_assert!(oracle::sc_outcomes(&intra).len() > 1);
    }

    /// `Event::FenceBlock` is a no-op for the SC-enumeration oracle,
    /// exactly like `Event::Fence`: inserting a block fence at *any*
    /// position of *any* thread of *any* catalogue shape leaves the
    /// derived SC outcome set unchanged (fences only exist on the weak
    /// hardware; under SC nothing is unordered for them to order).
    #[test]
    fn fence_block_is_oracle_invisible(
        si in 0usize..Shape::ALL.len(),
        tsel in 0usize..64,
        psel in 0usize..64,
    ) {
        let shape = shape_of(si);
        let base = shape.events();
        let expected = oracle::sc_outcomes(&base);
        let mut fenced = base.clone();
        let t = tsel % fenced.threads.len();
        let pos = psel % (fenced.threads[t].len() + 1);
        fenced.threads[t].insert(pos, Event::FenceBlock);
        prop_assert_eq!(
            oracle::sc_outcomes(&fenced),
            expected,
            "{} with a block fence at thread {} pos {}",
            shape, t, pos
        );
    }

    /// Every derived outcome vector is unique, has the instance's
    /// observer width, and is accepted by the instance's own weak
    /// predicate (the validator of observed runs).
    #[test]
    fn derived_outcomes_are_unique_and_validator_accepted(
        si in 0usize..Shape::ALL.len(),
        d in 0u32..200,
    ) {
        let shape = shape_of(si);
        let inst = shape.instance(LitmusLayout::standard(d, 8192));
        let unique: BTreeSet<&Vec<u32>> = inst.allowed.iter().collect();
        prop_assert_eq!(unique.len(), inst.allowed.len());
        for obs in inst.allowed.iter() {
            prop_assert_eq!(obs.len(), inst.observers.len(), "{} d={d}", shape);
            prop_assert!(!inst.is_weak(obs), "{} flags its own SC outcome", shape);
        }
    }
}

/// Distinct `(shape, distance)` pairs yield distinct programs — the
/// generator does not collapse the catalogue. Full disassembly
/// (including the distance-tagged kernel name) is unique everywhere;
/// for shapes with more than one location the *instruction stream*
/// itself must also change with the distance, because the embedded
/// location addresses move.
#[test]
fn programs_unique_per_shape_and_distance() {
    let distances = [0u32, 16, 32, 64, 128];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut n = 0;
    for shape in Shape::ALL {
        let mut bodies: BTreeSet<String> = BTreeSet::new();
        for &d in &distances {
            let inst = shape.instance(LitmusLayout::standard(d, 8192));
            // The disassembly is a faithful fingerprint of the program.
            seen.insert(inst.program.to_string());
            n += 1;
            bodies.insert(format!("{:?}", inst.program.insts));
        }
        if shape.events().num_locs() >= 2 {
            assert_eq!(
                bodies.len(),
                distances.len(),
                "{shape}: instruction streams collapsed across distances"
            );
        }
    }
    assert_eq!(seen.len(), n, "two (shape, distance) pairs share a program");
}

/// The oracle-derived weak predicates agree *exactly* with the legacy
/// hand-written Fig. 2 predicates, for every observable register pair
/// and several distances. (The legacy predicates are restated here —
/// they no longer exist in the library, which is the point.)
#[test]
fn oracle_agrees_with_legacy_trio_predicates() {
    type LegacyPredicate = fn(u32, u32) -> bool;
    let legacy: [(&str, Shape, LegacyPredicate); 3] = [
        ("MP", Shape::Mp, |r1, r2| r1 == 1 && r2 == 0),
        ("LB", Shape::Lb, |r1, r2| r1 == 1 && r2 == 1),
        ("SB", Shape::Sb, |r1, r2| r1 == 0 && r2 == 0),
    ];
    for (name, shape, is_weak) in legacy {
        for d in [0u32, 1, 16, 64, 128, 255] {
            let inst = shape.instance(LitmusLayout::standard(d, 8192));
            for r1 in 0..=1u32 {
                for r2 in 0..=1u32 {
                    assert_eq!(
                        inst.is_weak(&[r1, r2]),
                        is_weak(r1, r2),
                        "{name} d={d} at ({r1},{r2})"
                    );
                }
            }
        }
    }
}

/// The oracle-derived SC sets of the RMW cycles equal small
/// hand-enumerated expected sets — the `Cas`/`Exch`/`Add` trio at
/// distance 0, worked out on paper the way the legacy trio predicates
/// were. (Distance moves addresses, not interleavings, so these sets
/// pin the semantics of the RMW events themselves.)
#[test]
fn oracle_agrees_with_hand_enumerated_rmw_sets() {
    let set = |vs: &[&[u32]]| -> BTreeSet<Vec<u32>> { vs.iter().map(|v| v.to_vec()).collect() };
    // MP+CAS, observers (T0 CAS old, T1 CAS old, T1 Rx, final y):
    //   T0: Wx1; CAS(y,0→1)   T1: CAS(y,1→2); Rx
    // T0's CAS always sees 0 (nobody else can make y non-zero first);
    // T1's CAS succeeds only after T0's, by which point x = 1.
    let mp_cas = set(&[&[0, 0, 0, 1], &[0, 0, 1, 1], &[0, 1, 1, 2]]);
    // 2+2W.exch, observers (r0..r3 olds, final x, final y): the six
    // interleavings of two two-exchange threads collapse to three
    // outcomes — all-T0-first, all-T1-first, and the interleaved band.
    let two_exch = set(&[
        &[0, 0, 2, 1, 2, 1],
        &[0, 1, 0, 1, 2, 2],
        &[2, 1, 0, 0, 1, 2],
    ]);
    // CoAdd, observers (old0, old1, final x): the olds are some
    // permutation of {0, 1} and the final value is always 2.
    let co_add = set(&[&[0, 1, 2], &[1, 0, 2]]);
    for (shape, expected) in [
        (Shape::MpCas, mp_cas),
        (Shape::TwoPlusTwoWExch, two_exch),
        (Shape::CoAdd, co_add),
    ] {
        let inst = shape.instance(LitmusLayout::standard(0, 8192));
        assert_eq!(*inst.allowed, expected, "{shape} at d=0");
        // And the weak predicate is exactly the complement.
        for obs in &expected {
            assert!(!inst.is_weak(obs), "{shape}: SC outcome flagged weak");
        }
        assert!(
            inst.is_weak(&vec![9; inst.observers.len()]),
            "{shape}: out-of-set outcome not weak"
        );
    }
}

/// Suite histograms are bit-identical across 1/2/8 workers, under both
/// the native and the tuned systematic stressing strategy.
#[test]
fn suite_is_deterministic_across_worker_counts() {
    let chips = [
        Chip::by_short("Titan").unwrap(),
        Chip::by_short("K20").unwrap(),
    ];
    let strategies = vec![SuiteStrategy::native(), SuiteStrategy::sys_str_plus(40)];
    let shapes = [
        Shape::Mp,
        Shape::Sb,
        Shape::TwoPlusTwoW,
        Shape::Iriw,
        Shape::MpShared,
        Shape::TwoPlusTwoWExch,
    ];
    let run = |workers: usize| {
        run_suite(
            &shapes,
            &chips,
            &strategies,
            &SuiteConfig {
                execs: 16,
                pad: Scratchpad::new(2048, 2048),
                workers,
                ..Default::default()
            },
        )
    };
    let reference = run(1);
    assert_eq!(reference.len(), shapes.len() * chips.len() * 2);
    for workers in [2usize, 8] {
        let got = run(workers);
        assert_eq!(reference.len(), got.len());
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                a.hist, b.hist,
                "{}/{}/{} diverged at {workers} workers",
                a.shape, a.chip, a.strategy
            );
        }
    }
}
