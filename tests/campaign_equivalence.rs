//! Old-vs-new equivalence: the unified `Campaign` facade must reproduce
//! the pre-redesign campaign loops **bit for bit**.
//!
//! The legacy paths (the deleted `wmm_litmus::run_many` and the
//! `AppHarness::campaign` that rebuilt stress kernels per run) are
//! restated here as plain sequential loops over exactly the primitives
//! they used — `mix_seed`-derived per-run RNGs, one-shot `build_stress`
//! per run, `run_instance`/`run_once` — and compared against the new
//! facade at 1, 2 and 8 workers. Any drift in per-run seeding, RNG draw
//! order or artifact caching shows up as a histogram mismatch.

use gpu_wmm::core::app::{AppSpec, Application, Phase};
use gpu_wmm::core::campaign::CampaignBuilder;
use gpu_wmm::core::env::{AppHarness, CampaignResult, Environment, RunVerdict};
use gpu_wmm::core::stress::{build_stress, litmus_stress_threads, Scratchpad, StressStrategy};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::runner::{mix_seed, run_instance};
use gpu_wmm::litmus::{Histogram, LitmusInstance, LitmusLayout, StressParts};
use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::exec::Gpu;
use gpu_wmm::sim::ir::builder::KernelBuilder;
use gpu_wmm::sim::Word;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The pre-redesign litmus campaign: sequential, per-run stress
/// construction through the caller's closure, per-run seed stream
/// `seed(mix_seed(base, i)) → make_stress → launch seed`.
fn legacy_litmus_campaign(
    chip: &Chip,
    inst: &LitmusInstance,
    make_stress: impl Fn(&mut SmallRng) -> StressParts,
    count: u32,
    base_seed: u64,
    randomize_ids: bool,
) -> Histogram {
    let mut gpu = Gpu::new(chip.clone());
    let mut h = Histogram::new();
    for i in 0..u64::from(count) {
        let mut rng = SmallRng::seed_from_u64(mix_seed(base_seed, i));
        let stress = make_stress(&mut rng);
        let seed = rng.gen();
        h.record(run_instance(&mut gpu, inst, stress, randomize_ids, seed));
    }
    h
}

/// Every litmus environment of the suite default (native, sys-str+,
/// rand-str+) plus cache-str-: histograms from the facade are
/// bit-identical to the legacy loop, for MP/LB/SB plus one scoped
/// (intra-block, shared-memory) and one RMW shape, at every worker
/// count — so the placement axis cannot drift the per-run seeding.
#[test]
fn litmus_campaigns_match_the_legacy_path_bit_for_bit() {
    let chip = Chip::by_short("K20").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let envs = [
        Environment::native(),
        Environment::sys_str_plus(&chip),
        Environment {
            stress: StressStrategy::Random,
            randomize: true,
            shared: None,
        },
        Environment {
            stress: StressStrategy::CacheSized,
            randomize: false,
            shared: None,
        },
    ];
    let shapes = [
        Shape::Mp,
        Shape::Lb,
        Shape::Sb,
        Shape::MpShared,
        Shape::MpSharedFence,
        Shape::MpMixed,
        Shape::MpCas,
    ];
    for test in shapes {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        for (ei, env) in envs.iter().enumerate() {
            let base_seed = 0x5EED ^ ((ei as u64) << 8);
            let legacy = legacy_litmus_campaign(
                &chip,
                &inst,
                |rng| {
                    if env.stress == StressStrategy::None {
                        (Vec::new(), Vec::new())
                    } else {
                        let threads = litmus_stress_threads(&chip, rng);
                        let s = build_stress(&chip, &env.stress, pad, threads, 40, rng);
                        (s.groups, s.init)
                    }
                },
                32,
                base_seed,
                env.randomize,
            );
            assert_eq!(legacy.total(), 32);
            for workers in WORKER_COUNTS {
                let new = CampaignBuilder::new(&chip)
                    .environment(env, pad, 40)
                    .count(32)
                    .base_seed(base_seed)
                    .parallelism(workers)
                    .build()
                    .run_litmus(&inst);
                assert_eq!(
                    new,
                    legacy,
                    "{test} under {}: facade diverged from the legacy path at {workers} workers",
                    env.name()
                );
            }
        }
    }
}

/// The shared-stress environment takes the same per-run seed stream:
/// the facade derives the stress-lane instance once per campaign, so a
/// legacy loop over the *same derived instance* under plain systematic
/// stress must be bit-identical at every worker count.
#[test]
fn shared_stress_campaigns_match_the_legacy_path_bit_for_bit() {
    use gpu_wmm::core::stress::SharedStress;
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::shared_sys_str_plus(&chip);
    let SharedStress { words, iters } = env.shared.unwrap();
    for test in [Shape::MpShared, Shape::Isa2Scoped] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let derived = inst.with_shared_stress(words, iters);
        let base_seed = 0x5ba6ed;
        let legacy = legacy_litmus_campaign(
            &chip,
            &derived,
            |rng| {
                let threads = litmus_stress_threads(&chip, rng);
                let s = build_stress(&chip, &env.stress, pad, threads, 40, rng);
                (s.groups, s.init)
            },
            32,
            base_seed,
            env.randomize,
        );
        assert!(
            legacy.weak() > 0 || test == Shape::Isa2Scoped,
            "{test}: comparison is vacuous without weak outcomes: {legacy}"
        );
        for workers in WORKER_COUNTS {
            let new = CampaignBuilder::new(&chip)
                .environment(&env, pad, 40)
                .count(32)
                .base_seed(base_seed)
                .parallelism(workers)
                .build()
                .run_litmus(&inst);
            assert_eq!(
                new, legacy,
                "{test} under shm+sys-str+: facade diverged at {workers} workers"
            );
        }
    }
}

/// The structural L1 path takes the same per-run seed stream: under
/// `l1-str+` on the incoherent-L1 C2075 (extra staleness draws live in
/// the load path) and on the same chip with the staleness knobs zeroed
/// (`Run.l1` disengaged, the pre-topology load path verbatim), the
/// facade is bit-identical to the sequential legacy loop at every
/// worker count.
#[test]
fn l1_stress_campaigns_match_the_legacy_path_bit_for_bit() {
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::l1_str_plus();
    let incoherent = Chip::by_short("C2075").unwrap();
    let mut coherent = incoherent.clone();
    coherent.l1.stale_base = 0.0;
    coherent.l1.stale_gain = 0.0;
    assert!(incoherent.l1_weak() && !coherent.l1_weak());
    for chip in [incoherent, coherent] {
        for test in [Shape::CoRR, Shape::CoRRFence, Shape::Mp] {
            let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
            let base_seed = 0x11CA;
            let legacy = legacy_litmus_campaign(
                &chip,
                &inst,
                |rng| {
                    let threads = litmus_stress_threads(&chip, rng);
                    let s = build_stress(&chip, &env.stress, pad, threads, 40, rng);
                    (s.groups, s.init)
                },
                32,
                base_seed,
                env.randomize,
            );
            assert_eq!(legacy.total(), 32);
            for workers in WORKER_COUNTS {
                let new = CampaignBuilder::new(&chip)
                    .environment(&env, pad, 40)
                    .count(32)
                    .base_seed(base_seed)
                    .parallelism(workers)
                    .build()
                    .run_litmus(&inst);
                assert_eq!(
                    new,
                    legacy,
                    "{test} under l1-str+ (l1_weak={}): facade diverged at {workers} workers",
                    chip.l1_weak()
                );
            }
        }
    }
}

/// Zero-cost when off: on chips where every weakness channel is
/// structurally disabled the provenance counters read exactly zero —
/// the telemetry never invents activity on the legacy bit-identical
/// paths.
#[test]
fn channel_counters_vanish_when_every_channel_is_off() {
    let pad = Scratchpad::new(2048, 2048);
    // An SC chip has no store window and no stale L1: every counter
    // stays pinned at zero even under systematic stress.
    let sc = Chip::by_short("K20").unwrap().sequentially_consistent();
    let env = Environment::sys_str_plus(&sc);
    for test in [Shape::Mp, Shape::MpShared, Shape::MpCas] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = CampaignBuilder::new(&sc)
            .environment(&env, pad, 40)
            .count(32)
            .base_seed(3)
            .build()
            .run_litmus(&inst);
        assert_eq!(h.weak(), 0, "{test} on SC chip: {h}");
        assert!(
            h.channels().is_zero(),
            "{test} on SC chip: counters invented activity: {:?}",
            h.channels()
        );
        assert_eq!(h.provenance_total().total(), 0);
    }
    // Zeroed staleness knobs disengage the L1 entirely (the legacy
    // pre-topology load path, bit for bit): the three structural
    // counters read exactly zero while the window channel still counts.
    let mut coherent = Chip::by_short("C2075").unwrap();
    coherent.l1.stale_base = 0.0;
    coherent.l1.stale_gain = 0.0;
    let env = Environment::l1_str_plus();
    for test in [Shape::CoRR, Shape::MpCas] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = CampaignBuilder::new(&coherent)
            .environment(&env, pad, 40)
            .count(32)
            .base_seed(0x11CA)
            .build()
            .run_litmus(&inst);
        let c = h.channels();
        assert_eq!(c.l1_stale, 0, "{test}: stale hits on a disengaged L1");
        assert_eq!(
            c.fence_inval, 0,
            "{test}: fence invalidations without an L1"
        );
        assert_eq!(
            c.atomic_read_through, 0,
            "{test}: atomic read-throughs without an L1"
        );
        assert_eq!(h.provenance_total().l1_stale, 0);
    }
}

/// A miniature lock-protected accumulator (the idiom of the paper's
/// Fig. 1 running example): weak-memory-buggy by design, so stressed
/// campaigns produce a mix of verdicts worth comparing.
struct LockCounter {
    spec: AppSpec,
    expected: u32,
}

fn lock_counter() -> LockCounter {
    let mut b = KernelBuilder::new("lock-counter");
    let tid = b.tid();
    let zero = b.const_(0);
    let is0 = b.eq(tid, zero);
    b.if_(is0, |b| {
        let lock = b.const_(0);
        let cell = b.const_(128); // different line from the lock
        b.spin_lock(lock);
        let v = b.load_global(cell);
        let one = b.const_(1);
        let v1 = b.add(v, one);
        b.store_global(cell, v1);
        b.unlock(lock);
    });
    let program = b.finish().unwrap();
    let blocks = 8;
    LockCounter {
        spec: AppSpec {
            name: "lock-counter".into(),
            phases: vec![Phase {
                program,
                blocks,
                threads_per_block: 32,
                shared_words: 0,
            }],
            global_words: 192,
            init: vec![],
            max_turns_per_phase: 2_000_000,
        },
        expected: blocks,
    }
}

impl Application for LockCounter {
    fn name(&self) -> &str {
        "lock-counter"
    }
    fn spec(&self) -> &AppSpec {
        &self.spec
    }
    fn check(&self, memory: &[Word]) -> Result<(), String> {
        if memory[128] == self.expected {
            Ok(())
        } else {
            Err(format!(
                "counter = {}, expected {}",
                memory[128], self.expected
            ))
        }
    }
}

/// The pre-redesign application campaign: sequential `run_once` per
/// index (each building its own stress setup), verdicts folded exactly
/// as the old `AppHarness::campaign` did.
fn legacy_app_campaign(
    h: &AppHarness<'_>,
    env: &Environment,
    runs: u32,
    base_seed: u64,
) -> CampaignResult {
    let mut r = CampaignResult {
        runs,
        ..Default::default()
    };
    for i in 0..u64::from(runs) {
        let v = h.run_once(env, mix_seed(base_seed, i)).verdict;
        if v.is_error() {
            r.errors += 1;
        }
        match v {
            RunVerdict::PostConditionFailed(_) => r.postcondition_failures += 1,
            RunVerdict::Timeout => r.timeouts += 1,
            RunVerdict::Divergence | RunVerdict::Fault(_) => r.faults += 1,
            RunVerdict::Pass => {}
        }
    }
    r
}

/// Application campaigns through the facade are bit-identical to the
/// legacy per-run loop, under the effective environment (where verdicts
/// actually vary) and the native one, at every worker count.
#[test]
fn app_campaigns_match_the_legacy_path_bit_for_bit() {
    let chip = Chip::by_short("K20").unwrap();
    let app = lock_counter();
    let h = AppHarness::new(&chip, &app);
    for (env, base_seed) in [
        (Environment::sys_str_plus(&chip), 7u64),
        (Environment::native(), 5u64),
    ] {
        let legacy = legacy_app_campaign(&h, &env, 48, base_seed);
        for workers in WORKER_COUNTS {
            let new = h.campaign(&env, 48, base_seed, workers);
            assert_eq!(
                new,
                legacy,
                "lock-counter under {}: facade diverged at {workers} workers",
                env.name()
            );
        }
    }
    // The comparison must not be vacuous: the stressed campaign errs.
    let stressed = legacy_app_campaign(&h, &Environment::sys_str_plus(&chip), 48, 7);
    assert!(
        stressed.errors > 0,
        "stressed lock-counter never failed: {stressed:?}"
    );
}
