//! Integration: the Sec. 4 application-testing pipeline across
//! `wmm-apps` and `wmm-core`.

use gpu_wmm::apps::{all_apps, app_by_name};
use gpu_wmm::core::env::{AppHarness, Environment};
use gpu_wmm::sim::chip::Chip;

/// A strongly-ordered chip: the simulator is sequentially consistent in
/// both memory spaces.
fn sc_chip(short: &str) -> Chip {
    Chip::by_short(short).unwrap().sequentially_consistent()
}

#[test]
fn every_app_is_correct_under_sequential_consistency() {
    let chip = sc_chip("K20");
    for app in all_apps() {
        let h = AppHarness::new(&chip, app.as_ref());
        for seed in 0..3 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(
                out.verdict,
                gpu_wmm::core::env::RunVerdict::Pass,
                "{} seed {seed}",
                app.name()
            );
        }
    }
}

#[test]
fn every_app_is_correct_with_randomized_ids_under_sc() {
    let chip = sc_chip("C2075");
    let mut env = Environment::native();
    env.randomize = true;
    for app in all_apps() {
        let h = AppHarness::new(&chip, app.as_ref());
        for seed in 0..3 {
            let out = h.run_once(&env, seed);
            assert_eq!(
                out.verdict,
                gpu_wmm::core::env::RunVerdict::Pass,
                "{} seed {seed}",
                app.name()
            );
        }
    }
}

#[test]
fn sys_str_plus_is_effective_on_the_running_example() {
    let chip = Chip::by_short("K20").unwrap();
    let app = app_by_name("cbe-dot").unwrap();
    let h = AppHarness::new(&chip, app.as_ref());
    let r = h.campaign(&Environment::sys_str_plus(&chip), 100, 42, 0);
    assert!(
        r.effective(),
        "paper: 102/1000 erroneous on the K20; got {}/{}",
        r.errors,
        r.runs
    );
}

#[test]
fn fenced_sdk_red_and_cub_scan_never_fail() {
    // "We observed weak behaviour in all applications except sdk-red and
    // cub-scan ... it appears that the fences included in the original
    // applications do prevent errors." (Sec. 4.3)
    let chip = Chip::by_short("Titan").unwrap();
    let env = Environment::sys_str_plus(&chip);
    for name in ["sdk-red", "cub-scan"] {
        let app = app_by_name(name).unwrap();
        let h = AppHarness::new(&chip, app.as_ref());
        let r = h.campaign(&env, 100, 7, 0);
        assert_eq!(r.errors, 0, "{name}: {r:?}");
    }
}

#[test]
fn nf_variants_do_fail() {
    let chip = Chip::by_short("Titan").unwrap();
    let env = Environment::sys_str_plus(&chip);
    for (name, runs) in [("cub-scan-nf", 150), ("ls-bh-nf", 60)] {
        let app = app_by_name(name).unwrap();
        let h = AppHarness::new(&chip, app.as_ref());
        let r = h.campaign(&env, runs, 13, 0);
        assert!(r.any_error(), "{name} must fail without its fences: {r:?}");
    }
}

#[test]
fn ls_bh_fails_even_with_its_own_fences() {
    // "We observed errors in both ls-bh and ls-bh-nf, showing that the
    // fences included in ls-bh are insufficient." (Sec. 4.3)
    let chip = Chip::by_short("Titan").unwrap();
    let app = app_by_name("ls-bh").unwrap();
    assert!(app.spec().fence_count() > 0, "ls-bh ships fences");
    let h = AppHarness::new(&chip, app.as_ref());
    let r = h.campaign(&Environment::sys_str_plus(&chip), 250, 21, 0);
    assert!(r.any_error(), "ls-bh's fences are insufficient: {r:?}");
}

#[test]
fn conservative_fencing_suppresses_all_errors() {
    let chip = Chip::by_short("K20").unwrap();
    let env = Environment::sys_str_plus(&chip);
    for name in ["cbe-dot", "ct-octree", "ls-bh-nf"] {
        let app = app_by_name(name).unwrap();
        let fenced = app.spec().with_all_fences();
        let h = AppHarness::with_spec(&chip, app.as_ref(), fenced);
        let r = h.campaign(&env, 60, 3, 0);
        assert_eq!(r.errors, 0, "{name} with cons fences: {r:?}");
    }
}

#[test]
fn campaigns_are_deterministic() {
    let chip = Chip::by_short("770").unwrap();
    let app = app_by_name("cbe-ht").unwrap();
    let h = AppHarness::new(&chip, app.as_ref());
    let env = Environment::sys_str_plus(&chip);
    let a = h.campaign(&env, 40, 9, 2);
    let b = h.campaign(&env, 40, 9, 4);
    assert_eq!(a, b);
}
