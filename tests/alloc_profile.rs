//! Per-run allocation accounting for the campaign hot path.
//!
//! The redesign's perf claim is that stress artifacts (compiled stress
//! `Program`s, location tables) are built **once per environment**
//! instead of once per run. This test measures it directly: a counting
//! global allocator tallies heap allocations for (a) the historic
//! rebuild-`build_stress`-every-run loop and (b) the same campaign
//! through cached `StressArtifacts` — both sequential, both producing
//! bit-identical histograms — and asserts the cached path allocates
//! measurably less.

use gpu_wmm::core::campaign::CampaignBuilder;
use gpu_wmm::core::stress::{
    build_stress, litmus_stress_threads, Scratchpad, StressArtifacts, StressStrategy,
    SystematicParams,
};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::runner::{mix_seed, run_instance};
use gpu_wmm::litmus::{Histogram, LitmusLayout};
use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::exec::Gpu;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocation calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

const COUNT: u32 = 48;
const SEED: u64 = 2016;

#[test]
fn cached_artifacts_allocate_measurably_less_than_per_run_builds() {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
    let strategy = StressStrategy::Systematic(SystematicParams::from_paper(&chip));

    // (a) The historic hot path: one `build_stress` (kernel emission
    // included) per run.
    let (legacy, legacy_allocs) = allocations_during(|| {
        let mut gpu = Gpu::new(chip.clone());
        let mut h = Histogram::new();
        for i in 0..u64::from(COUNT) {
            let mut rng = SmallRng::seed_from_u64(mix_seed(SEED, i));
            let threads = litmus_stress_threads(&chip, &mut rng);
            let s = build_stress(&chip, &strategy, pad, threads, 40, &mut rng);
            let seed = rng.gen();
            h.record(run_instance(
                &mut gpu,
                &inst,
                (s.groups, s.init),
                true,
                seed,
            ));
        }
        h
    });

    // (b) The redesigned path: artifacts once, `make` per run.
    let (cached, cached_allocs) = allocations_during(|| {
        let artifacts = StressArtifacts::for_strategy(&chip, &strategy, pad, 40);
        CampaignBuilder::new(&chip)
            .stress(artifacts)
            .randomize_ids(true)
            .count(COUNT)
            .base_seed(SEED)
            .parallelism(1)
            .build()
            .run_litmus(&inst)
    });

    // Same work, same results...
    assert_eq!(legacy, cached, "the two paths must stay bit-identical");
    // ...for measurably fewer allocations. Emitting the systematic
    // kernel costs ~20 allocations, so the cached path must save at
    // least 10 per run and at least 10% overall (measured: ~22 saved
    // per run, ~28% of the campaign's total).
    eprintln!(
        "allocations over {COUNT} runs: per-run build_stress = {legacy_allocs}, \
         cached artifacts = {cached_allocs} \
         ({:.1}% of the legacy count)",
        100.0 * cached_allocs as f64 / legacy_allocs as f64
    );
    assert!(
        cached_allocs + u64::from(COUNT) * 10 < legacy_allocs,
        "expected the cached path to save >=10 allocations per run: \
         cached {cached_allocs} vs legacy {legacy_allocs}"
    );
    assert!(
        cached_allocs * 10 < legacy_allocs * 9,
        "expected a >=10% drop in total allocations: \
         cached {cached_allocs} vs legacy {legacy_allocs}"
    );
}
