//! Acceptance: the analyzer-seeded scoped fence-insertion search on the
//! shm-pipe workload — the analyzer finds the intra-block communication,
//! the empirical search confirms its block-level demotions, and the
//! hardened program is strictly cheaper than the all-device baseline
//! with zero residual weak behaviors.

use gpu_wmm::apps::app_by_name;
use gpu_wmm::core::analyze_spec;
use gpu_wmm::core::env::{AppHarness, Environment};
use gpu_wmm::core::harden::{empirical_fence_insertion_scoped, HardenConfig};
use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::ir::FenceLevel;

fn cfg() -> HardenConfig {
    HardenConfig {
        initial_iters: 24,
        stable_runs: 120,
        max_rounds: 3,
        base_seed: 5,
        parallelism: 0,
    }
}

#[test]
fn analyzer_warnings_cover_shm_pipes_dynamic_weakness() {
    let chip = Chip::by_short("Titan").unwrap();
    let app = app_by_name("shm-pipe").unwrap();
    // Dynamically weak without fences...
    let h = AppHarness::new(&chip, app.as_ref());
    let check = h.campaign(&Environment::sys_str_plus(&chip), 200, 3, 0);
    assert!(
        check.errors > 0,
        "shm-pipe must go weak unfenced: {check:?}"
    );
    // ...and statically warned about, at block level: the communication
    // is provably intra-block shared-space.
    let a = analyze_spec(app.spec());
    assert!(!a.quiet(), "every dynamic weakness needs a static warning");
    assert_eq!(
        a.phases[0].max_warning_level(),
        Some(FenceLevel::Block),
        "{:?}",
        a.phases[0].warnings
    );
}

#[test]
fn scoped_insertion_places_block_fences_cheaper_than_device() {
    let chip = Chip::by_short("Titan").unwrap();
    let app = app_by_name("shm-pipe").unwrap();
    let r = empirical_fence_insertion_scoped(&chip, app.as_ref(), &cfg());
    assert!(r.converged, "search must converge: {r:?}");
    assert!(!r.fences.is_empty(), "shm-pipe empirically needs fences");
    // The analyzer's demotions survive the empirical check: at least
    // one surviving fence sits at the cheap block rung.
    assert!(
        r.fences.iter().any(|&(_, l)| l == FenceLevel::Block),
        "{:?}",
        r.fences
    );
    assert!(r.demotions >= 1, "{r:?}");
    // Strictly cheaper than fencing the same sites at device level.
    assert!(
        r.fence_cost < r.device_baseline_cost,
        "cost {} !< baseline {}",
        r.fence_cost,
        r.device_baseline_cost
    );
    // The Pareto front over (errors, cost) carries a zero-error point —
    // the hardened configuration itself.
    assert!(r.pareto.iter().any(|c| c.errors == 0), "{:?}", r.pareto);
    // And the surviving set holds up under a fresh aggressive campaign.
    let spec = app.spec().with_leveled_fences(&r.fences);
    let h = AppHarness::with_spec(&chip, app.as_ref(), spec);
    let check = h.campaign(&Environment::sys_str_plus(&chip), 150, 17, 0);
    assert_eq!(check.errors, 0, "{check:?}");
}
