//! Engine-vs-standalone equivalence: a campaign result coming off the
//! job queue must be **bit-identical** to running the same spec
//! standalone — regardless of worker count, submission order, or
//! whether the job's stress artifacts were a cache hit.
//!
//! The baseline is `JobSpec::execute(1, None)`: one job, no queue, no
//! pool, freshly built artifacts. Every engine configuration under test
//! (workers {1, 2, 8} × shuffled submission orders) must reproduce that
//! baseline per job, and the aggregate soak digest must be a pure
//! function of the (mix, seed) pair.

use gpu_wmm::gen::Shape;
use gpu_wmm::server::soak::results_digest;
use gpu_wmm::server::{Engine, EngineConfig, EnvKind, JobSpec, SoakMix, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A small but representative batch: litmus jobs across chips,
/// environments (including the rand-str and shared-memory ones, whose
/// artifact handling is the trickiest) and shapes, plus application
/// jobs — every workload kind the queue can carry.
fn job_set() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let envs = [
        EnvKind::Native,
        EnvKind::SysStrPlus,
        EnvKind::RandStrPlus,
        EnvKind::ShmSysStrPlus,
        EnvKind::L1StrPlus,
    ];
    for (ci, chip) in ["Titan", "C2075"].iter().enumerate() {
        for (ki, env) in envs.iter().enumerate() {
            for (si, shape) in [Shape::Mp, Shape::CoRR, Shape::MpShared].iter().enumerate() {
                jobs.push(JobSpec {
                    chip: (*chip).to_string(),
                    env: *env,
                    workload: WorkloadSpec::Litmus {
                        shape: *shape,
                        distance: 64,
                    },
                    execs: 8,
                    seed: 0x5EED ^ ((ci as u64) << 16 | (ki as u64) << 8 | si as u64),
                });
            }
        }
    }
    for (ai, app) in ["shm-pipe", "cbe-dot"].iter().enumerate() {
        jobs.push(JobSpec {
            chip: "Titan".to_string(),
            env: EnvKind::SysStrPlus,
            workload: WorkloadSpec::App {
                name: (*app).to_string(),
            },
            execs: 4,
            seed: 0xA44 + ai as u64,
        });
    }
    jobs
}

/// Standalone baseline: each job executed alone, uncached.
fn baseline(jobs: &[JobSpec]) -> HashMap<String, u64> {
    jobs.iter()
        .map(|j| {
            (
                j.to_string(),
                j.execute(1, None).expect("standalone execution").digest(),
            )
        })
        .collect()
}

fn shuffled<T>(mut v: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        v.swap(i, j);
    }
    v
}

/// Run a batch through an engine and index the result digests by spec.
fn engine_digests(jobs: &[JobSpec], workers: usize) -> HashMap<String, u64> {
    let engine = Engine::start(EngineConfig {
        workers,
        job_parallelism: 1,
    });
    for j in jobs {
        engine.submit(j.clone()).expect("valid spec");
    }
    let results = engine.drain().expect("drain");
    assert_eq!(results.len(), jobs.len());
    results
        .into_iter()
        .map(|r| (r.spec.to_string(), r.summary.digest()))
        .collect()
}

/// Worker counts 1, 2 and 8 all reproduce the standalone baseline bit
/// for bit — queueing, pooling and artifact caching are invisible to
/// every histogram and app verdict.
#[test]
fn queued_results_match_standalone_execution_at_every_worker_count() {
    let jobs = job_set();
    let expect = baseline(&jobs);
    for workers in WORKER_COUNTS {
        let got = engine_digests(&jobs, workers);
        assert_eq!(
            got, expect,
            "engine with {workers} workers diverged from the standalone path"
        );
    }
}

/// Shuffling the submission order changes which worker claims which
/// job and which jobs hit a warm cache — and must change nothing else.
#[test]
fn submission_order_cannot_change_any_result() {
    let jobs = job_set();
    let expect = baseline(&jobs);
    for shuffle_seed in [1u64, 2, 3] {
        let order = shuffled(jobs.clone(), shuffle_seed);
        let got = engine_digests(&order, 4);
        assert_eq!(
            got, expect,
            "shuffle seed {shuffle_seed} changed a job's result"
        );
    }
}

/// The batch exercises the cache as intended: one artifact build per
/// distinct chip × environment key for litmus jobs (app jobs key
/// separately through their own calibrated scratchpads).
#[test]
fn batched_jobs_share_artifact_builds() {
    let jobs = job_set();
    let litmus_jobs = jobs
        .iter()
        .filter(|j| matches!(j.workload, WorkloadSpec::Litmus { .. }))
        .cloned()
        .collect::<Vec<_>>();
    let engine = Engine::start(EngineConfig {
        workers: 4,
        job_parallelism: 1,
    });
    for j in &litmus_jobs {
        engine.submit(j.clone()).unwrap();
    }
    engine.drain().unwrap();
    let stats = engine.cache_stats();
    // 2 chips × 5 environments, 3 shapes each: builds bounded by the
    // key count, everything else is a hit.
    assert_eq!(stats.builds, 10, "one build per chip × environment");
    assert_eq!(stats.hits, litmus_jobs.len() as u64 - 10);
    assert!(stats.hit_rate() > 0.6);
}

/// The soak mix a proptest case runs: litmus-only (fast) but spanning
/// environments, shapes and a second chip.
fn tiny_mix() -> SoakMix {
    SoakMix {
        litmus_chips: vec!["Titan".to_string(), "C2075".to_string()],
        app_chips: vec![],
        envs: vec![EnvKind::Native, EnvKind::SysStrPlus, EnvKind::L1StrPlus],
        shapes: vec![Shape::Mp, Shape::Sb, Shape::CoRR],
        distances: vec![64],
        execs: 4,
        apps: vec![],
        app_runs: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: under a fixed SOAK_SEED, any shuffle of the
    /// submission order × any worker count in {1, 2, 8} yields the same
    /// per-job histograms and the same aggregate digest.
    #[test]
    fn any_shuffle_and_worker_count_reproduces_the_soak_digest(
        shuffle_seed in 0u64..u64::MAX,
        widx in 0usize..3,
    ) {
        const SOAK_SEED: u64 = 2016;
        let jobs = tiny_mix().jobs(SOAK_SEED);
        let expect = baseline(&jobs);

        let order = shuffled(jobs.clone(), shuffle_seed);
        let engine = Engine::start(EngineConfig {
            workers: WORKER_COUNTS[widx],
            job_parallelism: 1,
        });
        for j in &order {
            engine.submit(j.clone()).expect("valid spec");
        }
        let results = engine.drain().expect("drain");

        // Per-job histograms match the standalone baseline...
        for r in &results {
            prop_assert_eq!(
                r.summary.digest(),
                expect[&r.spec.to_string()],
                "job {} diverged (shuffle {}, {} workers)",
                r.spec,
                shuffle_seed,
                WORKER_COUNTS[widx]
            );
        }
        // ...and the aggregate digest is shuffle- and pool-invariant
        // (results_digest sorts by spec, so it hashes the result *set*):
        // an independent engine over the unshuffled order agrees.
        let reference_engine = Engine::start(EngineConfig {
            workers: 2,
            job_parallelism: 1,
        });
        for j in &jobs {
            reference_engine.submit(j.clone()).expect("valid spec");
        }
        let reference = reference_engine.drain().expect("drain");
        prop_assert_eq!(results_digest(&results), results_digest(&reference));
    }
}
