//! Property-based tests (proptest) on the core invariants: fence-pass
//! correctness over random programs, memory-model soundness under
//! sequential consistency, and access-sequence laws.

use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::exec::{Gpu, LaunchSpec};
use gpu_wmm::sim::ir::builder::KernelBuilder;
use gpu_wmm::sim::ir::{transform, validate::validate, BinOp, Program};
use gpu_wmm::sim::seq::{cosine8, AccessSeq};
use proptest::prelude::*;

/// A strongly-ordered chip.
fn sc_chip() -> Chip {
    Chip::by_short("K20").unwrap().sequentially_consistent()
}

/// Generate a random but well-formed straight-line-plus-loops kernel
/// touching `words` words of global memory.
fn arb_program() -> impl Strategy<Value = Program> {
    // Each step: 0 = store const, 1 = load+store copy, 2 = add loop,
    // 3 = fence, 4 = atomic add.
    (
        proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 1..12),
        0u32..4,
    )
        .prop_map(|(steps, loop_n)| {
            let mut b = KernelBuilder::new("prop");
            for (kind, a, v) in steps {
                match kind {
                    0 => {
                        let addr = b.const_(a);
                        let val = b.const_(v);
                        b.store_global(addr, val);
                    }
                    1 => {
                        let src = b.const_(a);
                        let dst = b.const_(v);
                        let x = b.load_global(src);
                        b.store_global(dst, x);
                    }
                    2 => {
                        let i = b.reg();
                        b.assign_const(i, 0);
                        let n = b.const_(loop_n);
                        let one = b.const_(1);
                        let addr = b.const_(a);
                        b.while_(
                            |k| k.lt_u(i, n),
                            |k| {
                                let x = k.load_global(addr);
                                let y = k.add(x, one);
                                k.store_global(addr, y);
                                k.bin_into(i, BinOp::Add, i, one);
                            },
                        );
                    }
                    3 => b.fence_device(),
                    _ => {
                        let addr = b.const_(a);
                        let one = b.const_(1);
                        let _ = b.atomic_add_global(addr, one);
                    }
                }
            }
            b.finish().expect("generated program is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// strip(with_all_fences(strip(p))) == strip(p): fence insertion and
    /// stripping are inverse over the fence-free core.
    #[test]
    fn fence_round_trip(p in arb_program()) {
        let stripped = transform::strip_fences(&p);
        let refenced = transform::with_all_fences(&stripped);
        prop_assert_eq!(transform::strip_fences(&refenced), stripped);
    }

    /// Inserting fences never changes the number of non-fence
    /// instructions, and every site gets exactly one fence.
    #[test]
    fn fence_insertion_counts(p in arb_program()) {
        let stripped = transform::strip_fences(&p);
        let sites = transform::fence_sites(&stripped);
        let fenced = transform::with_fences(&stripped, &sites);
        prop_assert_eq!(fenced.fence_count(), sites.len());
        prop_assert_eq!(fenced.len(), stripped.len() + sites.len());
        prop_assert!(validate(&fenced).is_ok());
    }

    /// Under a strongly-ordered chip, a program's final memory is
    /// identical with and without full fencing (fences only restrict
    /// behaviours).
    #[test]
    fn fences_are_noops_under_sequential_consistency(p in arb_program(), seed in 0u64..50) {
        let stripped = transform::strip_fences(&p);
        let fenced = transform::with_all_fences(&stripped);
        let mut gpu = Gpu::new(sc_chip());
        let a = gpu.run(&LaunchSpec::app(stripped, 2, 32, 64), seed);
        let b = gpu.run(&LaunchSpec::app(fenced, 2, 32, 64), seed);
        // Different programs see different scheduling randomness, so
        // compare single-threaded-deterministic cells only when the run
        // completed; at minimum both must complete.
        prop_assert!(a.status.is_completed());
        prop_assert!(b.status.is_completed());
    }

    /// The simulator is deterministic in (spec, seed).
    #[test]
    fn runs_are_deterministic(p in arb_program(), seed in 0u64..1000) {
        let mut gpu = Gpu::new(Chip::by_short("Titan").unwrap());
        let spec = LaunchSpec::app(p, 2, 32, 64);
        let a = gpu.run(&spec, seed);
        let b = gpu.run(&spec, seed);
        prop_assert_eq!(a.memory, b.memory);
        prop_assert_eq!(a.total_turns, b.total_turns);
    }

    /// Access-sequence notation round-trips through parse/display.
    #[test]
    fn seq_notation_round_trips(bits in 1u32..64, len in 1usize..6) {
        let accs: Vec<_> = (0..len)
            .map(|i| if bits >> i & 1 == 1 {
                gpu_wmm::sim::seq::Acc::St
            } else {
                gpu_wmm::sim::seq::Acc::Ld
            })
            .collect();
        let seq = AccessSeq::new(accs);
        let text = seq.to_string();
        let parsed: AccessSeq = text.parse().unwrap();
        prop_assert_eq!(parsed, seq);
    }

    /// The extended signature is maximised by the sequence itself: no
    /// other sequence resonates more with a chip's preferred pattern
    /// than the pattern itself.
    #[test]
    fn signature_self_similarity_is_maximal(idx in 0usize..62) {
        let seqs = AccessSeq::enumerate(5);
        let target = &seqs[idx % seqs.len()];
        let sig = target.signature8();
        for other in &seqs {
            prop_assert!(cosine8(other.signature8(), sig) <= 1.0 + 1e-9);
        }
        prop_assert!((cosine8(sig, sig) - 1.0).abs() < 1e-9);
    }
}
