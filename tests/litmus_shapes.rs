//! Integration: the litmus-level shapes that Sec. 3 of the paper
//! establishes, end to end across `wmm-sim`, `wmm-gen`, `wmm-litmus`
//! and `wmm-core` — over *generated* instances whose weak predicates
//! come from the SC-enumeration oracle, campaigned through the unified
//! `CampaignBuilder` facade.

use gpu_wmm::core::campaign::CampaignBuilder;
use gpu_wmm::core::env::Environment;
use gpu_wmm::core::stress::{Scratchpad, StressArtifacts, StressStrategy};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::LitmusLayout;
use gpu_wmm::sim::chip::Chip;

fn stressed_weak_count(chip: &Chip, test: Shape, d: u32, location: u32, count: u32) -> u64 {
    let pad = Scratchpad::new(2048, 2048);
    let inst = test.instance(LitmusLayout::standard(d, pad.required_words()));
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[location], 40);
    CampaignBuilder::new(chip)
        .stress(artifacts)
        .count(count)
        .base_seed(0xabc)
        .build()
        .run_litmus(&inst)
        .weak()
}

#[test]
fn stress_on_matching_channel_provokes_weak_behaviour() {
    let chip = Chip::by_short("Titan").unwrap();
    // Location 0 shares a channel with x (both line-aligned at
    // multiples of the patch size and the scratchpad base is
    // channel-aligned).
    let weak = stressed_weak_count(&chip, Shape::Mp, 64, 0, 150);
    assert!(
        weak > 7,
        "expected frequent MP weak behaviour, got {weak}/150"
    );
}

#[test]
fn stress_on_unrelated_channel_is_ineffective() {
    let chip = Chip::by_short("Titan").unwrap();
    // Location 96 maps to channel 3, matching neither x (0) nor y at
    // d = 64 (channel 2).
    let weak = stressed_weak_count(&chip, Shape::Mp, 64, 96, 150);
    assert!(
        weak <= 3,
        "off-channel stress should do little, got {weak}/150"
    );
}

#[test]
fn no_weak_behaviour_below_the_patch_size() {
    // d = 0 puts all communication locations in the same line on every
    // chip: same-line ordering forbids the *reordering* entirely. That
    // guarantee now only extends to coherent-L1 chips — on the Tesla
    // C2075/C2050 the incoherent L1 can serve a stale line under
    // cross-SM write pressure, a channel that line-local ordering does
    // not close — so this pins Titan (Kepler) and K20 instead.
    for short in ["Titan", "K20"] {
        let chip = Chip::by_short(short).unwrap();
        for test in Shape::TRIO {
            let weak = stressed_weak_count(&chip, test, 0, 0, 80);
            assert_eq!(weak, 0, "{short}/{test} at d=0");
        }
    }
}

#[test]
fn native_runs_show_almost_no_weak_behaviour() {
    let chip = Chip::by_short("K20").unwrap();
    for test in Shape::TRIO {
        let inst = test.instance(LitmusLayout::standard(64, 4096));
        let h = CampaignBuilder::new(&chip)
            .count(300)
            .base_seed(5)
            .build()
            .run_litmus(&inst);
        assert!(
            h.weak() <= 2,
            "{test}: native weak rate too high: {}/{}",
            h.weak(),
            h.total()
        );
    }
}

#[test]
fn all_three_idioms_are_observable_under_stress() {
    let chip = Chip::by_short("Titan").unwrap();
    for test in Shape::TRIO {
        let weak = stressed_weak_count(&chip, test, 64, 0, 200);
        assert!(weak > 0, "{test} should show weak behaviour under stress");
    }
}

#[test]
fn coherence_shapes_never_go_weak_even_under_stress() {
    // CoRR and CoWW race on a *single* location: the simulator keeps
    // same-line accesses ordered, so the oracle-forbidden outcomes must
    // never appear no matter how hard the scratchpad is stressed.
    let chip = Chip::by_short("Titan").unwrap();
    for test in [Shape::CoRR, Shape::CoWW] {
        let weak = stressed_weak_count(&chip, test, 64, 0, 120);
        assert_eq!(weak, 0, "{test} must stay coherent");
    }
}

#[test]
fn fenced_variants_never_go_weak_even_under_stress() {
    // MP+fences and SB+fences carry a device fence between each
    // thread's accesses: the very stress that makes their base shapes
    // go weak frequently (see the matching-channel tests above) must
    // provoke nothing here — the fence forbids the reordering.
    let chip = Chip::by_short("Titan").unwrap();
    for test in [Shape::MpFences, Shape::SbFences] {
        let weak = stressed_weak_count(&chip, test, 64, 0, 150);
        assert_eq!(
            weak, 0,
            "{test} must never exhibit weak behaviour under stress"
        );
    }
}

#[test]
fn wider_cycles_are_observable_under_stress() {
    // The remaining two-thread relaxed cycles all exhibit their
    // oracle-forbidden outcomes under matched-channel stressing.
    let chip = Chip::by_short("Titan").unwrap();
    for test in [Shape::S, Shape::R, Shape::TwoPlusTwoW] {
        let weak = stressed_weak_count(&chip, test, 64, 0, 200);
        assert!(weak > 0, "{test} should show weak behaviour under stress");
    }
}

#[test]
fn scoped_shapes_never_go_weak_without_shared_stress() {
    // The scoped shapes communicate through the block's shared memory,
    // whose relaxation is provoked only by intra-block shared-space
    // pressure: under all four of the paper's global-stress environments
    // (including the tuned systematic stress that makes their
    // global-memory bases go weak frequently) the block's scratchpad is
    // quiescent, the shared contention factor stays below its floor, and
    // the oracle-forbidden outcomes must never appear.
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let envs = [
        Environment::native(),
        Environment {
            stress: StressStrategy::Random,
            randomize: true,
            shared: None,
        },
        Environment {
            stress: StressStrategy::CacheSized,
            randomize: false,
            shared: None,
        },
        Environment::sys_str_plus(&chip),
    ];
    for test in Shape::SCOPED {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        for env in &envs {
            let h = CampaignBuilder::new(&chip)
                .environment(env, pad, 40)
                .count(60)
                .base_seed(0x5c0)
                .build()
                .run_litmus(&inst);
            assert_eq!(h.total(), 60);
            assert_eq!(
                h.weak(),
                0,
                "{test} under {}: scoped shape went weak: {h}",
                env.name()
            );
        }
    }
}

#[test]
fn shared_stress_flips_the_scoped_shapes_but_not_their_fenced_twins() {
    // The acceptance shape of the scoped relaxation engine: under
    // `shm+sys-str+` (the block's idle lanes hammering a shared
    // scratchpad on top of tuned global stress) the unfenced scoped
    // shapes exhibit their oracle-forbidden outcomes, while one
    // `fence_block` per thread — the cheap membar.cta rung of the
    // hierarchy — pins the weak count at exactly zero, and the
    // single-location CoRR.shared stays coherent throughout.
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::shared_sys_str_plus(&chip);
    let campaign = |test: Shape| {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        CampaignBuilder::new(&chip)
            .environment(&env, pad, 40)
            .count(80)
            .base_seed(0x5c09)
            .build()
            .run_litmus(&inst)
    };
    for (unfenced, fenced) in [
        (Shape::MpShared, Shape::MpSharedFence),
        (Shape::SbShared, Shape::SbSharedFence),
    ] {
        let weak = campaign(unfenced).weak();
        assert!(
            weak > 0,
            "{unfenced} should go weak under shared-space stress"
        );
        let h = campaign(fenced);
        assert_eq!(h.total(), 80);
        assert_eq!(h.weak(), 0, "{fenced} must never go weak: {h}");
    }
    assert_eq!(
        campaign(Shape::CoRRShared).weak(),
        0,
        "CoRR.shared must stay coherent under shared stress"
    );
}

#[test]
fn mixed_scope_shapes_go_weak_under_shared_stress() {
    // MP.mixed (shared data, global flag) and ISA2.scoped (shared first
    // hop, global tail) straddle both levels of the hierarchy; with both
    // kinds of stress applied they exhibit their forbidden outcomes.
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::shared_sys_str_plus(&chip);
    for test in Shape::MIXED {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = CampaignBuilder::new(&chip)
            .environment(&env, pad, 40)
            .count(150)
            .base_seed(0x31bed)
            .build()
            .run_litmus(&inst);
        assert!(h.weak() > 0, "{test} should go weak under shared stress");
    }
}

#[test]
fn sc_chip_shows_no_scoped_weakness_even_under_shared_stress() {
    // Regression for the SC guard: `Chip::sequentially_consistent()`
    // zeroes the shared-space reorder matrix too, so the very
    // environment that flips the scoped shapes on a real chip provokes
    // nothing here.
    let chip = Chip::by_short("Titan").unwrap().sequentially_consistent();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::shared_sys_str_plus(&chip);
    for test in Shape::SCOPED.into_iter().chain(Shape::MIXED) {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = CampaignBuilder::new(&chip)
            .environment(&env, pad, 40)
            .count(60)
            .base_seed(0x5eed5)
            .build()
            .run_litmus(&inst);
        assert_eq!(h.weak(), 0, "{test} on the SC chip: {h}");
    }
}

#[test]
fn fenced_wider_cycles_never_go_weak_under_stress() {
    // WRC+fences, ISA2+fences and IRIW+fences carry a device fence
    // between each multi-access thread's events: the stress that makes
    // their bases observable must provoke nothing.
    let chip = Chip::by_short("Titan").unwrap();
    for test in Shape::WIDE_FENCED {
        let weak = stressed_weak_count(&chip, test, 64, 0, 150);
        assert_eq!(
            weak, 0,
            "{test} must never exhibit weak behaviour under stress"
        );
    }
}

#[test]
fn mp_cas_observers_stay_coherent_in_every_outcome() {
    // MP+CAS observes (T0 CAS old, T1 CAS old, T1 payload read, final
    // flag). Whatever the memory model does to the *payload* read, the
    // CASes themselves are atomic, so in every observed outcome — under
    // the stress that provokes weak MP behaviour — the success/failure
    // observer must stay coherent with the flag's final value and with
    // the payload read's weak classification:
    //   r0 == 0 always (T0's CAS can only ever see the initial 0),
    //   r1 == 1  ⟺  final y == 2 (T1 claimed after T0 published),
    //   r1 == 0  ⟺  final y == 1 (T1's CAS failed, T0's landed alone),
    //   and an outcome is weak exactly when the claim succeeded but the
    //   payload read still missed (r1 == 1, r2 == 0).
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let inst = Shape::MpCas.instance(LitmusLayout::standard(64, pad.required_words()));
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    let h = CampaignBuilder::new(&chip)
        .stress(artifacts)
        .count(200)
        .base_seed(0xcafe)
        .build()
        .run_litmus(&inst);
    assert_eq!(h.total(), 200);
    for (obs, n) in h.iter() {
        let (r0, r1, r2, m_y) = (obs[0], obs[1], obs[2], obs[3]);
        assert_eq!(r0, 0, "T0's CAS saw a non-initial flag: {obs:?} x{n}");
        match r1 {
            1 => assert_eq!(m_y, 2, "successful claim but final flag != 2: {obs:?}"),
            0 => assert_eq!(m_y, 1, "failed claim but final flag != 1: {obs:?}"),
            other => panic!("T1's CAS observed impossible flag {other}: {obs:?}"),
        }
        assert_eq!(
            inst.is_weak(obs),
            r1 == 1 && r2 == 0,
            "weak flag disagrees with the CAS/read coherence rule: {obs:?}"
        );
    }
}

#[test]
fn rmw_cycles_are_observable_under_stress() {
    // The RMW communication cycles still reorder like their plain-store
    // bases — atomics are globally atomic but do not order *other*
    // accesses (pre-Volta behaviour) — so matched-channel stress must
    // provoke their oracle-forbidden outcomes.
    let chip = Chip::by_short("Titan").unwrap();
    for test in [Shape::MpCas, Shape::TwoPlusTwoWExch] {
        let weak = stressed_weak_count(&chip, test, 64, 0, 300);
        assert!(weak > 0, "{test} should show weak behaviour under stress");
    }
}

#[test]
fn incoherent_l1_makes_corr_observable_on_the_teslas_only() {
    // The structural relaxation channel of the chip topology: under
    // `l1-str+` (write-only cross-SM traffic driving the staleness
    // probability) the Tesla C2075's incoherent L1 serves CoRR's second
    // read a stale line, so the oracle-forbidden `r0=1, r1=0` outcome
    // appears — the paper's Tab. 4 coherence violation on the Fermi
    // Teslas. Every way of closing the channel pins it back at exactly
    // zero: a coherent-L1 preset (Titan), the SC chip transform, and
    // the device fence between the two reads.
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::l1_str_plus();
    let campaign = |chip: &Chip, test: Shape| {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        CampaignBuilder::new(chip)
            .environment(&env, pad, 40)
            .count(80)
            .base_seed(0x11CA)
            .build()
            .run_litmus(&inst)
    };
    let tesla = Chip::by_short("C2075").unwrap();
    let weak = campaign(&tesla, Shape::CoRR).weak();
    assert!(
        weak > 0,
        "CoRR should read stale L1 lines on the C2075 under l1-str+"
    );
    assert_eq!(
        campaign(&tesla, Shape::CoRRFence).weak(),
        0,
        "the device fence must invalidate the stale line"
    );
    assert_eq!(
        campaign(&tesla.sequentially_consistent(), Shape::CoRR).weak(),
        0,
        "the SC chip zeroes the staleness channel"
    );
    let coherent = Chip::by_short("Titan").unwrap();
    assert_eq!(
        campaign(&coherent, Shape::CoRR).weak(),
        0,
        "coherent-L1 chips must keep CoRR coherent under l1-str+"
    );
}

#[test]
fn co_add_is_atomic_even_under_stress() {
    // Two atomicAdd(x, 1) racing under matched-channel stress: the
    // final-memory observer proves the increments never tear — every
    // outcome has olds {0, 1} in some order and final value 2.
    let chip = Chip::by_short("Titan").unwrap();
    let weak = stressed_weak_count(&chip, Shape::CoAdd, 64, 0, 120);
    assert_eq!(weak, 0, "CoAdd must stay atomic under stress");
}
