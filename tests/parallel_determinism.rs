//! Determinism of the parallel campaign layer: the same base seed must
//! yield bit-identical aggregates no matter how many worker threads the
//! work is sharded across. Run `i` of every campaign derives its
//! randomness from `(base_seed, i)` alone and aggregation is
//! commutative, so 1-, 2- and 8-worker runs must agree exactly.

use gpu_wmm::core::campaign::CampaignBuilder;
use gpu_wmm::core::stress::{Scratchpad, StressArtifacts};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::{Histogram, LitmusInstance, LitmusLayout};
use wmm_litmus::parallel::{parallel_fold, parallel_map};
use wmm_sim::chip::Chip;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const DISTANCES: [u32; 3] = [0, 64, 128];

fn native_histogram(
    chip: &Chip,
    inst: &LitmusInstance,
    parallelism: usize,
    base_seed: u64,
) -> Histogram {
    CampaignBuilder::new(chip)
        .count(48)
        .base_seed(base_seed)
        .parallelism(parallelism)
        .build()
        .run_litmus(inst)
}

/// MP/LB/SB at several distances, native (unstressed): every worker
/// count reports the identical histogram — not just the same totals but
/// the same per-outcome counts.
#[test]
fn campaign_native_is_worker_count_invariant() {
    let chip = Chip::by_short("Titan").unwrap();
    for test in Shape::TRIO {
        for d in DISTANCES {
            let inst = test.instance(LitmusLayout::standard(d, 4096));
            let reference = native_histogram(&chip, &inst, WORKER_COUNTS[0], 0xC0FFEE);
            assert_eq!(reference.total(), 48);
            for workers in &WORKER_COUNTS[1..] {
                let h = native_histogram(&chip, &inst, *workers, 0xC0FFEE);
                assert_eq!(
                    h, reference,
                    "{test} d={d}: {workers}-worker histogram diverged from 1-worker"
                );
            }
        }
    }
}

/// The same invariance under systematic stressing, where the per-run
/// stress blocks themselves come from the per-run RNG — and the stress
/// kernel is compiled once per campaign, not per run.
#[test]
fn campaign_stressed_is_worker_count_invariant() {
    let chip = Chip::by_short("K20").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    for test in Shape::TRIO {
        for d in [16, 64] {
            let inst = test.instance(LitmusLayout::standard(d, pad.required_words()));
            let run = |parallelism: usize| {
                CampaignBuilder::new(&chip)
                    .stress(artifacts.clone())
                    .randomize_ids(true)
                    .count(32)
                    .base_seed(0xBEEF ^ d as u64)
                    .parallelism(parallelism)
                    .build()
                    .run_litmus(&inst)
            };
            let reference = run(1);
            for workers in &WORKER_COUNTS[1..] {
                assert_eq!(
                    run(*workers),
                    reference,
                    "{test} d={d}: stressed histogram diverged at {workers} workers"
                );
            }
        }
    }
}

/// The new placement axis stays bit-identical across worker counts too:
/// one scoped (intra-block, shared-memory) and one RMW workload, native
/// and under pinned systematic stress, at 1/2/8 workers.
#[test]
fn campaign_scoped_and_rmw_are_worker_count_invariant() {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    for test in [Shape::MpShared, Shape::MpCas] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        for stressed in [false, true] {
            let run = |parallelism: usize| {
                let mut b = CampaignBuilder::new(&chip)
                    .count(48)
                    .base_seed(0x5C09ED)
                    .parallelism(parallelism);
                if stressed {
                    b = b.stress(artifacts.clone()).randomize_ids(true);
                }
                b.build().run_litmus(&inst)
            };
            let reference = run(WORKER_COUNTS[0]);
            assert_eq!(reference.total(), 48);
            for workers in &WORKER_COUNTS[1..] {
                assert_eq!(
                    run(*workers),
                    reference,
                    "{test} (stressed={stressed}): histogram diverged at {workers} workers"
                );
            }
        }
    }
}

/// The scoped relaxation engine stays bit-identical across worker
/// counts: scoped, block-fenced and mixed-scope shapes campaigned under
/// intra-block shared-space stress (stress lanes injected into the test
/// kernel, shared contention tracked per block) at 1/2/8 workers.
#[test]
fn campaign_shared_stressed_is_worker_count_invariant() {
    use gpu_wmm::core::campaign::CampaignBuilder;
    use gpu_wmm::core::env::Environment;
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::shared_sys_str_plus(&chip);
    for test in [
        Shape::MpShared,
        Shape::SbShared,
        Shape::MpSharedFence,
        Shape::MpMixed,
        Shape::Isa2Scoped,
    ] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let run = |parallelism: usize| {
            CampaignBuilder::new(&chip)
                .environment(&env, pad, 40)
                .count(32)
                .base_seed(0x5C0FED)
                .parallelism(parallelism)
                .build()
                .run_litmus(&inst)
        };
        let reference = run(WORKER_COUNTS[0]);
        assert_eq!(reference.total(), 32);
        for workers in &WORKER_COUNTS[1..] {
            assert_eq!(
                run(*workers),
                reference,
                "{test}: shared-stressed histogram diverged at {workers} workers"
            );
        }
    }
}

/// The structural L1 channel stays bit-identical across worker counts:
/// the per-run staleness draws in the load path come from the same
/// per-run RNG stream as everything else, so campaigning CoRR and its
/// fenced twin on an incoherent-L1 Tesla under `l1-str+` must agree
/// exactly at 1/2/8 workers — including the weak (stale-read) outcomes.
#[test]
fn campaign_l1_stressed_is_worker_count_invariant() {
    use gpu_wmm::core::env::Environment;
    let chip = Chip::by_short("C2075").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let env = Environment::l1_str_plus();
    for test in [Shape::CoRR, Shape::CoRRFence, Shape::Mp] {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let run = |parallelism: usize| {
            CampaignBuilder::new(&chip)
                .environment(&env, pad, 40)
                .count(32)
                .base_seed(0x11CA)
                .parallelism(parallelism)
                .build()
                .run_litmus(&inst)
        };
        let reference = run(WORKER_COUNTS[0]);
        assert_eq!(reference.total(), 32);
        for workers in &WORKER_COUNTS[1..] {
            assert_eq!(
                run(*workers),
                reference,
                "{test}: L1-stressed histogram diverged at {workers} workers"
            );
        }
    }
}

/// The provenance telemetry obeys the same law as the histograms it
/// tags: per-channel counters and the per-weak-outcome attribution fold
/// commutatively over runs, so 1-, 2- and 8-worker campaigns report
/// bit-identical channel totals — all-window on a coherent-L1 Kepler
/// under `sys-str+`, and with the structural `l1_stale` channel live on
/// the incoherent-L1 Tesla under `l1-str+`.
#[test]
fn provenance_counters_are_worker_count_invariant() {
    use gpu_wmm::core::env::Environment;
    let pad = Scratchpad::new(2048, 2048);
    let titan = Chip::by_short("Titan").unwrap();
    let c2075 = Chip::by_short("C2075").unwrap();
    let cases = [
        (&titan, Environment::sys_str_plus(&titan), Shape::Mp),
        (&c2075, Environment::l1_str_plus(), Shape::CoRR),
    ];
    for (chip, env, shape) in cases {
        let inst = shape.instance(LitmusLayout::standard(64, pad.required_words()));
        let run = |parallelism: usize| {
            CampaignBuilder::new(chip)
                .environment(&env, pad, 40)
                .count(96)
                .base_seed(0x0B5)
                .parallelism(parallelism)
                .build()
                .run_litmus(&inst)
        };
        let reference = run(WORKER_COUNTS[0]);
        assert!(
            reference.weak() > 0,
            "{shape} on {}: provenance comparison is vacuous: {reference}",
            chip.short
        );
        // Every weak outcome's attribution sums exactly to its count.
        for (obs, n) in reference.iter() {
            if let Some(p) = reference.provenance(obs) {
                assert_eq!(p.total(), n, "{shape}: breakdown must sum to the count");
            }
        }
        assert_eq!(reference.provenance_total().total(), reference.weak());
        for workers in &WORKER_COUNTS[1..] {
            let h = run(*workers);
            assert_eq!(
                h.channels(),
                reference.channels(),
                "{shape} on {}: channel counters diverged at {workers} workers",
                chip.short
            );
            assert_eq!(
                h.provenance_total(),
                reference.provenance_total(),
                "{shape} on {}: provenance diverged at {workers} workers",
                chip.short
            );
            assert_eq!(h, reference);
        }
    }
    // The channel split matches each case's physics: the Kepler relaxes
    // through the store window only; the Tesla's CoRR weakness is the
    // structural stale-L1 channel.
    let mp = {
        let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
        CampaignBuilder::new(&titan)
            .environment(&Environment::sys_str_plus(&titan), pad, 40)
            .count(96)
            .base_seed(0x0B5)
            .build()
            .run_litmus(&inst)
    };
    assert!(mp.channels().window_global > 0);
    assert_eq!(mp.channels().l1_stale, 0);
    assert_eq!(mp.provenance_total().l1_stale, 0);
    let corr = {
        let inst = Shape::CoRR.instance(LitmusLayout::standard(64, pad.required_words()));
        CampaignBuilder::new(&c2075)
            .environment(&Environment::l1_str_plus(), pad, 40)
            .count(96)
            .base_seed(0x0B5)
            .build()
            .run_litmus(&inst)
    };
    assert!(corr.channels().l1_stale > 0);
    assert!(corr.provenance_total().l1_stale > 0);
}

/// Different seeds must not produce identical streams (sanity check that
/// the invariance above isn't vacuous).
#[test]
fn different_seeds_differ() {
    let chip = Chip::by_short("Titan").unwrap();
    let inst = Shape::Mp.instance(LitmusLayout::standard(64, 4096));
    let a = native_histogram(&chip, &inst, 2, 1);
    let b = native_histogram(&chip, &inst, 2, 2);
    // Totals always match (same count); the outcome distribution should
    // not be bit-identical for independent seeds.
    assert_eq!(a.total(), b.total());
    assert_ne!(a, b, "seeds 1 and 2 produced identical 48-run histograms");
}

/// The raw primitives: map preserves index order, fold partitions the
/// index space, for every worker count.
#[test]
fn primitives_are_worker_count_invariant() {
    let expected: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    for workers in WORKER_COUNTS {
        let got = parallel_map(workers, 500, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(got, expected);
        let folded: u64 = parallel_fold(
            workers,
            500,
            || 0u64,
            |acc, i| *acc = acc.wrapping_add(expected[i]),
        )
        .into_iter()
        .fold(0u64, u64::wrapping_add);
        assert_eq!(
            folded,
            expected.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        );
    }
}
