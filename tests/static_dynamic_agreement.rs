//! Cross-validation of the static scoped-communication analyzer against
//! the dynamic litmus suite (the soundness contract of `wmm-analysis`):
//!
//! * every dynamically weak suite row carries a static warning;
//! * every fenced twin the dynamic suite never observes weak is
//!   statically certified quiet;
//! * the analyzer is exact and deterministic: identical reports on
//!   repeated runs and for every campaign worker count.

use gpu_wmm::analysis::analyze_litmus;
use gpu_wmm::core::suite::{run_suite, SuiteConfig, SuiteStrategy};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::LitmusLayout;
use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::ir::FenceLevel;

/// The catalogue shapes with no unfenced delay pair *under the
/// chip-independent analysis*: the coherence (same-location) shapes and
/// every fenced twin. On incoherent-L1 chips the chip-aware analysis
/// revokes CoRR's exemption (its read-read pair can observe a stale L1
/// line) — the dedicated test below covers that.
const QUIET: [Shape; 12] = [
    Shape::CoRR,
    Shape::CoRRFence,
    Shape::CoWW,
    Shape::CoRRShared,
    Shape::CoAdd,
    Shape::MpFences,
    Shape::SbFences,
    Shape::MpSharedFence,
    Shape::SbSharedFence,
    Shape::WrcFences,
    Shape::Isa2Fences,
    Shape::IriwFences,
];

fn instance(shape: Shape) -> gpu_wmm::litmus::LitmusInstance {
    shape.instance(LitmusLayout::standard(64, 2048))
}

#[test]
fn every_catalogue_shape_has_the_expected_static_verdict() {
    for shape in Shape::ALL {
        let a = analyze_litmus(&instance(shape));
        if QUIET.contains(&shape) {
            assert!(a.quiet(), "{shape} should be quiet: {:?}", a.warnings);
        } else {
            assert!(!a.quiet(), "{shape} communicates weakly and must warn");
        }
        // Warnings anchor on real fence sites.
        for w in &a.warnings {
            assert!(a.sites.iter().any(|s| s.index == w.from), "{shape}: {w}");
            assert!(a.sites.iter().any(|s| s.index == w.to), "{shape}: {w}");
        }
        // Fenced twins are quiet *because* their pairs are ordered, not
        // because the analyzer failed to find them.
        if Shape::SCOPED_FENCED.contains(&shape)
            || Shape::WIDE_FENCED.contains(&shape)
            || matches!(shape, Shape::MpFences | Shape::SbFences)
        {
            assert!(a.ordered_edges >= 2, "{shape}: {}", a.ordered_edges);
        }
    }
}

#[test]
fn scoped_shapes_warn_at_block_level_and_mixed_at_device() {
    for shape in [Shape::MpShared, Shape::SbShared] {
        let a = analyze_litmus(&instance(shape));
        assert_eq!(
            a.max_warning_level(),
            Some(FenceLevel::Block),
            "{shape} is pure intra-block shared-space communication"
        );
    }
    for shape in Shape::MIXED {
        let a = analyze_litmus(&instance(shape));
        assert_eq!(
            a.max_warning_level(),
            Some(FenceLevel::Device),
            "{shape} communicates through global memory too"
        );
    }
}

#[test]
fn dynamic_weakness_implies_a_static_warning() {
    let chips = [Chip::by_short("Titan").unwrap()];
    let strategies = [
        SuiteStrategy::sys_str_plus(40),
        SuiteStrategy::shared_sys_str_plus(40),
    ];
    let cfg = SuiteConfig {
        execs: 48,
        ..Default::default()
    };
    let cells = run_suite(&Shape::ALL, &chips, &strategies, &cfg);
    let mut weak_rows = 0;
    for c in &cells {
        if c.hist.weak() > 0 {
            weak_rows += 1;
            assert!(
                !c.static_verdict.quiet(),
                "{} went weak under {} ({}) without a static warning",
                c.shape,
                c.strategy,
                c.hist
            );
        }
        if QUIET.contains(&c.shape) {
            assert!(c.static_verdict.quiet(), "{}", c.shape);
            assert_eq!(
                c.hist.weak(),
                0,
                "{} is certified quiet but went weak under {}",
                c.shape,
                c.strategy
            );
        }
    }
    // The cross-check is vacuous unless the campaign actually observed
    // weak behaviors.
    assert!(weak_rows >= 5, "only {weak_rows} weak rows observed");
}

#[test]
fn incoherent_l1_weakness_implies_a_chip_aware_static_warning() {
    // The suite's static column is computed per chip: on the
    // incoherent-L1 C2075 the `l1-str+` column makes CoRR go weak
    // dynamically and the chip-aware analysis must warn on exactly
    // those rows, while CoRR+fence is certified quiet and never goes
    // weak, and the coherent-L1 K20 keeps both quiet and at zero.
    let chips = [
        Chip::by_short("C2075").unwrap(),
        Chip::by_short("K20").unwrap(),
    ];
    let cfg = SuiteConfig {
        execs: 24,
        ..Default::default()
    };
    let cells = run_suite(
        &[Shape::CoRR, Shape::CoRRFence],
        &chips,
        &[SuiteStrategy::l1_str_plus(40)],
        &cfg,
    );
    let mut corr_weak_rows = 0;
    for c in &cells {
        if c.hist.weak() > 0 {
            assert!(
                !c.static_verdict.quiet(),
                "{} on {} went weak without a chip-aware warning",
                c.shape,
                c.chip
            );
        }
        match (c.shape, c.chip.as_str()) {
            (Shape::CoRR, "C2075") => {
                assert!(!c.static_verdict.quiet(), "CoRR must warn on the C2075");
                if c.hist.weak() > 0 {
                    corr_weak_rows += 1;
                }
            }
            (Shape::CoRR, _) => {
                assert!(c.static_verdict.quiet(), "CoRR stays exempt on {}", c.chip);
                assert_eq!(c.hist.weak(), 0, "CoRR went weak on coherent {}", c.chip);
            }
            (Shape::CoRRFence, _) => {
                assert!(c.static_verdict.quiet(), "CoRR+fence quiet on {}", c.chip);
                assert_eq!(c.hist.weak(), 0, "CoRR+fence went weak on {}", c.chip);
            }
            _ => unreachable!(),
        }
    }
    assert!(
        corr_weak_rows > 0,
        "the cross-check is vacuous: CoRR never went weak on the C2075"
    );
}

#[test]
fn static_reports_are_deterministic_across_runs_and_workers() {
    // The analyzer itself is a pure function of the instance.
    for shape in [Shape::Mp, Shape::MpShared, Shape::Isa2Scoped] {
        let a = format!("{:?}", analyze_litmus(&instance(shape)));
        let b = format!("{:?}", analyze_litmus(&instance(shape)));
        assert_eq!(a, b, "{shape}");
    }
    // And the suite's static column is identical for every worker
    // count, alongside the histograms.
    let chips = [Chip::by_short("Titan").unwrap()];
    let shapes = [Shape::Mp, Shape::MpShared, Shape::MpFences];
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|w| {
            let cfg = SuiteConfig {
                execs: 16,
                workers: w,
                ..Default::default()
            };
            run_suite(&shapes, &chips, &[SuiteStrategy::sys_str_plus(40)], &cfg)
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].len(), other.len());
        for (a, b) in runs[0].iter().zip(other.iter()) {
            assert_eq!(a.hist, b.hist, "{}", a.shape);
            assert_eq!(a.static_verdict, b.static_verdict, "{}", a.shape);
        }
    }
}
