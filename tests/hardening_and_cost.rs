//! Integration: Sec. 5 (empirical fence insertion) and Sec. 6 (fence
//! cost) end to end.

use gpu_wmm::apps::app_by_name;
use gpu_wmm::core::env::{AppHarness, Environment, RunVerdict};
use gpu_wmm::core::harden::{empirical_fence_insertion, HardenConfig};
use gpu_wmm::sim::chip::Chip;

fn harden_cfg() -> HardenConfig {
    HardenConfig {
        initial_iters: 20,
        stable_runs: 80,
        max_rounds: 2,
        base_seed: 11,
        parallelism: 0,
    }
}

#[test]
fn insertion_reduces_cbe_dot_to_one_fence() {
    // Paper Tab. 6: cbe-dot reduces from 4 initial fences to 1, the
    // fence before the unlock ("suggesting an error in the unlock
    // function", Sec. 1).
    let chip = Chip::by_short("Titan").unwrap();
    let app = app_by_name("cbe-dot").unwrap();
    let r = empirical_fence_insertion(&chip, app.as_ref(), &harden_cfg());
    assert!(
        r.fences.len() <= 2,
        "expected a near-minimal set, got {:?}",
        r.fences
    );
    assert!(!r.fences.is_empty(), "cbe-dot empirically needs a fence");
    // The surviving set suppresses errors under the aggressive
    // environment.
    let spec = app.spec().with_fences(&r.fences);
    let h = AppHarness::with_spec(&chip, app.as_ref(), spec);
    let check = h.campaign(&Environment::sys_str_plus(&chip), 80, 3, 0);
    assert_eq!(check.errors, 0, "{check:?}");
}

#[test]
fn ls_bh_nf_reduces_to_a_superset_of_the_shipped_fences() {
    // Paper Sec. 5.2: "The reduced fences for ls-bh-nf are a superset of
    // the fences in ls-bh (as ls-bh showed errors with provided fences)."
    let chip = Chip::by_short("Titan").unwrap();
    let app = app_by_name("ls-bh-nf").unwrap();
    let r = empirical_fence_insertion(&chip, app.as_ref(), &harden_cfg());
    let shipped = app_by_name("ls-bh").unwrap().spec().fence_count();
    assert!(
        r.fences.len() >= shipped,
        "ls-bh-nf needs at least the {} shipped fences, found {:?}",
        shipped,
        r.fences
    );
}

#[test]
fn fence_cost_ordering_no_le_emp_le_cons() {
    // Sec. 6: fences never decrease cost; cons fences cost more than emp
    // fences. Use cbe-dot on the Fermi C2075 (the paper's extreme chip).
    let chip = Chip::by_short("C2075").unwrap();
    let app = app_by_name("cbe-dot").unwrap();
    let base = app.spec().clone();
    let sites = base.fence_sites();
    let emp = base.with_fences(&sites[..1]);
    let cons = base.with_all_fences();

    let mean_runtime = |spec| {
        let h = AppHarness::with_spec(&chip, app.as_ref(), spec);
        let env = Environment::native();
        let mut total = 0.0;
        let mut n = 0;
        for seed in 0..25 {
            let out = h.run_once(&env, seed);
            if out.verdict == RunVerdict::Pass {
                total += out.runtime_ms;
                n += 1;
            }
        }
        total / f64::from(n.max(1))
    };

    let t_no = mean_runtime(base);
    let t_emp = mean_runtime(emp);
    let t_cons = mean_runtime(cons);
    assert!(
        t_no <= t_emp * 1.05,
        "no fences must not cost more: {t_no:.4} vs {t_emp:.4}"
    );
    assert!(
        t_cons > t_emp,
        "cons fences must cost more than emp: {t_cons:.4} vs {t_emp:.4}"
    );
    assert!(
        t_cons > t_no * 1.5,
        "cons fences are expensive on Fermi: {t_cons:.4} vs {t_no:.4}"
    );
}

#[test]
fn energy_reported_only_on_power_query_chips() {
    // Sec. 6: only K5200, Titan, K20 and C2075 support power queries.
    let app = app_by_name("cbe-dot").unwrap();
    for chip in Chip::all() {
        let h = AppHarness::new(&chip, app.as_ref());
        let out = h.run_once(&Environment::native(), 1);
        assert_eq!(
            out.energy_j.is_some(),
            chip.supports_power,
            "{}",
            chip.short
        );
    }
}
