//! Pin the environment naming scheme against Tab. 5 of the paper.
//!
//! These strings are load-bearing: `repro --json` serialises them, the
//! Tab. 5 table prints them as column headers in the paper's order, and
//! downstream consumers match on them. Any rename or reorder must be a
//! deliberate, visible change.

use gpu_wmm::core::env::Environment;
use gpu_wmm::core::stress::StressStrategy;
use gpu_wmm::core::suite::SuiteStrategy;
use gpu_wmm::sim::chip::Chip;

/// Tab. 5's column order: `{no,sys,rand,cache}-str` × `{-,+}`.
const TAB5_COLUMNS: [&str; 8] = [
    "no-str-",
    "no-str+",
    "sys-str-",
    "sys-str+",
    "rand-str-",
    "rand-str+",
    "cache-str-",
    "cache-str+",
];

#[test]
fn all_eight_matches_tab5_order_on_every_chip() {
    for chip in Chip::all() {
        let names: Vec<String> = Environment::all_eight(&chip)
            .iter()
            .map(Environment::name)
            .collect();
        assert_eq!(names, TAB5_COLUMNS, "{}", chip.short);
    }
}

#[test]
fn l1_str_plus_is_named_but_stays_out_of_tab5() {
    // The structural L1 environment post-dates the paper: it gets the
    // same `<strategy><randomized>` naming scheme, but Tab. 5 keeps
    // exactly its eight published columns — `l1-str+` appears only in
    // the extended suite, never in `all_eight`.
    assert_eq!(Environment::l1_str_plus().name(), "l1-str+");
    assert_eq!(StressStrategy::L1.short(), "l1-str");
    assert_eq!(SuiteStrategy::l1_str_plus(40).name, "l1-str+");
    for chip in Chip::all() {
        let names: Vec<String> = Environment::all_eight(&chip)
            .iter()
            .map(Environment::name)
            .collect();
        assert_eq!(names.len(), 8, "{}", chip.short);
        assert!(!names.contains(&"l1-str+".to_string()), "{}", chip.short);
    }
}

#[test]
fn strategy_short_names_match_the_paper() {
    let chip = Chip::by_short("K20").unwrap();
    assert_eq!(StressStrategy::None.short(), "no-str");
    assert_eq!(StressStrategy::Random.short(), "rand-str");
    assert_eq!(StressStrategy::CacheSized.short(), "cache-str");
    assert_eq!(Environment::sys_str_plus(&chip).stress.short(), "sys-str");
}

#[test]
fn environment_names_compose_short_and_suffix() {
    let chip = Chip::by_short("Titan").unwrap();
    assert_eq!(Environment::native().name(), "no-str-");
    assert_eq!(Environment::sys_str_plus(&chip).name(), "sys-str+");
    // Display goes through the same name.
    assert_eq!(Environment::sys_str_plus(&chip).to_string(), "sys-str+");
}

#[test]
fn suite_columns_reuse_the_environment_naming() {
    // The suite's JSON `strategy` field must keep matching Tab. 5's
    // vocabulary so cross-experiment tooling can join on it.
    assert_eq!(SuiteStrategy::native().name, "no-str-");
    assert_eq!(SuiteStrategy::sys_str_plus(40).name, "sys-str+");
    assert_eq!(SuiteStrategy::rand_str_plus(40).name, "rand-str+");
    let chip = Chip::by_short("980").unwrap();
    for s in [
        SuiteStrategy::sys_str_plus(40),
        SuiteStrategy::rand_str_plus(40),
    ] {
        let prefix = s.strategy(&chip).short();
        assert!(s.name.starts_with(prefix), "{} vs {prefix}", s.name);
    }
}
