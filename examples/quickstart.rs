//! Quickstart: expose a weak-memory bug in the paper's running example.
//!
//! Builds the `cbe-dot` dot product (Fig. 1 of the paper), runs it
//! natively on a simulated Tesla K20 — where it almost never fails —
//! and then under the tuned `sys-str+` testing environment, where the
//! missing fence before `unlock()` shows up as wrong results.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_wmm::apps::CbeDot;
use gpu_wmm::core::app::Application;
use gpu_wmm::core::env::{AppHarness, Environment};
use gpu_wmm::sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("K20").expect("the paper's Tesla K20");
    let app = CbeDot::new();
    let harness = AppHarness::new(&chip, &app);

    println!(
        "cbe-dot on {} — 300 executions per environment\n",
        chip.name
    );

    let native = harness.campaign(&Environment::native(), 300, 1, 0);
    println!(
        "native (no-str-):  {:>3} / {} erroneous runs",
        native.errors, native.runs
    );

    let env = Environment::sys_str_plus(&chip);
    let stressed = harness.campaign(&env, 300, 2, 0);
    println!(
        "under {}:  {:>3} / {} erroneous runs ({}effective by the paper's >5% rule)",
        env.name(),
        stressed.errors,
        stressed.runs,
        if stressed.effective() { "" } else { "not " }
    );

    // Hardening: a fence after the critical-section store suppresses the
    // bug; verify with the conservative strategy (fence after every
    // global access).
    let fenced = app.spec().with_all_fences();
    let hardened = AppHarness::with_spec(&chip, &app, fenced);
    let check = hardened.campaign(&env, 300, 3, 0);
    println!(
        "with cons fences:  {:>3} / {} erroneous runs",
        check.errors, check.runs
    );
}
