//! Litmus testing and per-chip tuning, end to end.
//!
//! 1. Runs the MP litmus test natively and under pinned systematic
//!    stress, printing outcome histograms (weak behaviours appear only
//!    under stress, and only when the stressed location shares a memory
//!    channel with a communication location).
//! 2. Runs the patch-finding stage of the tuning pipeline on the GTX
//!    Titan and reports the discovered critical patch size.
//!
//! Run with: `cargo run --release --example litmus_tuning`

use gpu_wmm::core::campaign::CampaignBuilder;
use gpu_wmm::core::stress::{Scratchpad, StressArtifacts};
use gpu_wmm::core::tuning::{patch, TuningConfig};
use gpu_wmm::gen::Shape;
use gpu_wmm::litmus::LitmusLayout;
use gpu_wmm::sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("Titan").expect("GTX Titan");
    let pad = Scratchpad::new(2048, 2048);
    let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));

    println!("MP litmus test, d = 64, on {}\n", chip.name);

    // Native: interleavings only.
    let native = CampaignBuilder::new(&chip)
        .count(500)
        .base_seed(1)
        .build()
        .run_litmus(&inst);
    println!("native:\n{}", inst.display_histogram(&native));

    // Stress the scratchpad location whose channel matches x: the
    // stressing kernel is compiled once, up front, for all 500 runs.
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    let stressed = CampaignBuilder::new(&chip)
        .stress(artifacts)
        .count(500)
        .base_seed(2)
        .build()
        .run_litmus(&inst);
    println!(
        "stressed (σ = {} @ location 0):\n{}",
        chip.preferred_seq,
        inst.display_histogram(&stressed)
    );

    // Patch finding (one stage of the Tab. 2 tuning pipeline).
    let mut cfg = TuningConfig::scaled();
    cfg.execs = 40;
    cfg.patch_distances = vec![0, 32, 64];
    println!("patch finding on {} ...", chip.name);
    let report = patch::find_patch_size(&chip, &cfg);
    for (test, size) in &report.per_test {
        println!("  {test}: patch size {:?}", size);
    }
    println!(
        "  critical patch size: {:?} (paper: {})",
        report.critical, chip.patch_words
    );
}
