//! Empirical fence insertion (Alg. 1) on a case study.
//!
//! Runs the paper's hardening procedure on `ct-octree`: start from a
//! fence after every global access, reduce to a minimal empirically
//! stable set, and report where the surviving fences sit — the root
//! cause of the weak-memory bug.
//!
//! Run with: `cargo run --release --example harden_app`

use gpu_wmm::apps::CtOctree;
use gpu_wmm::core::app::Application;
use gpu_wmm::core::env::{AppHarness, Environment};
use gpu_wmm::core::harden::{empirical_fence_insertion, HardenConfig};
use gpu_wmm::sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("Titan").expect("GTX Titan");
    let app = CtOctree::new();
    println!(
        "empirical fence insertion: {} on {} (testing environment sys-str+)\n",
        app.name(),
        chip.name
    );
    let cfg = HardenConfig {
        initial_iters: 24,
        stable_runs: 150,
        max_rounds: 3,
        base_seed: 9,
        parallelism: 0,
    };
    let result = empirical_fence_insertion(&chip, &app, &cfg);
    println!(
        "initial fences: {} (one per global access)",
        result.initial_fences
    );
    println!(
        "reduced fences: {} at sites {:?} ({} executions, {:.1}s, converged: {})",
        result.fences.len(),
        result.fences,
        result.executions,
        result.elapsed.as_secs_f64(),
        result.converged
    );
    for &(phase, idx) in &result.fences {
        let program = &app.spec().phases[phase].program;
        println!(
            "  phase {phase}, after instruction {idx}: {}",
            program
                .to_string()
                .lines()
                .nth(idx + 1)
                .unwrap_or("?")
                .trim()
        );
    }

    // Verify the hardened application survives the aggressive
    // environment.
    let hardened = app.spec().with_fences(&result.fences);
    let h = AppHarness::with_spec(&chip, &app, hardened);
    let check = h.campaign(&Environment::sys_str_plus(&chip), 200, 77, 0);
    println!(
        "\nhardened app under sys-str+: {} / {} erroneous runs",
        check.errors, check.runs
    );
}
