//! Testing your own kernel: write a custom application against the
//! public API and put it through the full pipeline — black-box testing,
//! then hardening.
//!
//! The kernel here is a deliberately buggy inter-block ticket handoff:
//! block 0 writes a value then raises a flag; block 1 spins on the flag
//! and copies the value out. Classic message passing, no fence.
//!
//! Run with: `cargo run --release --example custom_app`

use gpu_wmm::core::app::{AppSpec, Application, Phase};
use gpu_wmm::core::env::{AppHarness, Environment};
use gpu_wmm::core::harden::{empirical_fence_insertion, HardenConfig};
use gpu_wmm::sim::chip::Chip;
use gpu_wmm::sim::ir::builder::KernelBuilder;
use gpu_wmm::sim::Word;

const DATA: u32 = 0; // payload
const FLAG: u32 = 128; // a different memory line on every chip
const OUT: u32 = 256;
const PAYLOAD: Word = 0xfeed;

struct Handoff {
    spec: AppSpec,
}

fn kernel() -> gpu_wmm::sim::Program {
    let mut b = KernelBuilder::new("handoff");
    let tid = b.tid();
    let zero = b.const_(0);
    let lane0 = b.eq(tid, zero);
    b.if_(lane0, |b| {
        let bid = b.bid();
        let zero = b.const_(0);
        let is_writer = b.eq(bid, zero);
        let data = b.const_(DATA);
        let flag = b.const_(FLAG);
        let one = b.const_(1);
        b.if_else(
            is_writer,
            |b| {
                let v = b.const_(PAYLOAD);
                b.store_global(data, v); // payload ...
                b.store_global(flag, one); // ... then flag: MP, no fence
            },
            |b| {
                b.while_(
                    |b| {
                        let f = b.load_global(flag);
                        let zero = b.const_(0);
                        b.eq(f, zero)
                    },
                    |_| {},
                );
                let v = b.load_global(data);
                let out = b.const_(OUT);
                b.store_global(out, v);
            },
        );
    });
    b.finish().expect("valid kernel")
}

impl Application for Handoff {
    fn name(&self) -> &str {
        "handoff"
    }
    fn spec(&self) -> &AppSpec {
        &self.spec
    }
    fn check(&self, memory: &[Word]) -> Result<(), String> {
        if memory[OUT as usize] == PAYLOAD {
            Ok(())
        } else {
            Err(format!(
                "reader saw {:#x}, expected {PAYLOAD:#x}",
                memory[OUT as usize]
            ))
        }
    }
}

fn main() {
    let app = Handoff {
        spec: AppSpec {
            name: "handoff".into(),
            phases: vec![Phase {
                program: kernel(),
                blocks: 2,
                threads_per_block: 32,
                shared_words: 0,
            }],
            global_words: 320,
            init: Vec::new(),
            max_turns_per_phase: 400_000,
        },
    };

    // Test on every chip in the study.
    println!("custom MP handoff kernel under sys-str+ (200 runs per chip):\n");
    for chip in Chip::all() {
        let h = AppHarness::new(&chip, &app);
        let r = h.campaign(&Environment::sys_str_plus(&chip), 200, 5, 0);
        println!(
            "  {:6} {:>3} / {} erroneous{}",
            chip.short,
            r.errors,
            r.runs,
            if r.effective() { "  (effective)" } else { "" }
        );
    }

    // Harden on one chip and show the suggested fence.
    let chip = Chip::by_short("K20").expect("K20");
    let result = empirical_fence_insertion(
        &chip,
        &app,
        &HardenConfig {
            initial_iters: 24,
            stable_runs: 150,
            max_rounds: 3,
            base_seed: 3,
            parallelism: 0,
        },
    );
    println!(
        "\nempirical fence insertion on {}: {} of {} fences survive, at {:?}",
        chip.short,
        result.fences.len(),
        result.initial_fences,
        result.fences
    );
    println!("(the expected site: between the payload store and the flag store)");
}
