//! # gpu-wmm — exposing errors related to weak memory in GPU applications
//!
//! An umbrella crate re-exporting the full reproduction of Sorensen &
//! Donaldson, *"Exposing Errors Related to Weak Memory in GPU
//! Applications"* (PLDI 2016):
//!
//! * [`sim`] — the simulated GPU substrate (kernel IR, SIMT execution,
//!   per-chip weak memory model, cost model);
//! * [`lang`] — a small C-like kernel language lowering to the IR;
//! * [`litmus`] — the generic litmus-instance runtime and the
//!   deterministic parallel work-distribution layer;
//! * [`gen`] — the litmus-test generator: the communication-cycle shape
//!   catalogue (MP, LB, SB, …, IRIW, CoRR, CoWW, plus fenced variants)
//!   and the SC-enumeration oracle that derives each test's forbidden
//!   outcomes;
//! * [`analysis`] — the static scoped-communication analyzer: per-thread
//!   abstract interpretation, Shasha–Snir delay-set warnings with
//!   minimal fence levels, and per-site fence-scope verdicts;
//! * [`core`] — the paper's contribution: the unified campaign facade
//!   (`Workload` → `CampaignBuilder` → `Campaign`), tuned memory
//!   stressing with per-environment stress artifacts, thread
//!   randomisation, the per-chip tuning pipeline, testing environments,
//!   the generated-suite runner, and empirical fence insertion;
//! * [`apps`] — the ten application case studies with functional
//!   post-conditions;
//! * [`server`] — campaign-as-a-service: a batched job-queue engine
//!   draining deterministic campaign jobs through a fixed worker pool
//!   with structurally-cached stress artifacts, plus the seeded
//!   soak/throughput harness behind `repro soak`;
//! * [`obs`] — the deterministic observability layer: per-channel
//!   weakness provenance counters threaded from the executor into every
//!   histogram, wall-clock span histograms for the server, and the
//!   bounded event log behind `repro trace`.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results. The
//! `examples/` directory exercises the public API end to end.

pub use wmm_analysis as analysis;
pub use wmm_apps as apps;
pub use wmm_core as core;
pub use wmm_gen as gen;
pub use wmm_lang as lang;
pub use wmm_litmus as litmus;
pub use wmm_obs as obs;
pub use wmm_server as server;
pub use wmm_sim as sim;
