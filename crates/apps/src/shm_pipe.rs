//! `shm-pipe` — an intra-block shared-memory pipeline (message
//! passing through shared memory).
//!
//! Not one of the paper's ten case studies: this is the demonstration
//! workload for the *scoped* fence-insertion search. Lane 0 of warp 0
//! produces a value in shared memory and raises a shared flag; lane 0
//! of warp 1 spins^W reads the flag and consumes the value into global
//! results. The two leaders first rendezvous through a global atomic
//! counter so their accesses genuinely race, and every other lane
//! hammers a disjoint shared scratchpad region — the intra-block
//! traffic that pushes the chip's shared-space contention over its
//! pressure floor, exactly the regime where Titan-class chips reorder
//! shared stores.
//!
//! All communication is provably intra-block, so the static analyzer
//! marks the two communicating sites `DemotableToBlock` and the scoped
//! search converges to two cheap `fence_block()`s — strictly below the
//! device-fence baseline Alg. 1 would install.
//!
//! Post-condition: the consumer must never observe the flag set but
//! the payload missing (`res = (1, 0)`).

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::Word;

const TPB: u32 = 64;
/// Payload cell in shared memory.
const X: u32 = 0;
/// Flag cell in shared memory.
const Y: u32 = 64;
/// First word of the hammer scratchpad region.
const SCRATCH: u32 = 128;
/// Global result cells and the rendezvous counter.
const RES0: u32 = 0;
const RES1: u32 = 1;
const SYNC: u32 = 2;

fn kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("shm-pipe");
    let lane = b.lane();
    let zero = b.const_(0);
    let is_lane0 = b.eq(lane, zero);
    b.if_else(
        is_lane0,
        |b| {
            // Rendezvous: both leaders bump the counter and wait until
            // it reaches two, so producer and consumer race for real.
            let sync = b.const_(SYNC);
            let one = b.const_(1);
            let two = b.const_(2);
            b.atomic_add_global(sync, one);
            b.while_(
                |b| {
                    let seen = b.load_global(sync);
                    b.ne(seen, two)
                },
                |_| {},
            );
            let tid = b.tid();
            let warp = b.const_(32);
            let me = b.div_u(tid, warp);
            let zero = b.const_(0);
            let is_producer = b.eq(me, zero);
            let x = b.const_(X);
            let y = b.const_(Y);
            b.if_else(
                is_producer,
                |b| {
                    let one = b.const_(1);
                    b.store_shared(x, one);
                    b.store_shared(y, one);
                },
                |b| {
                    let r0 = b.load_shared(y);
                    let r1 = b.load_shared(x);
                    let res0 = b.const_(RES0);
                    let res1 = b.const_(RES1);
                    b.store_global(res0, r0);
                    b.store_global(res1, r1);
                },
            );
        },
        |b| {
            // Hammer lanes: repeated load/store traffic on a private
            // scratchpad word keeps the block's shared-space pressure
            // above the contention floor while the leaders communicate.
            let tid = b.tid();
            let base = b.const_(SCRATCH);
            let m = b.const_(64);
            let off = b.rem_u(tid, m);
            let addr = b.add(base, off);
            let i = b.reg();
            b.assign_const(i, 0);
            let n = b.const_(60);
            let one = b.const_(1);
            b.while_(
                |b| b.lt_u(i, n),
                |b| {
                    let v = b.load_shared(addr);
                    b.store_shared(addr, v);
                    b.bin_into(i, wmm_sim::ir::BinOp::Add, i, one);
                },
            );
        },
    );
    b.finish().unwrap()
}

/// The `shm-pipe` case study. See the module docs.
pub struct ShmPipe {
    spec: AppSpec,
}

impl ShmPipe {
    /// Build the (fence-free) pipeline.
    pub fn new() -> ShmPipe {
        ShmPipe {
            spec: AppSpec {
                name: "shm-pipe".into(),
                phases: vec![Phase {
                    program: kernel(),
                    blocks: 1,
                    threads_per_block: TPB,
                    shared_words: 192,
                }],
                global_words: 64,
                init: vec![],
                max_turns_per_phase: 2_000_000,
            },
        }
    }
}

impl Default for ShmPipe {
    fn default() -> Self {
        ShmPipe::new()
    }
}

impl Application for ShmPipe {
    fn name(&self) -> &str {
        "shm-pipe"
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        if memory[SYNC as usize] != 2 {
            return Err(format!(
                "rendezvous incomplete: sync = {}",
                memory[SYNC as usize]
            ));
        }
        let (flag, payload) = (memory[RES0 as usize], memory[RES1 as usize]);
        if flag == 1 && payload == 0 {
            Err("consumer saw the flag without the payload (1, 0)".into())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_fence_free_with_scoped_sites() {
        let app = ShmPipe::new();
        assert_eq!(app.spec().fence_count(), 0);
        // Producer stores, consumer loads+stores, hammer load+store,
        // and the rendezvous atomics are all fence sites now.
        let sites = app.spec().fence_sites();
        assert!(sites.len() >= 8, "{sites:?}");
    }

    #[test]
    fn sequential_semantics_pass_the_postcondition() {
        use wmm_core::env::{AppHarness, Environment, RunVerdict};
        let chip = wmm_sim::Chip::by_short("Titan")
            .unwrap()
            .sequentially_consistent();
        let app = ShmPipe::new();
        let h = AppHarness::new(&chip, &app);
        for seed in 0..20 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(out.verdict, RunVerdict::Pass, "seed {seed}: {out:?}");
        }
    }
}
