//! `ls-bh`: the Barnes–Hut n-body simulation from the Lonestar GPU
//! benchmarks, reduced to its three communicating kernels.
//!
//! Three phases over one memory image:
//!
//! 1. **Tree build** — threads insert bodies into a two-level tree.
//!    The first inserter into a quadrant claims the root cell with a
//!    CAS lock, allocates an internal node, initialises its list base,
//!    and publishes the cell (fence site *a*). Bodies are then appended
//!    to the node's sub-lists under per-list spinlocks (fence site *b*
//!    before the unlock).
//! 2. **Summarisation** — leaf threads publish per-list masses with a
//!    ready flag (fence site *c*); quadrant threads spin on the flags
//!    and combine.
//! 3. **Force/potential** — blocks reduce per-body potentials and
//!    accumulate into a global sum under a spinlock. The shipped code
//!    has **no fence before this unlock** (site *d*): the fences included
//!    in `ls-bh` are insufficient, exactly as the paper discovered — the
//!    original application shows errors even with its fences, and
//!    empirical insertion on the `-nf` variant returns a superset of the
//!    shipped fences.
//!
//! Post-condition: tree structure, masses, and the total potential all
//! match a host reference.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::BinOp;
use wmm_sim::word::Word;

/// Number of bodies.
pub const NB: u32 = 64;
/// Base of the body array.
pub const BODY: u32 = 0;
/// Root cell per quadrant: 0 = empty, 1 = locked, `n + 2` = node `n`.
pub const ROOT_CHILD: u32 = 128;
/// Node allocation counter.
pub const NODE_CTR: u32 = 136;
/// Per-node list base pointers (the field protected by fence site *a*).
pub const NODE_BASE: u32 = 256;
/// Per-list spinlocks (4 nodes × 4 sub-lists).
pub const LLOCKS: u32 = 384;
/// Per-list body counts.
pub const LCOUNT: u32 = 512;
/// Per-node list storage (4 sub-lists × `LIST_CAP` each).
pub const LITEMS: u32 = 640;
/// Capacity of one sub-list.
pub const LIST_CAP: u32 = 16;
/// Per-leaf masses (16).
pub const LMASS: u32 = 896;
/// Per-leaf ready flags (16).
pub const LREADY: u32 = 1024;
/// Per-quadrant masses (4).
pub const QMASS: u32 = 1152;
/// Total mass.
pub const ROOT_MASS: u32 = 1160;
/// Potential-accumulation spinlock.
pub const PLOCK: u32 = 1280;
/// Global potential sum.
pub const POT: u32 = 1408;
/// Total global words.
pub const WORDS: u32 = 1536;

/// Body `i`'s value: low 4 bits select (quadrant, sub-quadrant) evenly.
fn body(i: u32) -> Word {
    (i % 16) + 16 * (i / 16 + 1)
}

/// The `ls-bh` case study (or its `-nf` variant). See the module docs.
#[derive(Debug, Clone)]
pub struct LsBh {
    spec: AppSpec,
    bodies: Vec<Word>,
    total_mass: Word,
    expected_pot: Word,
}

impl LsBh {
    /// Build the application; `fenced` selects the shipped (partially
    /// fenced) version or the `-nf` variant.
    pub fn new(fenced: bool) -> Self {
        let bodies: Vec<Word> = (0..NB).map(body).collect();
        let total_mass: Word = bodies.iter().sum();
        let expected_pot: Word = bodies
            .iter()
            .map(|&v| v.wrapping_mul(total_mass - v))
            .fold(0u32, |a, x| a.wrapping_add(x));
        let init: Vec<(u32, Word)> = bodies
            .iter()
            .enumerate()
            .map(|(i, &v)| (BODY + i as u32, v))
            .collect();
        let spec = AppSpec {
            name: if fenced { "ls-bh" } else { "ls-bh-nf" }.into(),
            phases: vec![
                Phase {
                    program: build_kernel(fenced),
                    blocks: 2,
                    threads_per_block: 32,
                    shared_words: 0,
                },
                Phase {
                    program: summarize_kernel(fenced),
                    blocks: 1,
                    threads_per_block: 32,
                    shared_words: 0,
                },
                Phase {
                    program: force_kernel(),
                    blocks: 4,
                    threads_per_block: 32,
                    shared_words: 32,
                },
            ],
            global_words: WORDS,
            init,
            max_turns_per_phase: 1_200_000,
        };
        LsBh {
            spec,
            bodies,
            total_mass,
            expected_pot,
        }
    }

    /// The expected total potential.
    pub fn expected_potential(&self) -> Word {
        self.expected_pot
    }
}

impl Application for LsBh {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        let word = |a: u32| -> Result<Word, String> {
            memory
                .get(a as usize)
                .copied()
                .ok_or_else(|| format!("address {a} out of range"))
        };
        // Expected per-leaf multisets: leaf index = q1*4 + q2.
        let mut expected: Vec<Vec<Word>> = vec![Vec::new(); 16];
        for &v in &self.bodies {
            let leaf = ((v & 3) * 4 + ((v >> 2) & 3)) as usize;
            expected[leaf].push(v);
        }
        for q1 in 0..4u32 {
            let cell = word(ROOT_CHILD + q1)?;
            if cell < 2 {
                return Err(format!("quadrant {q1} has no node (cell = {cell})"));
            }
            let node = cell - 2;
            if node >= 4 {
                return Err(format!("quadrant {q1} has corrupt node id {node}"));
            }
            let nb = word(NODE_BASE + node)?;
            if nb != LITEMS + node * 4 * LIST_CAP {
                return Err(format!(
                    "node {node} has stale list base {nb} (publish raced its initialisation)"
                ));
            }
            for q2 in 0..4u32 {
                let leaf = (q1 * 4 + q2) as usize;
                let n = word(LCOUNT + node * 4 + q2)?;
                if n > LIST_CAP {
                    return Err(format!("leaf {leaf} count {n} exceeds capacity"));
                }
                let mut got: Vec<Word> = (0..n)
                    .map(|i| word(nb + q2 * LIST_CAP + i))
                    .collect::<Result<_, _>>()?;
                let mut want = expected[leaf].clone();
                got.sort_unstable();
                want.sort_unstable();
                if got != want {
                    return Err(format!(
                        "leaf {leaf}: {} bodies in tree, expected {}",
                        got.len(),
                        want.len()
                    ));
                }
                let mass = word(LMASS + q1 * 4 + q2)?;
                let want_mass: Word = want.iter().sum();
                if mass != want_mass {
                    return Err(format!(
                        "leaf {leaf} mass = {mass}, expected {want_mass} (stale summary)"
                    ));
                }
            }
            let qm = word(QMASS + q1)?;
            let want_qm: Word = (0..4)
                .flat_map(|q2| expected[(q1 * 4 + q2) as usize].iter())
                .sum();
            if qm != want_qm {
                return Err(format!("quadrant {q1} mass = {qm}, expected {want_qm}"));
            }
        }
        if word(ROOT_MASS)? != self.total_mass {
            return Err(format!(
                "root mass = {}, expected {}",
                word(ROOT_MASS)?,
                self.total_mass
            ));
        }
        if word(POT)? != self.expected_pot {
            return Err(format!(
                "potential = {}, expected {} (lost update in force accumulation)",
                word(POT)?,
                self.expected_pot
            ));
        }
        Ok(())
    }
}

/// Phase 1: lock-free tree build.
fn build_kernel(fenced: bool) -> wmm_sim::Program {
    let mut b = KernelBuilder::new("ls-bh-build");
    let i = b.global_tid();
    let body_base = b.const_(BODY);
    let ba = b.add(body_base, i);
    let v = b.load_global(ba);
    let three = b.const_(3);
    let q1 = b.and(v, three);
    let two_c = b.const_(2);
    let q2t = b.shr(v, two_c);
    let q2 = b.and(q2t, three);

    // Resolve (or create) the quadrant's internal node.
    let rc = b.const_(ROOT_CHILD);
    let cell_addr = b.add(rc, q1);
    let _zero = b.const_(0);
    let one = b.const_(1);
    let node = b.reg();
    let resolved = b.reg();
    b.assign_const(resolved, 0);
    b.while_(
        |k| {
            let r = k.mov(resolved);
            let zero = k.const_(0);
            k.eq(r, zero)
        },
        |k| {
            let c = k.load_global(cell_addr);
            let two = k.const_(2);
            let have = k.le_u(two, c);
            k.if_else(
                have,
                |k| {
                    let n = k.sub(c, two);
                    k.assign(node, n);
                    k.assign_const(resolved, 1);
                },
                |k| {
                    let zero = k.const_(0);
                    let empty = k.eq(c, zero);
                    k.if_(empty, |k| {
                        let old = k.atomic_cas_global(cell_addr, zero, one);
                        let won = k.eq(old, zero);
                        k.if_(won, |k| {
                            let ctr = k.const_(NODE_CTR);
                            let nd = k.atomic_add_global(ctr, one);
                            // Initialise the node's list base...
                            let cap4 = k.const_(4 * LIST_CAP);
                            let off = k.mul(nd, cap4);
                            let items = k.const_(LITEMS);
                            let base = k.add(items, off);
                            let nb_arr = k.const_(NODE_BASE);
                            let nba = k.add(nb_arr, nd);
                            k.store_global(nba, base);
                            if fenced {
                                k.fence_device(); // shipped fence (site a)
                            }
                            // ...then publish the cell.
                            let pub_v = k.add(nd, two);
                            k.store_global(cell_addr, pub_v);
                            k.assign(node, nd);
                            k.assign_const(resolved, 1);
                        });
                    });
                },
            );
        },
    );

    // Append the body to the node's (q2) sub-list under its lock.
    let nb_arr = b.const_(NODE_BASE);
    let nba = b.add(nb_arr, node);
    let nb = b.load_global(nba);
    let four = b.const_(4);
    let lidx0 = b.mul(node, four);
    let lidx = b.add(lidx0, q2);
    let llocks = b.const_(LLOCKS);
    let lock_addr = b.add(llocks, lidx);
    let lcount = b.const_(LCOUNT);
    let cnt_addr = b.add(lcount, lidx);
    b.spin_lock(lock_addr);
    let n = b.load_global(cnt_addr);
    let cap = b.const_(LIST_CAP);
    let sub_off = b.mul(q2, cap);
    let item0 = b.add(nb, sub_off);
    let item_addr = b.add(item0, n);
    b.store_global(item_addr, v);
    let n1 = b.add(n, one);
    b.store_global(cnt_addr, n1);
    if fenced {
        b.fence_device(); // shipped fence (site b)
    }
    b.unlock(lock_addr);
    b.finish().expect("ls-bh build kernel is valid")
}

/// Phase 2: bottom-up mass summarisation.
fn summarize_kernel(fenced: bool) -> wmm_sim::Program {
    let mut b = KernelBuilder::new("ls-bh-summarize");
    let t = b.tid();
    let c16 = b.const_(16);
    let is_leaf = b.lt_u(t, c16);
    b.if_else(
        is_leaf,
        |k| {
            // Leaf (q1, q2) = (t / 4, t % 4): sum its list.
            let four = k.const_(4);
            let q1 = k.div_u(t, four);
            let q2 = k.rem_u(t, four);
            let rc = k.const_(ROOT_CHILD);
            let ca = k.add(rc, q1);
            let cell = k.load_global(ca);
            let two = k.const_(2);
            let node = k.sub(cell, two);
            let nb_arr = k.const_(NODE_BASE);
            let nba = k.add(nb_arr, node);
            let nb = k.load_global(nba);
            let lidx0 = k.mul(node, four);
            let lidx = k.add(lidx0, q2);
            let lcount = k.const_(LCOUNT);
            let cna = k.add(lcount, lidx);
            let n = k.load_global(cna);
            let cap = k.const_(LIST_CAP);
            let sub = k.mul(q2, cap);
            let base = k.add(nb, sub);
            let mass = k.reg();
            k.assign_const(mass, 0);
            let j = k.reg();
            k.assign_const(j, 0);
            let one = k.const_(1);
            k.while_(
                |k| k.lt_u(j, n),
                |k| {
                    let a = k.add(base, j);
                    let x = k.load_global(a);
                    k.bin_into(mass, BinOp::Add, mass, x);
                    k.bin_into(j, BinOp::Add, j, one);
                },
            );
            let lm = k.const_(LMASS);
            let lma = k.add(lm, t);
            k.store_global(lma, mass);
            if fenced {
                k.fence_device(); // shipped fence (site c)
            }
            let lr = k.const_(LREADY);
            let lra = k.add(lr, t);
            k.store_global(lra, one);
        },
        |k| {
            // Quadrant summarisers: threads 16..20.
            let c20 = k.const_(20);
            let is_q = k.lt_u(t, c20);
            k.if_(is_q, |k| {
                let c16 = k.const_(16);
                let q = k.sub(t, c16);
                let four = k.const_(4);
                let leaf0 = k.mul(q, four);
                let lr = k.const_(LREADY);
                let lm = k.const_(LMASS);
                let qm_sum = k.reg();
                k.assign_const(qm_sum, 0);
                let j = k.reg();
                k.assign_const(j, 0);
                let one = k.const_(1);
                k.while_(
                    |k| k.lt_u(j, four),
                    |k| {
                        let leaf = k.add(leaf0, j);
                        let ra = k.add(lr, leaf);
                        k.while_(
                            |k| {
                                let r = k.load_global(ra);
                                let zero = k.const_(0);
                                k.eq(r, zero)
                            },
                            |_| {},
                        );
                        let ma = k.add(lm, leaf);
                        let m = k.load_global(ma);
                        k.bin_into(qm_sum, BinOp::Add, qm_sum, m);
                        k.bin_into(j, BinOp::Add, j, one);
                    },
                );
                let qm = k.const_(QMASS);
                let qma = k.add(qm, q);
                k.store_global(qma, qm_sum);
                let rm = k.const_(ROOT_MASS);
                let _ = k.atomic_add_global(rm, qm_sum);
            });
        },
    );
    b.finish().expect("ls-bh summarize kernel is valid")
}

/// Phase 3: potential computation with a lock-protected accumulation.
/// Deliberately fence-free even in the shipped version — the missing
/// fence (site d) the paper's testing exposes.
fn force_kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("ls-bh-force");
    let tid = b.tid();
    let bid = b.bid();
    let bdim = b.block_dim();
    let t0 = b.mul(bid, bdim);
    let i = b.add(tid, t0);
    let nb = b.const_(NB);
    let in_range = b.lt_u(i, nb);
    let contrib = b.reg();
    b.assign_const(contrib, 0);
    b.if_(in_range, |k| {
        let body_base = k.const_(BODY);
        let ba = k.add(body_base, i);
        let v = k.load_global(ba);
        let rm = k.const_(ROOT_MASS);
        let m = k.load_global(rm);
        let rest = k.sub(m, v);
        let p = k.mul(v, rest);
        k.assign(contrib, p);
    });
    // Block-level reduction in shared memory.
    b.store_shared(tid, contrib);
    b.barrier();
    let one = b.const_(1);
    let zero = b.const_(0);
    let half = b.shr(bdim, one);
    let s = b.mov(half);
    b.while_(
        |k| k.lt_u(zero, s),
        |k| {
            let active = k.lt_u(tid, s);
            k.if_(active, |k| {
                let other = k.add(tid, s);
                let x = k.load_shared(tid);
                let y = k.load_shared(other);
                let sum = k.add(x, y);
                k.store_shared(tid, sum);
            });
            k.barrier();
            k.bin_into(s, BinOp::Shr, s, one);
        },
    );
    let is0 = b.eq(tid, zero);
    b.if_(is0, |k| {
        let partial = k.load_shared(zero);
        let plock = k.const_(PLOCK);
        let pot = k.const_(POT);
        k.spin_lock(plock);
        let cur = k.load_global(pot);
        let sum = k.add(cur, partial);
        k.store_global(pot, sum);
        // No fence here, in either variant: the insufficiency the paper
        // discovered in ls-bh (site d).
        k.unlock(plock);
    });
    b.finish().expect("ls-bh force kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("C2075").unwrap().sequentially_consistent()
    }

    #[test]
    fn both_variants_correct_under_sequential_consistency() {
        for fenced in [true, false] {
            let app = LsBh::new(fenced);
            let chip = sc_chip();
            let h = AppHarness::new(&chip, &app);
            for seed in 0..5 {
                let out = h.run_once(&Environment::native(), seed);
                assert_eq!(out.verdict, RunVerdict::Pass, "fenced={fenced} seed={seed}");
            }
        }
    }

    #[test]
    fn shipped_version_has_three_fences() {
        assert_eq!(LsBh::new(true).spec().fence_count(), 3);
        assert_eq!(LsBh::new(false).spec().fence_count(), 0);
    }

    #[test]
    fn three_phases() {
        assert_eq!(LsBh::new(true).spec().phases.len(), 3);
    }

    #[test]
    fn bodies_fill_every_leaf_equally() {
        let bodies: Vec<Word> = (0..NB).map(body).collect();
        let mut per_leaf = [0u32; 16];
        for v in bodies {
            per_leaf[((v & 3) * 4 + ((v >> 2) & 3)) as usize] += 1;
        }
        assert!(per_leaf.iter().all(|&c| c == NB / 16), "{per_leaf:?}");
    }
}
