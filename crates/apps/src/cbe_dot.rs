//! `cbe-dot`: the dot-product routine from *CUDA by Example* (ch. A1.2) —
//! the paper's running example (Fig. 1).
//!
//! Each block computes a partial dot product in shared memory, then its
//! first thread takes a global spinlock and adds the partial into the
//! final result **non-atomically** (`*c += cache[0]`). Correctness
//! depends on the critical-section store not being reordered with the
//! unlock (`atomicExch(mutex, 0)`): on a weak machine the unlock can
//! become visible first, letting another block read a stale `*c` and
//! lose an update.
//!
//! Post-condition: the GPU result bit-exactly matches a CPU reference
//! (inputs are small integers, so f32 addition is exact in any order).

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::BinOp;
use wmm_sim::word::{from_f32, Word};

/// Number of elements in each input vector.
pub const N: u32 = 128;
/// Word address of the spinlock.
pub const MUTEX: u32 = 0;
/// Word address of the result cell `c` (a different memory line from the
/// mutex on every chip, as in the original's layout).
pub const C: u32 = 128;
/// Base address of input `a`.
pub const A: u32 = 256;
/// Base address of input `b`.
pub const B: u32 = A + N;

/// Blocks in the grid.
pub const BLOCKS: u32 = 8;
/// Threads per block.
pub const TPB: u32 = 32;

/// The `cbe-dot` case study. See the module docs.
#[derive(Debug, Clone)]
pub struct CbeDot {
    spec: AppSpec,
    expected: Word,
}

impl CbeDot {
    /// Build the application with its fixed input vectors.
    pub fn new() -> Self {
        let a: Vec<f32> = (0..N).map(|i| (i % 8) as f32).collect();
        let b: Vec<f32> = (0..N).map(|i| ((i / 8) % 8) as f32).collect();
        let expected = from_f32(a.iter().zip(&b).map(|(x, y)| x * y).sum::<f32>());

        let mut init: Vec<(u32, Word)> = Vec::new();
        for (i, v) in a.iter().enumerate() {
            init.push((A + i as u32, from_f32(*v)));
        }
        for (i, v) in b.iter().enumerate() {
            init.push((B + i as u32, from_f32(*v)));
        }

        let spec = AppSpec {
            name: "cbe-dot".into(),
            phases: vec![Phase {
                program: kernel(),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: TPB,
            }],
            global_words: B + N,
            init,
            max_turns_per_phase: 600_000,
        };
        CbeDot { spec, expected }
    }

    /// The CPU reference result (f32 bits).
    pub fn expected(&self) -> Word {
        self.expected
    }
}

impl Default for CbeDot {
    fn default() -> Self {
        CbeDot::new()
    }
}

impl Application for CbeDot {
    fn name(&self) -> &str {
        "cbe-dot"
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        let got = memory[C as usize];
        if got == self.expected {
            Ok(())
        } else {
            Err(format!(
                "dot product = {} ({got:#x}), expected {} ({:#x})",
                f32::from_bits(got),
                f32::from_bits(self.expected),
                self.expected
            ))
        }
    }
}

/// The Fig. 1 kernel.
fn kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("cbe-dot");
    let tid = b.tid();
    let bid = b.bid();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();

    // tid_g = threadIdx.x + blockIdx.x * blockDim.x
    let t0 = b.mul(bid, bdim);
    let tid_g = b.reg();
    b.bin_into(tid_g, BinOp::Add, tid, t0);

    // temp = 0; while (tid_g < N) { temp += a[tid_g]*b[tid_g]; tid_g += total }
    let temp = b.const_f32(0.0);
    let n = b.const_(N);
    let total = b.mul(bdim, gdim);
    let a_base = b.const_(A);
    let b_base = b.const_(B);
    b.while_(
        |k| k.lt_u(tid_g, n),
        |k| {
            let aa = k.add(a_base, tid_g);
            let ab = k.add(b_base, tid_g);
            let av = k.load_global(aa);
            let bv = k.load_global(ab);
            let p = k.fmul(av, bv);
            k.bin_into(temp, BinOp::FAdd, temp, p);
            k.bin_into(tid_g, BinOp::Add, tid_g, total);
        },
    );

    // cache[cacheIndex] = temp; __syncthreads();
    b.store_shared(tid, temp);
    b.barrier();

    // Shared-memory tree reduction.
    let one = b.const_(1);
    let i = b.shr(bdim, one);
    let zero = b.const_(0);
    b.while_(
        |k| k.lt_u(zero, i),
        |k| {
            let active = k.lt_u(tid, i);
            k.if_(active, |k| {
                let other = k.add(tid, i);
                let x = k.load_shared(tid);
                let y = k.load_shared(other);
                let s = k.fadd(x, y);
                k.store_shared(tid, s);
            });
            k.barrier();
            k.bin_into(i, BinOp::Shr, i, one);
        },
    );

    // if (cacheIndex == 0) { lock(mutex); *c += cache[0]; unlock(mutex); }
    let is0 = b.eq(tid, zero);
    b.if_(is0, |k| {
        let mutex = k.const_(MUTEX);
        let c_addr = k.const_(C);
        k.spin_lock(mutex);
        let cur = k.load_global(c_addr);
        let part = k.load_shared(zero);
        let sum = k.fadd(cur, part);
        k.store_global(c_addr, sum);
        k.unlock(mutex);
    });
    b.finish().expect("cbe-dot kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn correct_under_sequential_consistency() {
        let app = CbeDot::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        for seed in 0..8 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(out.verdict, wmm_core::env::RunVerdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn randomized_ids_still_correct_under_sc() {
        let app = CbeDot::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        let mut env = Environment::native();
        env.randomize = true;
        for seed in 0..8 {
            let out = h.run_once(&env, seed);
            assert_eq!(out.verdict, wmm_core::env::RunVerdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn reference_matches_hand_computation() {
        let app = CbeDot::new();
        let expect: f32 = (0..N)
            .map(|i| ((i % 8) as f32) * (((i / 8) % 8) as f32))
            .sum();
        assert_eq!(app.expected(), from_f32(expect));
    }

    #[test]
    fn one_fence_site_per_global_access() {
        let app = CbeDot::new();
        let sites = app.spec().fence_sites();
        // Fig. 1 has: the in-loop loads of a and b, the CAS, the load and
        // store of c, and the unlock exchange.
        assert!(sites.len() >= 5, "sites: {sites:?}");
    }

    #[test]
    fn cons_fences_pass_under_weak_memory() {
        let chip = Chip::by_short("Titan").unwrap();
        let app = CbeDot::new();
        let fenced = app.spec().with_all_fences();
        let h = AppHarness::with_spec(&chip, &app, fenced);
        let r = h.campaign(&Environment::sys_str_plus(&chip), 30, 11, 0);
        assert_eq!(r.errors, 0, "{r:?}");
    }
}
