//! `cub-scan`: the prefix scan of the CUB library, reduced to its
//! decoupled-lookback communication idiom.
//!
//! Each block scans its slice in shared memory, publishes its block
//! *aggregate* (store aggregate, fence, store status = `A`), performs the
//! lookback over predecessor blocks (spinning on their status words, an
//! MP-style handshake), then publishes its *inclusive prefix* (store
//! prefix, fence, store status = `P`). CUB carries both fences; the
//! `-nf` variant strips them, so a successor block can observe a status
//! flag before the value it guards — the two distinct writer-side fence
//! sites the paper's empirical insertion rediscovers (Tab. 6:
//! cub-scan-nf reduces to exactly 2 fences).
//!
//! Post-condition: the output equals the CPU inclusive scan.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::BinOp;
use wmm_sim::word::Word;

/// Elements scanned.
pub const N: u32 = 256;
/// Base of the per-block aggregates.
pub const AGG: u32 = 128;
/// Base of the per-block inclusive prefixes.
pub const PREFIX: u32 = 256;
/// Base of the per-block status words (0 = empty, 1 = aggregate
/// available, 2 = prefix available).
pub const STATUS: u32 = 384;
/// Base of the input array.
pub const INPUT: u32 = 512;
/// Base of the output array.
pub const OUT: u32 = 1024;

/// Blocks in the grid.
pub const BLOCKS: u32 = 8;
/// Threads per block.
pub const TPB: u32 = 32;

/// The `cub-scan` case study (or its `-nf` variant). See the module docs.
#[derive(Debug, Clone)]
pub struct CubScan {
    spec: AppSpec,
    expected: Vec<Word>,
}

fn input(i: u32) -> Word {
    (i % 5) + 1
}

impl CubScan {
    /// Build the application; `fenced` selects the original (with CUB's
    /// two fences) or the `-nf` variant.
    pub fn new(fenced: bool) -> Self {
        let mut expected = Vec::with_capacity(N as usize);
        let mut acc = 0u32;
        for i in 0..N {
            acc += input(i);
            expected.push(acc);
        }
        let init: Vec<(u32, Word)> = (0..N).map(|i| (INPUT + i, input(i))).collect();
        let spec = AppSpec {
            name: if fenced { "cub-scan" } else { "cub-scan-nf" }.into(),
            phases: vec![Phase {
                program: kernel(fenced),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: TPB + 1,
            }],
            global_words: OUT + N,
            init,
            max_turns_per_phase: 900_000,
        };
        CubScan { spec, expected }
    }
}

impl Application for CubScan {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        for i in 0..N {
            let got = memory[(OUT + i) as usize];
            if got != self.expected[i as usize] {
                return Err(format!(
                    "out[{i}] = {got}, expected {} (stale lookback value)",
                    self.expected[i as usize]
                ));
            }
        }
        Ok(())
    }
}

fn kernel(fenced: bool) -> wmm_sim::Program {
    let mut b = KernelBuilder::new(if fenced { "cub-scan" } else { "cub-scan-nf" });
    let tid = b.tid();
    let bid = b.bid();
    let bdim = b.block_dim();
    let zero = b.const_(0);
    let one = b.const_(1);

    // Load and Hillis–Steele inclusive scan in shared memory.
    let t0 = b.mul(bid, bdim);
    let gi = b.add(tid, t0);
    let in_base = b.const_(INPUT);
    let ia = b.add(in_base, gi);
    let v = b.load_global(ia);
    b.store_shared(tid, v);
    b.barrier();
    let off = b.reg();
    b.assign_const(off, 1);
    b.while_(
        |k| k.lt_u(off, bdim),
        |k| {
            let cur = k.load_shared(tid);
            let newv = k.mov(cur);
            let active = k.le_u(off, tid);
            k.if_(active, |k| {
                let other = k.sub(tid, off);
                let prev = k.load_shared(other);
                k.bin_into(newv, BinOp::Add, cur, prev);
            });
            k.barrier();
            k.store_shared(tid, newv);
            k.barrier();
            k.bin_into(off, BinOp::Shl, off, one);
        },
    );

    // Lane 0: publish aggregate, look back, publish prefix.
    let is0 = b.eq(tid, zero);
    b.if_(is0, |k| {
        let last = k.sub(bdim, one);
        let agg = k.load_shared(last);
        let agg_base = k.const_(AGG);
        let aa = k.add(agg_base, bid);
        k.store_global(aa, agg);
        if fenced {
            k.fence_device(); // CUB fence #1: aggregate before status A
        }
        let status_base = k.const_(STATUS);
        let sa = k.add(status_base, bid);
        let one_r = k.const_(1);
        k.store_global(sa, one_r);

        // Lookback: excl = sum of predecessor aggregates / prefix.
        let excl = k.reg();
        k.assign_const(excl, 0);
        let jj = k.mov(bid); // scan j = jj-1 down while jj > 0
        let prefix_base = k.const_(PREFIX);
        let zero = k.const_(0);
        let two = k.const_(2);
        k.while_(
            |k| k.lt_u(zero, jj),
            |k| {
                let j = k.sub(jj, one_r);
                let sj = k.add(status_base, j);
                let status_v = k.reg();
                k.while_(
                    |k| {
                        let s = k.load_global(sj);
                        k.assign(status_v, s);
                        k.eq(s, zero)
                    },
                    |_| {},
                );
                let has_prefix = k.eq(status_v, two);
                k.if_else(
                    has_prefix,
                    |k| {
                        let pj = k.add(prefix_base, j);
                        let p = k.load_global(pj);
                        k.bin_into(excl, BinOp::Add, excl, p);
                        k.assign_const(jj, 0); // break
                    },
                    |k| {
                        let aj = k.add(agg_base, j);
                        let a = k.load_global(aj);
                        k.bin_into(excl, BinOp::Add, excl, a);
                        k.bin_into(jj, BinOp::Sub, jj, one_r);
                    },
                );
            },
        );

        // Publish the inclusive prefix.
        let inc = k.add(excl, agg);
        let pa = k.add(prefix_base, bid);
        k.store_global(pa, inc);
        if fenced {
            k.fence_device(); // CUB fence #2: prefix before status P
        }
        k.store_global(sa, two);

        // Broadcast the exclusive prefix to the block.
        let bcast = k.mov(bdim); // shared slot TPB
        k.store_shared(bcast, excl);
    });
    b.barrier();

    // Every thread writes its output element.
    let bcast = b.mov(bdim);
    let excl = b.load_shared(bcast);
    let mine = b.load_shared(tid);
    let out_v = b.add(mine, excl);
    let out_base = b.const_(OUT);
    let oa = b.add(out_base, gi);
    b.store_global(oa, out_v);
    b.finish()
        .expect("cub-scan kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("K5200").unwrap().sequentially_consistent()
    }

    #[test]
    fn both_variants_correct_under_sequential_consistency() {
        for fenced in [true, false] {
            let app = CubScan::new(fenced);
            let chip = sc_chip();
            let h = AppHarness::new(&chip, &app);
            for seed in 0..5 {
                let out = h.run_once(&Environment::native(), seed);
                assert_eq!(out.verdict, RunVerdict::Pass, "fenced={fenced} seed={seed}");
            }
        }
    }

    #[test]
    fn two_fences_in_original() {
        assert_eq!(CubScan::new(true).spec().fence_count(), 2);
        assert_eq!(CubScan::new(false).spec().fence_count(), 0);
    }

    #[test]
    fn reference_is_inclusive_scan() {
        let app = CubScan::new(true);
        assert_eq!(app.expected[0], input(0));
        assert_eq!(
            app.expected[(N - 1) as usize],
            (0..N).map(input).sum::<u32>()
        );
    }
}
