//! # wmm-apps — the ten application case studies (Tab. 4)
//!
//! The paper evaluates its testing environment on ten CUDA applications
//! derived from seven code bases, all using fine-grained inter-block
//! concurrency: custom spinlocks, non-blocking queues, last-block
//! reductions, MP-style handshakes, and lock-free tree construction.
//! This crate ports each case study to the `wmm-sim` kernel IR with the
//! same communication idiom and the same functional post-condition:
//!
//! | app | idiom | post-condition |
//! |---|---|---|
//! | [`cbe_ht`] | hashtable insertion under custom spinlocks | all inserted elements present |
//! | [`cbe_dot`] | global reduction under one spinlock (Fig. 1) | GPU result = CPU reference |
//! | [`ct_octree`] | non-blocking queue feeding a tree build | all particles in the final tree |
//! | [`tpo_tm`] | task queue under a custom mutex | expected number of tasks executed |
//! | [`sdk_red`] | last-block (atomic counter) combine, fenced | GPU result = CPU reference |
//! | [`cub_scan`] | decoupled-lookback scan, MP handshakes, fenced | GPU result = CPU reference |
//! | [`ls_bh`] | CAS tree build + summary + force kernels, *insufficiently* fenced | structure & totals match reference |
//!
//! `sdk-red`, `cub-scan` and `ls-bh` ship with fences; their `-nf`
//! variants are manufactured by stripping them (Sec. 4.1), exactly as in
//! the paper. [`all_apps`] returns the full set of ten.
//!
//! Beyond Tab. 4, [`shm_pipe`] is a scoped (intra-block shared-memory)
//! pipeline used to demonstrate the analyzer-seeded scoped fence
//! insertion; it is reachable through [`app_by_name`] but deliberately
//! kept out of [`all_apps`] so the paper campaigns stay faithful.

pub mod cbe_dot;
pub mod cbe_ht;
pub mod ct_octree;
pub mod cub_scan;
pub mod ls_bh;
pub mod sdk_red;
pub mod shm_pipe;
pub mod tpo_tm;

pub use cbe_dot::CbeDot;
pub use cbe_ht::CbeHt;
pub use ct_octree::CtOctree;
pub use cub_scan::CubScan;
pub use ls_bh::LsBh;
pub use sdk_red::SdkRed;
pub use shm_pipe::ShmPipe;
pub use tpo_tm::TpoTm;

use wmm_core::app::Application;

/// The ten case studies in Tab. 4's order.
pub fn all_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(CbeHt::new()),
        Box::new(CbeDot::new()),
        Box::new(CtOctree::new()),
        Box::new(TpoTm::new()),
        Box::new(SdkRed::new(true)),
        Box::new(SdkRed::new(false)),
        Box::new(CubScan::new(true)),
        Box::new(CubScan::new(false)),
        Box::new(LsBh::new(true)),
        Box::new(LsBh::new(false)),
    ]
}

/// Look up a case study by its Tab. 4 short name (e.g. `"cbe-dot"`,
/// `"ls-bh-nf"`), or the extra scoped demonstration workload
/// [`shm_pipe`] (`"shm-pipe"`), which is not part of the Tab. 4 set.
pub fn app_by_name(name: &str) -> Option<Box<dyn Application>> {
    if name == "shm-pipe" {
        return Some(Box::new(ShmPipe::new()));
    }
    all_apps().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_apps_with_table_4_names() {
        let names: Vec<String> = all_apps().iter().map(|a| a.name().to_string()).collect();
        for expect in [
            "cbe-ht",
            "cbe-dot",
            "ct-octree",
            "tpo-tm",
            "sdk-red",
            "sdk-red-nf",
            "cub-scan",
            "cub-scan-nf",
            "ls-bh",
            "ls-bh-nf",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("cbe-dot").is_some());
        assert!(app_by_name("ls-bh-nf").is_some());
        assert!(app_by_name("nope").is_none());
        // The scoped demo app resolves by name but stays out of the
        // Tab. 4 set.
        assert!(app_by_name("shm-pipe").is_some());
        assert!(all_apps().iter().all(|a| a.name() != "shm-pipe"));
    }

    #[test]
    fn fenced_apps_contain_fences_and_nf_do_not() {
        for (name, fences) in [
            ("sdk-red", true),
            ("cub-scan", true),
            ("ls-bh", true),
            ("sdk-red-nf", false),
            ("cub-scan-nf", false),
            ("ls-bh-nf", false),
            ("cbe-dot", false),
            ("cbe-ht", false),
        ] {
            let app = app_by_name(name).unwrap();
            assert_eq!(app.spec().fence_count() > 0, fences, "{name}");
        }
    }
}
