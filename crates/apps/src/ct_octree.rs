//! `ct-octree`: the octree partitioning routine of Cederman & Tsigas
//! (*GPU Computing Gems*, ch. 37), reduced to its communication idiom.
//!
//! Producer blocks push particles through a **non-blocking queue**:
//! write the particle into a slot, then publish the slot by setting its
//! flag — an MP handshake per slot. Consumer blocks claim slots with an
//! atomic counter, spin on the flag, and insert the particle into its
//! quadrant's list. On a weak machine the flag store can become visible
//! before the data store, so a consumer reads a stale (zero) slot and a
//! particle never reaches the tree.
//!
//! Post-condition: all original particles are in the final octree —
//! each quadrant list holds exactly the input particles of its quadrant.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::word::Word;

/// Number of particles.
pub const PARTICLES: u32 = 64;
/// Base of the input particle array.
pub const INPUT: u32 = 0;
/// Base of the queue data slots.
pub const QDATA: u32 = 128;
/// Base of the queue publish flags (one per slot, separate line from the
/// data so flag/data stores can reorder — the bug under test).
pub const QFLAG: u32 = 256;
/// Consumer claim counter.
pub const HEAD: u32 = 384;
/// Per-quadrant insertion counters (4).
pub const QCOUNT: u32 = 448;
/// Per-quadrant particle lists (4 × `PARTICLES` capacity).
pub const QLIST: u32 = 512;

/// Blocks in the grid (half producers, half consumers).
pub const BLOCKS: u32 = 4;
/// Threads per block.
pub const TPB: u32 = 32;

/// The `ct-octree` case study. See the module docs.
#[derive(Debug, Clone)]
pub struct CtOctree {
    spec: AppSpec,
    particles: Vec<Word>,
}

/// Particle `i`'s value: distinct, non-zero, quadrants evenly spread.
fn particle(i: u32) -> Word {
    (i % 16) + 16 * (i / 16 + 1)
}

impl CtOctree {
    /// Build the application with its fixed particle set.
    pub fn new() -> Self {
        let particles: Vec<Word> = (0..PARTICLES).map(particle).collect();
        let init: Vec<(u32, Word)> = particles
            .iter()
            .enumerate()
            .map(|(i, &v)| (INPUT + i as u32, v))
            .collect();
        let spec = AppSpec {
            name: "ct-octree".into(),
            phases: vec![Phase {
                program: kernel(),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: 0,
            }],
            global_words: QLIST + 4 * PARTICLES,
            init,
            max_turns_per_phase: 900_000,
        };
        CtOctree { spec, particles }
    }
}

impl Default for CtOctree {
    fn default() -> Self {
        CtOctree::new()
    }
}

impl Application for CtOctree {
    fn name(&self) -> &str {
        "ct-octree"
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        // Expected quadrant multisets.
        let mut expected: [Vec<Word>; 4] = Default::default();
        for &v in &self.particles {
            expected[(v & 3) as usize].push(v);
        }
        for q in 0..4u32 {
            let n = memory[(QCOUNT + q) as usize];
            let mut got: Vec<Word> = (0..n)
                .map(|i| memory[(QLIST + q * PARTICLES + i) as usize])
                .collect();
            let mut want = expected[q as usize].clone();
            got.sort_unstable();
            want.sort_unstable();
            if got != want {
                return Err(format!(
                    "quadrant {q}: tree holds {} particles, expected {} (lost or corrupt entries)",
                    got.len(),
                    want.len()
                ));
            }
        }
        Ok(())
    }
}

/// Producer/consumer kernel. Blocks with `bid < 2` produce; the rest
/// consume.
fn kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("ct-octree");
    let bid = b.bid();
    let two = b.const_(2);
    let is_producer = b.lt_u(bid, two);
    b.if_else(
        is_producer,
        |k| {
            // Producer: slot i = global thread id (producer blocks are
            // bid 0 and 1, so gtid covers 0..64).
            let i = k.global_tid();
            let in_base = k.const_(INPUT);
            let ia = k.add(in_base, i);
            let v = k.load_global(ia);
            let qd = k.const_(QDATA);
            let da = k.add(qd, i);
            k.store_global(da, v);
            // Publish. The fence that belongs here is deliberately
            // absent — empirical fence insertion finds it.
            let qf = k.const_(QFLAG);
            let fa = k.add(qf, i);
            let one = k.const_(1);
            k.store_global(fa, one);
        },
        |k| {
            // Consumer: claim slots until exhausted.
            let head = k.const_(HEAD);
            let n = k.const_(PARTICLES);
            let one = k.const_(1);
            let more = k.reg();
            k.assign_const(more, 1);
            k.while_(
                |k| k.mov(more),
                |k| {
                    let my = k.atomic_add_global(head, one);
                    let in_range = k.lt_u(my, n);
                    k.if_else(
                        in_range,
                        |k| {
                            // Spin until the slot is published.
                            let qf = k.const_(QFLAG);
                            let fa = k.add(qf, my);
                            k.while_(
                                |k| {
                                    let f = k.load_global(fa);
                                    let zero = k.const_(0);
                                    k.eq(f, zero)
                                },
                                |_| {},
                            );
                            let qd = k.const_(QDATA);
                            let da = k.add(qd, my);
                            let v = k.load_global(da);
                            // Insert into the quadrant list.
                            let three = k.const_(3);
                            let q = k.and(v, three);
                            let qc = k.const_(QCOUNT);
                            let ca = k.add(qc, q);
                            let idx = k.atomic_add_global(ca, one);
                            let cap = k.const_(PARTICLES);
                            let off = k.mul(q, cap);
                            let ql = k.const_(QLIST);
                            let la0 = k.add(ql, off);
                            let la = k.add(la0, idx);
                            k.store_global(la, v);
                        },
                        |k| {
                            k.assign_const(more, 0);
                        },
                    );
                },
            );
        },
    );
    b.finish()
        .expect("ct-octree kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn correct_under_sequential_consistency() {
        let app = CtOctree::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        for seed in 0..6 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(out.verdict, RunVerdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn particles_spread_over_quadrants() {
        let app = CtOctree::new();
        let mut per_q = [0u32; 4];
        for &v in &app.particles {
            per_q[(v & 3) as usize] += 1;
        }
        assert!(per_q.iter().all(|&c| c == PARTICLES / 4), "{per_q:?}");
    }

    #[test]
    fn publish_site_is_a_fence_site() {
        // The producer's data→flag pair must be adjacent global stores.
        let app = CtOctree::new();
        let sites = app.spec().fence_sites();
        assert!(sites.len() >= 4);
    }
}
