//! `tpo-tm`: the dynamic task-management framework of Tzeng, Patney &
//! Owens (HPG 2010), reduced to its communication idiom.
//!
//! Worker blocks pop tasks from a global queue protected by a custom
//! mutex and append each task's result to an output list inside the same
//! critical section. The queue size, the task array, and the output list
//! are plain (non-atomic) memory: correctness depends on the critical
//! section's stores becoming visible before the unlock. On a weak
//! machine the unlock can overtake them, so the next worker pops the
//! same task twice or overwrites an output slot.
//!
//! Post-condition: the expected number of tasks were executed — the
//! output list holds exactly one result per seeded task.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::BinOp;
use wmm_sim::word::Word;

/// Seeded tasks.
pub const TASKS: u32 = 48;
/// Word address of the queue mutex.
pub const LOCK: u32 = 0;
/// Word address of the queue size.
pub const SIZE: u32 = 128;
/// Word address of the output count (same line as `SIZE`; both are
/// protected by the same critical section).
pub const OUT_SIZE: u32 = 132;
/// Base of the task queue.
pub const QUEUE: u32 = 256;
/// Base of the output list.
pub const OUT: u32 = 384;

/// Blocks in the grid (one worker lane per block, as in the original's
/// block-level task processing).
pub const BLOCKS: u32 = 4;
/// Threads per block.
pub const TPB: u32 = 32;
/// Pop attempts per worker (enough slack to drain the queue under any
/// schedule).
pub const ATTEMPTS: u32 = TASKS / BLOCKS + 12;

/// Result of executing task `t`.
fn execute(t: Word) -> Word {
    t + 100
}

/// The `tpo-tm` case study. See the module docs.
#[derive(Debug, Clone)]
pub struct TpoTm {
    spec: AppSpec,
}

impl TpoTm {
    /// Build the application with `TASKS` seeded tasks.
    pub fn new() -> Self {
        let mut init: Vec<(u32, Word)> = vec![(SIZE, TASKS)];
        for i in 0..TASKS {
            init.push((QUEUE + i, i + 1));
        }
        let spec = AppSpec {
            name: "tpo-tm".into(),
            phases: vec![Phase {
                program: kernel(),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: 0,
            }],
            global_words: OUT + TASKS + 16,
            init,
            max_turns_per_phase: 1_200_000,
        };
        TpoTm { spec }
    }
}

impl Default for TpoTm {
    fn default() -> Self {
        TpoTm::new()
    }
}

impl Application for TpoTm {
    fn name(&self) -> &str {
        "tpo-tm"
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        let done = memory[OUT_SIZE as usize];
        if done != TASKS {
            return Err(format!("{done} tasks executed, expected {TASKS}"));
        }
        if memory[SIZE as usize] != 0 {
            return Err(format!("queue still holds {} tasks", memory[SIZE as usize]));
        }
        let mut got: Vec<Word> = (0..TASKS).map(|i| memory[(OUT + i) as usize]).collect();
        let mut want: Vec<Word> = (1..=TASKS).map(execute).collect();
        got.sort_unstable();
        want.sort_unstable();
        if got != want {
            return Err("output list does not match the seeded task set".into());
        }
        Ok(())
    }
}

/// Worker kernel: lane 0 of each block repeatedly pops a task under the
/// mutex and records its result in the same critical section.
fn kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("tpo-tm");
    let tid = b.tid();
    let zero = b.const_(0);
    let is_worker = b.eq(tid, zero);
    b.if_(is_worker, |k| {
        let lock = k.const_(LOCK);
        let size_a = k.const_(SIZE);
        let out_size_a = k.const_(OUT_SIZE);
        let q_base = k.const_(QUEUE);
        let out_base = k.const_(OUT);
        let one = k.const_(1);
        let hundred = k.const_(100);
        let attempts = k.const_(ATTEMPTS);
        let i = k.reg();
        k.assign_const(i, 0);
        k.while_(
            |k| k.lt_u(i, attempts),
            |k| {
                k.spin_lock(lock);
                let s = k.load_global(size_a);
                let zero = k.const_(0);
                let nonempty = k.lt_u(zero, s);
                k.if_(nonempty, |k| {
                    // Pop q[s-1].
                    let one = k.const_(1);
                    let s1 = k.sub(s, one);
                    k.store_global(size_a, s1);
                    let ta = k.add(q_base, s1);
                    let t = k.load_global(ta);
                    // Execute and record the result.
                    let r = k.add(t, hundred);
                    let oi = k.load_global(out_size_a);
                    let oa = k.add(out_base, oi);
                    k.store_global(oa, r);
                    let oi1 = k.add(oi, one);
                    k.store_global(out_size_a, oi1);
                });
                k.unlock(lock);
                k.bin_into(i, BinOp::Add, i, one);
            },
        );
    });
    b.finish().expect("tpo-tm kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("Titan").unwrap().sequentially_consistent()
    }

    #[test]
    fn correct_under_sequential_consistency() {
        let app = TpoTm::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        for seed in 0..6 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(out.verdict, RunVerdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn execute_is_injective_over_tasks() {
        let results: std::collections::HashSet<Word> = (1..=TASKS).map(execute).collect();
        assert_eq!(results.len(), TASKS as usize);
    }

    #[test]
    fn checker_rejects_duplicate_execution() {
        let app = TpoTm::new();
        let mut memory = vec![0u32; app.spec().global_words as usize];
        memory[OUT_SIZE as usize] = TASKS;
        // All slots hold the same result: duplicates.
        for i in 0..TASKS {
            memory[(OUT + i) as usize] = execute(1);
        }
        assert!(app.check(&memory).is_err());
    }
}
