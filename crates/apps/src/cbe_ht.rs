//! `cbe-ht`: the concurrent hashtable from *CUDA by Example* (ch. A1.3).
//!
//! Threads insert key/value nodes into per-bucket linked lists, each
//! bucket protected by a custom spinlock. The insertion writes the new
//! node's `next` pointer and then publishes the node by overwriting the
//! bucket head — all inside the critical section. On a weak machine the
//! head-publishing store can be reordered after the unlock, so the next
//! holder of the bucket lock reads a stale head and links its node over
//! the previous insertion, losing it.
//!
//! Post-condition: every inserted key is found in the final table
//! (traversing bucket lists on the host), each exactly once.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::word::Word;

/// Number of hash buckets.
pub const BUCKETS: u32 = 8;
/// Number of keys inserted (one per thread).
pub const KEYS: u32 = 64;

/// Word address of the bucket locks (one word each).
pub const LOCKS: u32 = 0;
/// Word address of the bucket head pointers (0 = null, else node index + 1).
pub const HEADS: u32 = 128;
/// Node-pool allocation counter.
pub const POOL_COUNTER: u32 = 192;
/// Base of the node pool: node `i` occupies `[NODES + 2i] = key`,
/// `[NODES + 2i + 1] = next`.
pub const NODES: u32 = 256;

/// Blocks in the grid.
pub const BLOCKS: u32 = 2;
/// Threads per block.
pub const TPB: u32 = 32;

/// The `cbe-ht` case study. See the module docs.
#[derive(Debug, Clone)]
pub struct CbeHt {
    spec: AppSpec,
}

impl CbeHt {
    /// Build the application; thread `t` inserts key `t + 1` (keys are
    /// non-zero so an unwritten node is distinguishable).
    pub fn new() -> Self {
        let spec = AppSpec {
            name: "cbe-ht".into(),
            phases: vec![Phase {
                program: kernel(),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: 0,
            }],
            global_words: NODES + 2 * KEYS + 8,
            init: Vec::new(),
            max_turns_per_phase: 900_000,
        };
        CbeHt { spec }
    }
}

impl Default for CbeHt {
    fn default() -> Self {
        CbeHt::new()
    }
}

impl Application for CbeHt {
    fn name(&self) -> &str {
        "cbe-ht"
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        // Walk every bucket list, collecting keys.
        let mut seen = vec![false; (KEYS + 2) as usize];
        let mut found = 0u32;
        for bucket in 0..BUCKETS {
            let mut cursor = memory[(HEADS + bucket) as usize];
            let mut hops = 0;
            while cursor != 0 {
                hops += 1;
                if hops > KEYS + 1 {
                    return Err(format!("cycle detected in bucket {bucket}"));
                }
                let node = cursor - 1;
                let key = memory[(NODES + 2 * node) as usize];
                if key == 0 || key > KEYS {
                    return Err(format!("corrupt key {key} in bucket {bucket}"));
                }
                if key % BUCKETS != bucket {
                    return Err(format!("key {key} hashed to wrong bucket {bucket}"));
                }
                if seen[key as usize] {
                    return Err(format!("key {key} present twice"));
                }
                seen[key as usize] = true;
                found += 1;
                cursor = memory[(NODES + 2 * node + 1) as usize];
            }
        }
        if found != KEYS {
            return Err(format!(
                "hashtable holds {found} of {KEYS} inserted elements"
            ));
        }
        Ok(())
    }
}

/// The insertion kernel: every thread allocates a node from the pool and
/// links it into its key's bucket under the bucket lock.
fn kernel() -> wmm_sim::Program {
    let mut b = KernelBuilder::new("cbe-ht");
    let gtid = b.global_tid();
    let one = b.const_(1);
    let key = b.add(gtid, one);
    let buckets = b.const_(BUCKETS);
    let bucket = b.rem_u(key, buckets);

    // node = atomicAdd(&pool_counter, 1)
    let ctr = b.const_(POOL_COUNTER);
    let node = b.atomic_add_global(ctr, one);

    // node.key = key (private until published)
    let two = b.const_(2);
    let nodes_base = b.const_(NODES);
    let off = b.mul(node, two);
    let key_addr = b.add(nodes_base, off);
    let next_addr = b.add(key_addr, one);
    b.store_global(key_addr, key);

    // lock(bucket)
    let locks = b.const_(LOCKS);
    let lock_addr = b.add(locks, bucket);
    b.spin_lock(lock_addr);

    // node.next = head; head = node + 1
    let heads = b.const_(HEADS);
    let head_addr = b.add(heads, bucket);
    let head = b.load_global(head_addr);
    b.store_global(next_addr, head);
    let published = b.add(node, one);
    b.store_global(head_addr, published);

    // unlock(bucket)
    b.unlock(lock_addr);
    b.finish().expect("cbe-ht kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("770").unwrap().sequentially_consistent()
    }

    #[test]
    fn correct_under_sequential_consistency() {
        let app = CbeHt::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        for seed in 0..8 {
            let out = h.run_once(&Environment::native(), seed);
            assert_eq!(out.verdict, RunVerdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn checker_rejects_lost_insertions() {
        let app = CbeHt::new();
        let chip = sc_chip();
        let h = AppHarness::new(&chip, &app);
        // Obtain a correct memory image, then damage it.
        let chip = sc_chip();
        let mut gpu = wmm_sim::exec::Gpu::new(chip);
        let spec = wmm_sim::exec::LaunchSpec {
            groups: vec![wmm_sim::exec::KernelGroup {
                program: std::sync::Arc::new(app.spec().phases[0].program.clone()),
                blocks: BLOCKS,
                threads_per_block: TPB,
                role: wmm_sim::exec::Role::App,
            }],
            global_words: app.spec().global_words,
            shared_words: 0,
            init_image: vec![],
            init: vec![],
            max_turns: 900_000,
            randomize_ids: false,
        };
        let r = gpu.run(&spec, 3);
        assert!(app.check(&r.memory).is_ok());
        let mut broken = r.memory.clone();
        // Empty one bucket: its keys disappear.
        broken[HEADS as usize] = 0;
        assert!(app.check(&broken).is_err());
        let _ = h;
    }
}
