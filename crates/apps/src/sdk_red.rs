//! `sdk-red`: the threadfence reduction from the CUDA SDK samples.
//!
//! Each block reduces its slice in shared memory; its first thread
//! stores the block's partial sum, issues `__threadfence()`, and
//! atomically increments a counter. The block that observes the final
//! count combines all partials into the result. The fence is what makes
//! the partial visible before the counter increment — exactly the fence
//! the SDK sample carries. The `-nf` variant strips it, so the combining
//! block can read a stale partial.
//!
//! Post-condition: the GPU sum matches the CPU reference.

use wmm_core::app::{AppSpec, Application, Phase};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::BinOp;
use wmm_sim::word::Word;

/// Elements to reduce.
pub const N: u32 = 256;
/// Word address of the block-completion counter.
pub const COUNTER: u32 = 0;
/// Base of the per-block partial sums.
pub const PARTIALS: u32 = 128;
/// Word address of the final result.
pub const RESULT: u32 = 192;
/// Base of the input array.
pub const INPUT: u32 = 256;

/// Blocks in the grid.
pub const BLOCKS: u32 = 8;
/// Threads per block.
pub const TPB: u32 = 32;

/// The `sdk-red` case study (or its `-nf` variant). See the module docs.
#[derive(Debug, Clone)]
pub struct SdkRed {
    spec: AppSpec,
    expected: Word,
}

fn input(i: u32) -> Word {
    (i % 7) + 1
}

impl SdkRed {
    /// Build the application; `fenced` selects the original (with the
    /// SDK's `__threadfence()`) or the `-nf` variant.
    pub fn new(fenced: bool) -> Self {
        let expected: Word = (0..N).map(input).sum();
        let init: Vec<(u32, Word)> = (0..N).map(|i| (INPUT + i, input(i))).collect();
        let spec = AppSpec {
            name: if fenced { "sdk-red" } else { "sdk-red-nf" }.into(),
            phases: vec![Phase {
                program: kernel(fenced),
                blocks: BLOCKS,
                threads_per_block: TPB,
                shared_words: TPB,
            }],
            global_words: INPUT + N,
            init,
            max_turns_per_phase: 600_000,
        };
        SdkRed { spec, expected }
    }

    /// The CPU reference result.
    pub fn expected(&self) -> Word {
        self.expected
    }
}

impl Application for SdkRed {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn check(&self, memory: &[Word]) -> Result<(), String> {
        let got = memory[RESULT as usize];
        if got == self.expected {
            Ok(())
        } else {
            Err(format!("sum = {got}, expected {}", self.expected))
        }
    }
}

fn kernel(fenced: bool) -> wmm_sim::Program {
    let mut b = KernelBuilder::new(if fenced { "sdk-red" } else { "sdk-red-nf" });
    let tid = b.tid();
    let bid = b.bid();
    let bdim = b.block_dim();
    let gdim = b.grid_dim();

    // Load this thread's element (N == BLOCKS * TPB).
    let t0 = b.mul(bid, bdim);
    let gi = b.add(tid, t0);
    let in_base = b.const_(INPUT);
    let ia = b.add(in_base, gi);
    let v = b.load_global(ia);
    b.store_shared(tid, v);
    b.barrier();

    // Shared-memory tree reduction.
    let one = b.const_(1);
    let zero = b.const_(0);
    let i = b.shr(bdim, one);
    b.while_(
        |k| k.lt_u(zero, i),
        |k| {
            let active = k.lt_u(tid, i);
            k.if_(active, |k| {
                let other = k.add(tid, i);
                let x = k.load_shared(tid);
                let y = k.load_shared(other);
                let s = k.add(x, y);
                k.store_shared(tid, s);
            });
            k.barrier();
            k.bin_into(i, BinOp::Shr, i, one);
        },
    );

    // Lane 0: publish the partial, sync, count, maybe combine.
    let is0 = b.eq(tid, zero);
    b.if_(is0, |k| {
        let partial = k.load_shared(zero);
        let partials = k.const_(PARTIALS);
        let pa = k.add(partials, bid);
        k.store_global(pa, partial);
        if fenced {
            k.fence_device(); // the SDK's __threadfence()
        }
        let counter = k.const_(COUNTER);
        let one = k.const_(1);
        let old = k.atomic_add_global(counter, one);
        let last = k.sub(gdim, one);
        let am_last = k.eq(old, last);
        k.if_(am_last, |k| {
            let total = k.reg();
            k.assign_const(total, 0);
            let j = k.reg();
            k.assign_const(j, 0);
            k.while_(
                |k| k.lt_u(j, gdim),
                |k| {
                    let pj = k.add(partials, j);
                    let p = k.load_global(pj);
                    k.bin_into(total, BinOp::Add, total, p);
                    k.bin_into(j, BinOp::Add, j, one);
                },
            );
            let res = k.const_(RESULT);
            k.store_global(res, total);
        });
    });
    b.finish().expect("sdk-red kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_core::env::{AppHarness, Environment, RunVerdict};
    use wmm_sim::chip::Chip;

    fn sc_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn both_variants_correct_under_sequential_consistency() {
        for fenced in [true, false] {
            let app = SdkRed::new(fenced);
            let chip = sc_chip();
            let h = AppHarness::new(&chip, &app);
            for seed in 0..5 {
                let out = h.run_once(&Environment::native(), seed);
                assert_eq!(out.verdict, RunVerdict::Pass, "fenced={fenced} seed={seed}");
            }
        }
    }

    #[test]
    fn fence_count_matches_variant() {
        assert_eq!(SdkRed::new(true).spec().fence_count(), 1);
        assert_eq!(SdkRed::new(false).spec().fence_count(), 0);
    }

    #[test]
    fn nf_is_the_stripped_original() {
        let orig = SdkRed::new(true);
        let nf = SdkRed::new(false);
        assert_eq!(
            orig.spec().strip().phases[0].program.insts,
            nf.spec().phases[0].program.insts
        );
    }
}
