//! # wmm-obs — deterministic observability primitives
//!
//! The telemetry layer for the weak-memory stack: provenance counters
//! for the executor's weakness channels, fixed-bucket latency
//! histograms for wall-clock spans, and a bounded structured event log
//! for `repro trace`. The crate sits at the bottom of the graph
//! (no dependencies) so every layer — simulator, litmus runner,
//! campaign facade, server, CLI — can share the same types.
//!
//! Two strictly separated kinds of data flow through here:
//!
//! * **Deterministic counters** ([`ChannelCounts`], [`Provenance`],
//!   [`MetricsRegistry`] counters): pure counts taken at existing
//!   decision points in the executor. They draw no randomness and are
//!   folded commutatively, so they are bit-identical across worker
//!   counts and reruns at a fixed seed — safe to assert on in tests
//!   and to grep in CI.
//! * **Wall-clock spans** ([`LatencyHistogram`], [`SpanTimer`],
//!   [`MetricsRegistry`] spans): machine-dependent timings. They are
//!   kept out of every digest and every equivalence check, and every
//!   JSON rendering labels them as such (`spans_us`).
//!
//! Everything is allocation-light: counters are plain `u64` fields,
//! histograms are fixed arrays, and the event log is a bounded ring
//! buffer that drops (and counts) the oldest entries.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Channel provenance counters (deterministic)
// ---------------------------------------------------------------------------

/// Per-channel counts of the weakness events that fired during one run
/// (or, after merging, across a whole campaign).
///
/// Each field is incremented at exactly one pre-existing decision point
/// in the executor — no new randomness is drawn — so the counts are as
/// deterministic as the run itself. `window_global + window_shared`
/// always equals the executor's legacy `bypasses` aggregate
/// ([`ChannelCounts::window`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounts {
    /// Global-space in-flight-window bypasses (out-of-order completions).
    pub window_global: u64,
    /// Shared-space in-flight-window bypasses (scoped chips only).
    pub window_shared: u64,
    /// Global loads served a stale line by an incoherent per-SM L1.
    pub l1_stale: u64,
    /// Device fences that invalidated (refreshed) the issuing SM's L1.
    pub fence_inval: u64,
    /// Atomic read halves performed fresh at the shared L2, bypassing
    /// an incoherent L1 (a *strengthening* event — it is why lock words
    /// stay exact on Tesla-class chips).
    pub atomic_read_through: u64,
}

impl ChannelCounts {
    /// Stable field names, in JSON rendering order.
    pub const NAMES: [&'static str; 5] = [
        "window_global",
        "window_shared",
        "l1_stale",
        "fence_inval",
        "atomic_read_through",
    ];

    /// The counts as an array, in [`ChannelCounts::NAMES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [
            self.window_global,
            self.window_shared,
            self.l1_stale,
            self.fence_inval,
            self.atomic_read_through,
        ]
    }

    /// Total in-flight-window bypasses — the executor's legacy
    /// `bypasses` aggregate, now split by space.
    pub fn window(&self) -> u64 {
        self.window_global + self.window_shared
    }

    /// Sum over every channel.
    pub fn total(&self) -> u64 {
        self.as_array().iter().sum()
    }

    /// True when no channel fired at all.
    pub fn is_zero(&self) -> bool {
        *self == ChannelCounts::default()
    }

    /// Accumulate another set of counts (commutative, so parallel
    /// fold order cannot change the result).
    pub fn add(&mut self, other: &ChannelCounts) {
        self.window_global += other.window_global;
        self.window_shared += other.window_shared;
        self.l1_stale += other.l1_stale;
        self.fence_inval += other.fence_inval;
        self.atomic_read_through += other.atomic_read_through;
    }

    /// Single-line JSON object, keys in [`ChannelCounts::NAMES`] order.
    pub fn to_json(&self) -> String {
        let parts: Vec<String> = Self::NAMES
            .iter()
            .zip(self.as_array())
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for ChannelCounts {
    /// Compact human form listing only the channels that fired, e.g.
    /// `41 window-global + 2 l1-stale`; `none` when all zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LABELS: [&str; 5] = [
            "window-global",
            "window-shared",
            "l1-stale",
            "fence-inval",
            "atomic-rt",
        ];
        let parts: Vec<String> = LABELS
            .iter()
            .zip(self.as_array())
            .filter(|(_, v)| *v > 0)
            .map(|(l, v)| format!("{v} {l}"))
            .collect();
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join(" + "))
        }
    }
}

/// Per-outcome weak-run attribution: how many weak runs each channel
/// *explains*.
///
/// Where [`ChannelCounts`] counts raw events (a single stressed run can
/// fire hundreds of window bypasses), `Provenance` attributes each
/// **weak run** to exactly one channel, chosen from the set of channels
/// that fired during that run by a fixed priority:
///
/// 1. [`l1_stale`](ChannelCounts::l1_stale) — a structural stale hit is
///    the rarest and most specific signal;
/// 2. [`window_shared`](ChannelCounts::window_shared) — scoped-channel
///    reordering;
/// 3. [`window_global`](ChannelCounts::window_global) — the common case
///    under global stress;
/// 4. [`atomic_read_through`](ChannelCounts::atomic_read_through), then
///    [`fence_inval`](ChannelCounts::fence_inval) — strengthening
///    events; a weak run explained only by these is suspicious but
///    still accounted;
/// 5. `unattributed` — no channel fired at all.
///
/// Attributing one run to one channel makes the invariant trivial and
/// testable: the buckets of an outcome's `Provenance` always sum to
/// that outcome's weak count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Weak runs attributed to a global-space window bypass.
    pub window_global: u64,
    /// Weak runs attributed to a shared-space window bypass.
    pub window_shared: u64,
    /// Weak runs attributed to an incoherent-L1 stale hit.
    pub l1_stale: u64,
    /// Weak runs in which only atomic read-throughs fired.
    pub atomic_read_through: u64,
    /// Weak runs in which only fence invalidations fired.
    pub fence_inval: u64,
    /// Weak runs during which no channel fired at all.
    pub unattributed: u64,
}

impl Provenance {
    /// Stable bucket names, in JSON rendering order.
    pub const NAMES: [&'static str; 6] = [
        "window_global",
        "window_shared",
        "l1_stale",
        "atomic_read_through",
        "fence_inval",
        "unattributed",
    ];

    /// The buckets as an array, in [`Provenance::NAMES`] order.
    pub fn as_array(&self) -> [u64; 6] {
        [
            self.window_global,
            self.window_shared,
            self.l1_stale,
            self.atomic_read_through,
            self.fence_inval,
            self.unattributed,
        ]
    }

    /// Attribute one weak run to the highest-priority channel that
    /// fired in `fired` (see the type docs for the priority order).
    pub fn attribute(&mut self, fired: &ChannelCounts) {
        if fired.l1_stale > 0 {
            self.l1_stale += 1;
        } else if fired.window_shared > 0 {
            self.window_shared += 1;
        } else if fired.window_global > 0 {
            self.window_global += 1;
        } else if fired.atomic_read_through > 0 {
            self.atomic_read_through += 1;
        } else if fired.fence_inval > 0 {
            self.fence_inval += 1;
        } else {
            self.unattributed += 1;
        }
    }

    /// Total attributed runs — always equals the weak count of the
    /// histogram entry this provenance belongs to.
    pub fn total(&self) -> u64 {
        self.as_array().iter().sum()
    }

    /// True when no run has been attributed.
    pub fn is_zero(&self) -> bool {
        *self == Provenance::default()
    }

    /// Accumulate another attribution (commutative).
    pub fn add(&mut self, other: &Provenance) {
        self.window_global += other.window_global;
        self.window_shared += other.window_shared;
        self.l1_stale += other.l1_stale;
        self.atomic_read_through += other.atomic_read_through;
        self.fence_inval += other.fence_inval;
        self.unattributed += other.unattributed;
    }

    /// Single-line JSON object, keys in [`Provenance::NAMES`] order.
    pub fn to_json(&self) -> String {
        let parts: Vec<String> = Self::NAMES
            .iter()
            .zip(self.as_array())
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for Provenance {
    /// Compact human form listing only the nonzero buckets, e.g.
    /// `39 window + 2 l1-stale`; `-` when empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const LABELS: [&str; 6] = [
            "window",
            "shared-window",
            "l1-stale",
            "atomic-rt",
            "fence-inval",
            "unattributed",
        ];
        let parts: Vec<String> = LABELS
            .iter()
            .zip(self.as_array())
            .filter(|(_, v)| *v > 0)
            .map(|(l, v)| format!("{v} {l}"))
            .collect();
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join(" + "))
        }
    }
}

// ---------------------------------------------------------------------------
// Wall-clock latency histograms (non-deterministic)
// ---------------------------------------------------------------------------

/// Number of power-of-two latency buckets (bucket 31 tops out above
/// half an hour in microseconds — far beyond any span here).
const BUCKETS: usize = 32;

/// A fixed-bucket wall-clock latency histogram.
///
/// Bucket `i > 0` holds samples with `us` in `[2^(i-1), 2^i)`; bucket 0
/// holds zero-microsecond samples. Recording is allocation-free and
/// O(1); percentiles are reported as the upper edge of the covering
/// bucket (a deterministic function of the recorded samples, but the
/// samples themselves are wall-clock and therefore machine-dependent —
/// never fold these into a digest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    n: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            n: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(us: u64) -> usize {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[Self::bucket(us)] += 1;
        self.n += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record one sample as a [`Duration`].
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.n).unwrap_or(0)
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `p`-th percentile (0.0–1.0) as the upper edge of the bucket
    /// containing it, clamped to the observed maximum; 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return edge.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Merge another histogram into this one (commutative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.n += other.n;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Single-line JSON summary: count, p50/p90/p99, mean and max, all
    /// in microseconds.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \"max_us\": {}}}",
            self.n,
            self.percentile_us(0.50),
            self.percentile_us(0.90),
            self.percentile_us(0.99),
            self.mean_us(),
            self.max_us
        )
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={}us p90={}us p99={}us max={}us",
            self.n,
            self.percentile_us(0.50),
            self.percentile_us(0.90),
            self.percentile_us(0.99),
            self.max_us
        )
    }
}

/// A started monotonic span; finish it into a [`MetricsRegistry`].
#[derive(Debug)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Stop and record the elapsed time under `name` in `reg`.
    pub fn finish(self, reg: &mut MetricsRegistry, name: &str) {
        reg.record_span(name, self.0.elapsed());
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A named collection of counters (deterministic) and wall-clock span
/// histograms (non-deterministic), kept strictly apart.
///
/// The registry itself is plain data; callers that share one across
/// threads wrap it in a `Mutex` (the campaign server does). The JSON
/// rendering separates the two kinds under `"counters"` and
/// `"spans_us"` so a report can never accidentally fold wall-clock
/// values into a deterministic digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a wall-clock span sample under `name`.
    pub fn record_span(&mut self, name: &str, d: Duration) {
        if let Some(h) = self.spans.get_mut(name) {
            h.record(d);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(d);
            self.spans.insert(name.to_string(), h);
        }
    }

    /// The span histogram for `name`, if any sample was recorded.
    pub fn span(&self, name: &str) -> Option<&LatencyHistogram> {
        self.spans.get(name)
    }

    /// Iterate spans in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another registry into this one (commutative).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.incr(k, *v);
        }
        for (k, h) in &other.spans {
            if let Some(mine) = self.spans.get_mut(k) {
                mine.merge(h);
            } else {
                self.spans.insert(k.clone(), h.clone());
            }
        }
    }

    /// Single-line JSON object with deterministic counters under
    /// `"counters"` and wall-clock histograms under `"spans_us"`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(k, h)| format!("\"{k}\": {}", h.to_json()))
            .collect();
        format!(
            "{{\"counters\": {{{}}}, \"spans_us\": {{{}}}}}",
            counters.join(", "),
            spans.join(", ")
        )
    }
}

// ---------------------------------------------------------------------------
// Bounded event log
// ---------------------------------------------------------------------------

/// A bounded ring buffer of structured events.
///
/// When full, pushing drops the **oldest** entry and counts the drop,
/// so a trace of a long campaign keeps the most recent window and
/// reports exactly how much it shed — the log can never grow without
/// bound.
#[derive(Debug, Clone)]
pub struct EventLog<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> EventLog<T> {
    /// A log holding at most `cap` events (`cap` of 0 keeps nothing
    /// and counts every push as dropped).
    pub fn new(cap: usize) -> Self {
        EventLog {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap,
            dropped: 0,
        }
    }

    /// Append an event, evicting (and counting) the oldest when full.
    pub fn push(&mut self, ev: T) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events were evicted (or rejected by a zero capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_counts_add_and_window_invariant() {
        let mut a = ChannelCounts {
            window_global: 3,
            window_shared: 1,
            ..Default::default()
        };
        let b = ChannelCounts {
            window_global: 2,
            l1_stale: 4,
            fence_inval: 1,
            atomic_read_through: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.window(), 6);
        assert_eq!(a.total(), 16);
        assert!(!a.is_zero());
        assert!(ChannelCounts::default().is_zero());
    }

    #[test]
    fn channel_counts_json_and_display() {
        let c = ChannelCounts {
            window_global: 39,
            l1_stale: 2,
            ..Default::default()
        };
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"window_global\": 39"));
        assert!(j.contains("\"l1_stale\": 2"));
        assert!(!j.contains('\n'));
        assert_eq!(c.to_string(), "39 window-global + 2 l1-stale");
        assert_eq!(ChannelCounts::default().to_string(), "none");
    }

    #[test]
    fn provenance_attribution_follows_the_priority_order() {
        let mut p = Provenance::default();
        // l1 wins over window.
        p.attribute(&ChannelCounts {
            window_global: 10,
            l1_stale: 1,
            ..Default::default()
        });
        // shared window wins over global window.
        p.attribute(&ChannelCounts {
            window_global: 10,
            window_shared: 1,
            ..Default::default()
        });
        // global window wins over the strengthening channels.
        p.attribute(&ChannelCounts {
            window_global: 1,
            atomic_read_through: 7,
            fence_inval: 3,
            ..Default::default()
        });
        // nothing fired.
        p.attribute(&ChannelCounts::default());
        assert_eq!(p.l1_stale, 1);
        assert_eq!(p.window_shared, 1);
        assert_eq!(p.window_global, 1);
        assert_eq!(p.unattributed, 1);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn provenance_json_and_display() {
        let mut p = Provenance::default();
        for _ in 0..39 {
            p.attribute(&ChannelCounts {
                window_global: 1,
                ..Default::default()
            });
        }
        for _ in 0..2 {
            p.attribute(&ChannelCounts {
                l1_stale: 1,
                ..Default::default()
            });
        }
        assert_eq!(p.to_string(), "39 window + 2 l1-stale");
        let j = p.to_json();
        assert!(j.contains("\"window_global\": 39"));
        assert!(j.contains("\"l1_stale\": 2"));
        assert!(j.contains("\"unattributed\": 0"));
        assert!(!j.contains('\n'));
        assert_eq!(Provenance::default().to_string(), "-");
    }

    #[test]
    fn latency_histogram_percentiles_are_bucket_edges() {
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 3, 3, 7, 100, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 1000);
        // p50 rank 4 of [0,1,3,3,7,100,1000] -> the [2,4) bucket, edge 3.
        assert_eq!(h.percentile_us(0.50), 3);
        // p100 clamps to the observed max, not the bucket edge (1023).
        assert_eq!(h.percentile_us(1.0), 1000);
        assert_eq!(LatencyHistogram::new().percentile_us(0.5), 0);
    }

    #[test]
    fn latency_histogram_merge_matches_sequential_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for us in [5, 10, 15] {
            a.record_us(us);
            both.record_us(us);
        }
        for us in [20, 1_000_000] {
            b.record_us(us);
            both.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert!(a.to_json().contains("\"n\": 5"));
    }

    #[test]
    fn registry_separates_counters_from_spans() {
        let mut r = MetricsRegistry::new();
        r.incr("jobs", 2);
        r.incr("jobs", 1);
        r.record_span("execute", Duration::from_micros(150));
        assert_eq!(r.counter("jobs"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.span("execute").unwrap().count(), 1);
        let j = r.to_json();
        assert!(j.contains("\"counters\": {\"jobs\": 3}"));
        assert!(j.contains("\"spans_us\": {\"execute\": {"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn registry_merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.incr("x", 1);
        a.record_span("s", Duration::from_micros(10));
        let mut b = MetricsRegistry::new();
        b.incr("x", 2);
        b.incr("y", 5);
        b.record_span("s", Duration::from_micros(20));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.span("s").unwrap().count(), 2);
    }

    #[test]
    fn event_log_bounds_and_counts_drops() {
        let mut log = EventLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        let mut zero = EventLog::new(0);
        zero.push(1);
        assert!(zero.is_empty());
        assert_eq!(zero.dropped(), 1);
    }

    #[test]
    fn span_timer_records_into_the_registry() {
        let mut r = MetricsRegistry::new();
        let t = SpanTimer::start();
        assert!(t.elapsed() < Duration::from_secs(60));
        t.finish(&mut r, "compile");
        assert_eq!(r.span("compile").unwrap().count(), 1);
    }
}
