//! The communication-cycle shape catalogue.
//!
//! A litmus *shape* is an abstract multi-threaded program over a handful
//! of shared locations: per thread, an ordered list of read and write
//! [events](Event). The catalogue enumerates the classic critical-cycle
//! families of the weak-memory literature — the Fig. 2 trio (MP, LB, SB)
//! the paper tests by hand, the remaining two-thread two-location cycles
//! (S, R, 2+2W), the three-thread cycles (WRC, RWC, ISA2), the
//! four-thread independent-reads shape (IRIW), the per-location
//! coherence sanity tests (CoRR, CoWW), and fenced variants
//! (MP+fences, SB+fences) whose kernels carry `fence()` events and so
//! must never exhibit their base shape's weak outcomes.
//!
//! Shapes carry *no* weak-outcome predicate: the forbidden outcomes of
//! every shape are derived by exhaustively interleaving its events under
//! sequential consistency ([`crate::oracle`]).

use std::fmt;
use std::str::FromStr;
use wmm_litmus::Observer;

/// One abstract memory event of a litmus shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Write `val` to location `loc`.
    W {
        /// Location index (0 = `x`, 1 = `y`, 2 = `z`).
        loc: u32,
        /// The written value (non-zero; memory starts zeroed).
        val: u32,
    },
    /// Read location `loc` into the next observer register.
    R {
        /// Location index.
        loc: u32,
    },
    /// A device-level memory fence. Invisible to the SC oracle (under
    /// sequential consistency a fence is a no-op), but emitted as a
    /// `fence()` in the kernel — so a fenced shape keeps the SC set of
    /// its unfenced base while its weak outcomes become unobservable on
    /// the simulated hardware.
    Fence,
}

/// An abstract litmus test: named threads of events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestEvents {
    /// The shape's short name (e.g. `"MP"`).
    pub name: String,
    /// Per-thread event lists, thread order = block order.
    pub threads: Vec<Vec<Event>>,
}

impl TestEvents {
    /// Number of distinct locations the events touch.
    pub fn num_locs(&self) -> u32 {
        self.threads
            .iter()
            .flatten()
            .filter_map(|e| match e {
                Event::W { loc, .. } | Event::R { loc } => Some(loc + 1),
                Event::Fence => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of read events (= observer registers), thread-major order.
    pub fn num_reads(&self) -> u32 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| matches!(e, Event::R { .. }))
            .count() as u32
    }

    /// The observers of this shape's outcome vector: one register per
    /// read (thread-major order), then the final memory value of every
    /// location written more than once — for those, *which* write lands
    /// last is part of the outcome (S, R, 2+2W, CoWW).
    pub fn observers(&self) -> Vec<Observer> {
        let mut out: Vec<Observer> = (0..self.num_reads()).map(Observer::Reg).collect();
        let mut writes_per_loc = vec![0u32; self.num_locs() as usize];
        for e in self.threads.iter().flatten() {
            if let Event::W { loc, .. } = e {
                writes_per_loc[*loc as usize] += 1;
            }
        }
        for (loc, &n) in writes_per_loc.iter().enumerate() {
            if n >= 2 {
                out.push(Observer::FinalMem(loc as u32));
            }
        }
        out
    }
}

/// The generated shape catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// Message passing (Fig. 2).
    Mp,
    /// Load buffering (Fig. 2).
    Lb,
    /// Store buffering (Fig. 2).
    Sb,
    /// Store-to-read causality: `Wx2; Wy1 ∥ Ry; Wx1`.
    S,
    /// Read-to-write causality: `Wx1; Wy1 ∥ Wy2; Rx`.
    R,
    /// Two-plus-two writes: `Wx1; Wy2 ∥ Wy1; Wx2`.
    TwoPlusTwoW,
    /// Write-to-read causality, three threads.
    Wrc,
    /// Read-to-write causality, three threads.
    Rwc,
    /// The ISA2 three-thread transitive cycle.
    Isa2,
    /// Independent reads of independent writes, four threads.
    Iriw,
    /// Coherence of read-read pairs on one location.
    CoRR,
    /// Coherence of write-write pairs on one location.
    CoWW,
    /// Message passing with a device fence between each thread's two
    /// accesses: the weak outcome becomes unobservable, while the SC
    /// oracle (fence-blind) derives the same forbidden set as [`Shape::Mp`].
    MpFences,
    /// Store buffering with a device fence between each thread's write
    /// and read: likewise never weak on hardware.
    SbFences,
}

impl Shape {
    /// Every shape in the catalogue. The Fig. 2 trio stays at positions
    /// 0..3 (tuning seed formulas index into this array); new shapes are
    /// appended.
    pub const ALL: [Shape; 14] = [
        Shape::Mp,
        Shape::Lb,
        Shape::Sb,
        Shape::S,
        Shape::R,
        Shape::TwoPlusTwoW,
        Shape::Wrc,
        Shape::Rwc,
        Shape::Isa2,
        Shape::Iriw,
        Shape::CoRR,
        Shape::CoWW,
        Shape::MpFences,
        Shape::SbFences,
    ];

    /// The paper's Fig. 2 trio — the shapes the tuning pipeline
    /// campaigns over.
    pub const TRIO: [Shape; 3] = [Shape::Mp, Shape::Lb, Shape::Sb];

    /// The conventional short name.
    pub fn short(&self) -> &'static str {
        match self {
            Shape::Mp => "MP",
            Shape::Lb => "LB",
            Shape::Sb => "SB",
            Shape::S => "S",
            Shape::R => "R",
            Shape::TwoPlusTwoW => "2+2W",
            Shape::Wrc => "WRC",
            Shape::Rwc => "RWC",
            Shape::Isa2 => "ISA2",
            Shape::Iriw => "IRIW",
            Shape::CoRR => "CoRR",
            Shape::CoWW => "CoWW",
            Shape::MpFences => "MP+fences",
            Shape::SbFences => "SB+fences",
        }
    }

    /// The abstract event structure of the shape. Every outcome-relevant
    /// fact about the shape — including which outcomes are forbidden — is
    /// derived from this list; nothing else is stored per shape.
    pub fn events(&self) -> TestEvents {
        use Event::{R, W};
        let (x, y, z) = (0u32, 1u32, 2u32);
        let threads: Vec<Vec<Event>> = match self {
            Shape::Mp => vec![
                vec![W { loc: x, val: 1 }, W { loc: y, val: 1 }],
                vec![R { loc: y }, R { loc: x }],
            ],
            Shape::Lb => vec![
                vec![R { loc: x }, W { loc: y, val: 1 }],
                vec![R { loc: y }, W { loc: x, val: 1 }],
            ],
            Shape::Sb => vec![
                vec![W { loc: x, val: 1 }, R { loc: y }],
                vec![W { loc: y, val: 1 }, R { loc: x }],
            ],
            Shape::S => vec![
                vec![W { loc: x, val: 2 }, W { loc: y, val: 1 }],
                vec![R { loc: y }, W { loc: x, val: 1 }],
            ],
            Shape::R => vec![
                vec![W { loc: x, val: 1 }, W { loc: y, val: 1 }],
                vec![W { loc: y, val: 2 }, R { loc: x }],
            ],
            Shape::TwoPlusTwoW => vec![
                vec![W { loc: x, val: 1 }, W { loc: y, val: 2 }],
                vec![W { loc: y, val: 1 }, W { loc: x, val: 2 }],
            ],
            Shape::Wrc => vec![
                vec![W { loc: x, val: 1 }],
                vec![R { loc: x }, W { loc: y, val: 1 }],
                vec![R { loc: y }, R { loc: x }],
            ],
            Shape::Rwc => vec![
                vec![W { loc: x, val: 1 }],
                vec![R { loc: x }, R { loc: y }],
                vec![W { loc: y, val: 1 }, R { loc: x }],
            ],
            Shape::Isa2 => vec![
                vec![W { loc: x, val: 1 }, W { loc: y, val: 1 }],
                vec![R { loc: y }, W { loc: z, val: 1 }],
                vec![R { loc: z }, R { loc: x }],
            ],
            Shape::Iriw => vec![
                vec![W { loc: x, val: 1 }],
                vec![W { loc: y, val: 1 }],
                vec![R { loc: x }, R { loc: y }],
                vec![R { loc: y }, R { loc: x }],
            ],
            Shape::CoRR => vec![vec![W { loc: x, val: 1 }], vec![R { loc: x }, R { loc: x }]],
            Shape::CoWW => vec![vec![W { loc: x, val: 1 }, W { loc: x, val: 2 }]],
            Shape::MpFences => vec![
                vec![W { loc: x, val: 1 }, Event::Fence, W { loc: y, val: 1 }],
                vec![R { loc: y }, Event::Fence, R { loc: x }],
            ],
            Shape::SbFences => vec![
                vec![W { loc: x, val: 1 }, Event::Fence, R { loc: y }],
                vec![W { loc: y, val: 1 }, Event::Fence, R { loc: x }],
            ],
        };
        TestEvents {
            name: self.short().to_string(),
            threads,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

impl FromStr for Shape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Shape::ALL
            .into_iter()
            .find(|sh| sh.short().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown litmus shape {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            Shape::ALL.iter().map(|s| s.short()).collect();
        assert_eq!(names.len(), Shape::ALL.len());
    }

    #[test]
    fn trio_is_fig2() {
        assert_eq!(Shape::TRIO.map(|s| s.short()), ["MP", "LB", "SB"]);
    }

    #[test]
    fn thread_counts() {
        assert_eq!(Shape::Mp.events().threads.len(), 2);
        assert_eq!(Shape::Wrc.events().threads.len(), 3);
        assert_eq!(Shape::Iriw.events().threads.len(), 4);
        assert_eq!(Shape::CoWW.events().threads.len(), 1);
    }

    #[test]
    fn observers_cover_reads_and_multiwritten_locations() {
        use wmm_litmus::Observer;
        // MP: two reads, no multi-written locations.
        assert_eq!(
            Shape::Mp.events().observers(),
            vec![Observer::Reg(0), Observer::Reg(1)]
        );
        // 2+2W: no reads, both locations written twice.
        assert_eq!(
            Shape::TwoPlusTwoW.events().observers(),
            vec![Observer::FinalMem(0), Observer::FinalMem(1)]
        );
        // S: one read plus the doubly-written x.
        assert_eq!(
            Shape::S.events().observers(),
            vec![Observer::Reg(0), Observer::FinalMem(0)]
        );
        // IRIW: four reads only.
        assert_eq!(Shape::Iriw.events().observers().len(), 4);
    }

    #[test]
    fn locations_counted() {
        assert_eq!(Shape::Mp.events().num_locs(), 2);
        assert_eq!(Shape::Isa2.events().num_locs(), 3);
        assert_eq!(Shape::CoRR.events().num_locs(), 1);
    }

    #[test]
    fn fenced_variants_mirror_their_base_shapes() {
        for (fenced, base) in [(Shape::MpFences, Shape::Mp), (Shape::SbFences, Shape::Sb)] {
            let fe = fenced.events();
            let be = base.events();
            // Same communication structure...
            assert_eq!(fe.num_locs(), be.num_locs(), "{fenced}");
            assert_eq!(fe.num_reads(), be.num_reads(), "{fenced}");
            assert_eq!(fe.observers(), be.observers(), "{fenced}");
            // ...plus exactly one fence per thread, between the accesses.
            for (ft, bt) in fe.threads.iter().zip(&be.threads) {
                assert_eq!(ft.len(), bt.len() + 1, "{fenced}");
                assert_eq!(ft[1], Event::Fence, "{fenced}");
                let unfenced: Vec<Event> =
                    ft.iter().copied().filter(|e| *e != Event::Fence).collect();
                assert_eq!(&unfenced, bt, "{fenced}");
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for s in Shape::ALL {
            assert_eq!(s.short().parse::<Shape>().unwrap(), s);
        }
        assert!("XYZ".parse::<Shape>().is_err());
        assert_eq!("iriw".parse::<Shape>().unwrap(), Shape::Iriw);
    }
}
