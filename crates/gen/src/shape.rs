//! The communication-cycle shape catalogue.
//!
//! A litmus *shape* is an abstract multi-threaded program over a handful
//! of shared locations: per thread, an ordered list of read, write,
//! fence and atomic read-modify-write [events](Event). The catalogue
//! enumerates the classic critical-cycle families of the weak-memory
//! literature — the Fig. 2 trio (MP, LB, SB) the paper tests by hand,
//! the remaining two-thread two-location cycles (S, R, 2+2W), the
//! three-thread cycles (WRC, RWC, ISA2), the four-thread
//! independent-reads shape (IRIW), the per-location coherence sanity
//! tests (CoRR, CoWW), device-fenced variants (MP/SB/WRC/ISA2/IRIW
//! +fences), *scoped* variants (MP.shared, SB.shared, CoRR.shared — the
//! same cycles run with all threads in one block, communicating through
//! `Space::Shared`) with block-fenced twins (MP.shared+fence_block,
//! SB.shared+fence_block — the cheap `membar.cta` rung that suffices
//! intra-block), *mixed-scope* shapes splitting one cycle across both
//! spaces (MP.mixed, ISA2.scoped), and atomic-RMW cycles (MP+CAS,
//! 2+2W.exch, CoAdd) whose read-modify-write events observe their old
//! value.
//!
//! Shapes carry *no* weak-outcome predicate: the forbidden outcomes of
//! every shape are derived by exhaustively interleaving its events under
//! sequential consistency ([`crate::oracle`]), where an RMW is a single
//! indivisible step and shared-space locations are per-block state.

use std::fmt;
use std::str::FromStr;
use wmm_litmus::{LitmusLayout, Observer, Placement};
use wmm_sim::ir::Space;

/// One abstract memory event of a litmus shape.
///
/// Read/write events carry the [`Space`] they target: `Space::Global`
/// is the device-wide weakly-ordered memory; `Space::Shared` is the
/// per-block scratch with its own (stress-provoked) relaxation level —
/// a shape whose threads communicate through it must run under
/// [`Placement::IntraBlock`] to communicate at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Write `val` to location `loc`.
    W {
        /// Location index (0 = `x`, 1 = `y`, 2 = `z`).
        loc: u32,
        /// The written value (non-zero; memory starts zeroed).
        val: u32,
        /// The memory space the location lives in.
        space: Space,
    },
    /// Read location `loc` into the next observer register.
    R {
        /// Location index.
        loc: u32,
        /// The memory space the location lives in.
        space: Space,
    },
    /// A device-level memory fence. Invisible to the SC oracle (under
    /// sequential consistency a fence is a no-op), but emitted as a
    /// `fence()` in the kernel — so a fenced shape keeps the SC set of
    /// its unfenced base while its weak outcomes become unobservable on
    /// the simulated hardware.
    Fence,
    /// A block-level memory fence (`membar.cta` / `__threadfence_block`):
    /// the cheap lower rung of the two-level fence hierarchy. Like
    /// [`Event::Fence`] it is invisible to the SC oracle; on the
    /// simulated hardware it orders only the thread's *shared-space*
    /// accesses, so it suffices for intra-block (scoped) shapes while
    /// leaving global-space reorderings observable.
    FenceBlock,
    /// `atomicCAS(loc, cmp, val)` — an indivisible read-modify-write:
    /// the old value lands in the next observer register; the write to
    /// `val` happens only if the old value equals `cmp`.
    Cas {
        /// Location index.
        loc: u32,
        /// The compare value.
        cmp: u32,
        /// The value written on success.
        val: u32,
        /// The memory space the location lives in.
        space: Space,
    },
    /// `atomicExch(loc, val)` — indivisible; the old value lands in the
    /// next observer register.
    Exch {
        /// Location index.
        loc: u32,
        /// The written value.
        val: u32,
        /// The memory space the location lives in.
        space: Space,
    },
    /// `atomicAdd(loc, val)` — indivisible; the old value lands in the
    /// next observer register.
    Add {
        /// Location index.
        loc: u32,
        /// The added value.
        val: u32,
        /// The memory space the location lives in.
        space: Space,
    },
}

impl Event {
    /// The location this event touches, if any (`None` for fences).
    pub fn loc(&self) -> Option<u32> {
        match self {
            Event::W { loc, .. }
            | Event::R { loc, .. }
            | Event::Cas { loc, .. }
            | Event::Exch { loc, .. }
            | Event::Add { loc, .. } => Some(*loc),
            Event::Fence | Event::FenceBlock => None,
        }
    }

    /// The memory space this event targets, if any.
    pub fn space(&self) -> Option<Space> {
        match self {
            Event::W { space, .. }
            | Event::R { space, .. }
            | Event::Cas { space, .. }
            | Event::Exch { space, .. }
            | Event::Add { space, .. } => Some(*space),
            Event::Fence | Event::FenceBlock => None,
        }
    }

    /// True if the event produces an observer register: plain reads and
    /// every RMW (whose old value is observed).
    pub fn is_read_like(&self) -> bool {
        matches!(
            self,
            Event::R { .. } | Event::Cas { .. } | Event::Exch { .. } | Event::Add { .. }
        )
    }

    /// True if the event may write its location: plain writes and every
    /// RMW (a CAS writes conditionally, but *may* write).
    pub fn may_write(&self) -> bool {
        matches!(
            self,
            Event::W { .. } | Event::Cas { .. } | Event::Exch { .. } | Event::Add { .. }
        )
    }
}

/// An abstract litmus test: named threads of events plus the placement
/// of those threads (distinct blocks, or one block sharing scoped
/// memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestEvents {
    /// The shape's short name (e.g. `"MP"`).
    pub name: String,
    /// Per-thread event lists; under [`Placement::InterBlock`] thread
    /// order = block order, under [`Placement::IntraBlock`] thread order
    /// = warp order within the single block.
    pub threads: Vec<Vec<Event>>,
    /// Where the threads sit relative to each other.
    pub placement: Placement,
}

impl TestEvents {
    /// Number of distinct locations the events touch.
    pub fn num_locs(&self) -> u32 {
        self.threads
            .iter()
            .flatten()
            .filter_map(|e| e.loc().map(|l| l + 1))
            .max()
            .unwrap_or(0)
    }

    /// Number of observer registers: one per read *or* RMW event (an
    /// RMW's old value is observed), thread-major order.
    pub fn num_reads(&self) -> u32 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| e.is_read_like())
            .count() as u32
    }

    /// The single memory space location `loc` is accessed in, or `None`
    /// if no event touches it.
    ///
    /// # Panics
    ///
    /// Panics if events access `loc` in *both* spaces — a location index
    /// names one cell, so mixing spaces would make the shape ambiguous.
    pub fn space_of(&self, loc: u32) -> Option<Space> {
        let mut found = None;
        for e in self.threads.iter().flatten() {
            if e.loc() == Some(loc) {
                let s = e.space().expect("located events carry a space");
                match found {
                    None => found = Some(s),
                    Some(prev) => assert_eq!(
                        prev, s,
                        "{}: location {loc} is accessed in both memory spaces",
                        self.name
                    ),
                }
            }
        }
        found
    }

    /// The distinct memory spaces the events touch, global first — the
    /// `"spaces"` axis suite output exposes so downstream tooling can
    /// filter scoped and mixed-scope rows without parsing shape names.
    pub fn spaces(&self) -> Vec<Space> {
        let mut out = Vec::new();
        for space in [Space::Global, Space::Shared] {
            if self
                .threads
                .iter()
                .flatten()
                .any(|e| e.space() == Some(space))
            {
                out.push(space);
            }
        }
        out
    }

    /// Words of per-block shared memory the emitted kernel needs under
    /// `layout` (0 if no event targets `Space::Shared`).
    pub fn shared_words_for(&self, layout: &LitmusLayout) -> u32 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| e.space() == Some(Space::Shared))
            .filter_map(Event::loc)
            .map(|l| layout.loc_addr(l) + 1)
            .max()
            .unwrap_or(0)
    }

    /// The observers of this shape's outcome vector: one register per
    /// read-like event (thread-major order), then the final memory value
    /// of every **global-space** location written (or RMW'd) more than
    /// once — for those, *which* write lands last is part of the outcome
    /// (S, R, 2+2W, CoWW, the RMW cycles). Shared-space locations get no
    /// final-memory observer: the per-block shared image is not part of
    /// a run's drained result, and the scoped catalogue shapes observe
    /// everything they need through registers.
    pub fn observers(&self) -> Vec<Observer> {
        let mut out: Vec<Observer> = (0..self.num_reads()).map(Observer::Reg).collect();
        let mut writes_per_loc = vec![0u32; self.num_locs() as usize];
        for e in self.threads.iter().flatten() {
            if e.may_write() {
                if let (Some(loc), Some(Space::Global)) = (e.loc(), e.space()) {
                    writes_per_loc[loc as usize] += 1;
                }
            }
        }
        for (loc, &n) in writes_per_loc.iter().enumerate() {
            if n >= 2 {
                out.push(Observer::FinalMem(loc as u32));
            }
        }
        out
    }
}

/// The generated shape catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// Message passing (Fig. 2).
    Mp,
    /// Load buffering (Fig. 2).
    Lb,
    /// Store buffering (Fig. 2).
    Sb,
    /// Store-to-read causality: `Wx2; Wy1 ∥ Ry; Wx1`.
    S,
    /// Read-to-write causality: `Wx1; Wy1 ∥ Wy2; Rx`.
    R,
    /// Two-plus-two writes: `Wx1; Wy2 ∥ Wy1; Wx2`.
    TwoPlusTwoW,
    /// Write-to-read causality, three threads.
    Wrc,
    /// Read-to-write causality, three threads.
    Rwc,
    /// The ISA2 three-thread transitive cycle.
    Isa2,
    /// Independent reads of independent writes, four threads.
    Iriw,
    /// Coherence of read-read pairs on one location.
    CoRR,
    /// Coherence of write-write pairs on one location.
    CoWW,
    /// Message passing with a device fence between each thread's two
    /// accesses: the weak outcome becomes unobservable, while the SC
    /// oracle (fence-blind) derives the same forbidden set as [`Shape::Mp`].
    MpFences,
    /// Store buffering with a device fence between each thread's write
    /// and read: likewise never weak on hardware.
    SbFences,
    /// Message passing scoped to one block: both threads share a block
    /// and communicate through `Space::Shared`. The oracle derives the
    /// same forbidden set as [`Shape::Mp`]; the shape goes observably
    /// weak only under intra-block shared-space stress (a quiescent
    /// block's scratchpad never reorders).
    MpShared,
    /// Store buffering scoped to one block — weak only under
    /// shared-space stress, like [`Shape::MpShared`].
    SbShared,
    /// Read-read coherence scoped to one block.
    CoRRShared,
    /// Message passing where the flag is a CAS chain: T0 publishes with
    /// `CAS(y, 0→1)`, T1 claims with `CAS(y, 1→2)` (its old value is the
    /// success/failure observer) and then reads the payload.
    MpCas,
    /// 2+2W with every write an `atomicExch` observing its old value —
    /// four registers plus both final-memory observers.
    TwoPlusTwoWExch,
    /// Add-based coherence: two threads `atomicAdd(x, 1)`; the old-value
    /// observers plus the final memory of `x` prove the increments never
    /// interleave internally (final must be 2, olds a permutation of
    /// {0, 1}).
    CoAdd,
    /// [`Shape::MpShared`] with a *block-level* fence between each
    /// thread's two shared accesses: the cheap `membar.cta` rung is
    /// enough to forbid the intra-block reordering, so this shape is
    /// never weak even under shared-space stress — the fenced twin that
    /// pins the two-level hierarchy.
    MpSharedFence,
    /// [`Shape::SbShared`] with a block-level fence between each
    /// thread's shared write and read — likewise never weak.
    SbSharedFence,
    /// Mixed-scope message passing: the *data* lives in shared memory,
    /// the *flag* in global memory, all threads in one block. Weak via
    /// either level of the hierarchy — the global flag store may bypass
    /// the older shared data store under global stress, and the younger
    /// shared data read may bypass the global flag read under shared
    /// stress — which is exactly the gap between `membar.cta` and
    /// `membar.gl` the paper probes.
    MpMixed,
    /// The ISA2 transitive chain with its first hop scoped: x and y in
    /// shared memory, z in global, three warps of one block.
    Isa2Scoped,
    /// [`Shape::Wrc`] with a device fence between each two-access
    /// thread's events: never weak.
    WrcFences,
    /// [`Shape::Isa2`] with device fences: never weak.
    Isa2Fences,
    /// [`Shape::Iriw`] with a device fence between each reader's two
    /// loads: never weak.
    IriwFences,
    /// [`Shape::CoRR`] with a device fence between the reader's two
    /// loads. On coherent-L1 chips this twins an already-never-weak
    /// shape; on chips with incoherent SM-private L1s — where bare
    /// `CoRR` goes observably weak via stale cached lines — the device
    /// fence refreshes the reader's L1, so this twin pins the structural
    /// channel's fence story at zero.
    CoRRFence,
}

impl Shape {
    /// Every shape in the catalogue. The Fig. 2 trio stays at positions
    /// 0..3 (tuning seed formulas index into this array); new shapes are
    /// appended.
    pub const ALL: [Shape; 28] = [
        Shape::Mp,
        Shape::Lb,
        Shape::Sb,
        Shape::S,
        Shape::R,
        Shape::TwoPlusTwoW,
        Shape::Wrc,
        Shape::Rwc,
        Shape::Isa2,
        Shape::Iriw,
        Shape::CoRR,
        Shape::CoWW,
        Shape::MpFences,
        Shape::SbFences,
        Shape::MpShared,
        Shape::SbShared,
        Shape::CoRRShared,
        Shape::MpCas,
        Shape::TwoPlusTwoWExch,
        Shape::CoAdd,
        Shape::MpSharedFence,
        Shape::SbSharedFence,
        Shape::MpMixed,
        Shape::Isa2Scoped,
        Shape::WrcFences,
        Shape::Isa2Fences,
        Shape::IriwFences,
        Shape::CoRRFence,
    ];

    /// The paper's Fig. 2 trio — the shapes the tuning pipeline
    /// campaigns over.
    pub const TRIO: [Shape; 3] = [Shape::Mp, Shape::Lb, Shape::Sb];

    /// The scoped (intra-block, pure shared-memory) shapes.
    pub const SCOPED: [Shape; 3] = [Shape::MpShared, Shape::SbShared, Shape::CoRRShared];

    /// The scoped shapes' block-fenced twins (never weak).
    pub const SCOPED_FENCED: [Shape; 2] = [Shape::MpSharedFence, Shape::SbSharedFence];

    /// The mixed-scope shapes: communication split across both memory
    /// spaces within one block.
    pub const MIXED: [Shape; 2] = [Shape::MpMixed, Shape::Isa2Scoped];

    /// The device-fenced variants of the wider (3/4-thread) cycles.
    pub const WIDE_FENCED: [Shape; 3] = [Shape::WrcFences, Shape::Isa2Fences, Shape::IriwFences];

    /// The atomic-RMW cycles.
    pub const RMW: [Shape; 3] = [Shape::MpCas, Shape::TwoPlusTwoWExch, Shape::CoAdd];

    /// The conventional short name.
    pub fn short(&self) -> &'static str {
        match self {
            Shape::Mp => "MP",
            Shape::Lb => "LB",
            Shape::Sb => "SB",
            Shape::S => "S",
            Shape::R => "R",
            Shape::TwoPlusTwoW => "2+2W",
            Shape::Wrc => "WRC",
            Shape::Rwc => "RWC",
            Shape::Isa2 => "ISA2",
            Shape::Iriw => "IRIW",
            Shape::CoRR => "CoRR",
            Shape::CoWW => "CoWW",
            Shape::MpFences => "MP+fences",
            Shape::SbFences => "SB+fences",
            Shape::MpShared => "MP.shared",
            Shape::SbShared => "SB.shared",
            Shape::CoRRShared => "CoRR.shared",
            Shape::MpCas => "MP+CAS",
            Shape::TwoPlusTwoWExch => "2+2W.exch",
            Shape::CoAdd => "CoAdd",
            Shape::MpSharedFence => "MP.shared+fence_block",
            Shape::SbSharedFence => "SB.shared+fence_block",
            Shape::MpMixed => "MP.mixed",
            Shape::Isa2Scoped => "ISA2.scoped",
            Shape::WrcFences => "WRC+fences",
            Shape::Isa2Fences => "ISA2+fences",
            Shape::IriwFences => "IRIW+fences",
            Shape::CoRRFence => "CoRR+fence",
        }
    }

    /// Where this shape's threads sit: shapes with any shared-space
    /// communication run all threads in one block
    /// ([`Placement::IntraBlock`]); everything else keeps the classic
    /// one-block-per-thread layout.
    pub fn placement(&self) -> Placement {
        match self {
            Shape::MpShared
            | Shape::SbShared
            | Shape::CoRRShared
            | Shape::MpSharedFence
            | Shape::SbSharedFence
            | Shape::MpMixed
            | Shape::Isa2Scoped => Placement::IntraBlock,
            _ => Placement::InterBlock,
        }
    }

    /// The distinct memory spaces the shape's events touch (see
    /// [`TestEvents::spaces`]).
    pub fn spaces(&self) -> Vec<Space> {
        self.events().spaces()
    }

    /// The abstract event structure of the shape. Every outcome-relevant
    /// fact about the shape — including which outcomes are forbidden — is
    /// derived from this list; nothing else is stored per shape.
    pub fn events(&self) -> TestEvents {
        let (x, y, z) = (0u32, 1u32, 2u32);
        let g = Space::Global;
        let sh = Space::Shared;
        let w = |loc, val, space| Event::W { loc, val, space };
        let r = |loc, space| Event::R { loc, space };
        let threads: Vec<Vec<Event>> = match self {
            Shape::Mp => vec![vec![w(x, 1, g), w(y, 1, g)], vec![r(y, g), r(x, g)]],
            Shape::Lb => vec![vec![r(x, g), w(y, 1, g)], vec![r(y, g), w(x, 1, g)]],
            Shape::Sb => vec![vec![w(x, 1, g), r(y, g)], vec![w(y, 1, g), r(x, g)]],
            Shape::S => vec![vec![w(x, 2, g), w(y, 1, g)], vec![r(y, g), w(x, 1, g)]],
            Shape::R => vec![vec![w(x, 1, g), w(y, 1, g)], vec![w(y, 2, g), r(x, g)]],
            Shape::TwoPlusTwoW => vec![vec![w(x, 1, g), w(y, 2, g)], vec![w(y, 1, g), w(x, 2, g)]],
            Shape::Wrc => vec![
                vec![w(x, 1, g)],
                vec![r(x, g), w(y, 1, g)],
                vec![r(y, g), r(x, g)],
            ],
            Shape::Rwc => vec![
                vec![w(x, 1, g)],
                vec![r(x, g), r(y, g)],
                vec![w(y, 1, g), r(x, g)],
            ],
            Shape::Isa2 => vec![
                vec![w(x, 1, g), w(y, 1, g)],
                vec![r(y, g), w(z, 1, g)],
                vec![r(z, g), r(x, g)],
            ],
            Shape::Iriw => vec![
                vec![w(x, 1, g)],
                vec![w(y, 1, g)],
                vec![r(x, g), r(y, g)],
                vec![r(y, g), r(x, g)],
            ],
            Shape::CoRR => vec![vec![w(x, 1, g)], vec![r(x, g), r(x, g)]],
            Shape::CoWW => vec![vec![w(x, 1, g), w(x, 2, g)]],
            Shape::MpFences => vec![
                vec![w(x, 1, g), Event::Fence, w(y, 1, g)],
                vec![r(y, g), Event::Fence, r(x, g)],
            ],
            Shape::SbFences => vec![
                vec![w(x, 1, g), Event::Fence, r(y, g)],
                vec![w(y, 1, g), Event::Fence, r(x, g)],
            ],
            Shape::MpShared => vec![vec![w(x, 1, sh), w(y, 1, sh)], vec![r(y, sh), r(x, sh)]],
            Shape::SbShared => vec![vec![w(x, 1, sh), r(y, sh)], vec![w(y, 1, sh), r(x, sh)]],
            Shape::CoRRShared => vec![vec![w(x, 1, sh)], vec![r(x, sh), r(x, sh)]],
            Shape::MpCas => vec![
                vec![
                    w(x, 1, g),
                    Event::Cas {
                        loc: y,
                        cmp: 0,
                        val: 1,
                        space: g,
                    },
                ],
                vec![
                    Event::Cas {
                        loc: y,
                        cmp: 1,
                        val: 2,
                        space: g,
                    },
                    r(x, g),
                ],
            ],
            Shape::TwoPlusTwoWExch => vec![
                vec![
                    Event::Exch {
                        loc: x,
                        val: 1,
                        space: g,
                    },
                    Event::Exch {
                        loc: y,
                        val: 2,
                        space: g,
                    },
                ],
                vec![
                    Event::Exch {
                        loc: y,
                        val: 1,
                        space: g,
                    },
                    Event::Exch {
                        loc: x,
                        val: 2,
                        space: g,
                    },
                ],
            ],
            Shape::CoAdd => vec![
                vec![Event::Add {
                    loc: x,
                    val: 1,
                    space: g,
                }],
                vec![Event::Add {
                    loc: x,
                    val: 1,
                    space: g,
                }],
            ],
            Shape::MpSharedFence => vec![
                vec![w(x, 1, sh), Event::FenceBlock, w(y, 1, sh)],
                vec![r(y, sh), Event::FenceBlock, r(x, sh)],
            ],
            Shape::SbSharedFence => vec![
                vec![w(x, 1, sh), Event::FenceBlock, r(y, sh)],
                vec![w(y, 1, sh), Event::FenceBlock, r(x, sh)],
            ],
            Shape::MpMixed => vec![vec![w(x, 1, sh), w(y, 1, g)], vec![r(y, g), r(x, sh)]],
            Shape::Isa2Scoped => vec![
                vec![w(x, 1, sh), w(y, 1, sh)],
                vec![r(y, sh), w(z, 1, g)],
                vec![r(z, g), r(x, sh)],
            ],
            Shape::WrcFences => vec![
                vec![w(x, 1, g)],
                vec![r(x, g), Event::Fence, w(y, 1, g)],
                vec![r(y, g), Event::Fence, r(x, g)],
            ],
            Shape::Isa2Fences => vec![
                vec![w(x, 1, g), Event::Fence, w(y, 1, g)],
                vec![r(y, g), Event::Fence, w(z, 1, g)],
                vec![r(z, g), Event::Fence, r(x, g)],
            ],
            Shape::IriwFences => vec![
                vec![w(x, 1, g)],
                vec![w(y, 1, g)],
                vec![r(x, g), Event::Fence, r(y, g)],
                vec![r(y, g), Event::Fence, r(x, g)],
            ],
            Shape::CoRRFence => vec![vec![w(x, 1, g)], vec![r(x, g), Event::Fence, r(x, g)]],
        };
        TestEvents {
            name: self.short().to_string(),
            threads,
            placement: self.placement(),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

impl FromStr for Shape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Shape::ALL
            .into_iter()
            .find(|sh| sh.short().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown litmus shape {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            Shape::ALL.iter().map(|s| s.short()).collect();
        assert_eq!(names.len(), Shape::ALL.len());
    }

    #[test]
    fn trio_is_fig2() {
        assert_eq!(Shape::TRIO.map(|s| s.short()), ["MP", "LB", "SB"]);
    }

    #[test]
    fn catalogue_covers_scoped_and_rmw_families() {
        assert!(Shape::ALL.len() >= 19);
        for s in Shape::SCOPED {
            assert!(Shape::ALL.contains(&s));
            assert_eq!(s.placement(), Placement::IntraBlock, "{s}");
            for e in s.events().threads.iter().flatten() {
                assert_eq!(e.space(), Some(Space::Shared), "{s}: {e:?}");
            }
        }
        for s in Shape::RMW {
            assert!(Shape::ALL.contains(&s));
            assert_eq!(s.placement(), Placement::InterBlock, "{s}");
            let has_rmw = s.events().threads.iter().flatten().any(|e| {
                matches!(
                    e,
                    Event::Cas { .. } | Event::Exch { .. } | Event::Add { .. }
                )
            });
            assert!(has_rmw, "{s} has no RMW event");
        }
    }

    #[test]
    fn catalogue_covers_the_scoped_relaxation_families() {
        assert!(Shape::ALL.len() >= 26);
        for s in Shape::SCOPED_FENCED {
            assert!(Shape::ALL.contains(&s));
            assert_eq!(s.placement(), Placement::IntraBlock, "{s}");
            // A block fence per thread, and every located event shared.
            let ev = s.events();
            for t in &ev.threads {
                assert_eq!(
                    t.iter().filter(|e| **e == Event::FenceBlock).count(),
                    1,
                    "{s}"
                );
            }
            assert_eq!(ev.spaces(), vec![Space::Shared], "{s}");
        }
        for s in Shape::MIXED {
            assert!(Shape::ALL.contains(&s));
            assert_eq!(s.placement(), Placement::IntraBlock, "{s}");
            assert_eq!(s.spaces(), vec![Space::Global, Space::Shared], "{s}");
        }
        for s in Shape::WIDE_FENCED {
            assert!(Shape::ALL.contains(&s));
            assert_eq!(s.placement(), Placement::InterBlock, "{s}");
            assert_eq!(s.spaces(), vec![Space::Global], "{s}");
            assert!(
                s.events()
                    .threads
                    .iter()
                    .flatten()
                    .any(|e| *e == Event::Fence),
                "{s}"
            );
        }
    }

    #[test]
    fn spaces_are_reported_per_shape() {
        assert_eq!(Shape::Mp.spaces(), vec![Space::Global]);
        assert_eq!(Shape::MpShared.spaces(), vec![Space::Shared]);
        assert_eq!(Shape::MpMixed.spaces(), vec![Space::Global, Space::Shared]);
        // The mixed shapes keep the location/space assignment coherent.
        assert_eq!(Shape::MpMixed.events().space_of(0), Some(Space::Shared));
        assert_eq!(Shape::MpMixed.events().space_of(1), Some(Space::Global));
        assert_eq!(Shape::Isa2Scoped.events().space_of(2), Some(Space::Global));
    }

    #[test]
    fn block_fenced_scoped_variants_mirror_their_unfenced_twins() {
        for (fenced, base) in [
            (Shape::MpSharedFence, Shape::MpShared),
            (Shape::SbSharedFence, Shape::SbShared),
        ] {
            let fe = fenced.events();
            let be = base.events();
            assert_eq!(fe.num_locs(), be.num_locs(), "{fenced}");
            assert_eq!(fe.num_reads(), be.num_reads(), "{fenced}");
            assert_eq!(fe.observers(), be.observers(), "{fenced}");
            for (ft, bt) in fe.threads.iter().zip(&be.threads) {
                assert_eq!(ft.len(), bt.len() + 1, "{fenced}");
                assert_eq!(ft[1], Event::FenceBlock, "{fenced}");
                let unfenced: Vec<Event> = ft
                    .iter()
                    .copied()
                    .filter(|e| *e != Event::FenceBlock)
                    .collect();
                assert_eq!(&unfenced, bt, "{fenced}");
            }
        }
    }

    #[test]
    fn thread_counts() {
        assert_eq!(Shape::Mp.events().threads.len(), 2);
        assert_eq!(Shape::Wrc.events().threads.len(), 3);
        assert_eq!(Shape::Iriw.events().threads.len(), 4);
        assert_eq!(Shape::CoWW.events().threads.len(), 1);
        assert_eq!(Shape::MpShared.events().threads.len(), 2);
        assert_eq!(Shape::CoAdd.events().threads.len(), 2);
    }

    #[test]
    fn observers_cover_reads_and_multiwritten_locations() {
        use wmm_litmus::Observer;
        // MP: two reads, no multi-written locations.
        assert_eq!(
            Shape::Mp.events().observers(),
            vec![Observer::Reg(0), Observer::Reg(1)]
        );
        // 2+2W: no reads, both locations written twice.
        assert_eq!(
            Shape::TwoPlusTwoW.events().observers(),
            vec![Observer::FinalMem(0), Observer::FinalMem(1)]
        );
        // S: one read plus the doubly-written x.
        assert_eq!(
            Shape::S.events().observers(),
            vec![Observer::Reg(0), Observer::FinalMem(0)]
        );
        // IRIW: four reads only.
        assert_eq!(Shape::Iriw.events().observers().len(), 4);
    }

    #[test]
    fn rmw_events_are_read_like_and_observed() {
        use wmm_litmus::Observer;
        // MP+CAS: both CAS olds and the payload read are registers; the
        // twice-CAS'd flag y also gets a final-memory observer.
        assert_eq!(
            Shape::MpCas.events().observers(),
            vec![
                Observer::Reg(0),
                Observer::Reg(1),
                Observer::Reg(2),
                Observer::FinalMem(1)
            ]
        );
        // 2+2W.exch: four old-value registers plus both locations.
        assert_eq!(
            Shape::TwoPlusTwoWExch.events().observers(),
            vec![
                Observer::Reg(0),
                Observer::Reg(1),
                Observer::Reg(2),
                Observer::Reg(3),
                Observer::FinalMem(0),
                Observer::FinalMem(1)
            ]
        );
        // CoAdd: two olds plus the contested cell.
        assert_eq!(
            Shape::CoAdd.events().observers(),
            vec![Observer::Reg(0), Observer::Reg(1), Observer::FinalMem(0)]
        );
    }

    #[test]
    fn shared_locations_get_no_final_memory_observer() {
        use wmm_litmus::Observer;
        // A shared-space 2+2W would have no drainable final memory: its
        // observers must be registers only (here: none).
        let ev = TestEvents {
            name: "shared-2+2W".into(),
            threads: vec![
                vec![
                    Event::W {
                        loc: 0,
                        val: 1,
                        space: Space::Shared,
                    },
                    Event::W {
                        loc: 1,
                        val: 2,
                        space: Space::Shared,
                    },
                ],
                vec![
                    Event::W {
                        loc: 1,
                        val: 1,
                        space: Space::Shared,
                    },
                    Event::W {
                        loc: 0,
                        val: 2,
                        space: Space::Shared,
                    },
                ],
            ],
            placement: Placement::IntraBlock,
        };
        assert!(!ev
            .observers()
            .iter()
            .any(|o| matches!(o, Observer::FinalMem(_))));
    }

    #[test]
    fn locations_counted() {
        assert_eq!(Shape::Mp.events().num_locs(), 2);
        assert_eq!(Shape::Isa2.events().num_locs(), 3);
        assert_eq!(Shape::CoRR.events().num_locs(), 1);
        assert_eq!(Shape::MpShared.events().num_locs(), 2);
    }

    #[test]
    fn space_of_is_consistent_per_location() {
        for s in Shape::ALL {
            let ev = s.events();
            for l in 0..ev.num_locs() {
                assert!(ev.space_of(l).is_some(), "{s}: unused location {l}");
            }
        }
        assert_eq!(Shape::Mp.events().space_of(0), Some(Space::Global));
        assert_eq!(Shape::MpShared.events().space_of(0), Some(Space::Shared));
    }

    #[test]
    #[should_panic(expected = "both memory spaces")]
    fn mixed_space_location_rejected() {
        let ev = TestEvents {
            name: "bad".into(),
            threads: vec![vec![
                Event::W {
                    loc: 0,
                    val: 1,
                    space: Space::Global,
                },
                Event::R {
                    loc: 0,
                    space: Space::Shared,
                },
            ]],
            placement: Placement::InterBlock,
        };
        let _ = ev.space_of(0);
    }

    #[test]
    fn shared_words_cover_the_scoped_layout() {
        let layout = LitmusLayout::standard(64, 4096);
        let ev = Shape::MpShared.events();
        // Locations 0 and 64: need 65 shared words.
        assert_eq!(ev.shared_words_for(&layout), 65);
        // Global-only shapes need none.
        assert_eq!(Shape::Mp.events().shared_words_for(&layout), 0);
    }

    #[test]
    fn fenced_variants_mirror_their_base_shapes() {
        for (fenced, base) in [(Shape::MpFences, Shape::Mp), (Shape::SbFences, Shape::Sb)] {
            let fe = fenced.events();
            let be = base.events();
            // Same communication structure...
            assert_eq!(fe.num_locs(), be.num_locs(), "{fenced}");
            assert_eq!(fe.num_reads(), be.num_reads(), "{fenced}");
            assert_eq!(fe.observers(), be.observers(), "{fenced}");
            // ...plus exactly one fence per thread, between the accesses.
            for (ft, bt) in fe.threads.iter().zip(&be.threads) {
                assert_eq!(ft.len(), bt.len() + 1, "{fenced}");
                assert_eq!(ft[1], Event::Fence, "{fenced}");
                let unfenced: Vec<Event> =
                    ft.iter().copied().filter(|e| *e != Event::Fence).collect();
                assert_eq!(&unfenced, bt, "{fenced}");
            }
        }
    }

    #[test]
    fn corr_fence_mirrors_corr() {
        let fe = Shape::CoRRFence.events();
        let be = Shape::CoRR.events();
        assert_eq!(fe.num_locs(), be.num_locs());
        assert_eq!(fe.num_reads(), be.num_reads());
        assert_eq!(fe.observers(), be.observers());
        assert_eq!(fe.threads[0], be.threads[0], "writer thread unchanged");
        assert_eq!(fe.threads[1][1], Event::Fence, "fence between the reads");
        let unfenced: Vec<Event> = fe.threads[1]
            .iter()
            .copied()
            .filter(|e| *e != Event::Fence)
            .collect();
        assert_eq!(unfenced, be.threads[1]);
        assert_eq!(Shape::CoRRFence.placement(), Placement::InterBlock);
    }

    #[test]
    fn scoped_variants_mirror_their_base_shapes_in_shared_space() {
        for (scoped, base) in [
            (Shape::MpShared, Shape::Mp),
            (Shape::SbShared, Shape::Sb),
            (Shape::CoRRShared, Shape::CoRR),
        ] {
            let se = scoped.events();
            let be = base.events();
            assert_eq!(se.num_locs(), be.num_locs(), "{scoped}");
            assert_eq!(se.num_reads(), be.num_reads(), "{scoped}");
            assert_eq!(se.placement, Placement::IntraBlock, "{scoped}");
            // Event-for-event identical apart from the space.
            for (st, bt) in se.threads.iter().zip(&be.threads) {
                assert_eq!(st.len(), bt.len(), "{scoped}");
                for (sev, bev) in st.iter().zip(bt) {
                    assert_eq!(sev.loc(), bev.loc(), "{scoped}");
                    assert_eq!(sev.is_read_like(), bev.is_read_like(), "{scoped}");
                    assert_eq!(sev.space(), Some(Space::Shared), "{scoped}");
                }
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for s in Shape::ALL {
            assert_eq!(s.short().parse::<Shape>().unwrap(), s);
        }
        assert!("XYZ".parse::<Shape>().is_err());
        assert_eq!("iriw".parse::<Shape>().unwrap(), Shape::Iriw);
        assert_eq!("mp.shared".parse::<Shape>().unwrap(), Shape::MpShared);
        assert_eq!("mp+cas".parse::<Shape>().unwrap(), Shape::MpCas);
    }
}
