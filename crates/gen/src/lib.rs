//! # wmm-gen — litmus-test generation and the SC-enumeration oracle
//!
//! The paper's testing environment is exercised on the three Fig. 2
//! idioms, each historically hand-written with a hardcoded weak-outcome
//! predicate. This crate replaces that trio with a *generator*:
//!
//! * [`shape`] — a catalogue of classic communication-cycle litmus
//!   shapes (MP, LB, SB, S, R, 2+2W, WRC, RWC, ISA2, IRIW, the
//!   coherence tests CoRR and CoWW, the device-fenced variants
//!   MP/SB/WRC/ISA2/IRIW+fences, the scoped variants MP.shared,
//!   SB.shared and CoRR.shared with their block-fenced twins
//!   `+fence_block`, the mixed-scope shapes MP.mixed and ISA2.scoped,
//!   and the atomic-RMW cycles MP+CAS, 2+2W.exch and CoAdd), each an
//!   abstract list of read, write, fence (device- or block-level) and
//!   read-modify-write events per thread plus a thread [`Placement`];
//! * [`oracle`] — a small-step sequential-consistency semantics that
//!   exhaustively interleaves a shape's events to compute the set of
//!   SC-reachable outcomes (RMWs as single indivisible steps,
//!   shared-space locations as per-block state); an observed outcome is
//!   **weak** exactly when it is outside that set, so every weak
//!   predicate is *derived*;
//! * [`emit`] — lowering to runnable kernels, either directly as
//!   `wmm-sim` IR via `KernelBuilder`, or as `.litmus`-style text in the
//!   `wmm-lang` kernel language (round-tripped through
//!   [`wmm_lang::compile`]).
//!
//! Campaigning generated instances — across chips, stress strategies and
//! worker counts — is the job of the unified campaign facade in
//! `wmm-core` (`wmm_core::campaign` and the suite runner
//! `wmm_core::suite`), which sits above this crate.
//!
//! ```
//! use wmm_gen::Shape;
//! use wmm_litmus::LitmusLayout;
//!
//! // Build IRIW at distance 64; its forbidden outcomes come from the
//! // SC oracle, not from a hand-written predicate.
//! let inst = Shape::Iriw.instance(LitmusLayout::standard(64, 4096));
//! assert_eq!(inst.threads, 4);
//! assert!(inst.is_weak(&[1, 0, 1, 0])); // the classic IRIW violation
//! assert!(!inst.is_weak(&[1, 1, 1, 1]));
//! ```

pub mod emit;
pub mod oracle;
pub mod shape;

pub use shape::{Event, Shape, TestEvents};
pub use wmm_litmus::Placement;

use wmm_litmus::{LitmusInstance, LitmusLayout};

impl Shape {
    /// Build a runnable instance of this shape under `layout`: the
    /// kernel is emitted through `KernelBuilder` and the weak predicate
    /// is derived by the SC oracle.
    ///
    /// # Panics
    ///
    /// Panics if the layout cannot host the shape (communication
    /// locations colliding with the result region).
    pub fn instance(&self, layout: LitmusLayout) -> LitmusInstance {
        let ev = self.events();
        let program = emit::build_program(&ev, &layout);
        let threads = ev.threads.len() as u32;
        let observers = ev.observers();
        let allowed = oracle::sc_outcomes(&ev);
        LitmusInstance::with_placement(
            self.short(),
            layout,
            program,
            threads,
            ev.num_locs(),
            observers,
            allowed,
            ev.placement,
            ev.shared_words_for(&layout),
        )
    }

    /// Like [`Shape::instance`], but the kernel takes the textual route:
    /// emitted as `wmm-lang` source ([`emit::to_lang_source`]) and
    /// compiled back through the front end.
    ///
    /// # Errors
    ///
    /// Returns the compiler's error if the emitted source is rejected
    /// (which would be a generator bug — the round-trip is tested).
    pub fn instance_via_lang(
        &self,
        layout: LitmusLayout,
    ) -> Result<LitmusInstance, wmm_lang::Error> {
        let ev = self.events();
        let src = emit::to_lang_source(&ev, &layout);
        let program = wmm_lang::compile(&src)?;
        let threads = ev.threads.len() as u32;
        let observers = ev.observers();
        let allowed = oracle::sc_outcomes(&ev);
        Ok(LitmusInstance::with_placement(
            self.short(),
            layout,
            program,
            threads,
            ev.num_locs(),
            observers,
            allowed,
            ev.placement,
            ev.shared_words_for(&layout),
        ))
    }

    /// The `.litmus`-style textual form of this shape under `layout`.
    pub fn lang_source(&self, layout: LitmusLayout) -> String {
        emit::to_lang_source(&self.events(), &layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trio_instances_carry_the_legacy_predicates() {
        let layout = LitmusLayout::standard(64, 4096);
        let mp = Shape::Mp.instance(layout);
        assert!(mp.is_weak(&[1, 0]) && !mp.is_weak(&[0, 1]));
        let lb = Shape::Lb.instance(layout);
        assert!(lb.is_weak(&[1, 1]) && !lb.is_weak(&[1, 0]));
        let sb = Shape::Sb.instance(layout);
        assert!(sb.is_weak(&[0, 0]) && !sb.is_weak(&[0, 1]));
    }

    #[test]
    fn instances_build_for_all_shapes_and_distances() {
        for s in Shape::ALL {
            for d in [0, 1, 31, 32, 64, 255] {
                let i = s.instance(LitmusLayout::standard(d, 8192));
                assert!(i.program.len() > 8);
                assert_eq!(i.threads as usize, s.events().threads.len());
                assert!(!i.allowed.is_empty(), "{s}: empty SC set");
            }
        }
    }

    #[test]
    fn lang_route_agrees_on_metadata() {
        let layout = LitmusLayout::standard(32, 4096);
        for s in Shape::ALL {
            let a = s.instance(layout);
            let b = s.instance_via_lang(layout).unwrap();
            assert_eq!(a.threads, b.threads, "{s}");
            assert_eq!(a.observers, b.observers, "{s}");
            assert_eq!(a.allowed, b.allowed, "{s}");
            assert_eq!(a.placement, b.placement, "{s}");
            assert_eq!(a.shared_words, b.shared_words, "{s}");
        }
    }

    #[test]
    fn scoped_instances_carry_intra_placement_and_shared_memory() {
        let layout = LitmusLayout::standard(64, 4096);
        for s in Shape::SCOPED {
            let i = s.instance(layout);
            assert_eq!(i.placement, Placement::IntraBlock, "{s}");
            assert!(i.shared_words > 0, "{s}");
            let spec = i.launch(Vec::new(), Vec::new(), false);
            assert_eq!(spec.groups[0].blocks, 1, "{s}");
            assert_eq!(spec.groups[0].threads_per_block, i.threads * 32, "{s}");
            assert_eq!(spec.shared_words, i.shared_words, "{s}");
        }
        for s in [Shape::Mp, Shape::MpCas, Shape::CoAdd] {
            let i = s.instance(layout);
            assert_eq!(i.placement, Placement::InterBlock, "{s}");
            assert_eq!(i.shared_words, 0, "{s}");
        }
    }

    #[test]
    fn rmw_instances_flag_torn_outcomes_as_weak() {
        let layout = LitmusLayout::standard(64, 4096);
        let co = Shape::CoAdd.instance(layout);
        // Both adds observing 0 (a torn increment) is not SC-reachable.
        assert!(co.is_weak(&[0, 0, 1]));
        assert!(co.is_weak(&[0, 0, 2]));
        assert!(!co.is_weak(&[0, 1, 2]));
        assert!(!co.is_weak(&[1, 0, 2]));
        let mpc = Shape::MpCas.instance(layout);
        // CAS claimed the flag (old = 1) but the payload read missed.
        assert!(mpc.is_weak(&[0, 1, 0, 2]));
        assert!(!mpc.is_weak(&[0, 1, 1, 2]));
    }
}
