//! # wmm-gen — litmus-test generation and the SC-enumeration oracle
//!
//! The paper's testing environment is exercised on the three Fig. 2
//! idioms, each historically hand-written with a hardcoded weak-outcome
//! predicate. This crate replaces that trio with a *generator*:
//!
//! * [`shape`] — a catalogue of classic communication-cycle litmus
//!   shapes (MP, LB, SB, S, R, 2+2W, WRC, RWC, ISA2, IRIW, the
//!   coherence tests CoRR and CoWW, and the fenced variants MP+fences
//!   and SB+fences), each an abstract list of read, write and fence
//!   events per thread;
//! * [`oracle`] — a small-step sequential-consistency semantics that
//!   exhaustively interleaves a shape's events to compute the set of
//!   SC-reachable outcomes; an observed outcome is **weak** exactly when
//!   it is outside that set, so every weak predicate is *derived*;
//! * [`emit`] — lowering to runnable kernels, either directly as
//!   `wmm-sim` IR via `KernelBuilder`, or as `.litmus`-style text in the
//!   `wmm-lang` kernel language (round-tripped through
//!   [`wmm_lang::compile`]).
//!
//! Campaigning generated instances — across chips, stress strategies and
//! worker counts — is the job of the unified campaign facade in
//! `wmm-core` (`wmm_core::campaign` and the suite runner
//! `wmm_core::suite`), which sits above this crate.
//!
//! ```
//! use wmm_gen::Shape;
//! use wmm_litmus::LitmusLayout;
//!
//! // Build IRIW at distance 64; its forbidden outcomes come from the
//! // SC oracle, not from a hand-written predicate.
//! let inst = Shape::Iriw.instance(LitmusLayout::standard(64, 4096));
//! assert_eq!(inst.threads, 4);
//! assert!(inst.is_weak(&[1, 0, 1, 0])); // the classic IRIW violation
//! assert!(!inst.is_weak(&[1, 1, 1, 1]));
//! ```

pub mod emit;
pub mod oracle;
pub mod shape;

pub use shape::{Event, Shape, TestEvents};

use wmm_litmus::{LitmusInstance, LitmusLayout};

impl Shape {
    /// Build a runnable instance of this shape under `layout`: the
    /// kernel is emitted through `KernelBuilder` and the weak predicate
    /// is derived by the SC oracle.
    ///
    /// # Panics
    ///
    /// Panics if the layout cannot host the shape (communication
    /// locations colliding with the result region).
    pub fn instance(&self, layout: LitmusLayout) -> LitmusInstance {
        let ev = self.events();
        let program = emit::build_program(&ev, &layout);
        let threads = ev.threads.len() as u32;
        let observers = ev.observers();
        let allowed = oracle::sc_outcomes(&ev);
        LitmusInstance::new(
            self.short(),
            layout,
            program,
            threads,
            ev.num_locs(),
            observers,
            allowed,
        )
    }

    /// Like [`Shape::instance`], but the kernel takes the textual route:
    /// emitted as `wmm-lang` source ([`emit::to_lang_source`]) and
    /// compiled back through the front end.
    ///
    /// # Errors
    ///
    /// Returns the compiler's error if the emitted source is rejected
    /// (which would be a generator bug — the round-trip is tested).
    pub fn instance_via_lang(
        &self,
        layout: LitmusLayout,
    ) -> Result<LitmusInstance, wmm_lang::Error> {
        let ev = self.events();
        let src = emit::to_lang_source(&ev, &layout);
        let program = wmm_lang::compile(&src)?;
        let threads = ev.threads.len() as u32;
        let observers = ev.observers();
        let allowed = oracle::sc_outcomes(&ev);
        Ok(LitmusInstance::new(
            self.short(),
            layout,
            program,
            threads,
            ev.num_locs(),
            observers,
            allowed,
        ))
    }

    /// The `.litmus`-style textual form of this shape under `layout`.
    pub fn lang_source(&self, layout: LitmusLayout) -> String {
        emit::to_lang_source(&self.events(), &layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trio_instances_carry_the_legacy_predicates() {
        let layout = LitmusLayout::standard(64, 4096);
        let mp = Shape::Mp.instance(layout);
        assert!(mp.is_weak(&[1, 0]) && !mp.is_weak(&[0, 1]));
        let lb = Shape::Lb.instance(layout);
        assert!(lb.is_weak(&[1, 1]) && !lb.is_weak(&[1, 0]));
        let sb = Shape::Sb.instance(layout);
        assert!(sb.is_weak(&[0, 0]) && !sb.is_weak(&[0, 1]));
    }

    #[test]
    fn instances_build_for_all_shapes_and_distances() {
        for s in Shape::ALL {
            for d in [0, 1, 31, 32, 64, 255] {
                let i = s.instance(LitmusLayout::standard(d, 8192));
                assert!(i.program.len() > 8);
                assert_eq!(i.threads as usize, s.events().threads.len());
                assert!(!i.allowed.is_empty(), "{s}: empty SC set");
            }
        }
    }

    #[test]
    fn lang_route_agrees_on_metadata() {
        let layout = LitmusLayout::standard(32, 4096);
        for s in Shape::ALL {
            let a = s.instance(layout);
            let b = s.instance_via_lang(layout).unwrap();
            assert_eq!(a.threads, b.threads, "{s}");
            assert_eq!(a.observers, b.observers, "{s}");
            assert_eq!(a.allowed, b.allowed, "{s}");
        }
    }
}
