//! Lowering abstract shapes to runnable kernels.
//!
//! Two equivalent back ends:
//!
//! * [`build_program`] — direct `wmm-sim` IR construction through
//!   [`KernelBuilder`], the path the campaign machinery uses;
//! * [`to_lang_source`] — a `.litmus`-style textual form in the
//!   `wmm-lang` kernel language, compiled back to IR with
//!   [`wmm_lang::compile`], so every generated test round-trips through
//!   the front end and can be inspected, versioned, or edited as text.
//!
//! Both back ends emit the same structure the paper's hand-written
//! kernels used: every test thread is lane 0 of its own block; the
//! threads rendezvous on an atomic counter before racing (maximising
//! temporal overlap, as the GPU LITMUS tool does); each thread issues
//! its test events in program order and only then writes its observed
//! read values to the result region — keeping the test's accesses
//! adjacent in the in-flight window exactly like the legacy trio
//! kernels, which is what makes their reorderings observable.

use crate::shape::{Event, TestEvents};
use wmm_litmus::{LitmusLayout, MAX_OBSERVERS};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::Program;

/// Check the layout can host the shape (locations below the result
/// region, reads within the observer slots).
fn check_layout(events: &TestEvents, layout: &LitmusLayout) {
    let locs = events.num_locs();
    assert!(locs >= 1, "a shape must touch at least one location");
    assert!(
        layout.loc_addr(locs - 1) < layout.result_base,
        "communication locations must sit below the result region"
    );
    assert!(
        events.num_reads() <= MAX_OBSERVERS,
        "shape has more reads than observer slots"
    );
}

/// Emit the shape as `wmm-sim` IR under `layout`.
///
/// # Panics
///
/// Panics if the layout cannot host the shape (see the module docs);
/// builder-produced programs always validate.
pub fn build_program(events: &TestEvents, layout: &LitmusLayout) -> Program {
    check_layout(events, layout);
    let nthreads = events.threads.len() as u32;
    let mut b = KernelBuilder::new(format!("litmus-{}-d{}", events.name, layout.distance));
    let tid = b.tid();
    let zero = b.const_(0);
    let is_lane0 = b.eq(tid, zero);
    b.if_(is_lane0, |b| {
        // Start alignment: all test threads rendezvous on a counter
        // before racing (without it most runs have the threads executing
        // far apart in time and no interesting interleavings occur).
        let sync = b.const_(layout.sync_addr());
        let one = b.const_(1);
        let n = b.const_(nthreads);
        let _ = b.atomic_add_global(sync, one);
        b.while_(
            |b| {
                let seen = b.load_global(sync);
                b.ne(seen, n)
            },
            |_| {},
        );
        let bid = b.bid();
        let mut next_read = 0u32;
        for (t, evs) in events.threads.iter().enumerate() {
            let tk = b.const_(t as u32);
            let is_t = b.eq(bid, tk);
            // Compute this thread's read indices before entering the
            // closure; reads are numbered thread-major across the test.
            let first_read = next_read;
            next_read += evs.iter().filter(|e| matches!(e, Event::R { .. })).count() as u32;
            b.if_(is_t, |b| {
                let mut read_regs = Vec::new();
                for ev in evs {
                    match *ev {
                        Event::W { loc, val } => {
                            let a = b.const_(layout.loc_addr(loc));
                            let v = b.const_(val);
                            b.store_global(a, v);
                        }
                        Event::R { loc } => {
                            let a = b.const_(layout.loc_addr(loc));
                            read_regs.push(b.load_global(a));
                        }
                        Event::Fence => b.fence_device(),
                    }
                }
                // Result stores last, so the test's own accesses stay
                // adjacent in the in-flight window.
                for (i, r) in read_regs.into_iter().enumerate() {
                    let res = b.const_(layout.result_base + first_read + i as u32);
                    b.store_global(res, r);
                }
            });
        }
    });
    b.finish()
        .expect("generated litmus kernel is valid by construction")
}

/// A kernel-language identifier for the shape (`2+2W` → `T2p2W`).
fn lang_name(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| match c {
            '+' => 'p',
            c if c.is_ascii_alphanumeric() => c,
            _ => '_',
        })
        .collect();
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, 'T');
    }
    s
}

/// Emit the shape as `wmm-lang` kernel source under `layout` — the
/// textual `.litmus`-style form of the test.
///
/// # Panics
///
/// Panics if the layout cannot host the shape.
pub fn to_lang_source(events: &TestEvents, layout: &LitmusLayout) -> String {
    check_layout(events, layout);
    let nthreads = events.threads.len();
    let sync = layout.sync_addr();
    let mut s = String::new();
    s.push_str(&format!(
        "kernel {}_d{} {{\n",
        lang_name(&events.name),
        layout.distance
    ));
    s.push_str("    if tid() == 0 {\n");
    s.push_str(&format!("        atomic_add({sync}, 1);\n"));
    s.push_str(&format!(
        "        while global[{sync}] != {nthreads} {{ }}\n"
    ));
    let mut next_read = 0u32;
    for (t, evs) in events.threads.iter().enumerate() {
        s.push_str(&format!("        if bid() == {t} {{\n"));
        let mut read_names = Vec::new();
        for ev in evs {
            match *ev {
                Event::W { loc, val } => {
                    s.push_str(&format!(
                        "            global[{}] = {};\n",
                        layout.loc_addr(loc),
                        val
                    ));
                }
                Event::R { loc } => {
                    let name = format!("r{}", next_read + read_names.len() as u32);
                    s.push_str(&format!(
                        "            var {} = global[{}];\n",
                        name,
                        layout.loc_addr(loc)
                    ));
                    read_names.push(name);
                }
                Event::Fence => s.push_str("            fence();\n"),
            }
        }
        for (i, name) in read_names.iter().enumerate() {
            s.push_str(&format!(
                "            global[{}] = {};\n",
                layout.result_base + next_read + i as u32,
                name
            ));
        }
        next_read += read_names.len() as u32;
        s.push_str("        }\n");
    }
    s.push_str("    }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use wmm_sim::ir::validate::validate;
    use wmm_sim::ir::Inst;

    fn layout(d: u32) -> LitmusLayout {
        LitmusLayout::standard(d, 4096)
    }

    #[test]
    fn every_shape_builds_and_validates() {
        for shape in Shape::ALL {
            for d in [0, 1, 32, 64, 255] {
                let p = build_program(&shape.events(), &layout(d));
                validate(&p).unwrap_or_else(|e| panic!("{shape} d={d}: {e:?}"));
                assert!(p.len() > 8, "{shape} d={d} suspiciously small");
            }
        }
    }

    #[test]
    fn lang_source_compiles_for_every_shape() {
        for shape in Shape::ALL {
            let src = to_lang_source(&shape.events(), &layout(64));
            let p = wmm_lang::compile(&src).unwrap_or_else(|e| panic!("{shape}: {e}\n{src}"));
            validate(&p).unwrap();
        }
    }

    #[test]
    fn builder_and_lang_have_identical_global_access_counts() {
        // Same loads/stores/atomics per shape regardless of back end.
        fn footprint(p: &Program) -> (usize, usize, usize) {
            let mut loads = 0;
            let mut stores = 0;
            let mut atomics = 0;
            for i in &p.insts {
                match i {
                    Inst::Load { .. } => loads += 1,
                    Inst::Store { .. } => stores += 1,
                    Inst::AtomicAdd { .. } | Inst::AtomicCas { .. } | Inst::AtomicExch { .. } => {
                        atomics += 1
                    }
                    _ => {}
                }
            }
            (loads, stores, atomics)
        }
        for shape in Shape::ALL {
            let ev = shape.events();
            let a = build_program(&ev, &layout(64));
            let b = wmm_lang::compile(&to_lang_source(&ev, &layout(64))).unwrap();
            assert_eq!(footprint(&a), footprint(&b), "{shape}");
        }
    }

    #[test]
    fn lang_names_are_identifiers() {
        for shape in Shape::ALL {
            let n = lang_name(shape.short());
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            assert!(!n.starts_with(|c: char| c.is_ascii_digit()), "{n}");
        }
    }

    #[test]
    #[should_panic(expected = "communication locations")]
    fn oversized_distance_rejected() {
        // d so large location 2 collides with the result region.
        let _ = build_program(&Shape::Isa2.events(), &layout(600));
    }
}
