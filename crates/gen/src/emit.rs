//! Lowering abstract shapes to runnable kernels.
//!
//! Two equivalent back ends:
//!
//! * [`build_program`] — direct `wmm-sim` IR construction through
//!   [`KernelBuilder`], the path the campaign machinery uses;
//! * [`to_lang_source`] — a `.litmus`-style textual form in the
//!   `wmm-lang` kernel language, compiled back to IR with
//!   [`wmm_lang::compile`], so every generated test round-trips through
//!   the front end and can be inspected, versioned, or edited as text.
//!
//! Both back ends emit the same structure the paper's hand-written
//! kernels used: under [`Placement::InterBlock`] every test thread is
//! lane 0 of its own block; under [`Placement::IntraBlock`] all test
//! threads share one block, test thread `t` being lane 0 of warp `t`
//! (so scoped shapes can communicate through the block's shared
//! memory). The threads rendezvous on a global atomic counter before
//! racing (maximising temporal overlap, as the GPU LITMUS tool does);
//! each thread issues its test events in program order — plain accesses
//! and atomics in the event's space, RMW old values captured — and only
//! then writes its observed values to the result region, keeping the
//! test's accesses adjacent in the in-flight window exactly like the
//! legacy trio kernels, which is what makes their reorderings
//! observable.

use crate::shape::{Event, TestEvents};
use wmm_litmus::{LitmusLayout, Placement, MAX_OBSERVERS};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::{Program, Space};

/// Check the layout can host the shape (locations below the result
/// region, reads within the observer slots, every location in a single
/// memory space).
fn check_layout(events: &TestEvents, layout: &LitmusLayout) {
    let locs = events.num_locs();
    assert!(locs >= 1, "a shape must touch at least one location");
    assert!(
        layout.loc_addr(locs - 1) < layout.result_base,
        "communication locations must sit below the result region"
    );
    assert!(
        events.num_reads() <= MAX_OBSERVERS,
        "shape has more reads than observer slots"
    );
    for l in 0..locs {
        // Panics on a location accessed in both spaces.
        let _ = events.space_of(l);
    }
}

/// Emit the shape as `wmm-sim` IR under `layout`.
///
/// # Panics
///
/// Panics if the layout cannot host the shape (see the module docs);
/// builder-produced programs always validate.
pub fn build_program(events: &TestEvents, layout: &LitmusLayout) -> Program {
    check_layout(events, layout);
    let nthreads = events.threads.len() as u32;
    let mut b = KernelBuilder::new(format!("litmus-{}-d{}", events.name, layout.distance));
    let zero = b.const_(0);
    // Under inter-block placement only lane 0 of each block runs the
    // test (tid == 0 in its one-warp block); under intra-block
    // placement lane 0 of every warp does.
    let is_active = match events.placement {
        Placement::InterBlock => {
            let tid = b.tid();
            b.eq(tid, zero)
        }
        Placement::IntraBlock => {
            let lane = b.lane();
            b.eq(lane, zero)
        }
    };
    b.if_(is_active, |b| {
        // Start alignment: all test threads rendezvous on a counter
        // before racing (without it most runs have the threads executing
        // far apart in time and no interesting interleavings occur).
        let sync = b.const_(layout.sync_addr());
        let one = b.const_(1);
        let n = b.const_(nthreads);
        let _ = b.atomic_add_global(sync, one);
        b.while_(
            |b| {
                let seen = b.load_global(sync);
                b.ne(seen, n)
            },
            |_| {},
        );
        // Which test thread am I: the block index inter-block, the warp
        // index intra-block.
        let me = match events.placement {
            Placement::InterBlock => b.bid(),
            Placement::IntraBlock => {
                let tid = b.tid();
                let warp = b.const_(32);
                b.div_u(tid, warp)
            }
        };
        let mut next_read = 0u32;
        for (t, evs) in events.threads.iter().enumerate() {
            let tk = b.const_(t as u32);
            let is_t = b.eq(me, tk);
            // Compute this thread's read indices before entering the
            // closure; reads are numbered thread-major across the test.
            let first_read = next_read;
            next_read += evs.iter().filter(|e| e.is_read_like()).count() as u32;
            b.if_(is_t, |b| {
                let mut read_regs = Vec::new();
                for ev in evs {
                    match *ev {
                        Event::W { loc, val, space } => {
                            let a = b.const_(layout.loc_addr(loc));
                            let v = b.const_(val);
                            b.store_in(space, a, v);
                        }
                        Event::R { loc, space } => {
                            let a = b.const_(layout.loc_addr(loc));
                            read_regs.push(b.load_in(space, a));
                        }
                        Event::Fence => b.fence_device(),
                        Event::FenceBlock => b.fence_block(),
                        Event::Cas {
                            loc,
                            cmp,
                            val,
                            space,
                        } => {
                            let a = b.const_(layout.loc_addr(loc));
                            let c = b.const_(cmp);
                            let v = b.const_(val);
                            read_regs.push(b.atomic_cas_in(space, a, c, v));
                        }
                        Event::Exch { loc, val, space } => {
                            let a = b.const_(layout.loc_addr(loc));
                            let v = b.const_(val);
                            read_regs.push(b.atomic_exch_in(space, a, v));
                        }
                        Event::Add { loc, val, space } => {
                            let a = b.const_(layout.loc_addr(loc));
                            let v = b.const_(val);
                            read_regs.push(b.atomic_add_in(space, a, v));
                        }
                    }
                }
                // Result stores last, so the test's own accesses stay
                // adjacent in the in-flight window.
                for (i, r) in read_regs.into_iter().enumerate() {
                    let res = b.const_(layout.result_base + first_read + i as u32);
                    b.store_global(res, r);
                }
            });
        }
    });
    b.finish()
        .expect("generated litmus kernel is valid by construction")
}

/// A kernel-language identifier for the shape (`2+2W` → `T2p2W`).
fn lang_name(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| match c {
            '+' => 'p',
            c if c.is_ascii_alphanumeric() => c,
            _ => '_',
        })
        .collect();
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, 'T');
    }
    s
}

/// The kernel-language array name for a space.
fn space_array(space: Space) -> &'static str {
    match space {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

/// Emit the shape as `wmm-lang` kernel source under `layout` — the
/// textual `.litmus`-style form of the test.
///
/// # Panics
///
/// Panics if the layout cannot host the shape.
pub fn to_lang_source(events: &TestEvents, layout: &LitmusLayout) -> String {
    check_layout(events, layout);
    let nthreads = events.threads.len();
    let sync = layout.sync_addr();
    let mut s = String::new();
    s.push_str(&format!(
        "kernel {}_d{} {{\n",
        lang_name(&events.name),
        layout.distance
    ));
    let (active, me) = match events.placement {
        Placement::InterBlock => ("tid() == 0", "bid()"),
        Placement::IntraBlock => ("tid() % 32 == 0", "tid() / 32"),
    };
    s.push_str(&format!("    if {active} {{\n"));
    s.push_str(&format!("        atomic_add({sync}, 1);\n"));
    s.push_str(&format!(
        "        while global[{sync}] != {nthreads} {{ }}\n"
    ));
    let mut next_read = 0u32;
    for (t, evs) in events.threads.iter().enumerate() {
        s.push_str(&format!("        if {me} == {t} {{\n"));
        let mut read_names = Vec::new();
        let bind_read = |s: &mut String, rhs: String, read_names: &mut Vec<String>| {
            let name = format!("r{}", next_read + read_names.len() as u32);
            s.push_str(&format!("            var {name} = {rhs};\n"));
            read_names.push(name);
        };
        for ev in evs {
            match *ev {
                Event::W { loc, val, space } => {
                    s.push_str(&format!(
                        "            {}[{}] = {};\n",
                        space_array(space),
                        layout.loc_addr(loc),
                        val
                    ));
                }
                Event::R { loc, space } => {
                    let rhs = format!("{}[{}]", space_array(space), layout.loc_addr(loc));
                    bind_read(&mut s, rhs, &mut read_names);
                }
                Event::Fence => s.push_str("            fence();\n"),
                Event::FenceBlock => s.push_str("            fence_block();\n"),
                Event::Cas {
                    loc,
                    cmp,
                    val,
                    space,
                } => {
                    let call = match space {
                        Space::Global => "cas",
                        Space::Shared => "shared_cas",
                    };
                    let rhs = format!("{call}({}, {cmp}, {val})", layout.loc_addr(loc));
                    bind_read(&mut s, rhs, &mut read_names);
                }
                Event::Exch { loc, val, space } => {
                    let call = match space {
                        Space::Global => "exch",
                        Space::Shared => "shared_exch",
                    };
                    let rhs = format!("{call}({}, {val})", layout.loc_addr(loc));
                    bind_read(&mut s, rhs, &mut read_names);
                }
                Event::Add { loc, val, space } => {
                    let call = match space {
                        Space::Global => "atomic_add",
                        Space::Shared => "shared_add",
                    };
                    let rhs = format!("{call}({}, {val})", layout.loc_addr(loc));
                    bind_read(&mut s, rhs, &mut read_names);
                }
            }
        }
        for (i, name) in read_names.iter().enumerate() {
            s.push_str(&format!(
                "            global[{}] = {};\n",
                layout.result_base + next_read + i as u32,
                name
            ));
        }
        next_read += read_names.len() as u32;
        s.push_str("        }\n");
    }
    s.push_str("    }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use wmm_sim::ir::validate::validate;
    use wmm_sim::ir::Inst;

    fn layout(d: u32) -> LitmusLayout {
        LitmusLayout::standard(d, 4096)
    }

    #[test]
    fn every_shape_builds_and_validates() {
        for shape in Shape::ALL {
            for d in [0, 1, 32, 64, 255] {
                let p = build_program(&shape.events(), &layout(d));
                validate(&p).unwrap_or_else(|e| panic!("{shape} d={d}: {e:?}"));
                assert!(p.len() > 8, "{shape} d={d} suspiciously small");
            }
        }
    }

    #[test]
    fn lang_source_compiles_for_every_shape() {
        for shape in Shape::ALL {
            let src = to_lang_source(&shape.events(), &layout(64));
            let p = wmm_lang::compile(&src).unwrap_or_else(|e| panic!("{shape}: {e}\n{src}"));
            validate(&p).unwrap();
        }
    }

    #[test]
    fn builder_and_lang_have_identical_global_access_counts() {
        // Same loads/stores/atomics per shape regardless of back end.
        fn footprint(p: &Program) -> (usize, usize, usize) {
            let mut loads = 0;
            let mut stores = 0;
            let mut atomics = 0;
            for i in &p.insts {
                match i {
                    Inst::Load { .. } => loads += 1,
                    Inst::Store { .. } => stores += 1,
                    Inst::AtomicAdd { .. } | Inst::AtomicCas { .. } | Inst::AtomicExch { .. } => {
                        atomics += 1
                    }
                    _ => {}
                }
            }
            (loads, stores, atomics)
        }
        for shape in Shape::ALL {
            let ev = shape.events();
            let a = build_program(&ev, &layout(64));
            let b = wmm_lang::compile(&to_lang_source(&ev, &layout(64))).unwrap();
            assert_eq!(footprint(&a), footprint(&b), "{shape}");
        }
    }

    #[test]
    fn scoped_kernels_access_shared_space() {
        for shape in Shape::SCOPED {
            let p = build_program(&shape.events(), &layout(64));
            let shared_accesses = p
                .insts
                .iter()
                .filter(|i| i.is_memory_access() && !i.is_global_access())
                .count();
            // One per data event: the rendezvous and result stores stay
            // global.
            let data_events: usize = shape
                .events()
                .threads
                .iter()
                .flatten()
                .filter(|e| e.loc().is_some())
                .count();
            assert_eq!(shared_accesses, data_events, "{shape}\n{p}");
        }
        // Non-scoped shapes touch shared memory nowhere.
        let p = build_program(&Shape::MpCas.events(), &layout(64));
        assert!(p
            .insts
            .iter()
            .all(|i| !i.is_memory_access() || i.is_global_access()));
    }

    #[test]
    fn rmw_kernels_carry_the_atomics() {
        let p = build_program(&Shape::MpCas.events(), &layout(64));
        // Two test CASes plus the rendezvous atomicAdd.
        let cas = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::AtomicCas { .. }))
            .count();
        assert_eq!(cas, 2, "{p}");
        let p = build_program(&Shape::TwoPlusTwoWExch.events(), &layout(64));
        let exch = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::AtomicExch { .. }))
            .count();
        assert_eq!(exch, 4, "{p}");
    }

    #[test]
    fn lang_names_are_identifiers() {
        for shape in Shape::ALL {
            let n = lang_name(shape.short());
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            assert!(!n.starts_with(|c: char| c.is_ascii_digit()), "{n}");
        }
    }

    #[test]
    fn scoped_lang_source_gates_on_warps_and_uses_shared_arrays() {
        let src = to_lang_source(&Shape::MpShared.events(), &layout(64));
        assert!(src.contains("if tid() % 32 == 0 {"), "{src}");
        assert!(src.contains("if tid() / 32 == 0 {"), "{src}");
        assert!(src.contains("shared[0] = 1;"), "{src}");
        assert!(src.contains("var r0 = shared[64];"), "{src}");
        // The rendezvous stays in global memory.
        assert!(src.contains("atomic_add(1032, 1);"), "{src}");
    }

    #[test]
    fn rmw_lang_source_binds_old_values() {
        let src = to_lang_source(&Shape::MpCas.events(), &layout(64));
        assert!(src.contains("var r0 = cas(64, 0, 1);"), "{src}");
        assert!(src.contains("var r1 = cas(64, 1, 2);"), "{src}");
        let src = to_lang_source(&Shape::CoAdd.events(), &layout(64));
        assert!(src.contains("var r0 = atomic_add(0, 1);"), "{src}");
        assert!(src.contains("var r1 = atomic_add(0, 1);"), "{src}");
    }

    #[test]
    #[should_panic(expected = "communication locations")]
    fn oversized_distance_rejected() {
        // d so large location 2 collides with the result region.
        let _ = build_program(&Shape::Isa2.events(), &layout(600));
    }
}
