//! The generated-suite campaign runner.
//!
//! Campaigns every generated litmus instance across a grid of chips ×
//! stress strategies × distances on the deterministic parallel layer
//! (`wmm_litmus::parallel`, via [`run_many`]). Stress strategies are
//! passed in as factories so this crate stays below `wmm-core` in the
//! crate graph: the `repro suite` subcommand instantiates them from the
//! paper's tuned strategies.

use crate::Shape;
use rand::rngs::SmallRng;
use std::sync::Arc;
use wmm_litmus::runner::mix_seed;
use wmm_litmus::{run_many, Histogram, LitmusLayout, RunManyConfig, StressParts};
use wmm_sim::chip::Chip;

/// A named stress strategy for the suite: a per-run factory of
/// stressing blocks plus the thread-randomisation toggle (the `+`/`-`
/// suffix of the paper's environment names).
pub struct StressSpec {
    /// Display name, e.g. `"sys-str+"`.
    pub name: String,
    /// Whether thread ids are randomised.
    pub randomize: bool,
    /// Build one run's stressing blocks for a chip.
    #[allow(clippy::type_complexity)]
    pub make: Arc<dyn Fn(&Chip, &mut SmallRng) -> StressParts + Send + Sync>,
}

impl StressSpec {
    /// The native environment: no stressing blocks, no randomisation.
    pub fn native() -> Self {
        StressSpec {
            name: "no-str-".to_string(),
            randomize: false,
            make: Arc::new(|_, _| (Vec::new(), Vec::new())),
        }
    }
}

/// Suite campaign configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Distances `d` each shape is instantiated at.
    pub distances: Vec<u32>,
    /// Executions per cell (the paper's `C`).
    pub execs: u32,
    /// Words of global memory per launch (must cover the scratchpad the
    /// strategies stress).
    pub global_words: u32,
    /// Base seed; each cell derives its own seed from its coordinates,
    /// so results are independent of cell iteration order.
    pub base_seed: u64,
    /// Worker threads per cell campaign (0 ⇒ all cores). Histograms are
    /// bit-identical for every value (see `wmm_litmus::run_many`).
    pub workers: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            distances: vec![64],
            execs: 32,
            global_words: 8192,
            base_seed: 2016,
            workers: 0,
        }
    }
}

/// One cell of the suite matrix: a shape at a distance, on a chip,
/// under a strategy.
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// The generated shape.
    pub shape: Shape,
    /// The instantiation distance.
    pub distance: u32,
    /// Chip short name.
    pub chip: String,
    /// Strategy name.
    pub strategy: String,
    /// The outcome histogram (weak = outside the derived SC set).
    pub hist: Histogram,
}

impl SuiteCell {
    /// Weak outcomes as a fraction of total.
    pub fn weak_rate(&self) -> f64 {
        self.hist.weak_rate()
    }
}

/// Campaign every `shape × distance × chip × strategy` cell and return
/// the matrix in that (row-major) order.
///
/// Deterministic in `(shapes, cfg, chips, strategies)`: each cell's
/// campaign seed is [`mix_seed`]-derived from the cell's coordinates
/// alone and `run_many` is worker-count-independent, so the result is
/// bit-identical for every `cfg.workers`.
pub fn run_suite(
    shapes: &[Shape],
    chips: &[Chip],
    strategies: &[StressSpec],
    cfg: &SuiteConfig,
) -> Vec<SuiteCell> {
    let mut cells = Vec::new();
    for (si, shape) in shapes.iter().enumerate() {
        for &d in &cfg.distances {
            let inst = shape.instance(LitmusLayout::standard(d, cfg.global_words));
            for (ci, chip) in chips.iter().enumerate() {
                for (ki, strat) in strategies.iter().enumerate() {
                    let chip2 = chip.clone();
                    let make = Arc::clone(&strat.make);
                    // Chain one mix per coordinate: unlike a polynomial
                    // pack, this cannot collide for any in-range values.
                    let cell_seed = [si as u64, u64::from(d), ci as u64, ki as u64]
                        .into_iter()
                        .fold(cfg.base_seed, mix_seed);
                    let hist = run_many(
                        chip,
                        &inst,
                        move |rng| make(&chip2, rng),
                        RunManyConfig {
                            count: cfg.execs,
                            base_seed: cell_seed,
                            randomize_ids: strat.randomize,
                            parallelism: cfg.workers,
                        },
                    );
                    cells.push(SuiteCell {
                        shape: *shape,
                        distance: d,
                        chip: chip.short.to_string(),
                        strategy: strat.name.clone(),
                        hist,
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strong_chip() -> Chip {
        let mut c = Chip::by_short("K20").unwrap();
        c.reorder.base = [0.0; 4];
        c.reorder.gain = [0.0; 4];
        c
    }

    #[test]
    fn native_suite_on_sc_chip_has_no_weak_outcomes() {
        let cfg = SuiteConfig {
            execs: 12,
            ..Default::default()
        };
        let cells = run_suite(
            &Shape::ALL,
            &[strong_chip()],
            &[StressSpec::native()],
            &cfg,
        );
        assert_eq!(cells.len(), Shape::ALL.len());
        for c in &cells {
            assert_eq!(c.hist.weak(), 0, "{} on SC chip: {}", c.shape, c.hist);
            assert_eq!(c.hist.total(), u64::from(cfg.execs));
        }
    }

    #[test]
    fn suite_is_worker_count_independent() {
        let chips = [Chip::by_short("Titan").unwrap()];
        let shapes = [Shape::Mp, Shape::Iriw, Shape::CoWW];
        let base = SuiteConfig {
            execs: 16,
            ..Default::default()
        };
        let runs: Vec<Vec<SuiteCell>> = [1usize, 2, 8]
            .into_iter()
            .map(|w| {
                let cfg = SuiteConfig {
                    workers: w,
                    ..base.clone()
                };
                run_suite(&shapes, &chips, &[StressSpec::native()], &cfg)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].len(), other.len());
            for (a, b) in runs[0].iter().zip(other.iter()) {
                assert_eq!(a.hist, b.hist, "{} {}", a.shape, a.strategy);
            }
        }
    }
}
