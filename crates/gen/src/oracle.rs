//! The sequential-consistency enumeration oracle.
//!
//! Under sequential consistency every execution of a litmus test is some
//! interleaving of its threads' events against a single memory (the
//! small-step operational reading of SC, in the SOS tradition). The
//! tests in the catalogue are tiny — at most four threads of one or two
//! events — so the oracle simply *enumerates every interleaving*,
//! collecting the set of reachable outcome vectors. An observed outcome
//! is then **weak** exactly when it is absent from that set: the weak
//! predicate of every generated instance is derived here, never written
//! by hand.
//!
//! The state space is memoised on `(thread positions, memory, reads so
//! far)`, so even the widest shape (IRIW: 2520 interleavings) explores a
//! few hundred distinct states.

use crate::shape::{Event, TestEvents};
use std::collections::{BTreeSet, HashSet};
use wmm_litmus::Observer;

/// Exhaustively interleave `events` under SC and return the set of
/// reachable outcome vectors (in the order given by
/// [`TestEvents::observers`]).
pub fn sc_outcomes(events: &TestEvents) -> BTreeSet<Vec<u32>> {
    let observers = events.observers();
    let num_locs = events.num_locs() as usize;
    let num_reads = events.num_reads() as usize;
    let mut out = BTreeSet::new();
    let mut seen: HashSet<(Vec<usize>, Vec<u32>, Vec<u32>)> = HashSet::new();
    let mut pcs = vec![0usize; events.threads.len()];
    let mut mem = vec![0u32; num_locs];
    let mut reads = vec![0u32; num_reads];
    dfs(
        events, &observers, &mut pcs, &mut mem, &mut reads, &mut seen, &mut out,
    );
    out
}

fn dfs(
    events: &TestEvents,
    observers: &[Observer],
    pcs: &mut Vec<usize>,
    mem: &mut Vec<u32>,
    reads: &mut Vec<u32>,
    seen: &mut HashSet<(Vec<usize>, Vec<u32>, Vec<u32>)>,
    out: &mut BTreeSet<Vec<u32>>,
) {
    if !seen.insert((pcs.clone(), mem.clone(), reads.clone())) {
        return;
    }
    let mut done = true;
    for t in 0..events.threads.len() {
        let pc = pcs[t];
        if pc >= events.threads[t].len() {
            continue;
        }
        done = false;
        pcs[t] += 1;
        match events.threads[t][pc] {
            Event::W { loc, val } => {
                let old = mem[loc as usize];
                mem[loc as usize] = val;
                dfs(events, observers, pcs, mem, reads, seen, out);
                mem[loc as usize] = old;
            }
            Event::R { loc } => {
                let idx = read_index(events, t, pc);
                let old = reads[idx];
                reads[idx] = mem[loc as usize];
                dfs(events, observers, pcs, mem, reads, seen, out);
                reads[idx] = old;
            }
            // Under SC a fence orders nothing that isn't already
            // ordered: stepping over it changes no state, so fenced
            // shapes derive exactly their base shape's SC set.
            Event::Fence => dfs(events, observers, pcs, mem, reads, seen, out),
        }
        pcs[t] -= 1;
    }
    if done {
        let obs: Vec<u32> = observers
            .iter()
            .map(|o| match o {
                Observer::Reg(k) => reads[*k as usize],
                Observer::FinalMem(l) => mem[*l as usize],
            })
            .collect();
        out.insert(obs);
    }
}

/// The global (thread-major) read index of the read at `(thread, pc)`.
fn read_index(events: &TestEvents, thread: usize, pc: usize) -> usize {
    let mut idx = 0;
    for (t, evs) in events.threads.iter().enumerate() {
        for (i, e) in evs.iter().enumerate() {
            if t == thread && i == pc {
                return idx;
            }
            if matches!(e, Event::R { .. }) {
                idx += 1;
            }
        }
    }
    unreachable!("read_index called on a non-event position")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn set(vs: &[&[u32]]) -> BTreeSet<Vec<u32>> {
        vs.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn mp_sc_set_excludes_exactly_the_weak_outcome() {
        let s = sc_outcomes(&Shape::Mp.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 1]]));
    }

    #[test]
    fn lb_sc_set_excludes_double_one() {
        let s = sc_outcomes(&Shape::Lb.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 0]]));
    }

    #[test]
    fn sb_sc_set_excludes_double_zero() {
        let s = sc_outcomes(&Shape::Sb.events());
        assert_eq!(s, set(&[&[0, 1], &[1, 0], &[1, 1]]));
    }

    #[test]
    fn coww_final_value_is_always_the_second_write() {
        let s = sc_outcomes(&Shape::CoWW.events());
        assert_eq!(s, set(&[&[2]]));
    }

    #[test]
    fn corr_never_reads_backwards() {
        // Reads of one location: (0,0), (0,1), (1,1) — never (1,0).
        let s = sc_outcomes(&Shape::CoRR.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 1]]));
    }

    #[test]
    fn two_plus_two_w_forbids_both_first_writes_last() {
        // Outcome = final (x, y). x = 1 requires all of T1 to precede
        // T0's first write, forcing y = 2 — so (1, 1) is unreachable,
        // while (1,2), (2,1) and (2,2) all are.
        let s = sc_outcomes(&Shape::TwoPlusTwoW.events());
        assert!(!s.contains(&vec![1, 1]), "{s:?}");
        assert!(s.contains(&vec![1, 2]));
        assert!(s.contains(&vec![2, 1]));
        assert!(s.contains(&vec![2, 2]));
    }

    #[test]
    fn iriw_forbids_opposite_orders() {
        let s = sc_outcomes(&Shape::Iriw.events());
        // T2 sees x then not-yet y, T3 sees y then not-yet x.
        assert!(
            !s.contains(&vec![1, 0, 1, 0]),
            "IRIW weak outcome in SC set"
        );
        assert!(s.contains(&vec![1, 1, 1, 1]));
        assert!(s.contains(&vec![0, 0, 0, 0]));
    }

    #[test]
    fn isa2_forbidden_outcome_absent() {
        let s = sc_outcomes(&Shape::Isa2.events());
        assert!(!s.contains(&vec![1, 1, 0]), "ISA2 weak outcome in SC set");
        assert!(s.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn every_shape_has_at_least_one_forbidden_outcome_in_range() {
        // The whole point of a litmus shape: the cross-product of
        // observed value ranges strictly contains the SC set.
        for shape in Shape::ALL {
            let ev = shape.events();
            let s = sc_outcomes(&ev);
            let width = ev.observers().len();
            // Value range per observer: 0..=max value written anywhere.
            let max_val = ev
                .threads
                .iter()
                .flatten()
                .filter_map(|e| match e {
                    crate::shape::Event::W { val, .. } => Some(*val),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let mut total = 1usize;
            for _ in 0..width {
                total *= (max_val + 1) as usize;
            }
            assert!(
                s.len() < total,
                "{shape}: SC set covers the whole outcome space ({total})"
            );
            assert!(!s.is_empty(), "{shape}: empty SC set");
        }
    }
}
