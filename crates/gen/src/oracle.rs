//! The sequential-consistency enumeration oracle.
//!
//! Under sequential consistency every execution of a litmus test is some
//! interleaving of its threads' events against memory (the small-step
//! operational reading of SC, in the SOS tradition). The tests in the
//! catalogue are tiny — at most four threads of one or two events — so
//! the oracle simply *enumerates every interleaving*, collecting the set
//! of reachable outcome vectors. An observed outcome is then **weak**
//! exactly when it is absent from that set: the weak predicate of every
//! generated instance is derived here, never written by hand.
//!
//! The semantics models the two memory spaces of the simulated GPU:
//! `Space::Global` is one device-wide memory; `Space::Shared` is
//! **per-block** state — under [`Placement::InterBlock`] every thread
//! owns a private copy (so shared-space events on different blocks never
//! communicate), under [`Placement::IntraBlock`] all threads see one
//! copy. Atomic read-modify-writes (`Cas`, `Exch`, `Add`) are single
//! indivisible steps: the old value lands in the event's observer
//! register and the new value is written in the same step, so no other
//! event can interleave between an RMW's read and its write.
//!
//! The state space is memoised on `(thread positions, global memory,
//! shared memories, reads so far)`, so even the widest shape (IRIW:
//! 2520 interleavings) explores a few hundred distinct states.

use crate::shape::{Event, TestEvents};
use std::collections::{BTreeSet, HashSet};
use wmm_litmus::{Observer, Placement};
use wmm_sim::ir::Space;

/// A memoised oracle state: `(thread positions, global memory, shared
/// memories, reads so far)`.
type SeenState = (Vec<usize>, Vec<u32>, Vec<u32>, Vec<u32>);

/// The oracle's memory: one global cell per location plus one shared
/// cell per (block, location) pair.
struct Mem {
    global: Vec<u32>,
    shared: Vec<u32>,
    num_locs: usize,
    intra: bool,
}

impl Mem {
    fn new(num_locs: usize, threads: usize, placement: Placement) -> Self {
        let intra = placement == Placement::IntraBlock;
        let blocks = if intra { 1 } else { threads.max(1) };
        Mem {
            global: vec![0; num_locs],
            shared: vec![0; num_locs * blocks],
            num_locs,
            intra,
        }
    }

    /// The cell index for `loc` as seen by `thread` in `space`.
    fn cell(&mut self, space: Space, thread: usize, loc: u32) -> &mut u32 {
        match space {
            Space::Global => &mut self.global[loc as usize],
            Space::Shared => {
                let block = if self.intra { 0 } else { thread };
                &mut self.shared[block * self.num_locs + loc as usize]
            }
        }
    }
}

/// Exhaustively interleave `events` under SC and return the set of
/// reachable outcome vectors (in the order given by
/// [`TestEvents::observers`]).
pub fn sc_outcomes(events: &TestEvents) -> BTreeSet<Vec<u32>> {
    let observers = events.observers();
    let num_locs = events.num_locs() as usize;
    let num_reads = events.num_reads() as usize;
    let mut out = BTreeSet::new();
    let mut seen: HashSet<SeenState> = HashSet::new();
    let mut pcs = vec![0usize; events.threads.len()];
    let mut mem = Mem::new(num_locs, events.threads.len(), events.placement);
    let mut reads = vec![0u32; num_reads];
    dfs(
        events, &observers, &mut pcs, &mut mem, &mut reads, &mut seen, &mut out,
    );
    out
}

fn dfs(
    events: &TestEvents,
    observers: &[Observer],
    pcs: &mut Vec<usize>,
    mem: &mut Mem,
    reads: &mut Vec<u32>,
    seen: &mut HashSet<SeenState>,
    out: &mut BTreeSet<Vec<u32>>,
) {
    if !seen.insert((
        pcs.clone(),
        mem.global.clone(),
        mem.shared.clone(),
        reads.clone(),
    )) {
        return;
    }
    let mut done = true;
    for t in 0..events.threads.len() {
        let pc = pcs[t];
        if pc >= events.threads[t].len() {
            continue;
        }
        done = false;
        pcs[t] += 1;
        match events.threads[t][pc] {
            Event::W { loc, val, space } => {
                let cell = mem.cell(space, t, loc);
                let old = *cell;
                *cell = val;
                dfs(events, observers, pcs, mem, reads, seen, out);
                *mem.cell(space, t, loc) = old;
            }
            Event::R { loc, space } => {
                let idx = read_index(events, t, pc);
                let old = reads[idx];
                reads[idx] = *mem.cell(space, t, loc);
                dfs(events, observers, pcs, mem, reads, seen, out);
                reads[idx] = old;
            }
            // An RMW is one indivisible step: observe the old value and
            // write the new one before any other thread may move. The
            // three kinds share one save/step/recurse/restore protocol
            // and differ only in the value they leave behind.
            e @ (Event::Cas { .. } | Event::Exch { .. } | Event::Add { .. }) => {
                let loc = e.loc().expect("RMW events carry a location");
                let space = e.space().expect("RMW events carry a space");
                let idx = read_index(events, t, pc);
                let saved_read = reads[idx];
                let cell = mem.cell(space, t, loc);
                let old = *cell;
                *cell = match e {
                    Event::Cas { cmp, val, .. } => {
                        if old == cmp {
                            val
                        } else {
                            old
                        }
                    }
                    Event::Exch { val, .. } => val,
                    Event::Add { val, .. } => old.wrapping_add(val),
                    _ => unreachable!("guarded by the match arm"),
                };
                reads[idx] = old;
                dfs(events, observers, pcs, mem, reads, seen, out);
                reads[idx] = saved_read;
                *mem.cell(space, t, loc) = old;
            }
            // Under SC a fence orders nothing that isn't already
            // ordered: stepping over it changes no state, so fenced
            // shapes derive exactly their base shape's SC set. Both
            // levels of the hierarchy are equally invisible — the
            // device/block distinction only exists on the weak hardware.
            Event::Fence | Event::FenceBlock => dfs(events, observers, pcs, mem, reads, seen, out),
        }
        pcs[t] -= 1;
    }
    if done {
        let obs: Vec<u32> = observers
            .iter()
            .map(|o| match o {
                Observer::Reg(k) => reads[*k as usize],
                // Only global-space locations receive FinalMem
                // observers (see `TestEvents::observers`).
                Observer::FinalMem(l) => mem.global[*l as usize],
            })
            .collect();
        out.insert(obs);
    }
}

/// The global (thread-major) read index of the read-like event at
/// `(thread, pc)` — plain reads and RMWs share the register numbering.
fn read_index(events: &TestEvents, thread: usize, pc: usize) -> usize {
    let mut idx = 0;
    for (t, evs) in events.threads.iter().enumerate() {
        for (i, e) in evs.iter().enumerate() {
            if t == thread && i == pc {
                return idx;
            }
            if e.is_read_like() {
                idx += 1;
            }
        }
    }
    unreachable!("read_index called on a non-event position")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn set(vs: &[&[u32]]) -> BTreeSet<Vec<u32>> {
        vs.iter().map(|v| v.to_vec()).collect()
    }

    #[test]
    fn mp_sc_set_excludes_exactly_the_weak_outcome() {
        let s = sc_outcomes(&Shape::Mp.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 1]]));
    }

    #[test]
    fn lb_sc_set_excludes_double_one() {
        let s = sc_outcomes(&Shape::Lb.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 0]]));
    }

    #[test]
    fn sb_sc_set_excludes_double_zero() {
        let s = sc_outcomes(&Shape::Sb.events());
        assert_eq!(s, set(&[&[0, 1], &[1, 0], &[1, 1]]));
    }

    #[test]
    fn coww_final_value_is_always_the_second_write() {
        let s = sc_outcomes(&Shape::CoWW.events());
        assert_eq!(s, set(&[&[2]]));
    }

    #[test]
    fn corr_never_reads_backwards() {
        // Reads of one location: (0,0), (0,1), (1,1) — never (1,0).
        let s = sc_outcomes(&Shape::CoRR.events());
        assert_eq!(s, set(&[&[0, 0], &[0, 1], &[1, 1]]));
    }

    #[test]
    fn two_plus_two_w_forbids_both_first_writes_last() {
        // Outcome = final (x, y). x = 1 requires all of T1 to precede
        // T0's first write, forcing y = 2 — so (1, 1) is unreachable,
        // while (1,2), (2,1) and (2,2) all are.
        let s = sc_outcomes(&Shape::TwoPlusTwoW.events());
        assert!(!s.contains(&vec![1, 1]), "{s:?}");
        assert!(s.contains(&vec![1, 2]));
        assert!(s.contains(&vec![2, 1]));
        assert!(s.contains(&vec![2, 2]));
    }

    #[test]
    fn iriw_forbids_opposite_orders() {
        let s = sc_outcomes(&Shape::Iriw.events());
        // T2 sees x then not-yet y, T3 sees y then not-yet x.
        assert!(
            !s.contains(&vec![1, 0, 1, 0]),
            "IRIW weak outcome in SC set"
        );
        assert!(s.contains(&vec![1, 1, 1, 1]));
        assert!(s.contains(&vec![0, 0, 0, 0]));
    }

    #[test]
    fn isa2_forbidden_outcome_absent() {
        let s = sc_outcomes(&Shape::Isa2.events());
        assert!(!s.contains(&vec![1, 1, 0]), "ISA2 weak outcome in SC set");
        assert!(s.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn scoped_variants_derive_their_base_sets() {
        // Intra-block shared memory is one cell per location under SC,
        // so the scoped shapes' SC sets equal their global bases'.
        assert_eq!(
            sc_outcomes(&Shape::MpShared.events()),
            sc_outcomes(&Shape::Mp.events())
        );
        assert_eq!(
            sc_outcomes(&Shape::SbShared.events()),
            sc_outcomes(&Shape::Sb.events())
        );
        assert_eq!(
            sc_outcomes(&Shape::CoRRShared.events()),
            sc_outcomes(&Shape::CoRR.events())
        );
    }

    #[test]
    fn inter_block_shared_events_never_communicate() {
        // A shared-space writer and reader on *different* blocks: the
        // reader can only ever see its own block's (zeroed) copy.
        use wmm_sim::ir::Space;
        let ev = TestEvents {
            name: "shared-mp-inter".into(),
            threads: vec![
                vec![
                    Event::W {
                        loc: 0,
                        val: 1,
                        space: Space::Shared,
                    },
                    Event::W {
                        loc: 1,
                        val: 1,
                        space: Space::Shared,
                    },
                ],
                vec![
                    Event::R {
                        loc: 1,
                        space: Space::Shared,
                    },
                    Event::R {
                        loc: 0,
                        space: Space::Shared,
                    },
                ],
            ],
            placement: Placement::InterBlock,
        };
        assert_eq!(sc_outcomes(&ev), set(&[&[0, 0]]));
    }

    #[test]
    fn block_fenced_and_mixed_variants_derive_their_base_sets() {
        // Both fence levels are oracle-invisible, and a mixed-scope
        // shape's SC set equals its single-space base's: intra-block
        // shared cells and global cells are both just one copy under SC.
        for (variant, base) in [
            (Shape::MpSharedFence, Shape::Mp),
            (Shape::SbSharedFence, Shape::Sb),
            (Shape::MpMixed, Shape::Mp),
            (Shape::Isa2Scoped, Shape::Isa2),
            (Shape::WrcFences, Shape::Wrc),
            (Shape::Isa2Fences, Shape::Isa2),
            (Shape::IriwFences, Shape::Iriw),
        ] {
            assert_eq!(
                sc_outcomes(&variant.events()),
                sc_outcomes(&base.events()),
                "{variant} vs {base}"
            );
        }
    }

    #[test]
    fn mp_cas_set_is_the_hand_enumerated_one() {
        // Observers: (T0 CAS old, T1 CAS old, T1 read of x, final y).
        // T0's CAS(y,0→1) always sees 0; T1's CAS(y,1→2) succeeds only
        // after T0's, and then the payload write to x is already
        // visible.
        let s = sc_outcomes(&Shape::MpCas.events());
        assert_eq!(
            s,
            set(&[&[0, 0, 0, 1], &[0, 0, 1, 1], &[0, 1, 1, 2]]),
            "{s:?}"
        );
    }

    #[test]
    fn two_plus_two_w_exch_set_is_the_hand_enumerated_one() {
        // Observers: (r0..r3 old values, final x, final y). Six
        // interleavings collapse to three outcomes; in particular both
        // "old" chains must be consistent with one total order.
        let s = sc_outcomes(&Shape::TwoPlusTwoWExch.events());
        assert_eq!(
            s,
            set(&[
                &[0, 0, 2, 1, 2, 1],
                &[0, 1, 0, 1, 2, 2],
                &[2, 1, 0, 0, 1, 2]
            ]),
            "{s:?}"
        );
    }

    #[test]
    fn co_add_increments_never_interleave() {
        // Two atomicAdd(x,1): the olds are a permutation of {0,1} and
        // the final value is always 2 — (0,0,…) would mean a torn RMW.
        let s = sc_outcomes(&Shape::CoAdd.events());
        assert_eq!(s, set(&[&[0, 1, 2], &[1, 0, 2]]));
    }

    #[test]
    fn every_shape_has_at_least_one_forbidden_outcome_in_range() {
        // The whole point of a litmus shape: the cross-product of
        // observed value ranges strictly contains the SC set.
        for shape in Shape::ALL {
            let ev = shape.events();
            let s = sc_outcomes(&ev);
            let width = ev.observers().len();
            // Value range per observer: 0..=bound, where the bound is
            // the largest directly written value or (for accumulating
            // Adds) the sum of all added values.
            let mut max_val = 0u32;
            let mut add_sum = 0u32;
            for e in ev.threads.iter().flatten() {
                match e {
                    Event::W { val, .. } | Event::Cas { val, .. } | Event::Exch { val, .. } => {
                        max_val = max_val.max(*val);
                    }
                    Event::Add { val, .. } => add_sum += *val,
                    Event::R { .. } | Event::Fence | Event::FenceBlock => {}
                }
            }
            let bound = max_val.max(add_sum);
            let mut total = 1usize;
            for _ in 0..width {
                total *= (bound + 1) as usize;
            }
            assert!(
                s.len() < total,
                "{shape}: SC set covers the whole outcome space ({total})"
            );
            assert!(!s.is_empty(), "{shape}: empty SC set");
        }
    }
}
