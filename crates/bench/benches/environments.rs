//! Criterion bench: application execution under each testing environment
//! (the unit of Tab. 5's campaign cells).

use criterion::{criterion_group, criterion_main, Criterion};
use wmm_apps::CbeDot;
use wmm_core::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

fn bench_envs(c: &mut Criterion) {
    let chip = Chip::by_short("K20").unwrap();
    let app = CbeDot::new();
    let h = AppHarness::new(&chip, &app);
    let mut group = c.benchmark_group("environments");
    for env in Environment::all_eight(&chip) {
        let mut seed = 0u64;
        group.bench_function(env.name(), |b| {
            b.iter(|| {
                seed += 1;
                h.run_once(&env, seed)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_envs
}
criterion_main!(benches);
