//! Criterion bench: parallel `run_many` scaling — single-thread vs
//! multi-worker campaign throughput on the same seeded workload, the
//! measurement behind the campaign-layer parallelisation. Histogram
//! equality across worker counts is asserted once before timing, so the
//! numbers compare runs that provably report identical results.

use criterion::{criterion_group, criterion_main, Criterion};
use wmm_core::stress::{build_systematic_at, litmus_stress_threads, Scratchpad};
use wmm_gen::Shape;
use wmm_litmus::{run_many, Histogram, LitmusInstance, LitmusLayout, RunManyConfig};
use wmm_sim::chip::Chip;

const COUNT: u32 = 192;

fn campaign(chip: &Chip, inst: &LitmusInstance, pad: Scratchpad, parallelism: usize) -> Histogram {
    let chip2 = chip.clone();
    let seq = chip.preferred_seq.clone();
    run_many(
        chip,
        inst,
        move |rng| {
            let threads = litmus_stress_threads(&chip2, rng);
            let s = build_systematic_at(pad, &seq, &[0], threads, 40);
            (s.groups, s.init)
        },
        RunManyConfig {
            count: COUNT,
            base_seed: 2016,
            randomize_ids: true,
            parallelism,
        },
    )
}

fn bench_parallel(c: &mut Criterion) {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&w| w == 1 || w <= cores.max(2));
    // Seed-identical results across all measured worker counts.
    let reference = campaign(&chip, &inst, pad, 1);
    for &w in &counts {
        assert_eq!(campaign(&chip, &inst, pad, w), reference);
    }
    let mut group = c.benchmark_group("run-many-mp-d64");
    for w in counts {
        group.bench_function(format!("{COUNT}-execs-w{w}"), |b| {
            b.iter(|| campaign(&chip, &inst, pad, w))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
