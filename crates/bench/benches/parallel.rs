//! Criterion bench: the unified campaign facade — single-thread vs
//! multi-worker throughput on the same seeded workload, plus cached
//! stress artifacts vs the historic rebuild-the-kernel-per-run path.
//! Histogram equality across worker counts (and across the two stress
//! paths) is asserted once before timing, so the numbers compare runs
//! that provably report identical results.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmm_core::campaign::CampaignBuilder;
use wmm_core::stress::{
    build_stress, litmus_stress_threads, Scratchpad, StressArtifacts, StressStrategy,
    SystematicParams,
};
use wmm_gen::Shape;
use wmm_litmus::runner::{mix_seed, run_instance};
use wmm_litmus::{Histogram, LitmusInstance, LitmusLayout};
use wmm_sim::chip::Chip;
use wmm_sim::exec::Gpu;

const COUNT: u32 = 192;

fn campaign(chip: &Chip, inst: &LitmusInstance, pad: Scratchpad, parallelism: usize) -> Histogram {
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    CampaignBuilder::new(chip)
        .stress(artifacts)
        .randomize_ids(true)
        .count(COUNT)
        .base_seed(2016)
        .parallelism(parallelism)
        .build()
        .run_litmus(inst)
}

/// The historic suite hot path: rebuild the systematic stress kernel on
/// every run (what `build_stress` per run used to cost).
fn rebuild_per_run(chip: &Chip, inst: &LitmusInstance, pad: Scratchpad) -> Histogram {
    let strategy = StressStrategy::Systematic(SystematicParams::from_paper(chip));
    let mut gpu = Gpu::new(chip.clone());
    let mut h = Histogram::new();
    for i in 0..u64::from(COUNT) {
        let mut rng = SmallRng::seed_from_u64(mix_seed(2016, i));
        let threads = litmus_stress_threads(chip, &mut rng);
        let s = build_stress(chip, &strategy, pad, threads, 40, &mut rng);
        let seed = rng.gen();
        h.record(run_instance(&mut gpu, inst, (s.groups, s.init), true, seed));
    }
    h
}

/// The same campaign with the kernel compiled once per environment.
fn cached_artifacts(chip: &Chip, inst: &LitmusInstance, pad: Scratchpad) -> Histogram {
    let strategy = StressStrategy::Systematic(SystematicParams::from_paper(chip));
    let artifacts = StressArtifacts::for_strategy(chip, &strategy, pad, 40);
    CampaignBuilder::new(chip)
        .stress(artifacts)
        .randomize_ids(true)
        .count(COUNT)
        .base_seed(2016)
        .parallelism(1)
        .build()
        .run_litmus(inst)
}

fn bench_parallel(c: &mut Criterion) {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&w| w == 1 || w <= cores.max(2));
    // Seed-identical results across all measured worker counts.
    let reference = campaign(&chip, &inst, pad, 1);
    for &w in &counts {
        assert_eq!(campaign(&chip, &inst, pad, w), reference);
    }
    let mut group = c.benchmark_group("run-many-mp-d64");
    for w in counts {
        group.bench_function(format!("{COUNT}-execs-w{w}"), |b| {
            b.iter(|| campaign(&chip, &inst, pad, w))
        });
    }
    group.finish();

    // Per-environment artifact caching vs per-run kernel rebuild: both
    // paths draw identical randomness, so the histograms are
    // bit-identical and the delta is pure artifact-construction cost.
    assert_eq!(
        rebuild_per_run(&chip, &inst, pad),
        cached_artifacts(&chip, &inst, pad)
    );
    let mut group = c.benchmark_group("stress-artifacts");
    group.bench_function(format!("{COUNT}-execs-rebuild-per-run"), |b| {
        b.iter(|| rebuild_per_run(&chip, &inst, pad))
    });
    group.bench_function(format!("{COUNT}-execs-cached"), |b| {
        b.iter(|| cached_artifacts(&chip, &inst, pad))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
