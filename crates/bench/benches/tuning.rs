//! Criterion bench: one patch-finding sweep (the unit of Tab. 2's
//! tuning pipeline and Fig. 3's panels).

use criterion::{criterion_group, criterion_main, Criterion};
use wmm_core::tuning::{patch, TuningConfig};
use wmm_gen::Shape;
use wmm_sim::chip::Chip;

fn bench_tuning(c: &mut Criterion) {
    let chip = Chip::by_short("Titan").unwrap();
    let mut cfg = TuningConfig::quick();
    cfg.execs = 8;
    cfg.location_step = 32;
    let mut group = c.benchmark_group("tuning");
    group.bench_function("patch-sweep-mp-d64", |b| {
        b.iter(|| patch::sweep(&chip, Shape::Mp, 64, &cfg))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tuning
}
criterion_main!(benches);
