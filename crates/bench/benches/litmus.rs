//! Criterion bench: litmus execution throughput (native and stressed),
//! the unit cost underlying the Fig. 3 / Tab. 2 grids.

use criterion::{criterion_group, criterion_main, Criterion};
use wmm_core::stress::{build_systematic_at, Scratchpad};
use wmm_gen::Shape;
use wmm_litmus::{run_instance, LitmusLayout};
use wmm_sim::chip::Chip;
use wmm_sim::exec::Gpu;

fn bench_litmus(c: &mut Criterion) {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let mut group = c.benchmark_group("litmus");
    for test in Shape::TRIO {
        let inst = test.instance(LitmusLayout::standard(64, pad.required_words()));
        let mut gpu = Gpu::new(chip.clone());
        let mut seed = 0u64;
        group.bench_function(format!("{test}-native"), |b| {
            b.iter(|| {
                seed += 1;
                run_instance(&mut gpu, &inst, (Vec::new(), Vec::new()), false, seed)
            })
        });
        group.bench_function(format!("{test}-sys-str"), |b| {
            b.iter(|| {
                seed += 1;
                let s = build_systematic_at(pad, &chip.preferred_seq, &[0], 256, 40);
                run_instance(&mut gpu, &inst, (s.groups, s.init), true, seed)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_litmus
}
criterion_main!(benches);
