//! Criterion bench: native execution cost of the three fencing
//! strategies (the wall-clock analogue of Fig. 5's simulated-cycle
//! comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use wmm_apps::CbeDot;
use wmm_core::app::Application;
use wmm_core::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

fn bench_fences(c: &mut Criterion) {
    let chip = Chip::by_short("C2075").unwrap();
    let app = CbeDot::new();
    let base = app.spec().clone();
    let sites = base.fence_sites();
    let variants = [
        ("no-fences", base.clone()),
        ("emp-fences", base.with_fences(&sites[..1])),
        ("cons-fences", base.with_all_fences()),
    ];
    let mut group = c.benchmark_group("fences");
    for (name, spec) in variants {
        let h = AppHarness::with_spec(&chip, &app, spec);
        let env = Environment::native();
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                h.run_once(&env, seed)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fences
}
criterion_main!(benches);
