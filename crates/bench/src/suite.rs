//! `repro suite` — campaign the generated litmus suite.
//!
//! Runs every shape of the `wmm-gen` catalogue across chips × stress
//! strategies — through the unified campaign facade
//! (`wmm_core::campaign`), with each `(chip, strategy)` column's stress
//! kernels compiled once for the whole matrix — and prints a weak-rate
//! matrix. Each cell's weak-outcome predicate is derived by the
//! SC-enumeration oracle — nothing on this path carries a hand-written
//! predicate. Optionally serialises the matrix to JSON (`--json <path>`,
//! hand-rolled — no serde in the dependency-free build container) so
//! bench trajectories can be captured as `BENCH_*.json` artifacts.

use crate::Scale;
use wmm_core::stress::Scratchpad;
use wmm_core::suite::{run_suite, SuiteCell, SuiteConfig, SuiteStrategy};
use wmm_gen::{Placement, Shape};
use wmm_sim::chip::Chip;

/// The scratchpad suite campaigns stress (after the litmus layout,
/// covering the chip's scaled L2 like the tuning stages do).
fn suite_scratchpad(chips: &[Chip]) -> Scratchpad {
    let words = chips
        .iter()
        .map(|c| c.l2_scaled_words)
        .max()
        .unwrap_or(2048)
        .max(2048);
    Scratchpad::new(2048, words)
}

/// The suite's default strategy column set: native plus the paper's
/// tuned systematic environment and the random baseline (both with
/// thread randomisation, the paper's most effective configuration).
pub fn default_strategies() -> Vec<SuiteStrategy> {
    vec![
        SuiteStrategy::native(),
        SuiteStrategy::sys_str_plus(40),
        SuiteStrategy::rand_str_plus(40),
    ]
}

/// Run the suite for the requested chips (default: Titan and K20, one
/// Kepler flagship and one compute part) and print the weak-rate
/// matrix. `placement` restricts the catalogue to shapes of one thread
/// placement (`repro suite --placement intra` runs just the scoped
/// rows). Returns the cells for JSON serialisation and tests.
pub fn run(
    chips: Option<Vec<String>>,
    placement: Option<Placement>,
    scale: Scale,
) -> Vec<SuiteCell> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => vec![
            Chip::by_short("Titan").expect("chip"),
            Chip::by_short("K20").expect("chip"),
        ],
    };
    let shapes: Vec<Shape> = Shape::ALL
        .into_iter()
        .filter(|s| placement.is_none_or(|p| s.placement() == p))
        .collect();
    let strategies = default_strategies();
    let cfg = SuiteConfig {
        distances: vec![64],
        execs: scale.execs,
        pad: suite_scratchpad(&chips),
        base_seed: scale.seed,
        workers: scale.workers,
    };
    println!(
        "Generated litmus suite: {} shapes x {} chip(s) x {} strategies, d={:?}, {} execs/cell",
        shapes.len(),
        chips.len(),
        strategies.len(),
        cfg.distances,
        cfg.execs
    );
    println!("(weak predicate of every cell derived by the SC-enumeration oracle)\n");
    let cells = run_suite(&shapes, &chips, &strategies, &cfg);
    print_matrix(&chips, &strategies, &cells);
    // Describe only the rows actually in the table above.
    match placement {
        Some(Placement::IntraBlock) => {
            println!("Expected shape: the scoped intra rows communicate through the");
            println!("simulator's strongly-ordered shared memory, so every cell stays");
            println!("at zero — weak outcomes here would indicate a simulator bug.");
        }
        _ => {
            println!("Expected shape: sys-str+ provokes weak outcomes on the relaxed shapes");
            println!("(MP/LB/SB/S/R/2+2W, the 3/4-thread cycles and the RMW cycles MP+CAS/");
            println!("2+2W.exch); the coherence tests CoRR/CoWW/CoAdd never go weak (same-line");
            println!("ordering and atomicity are preserved); the fenced variants MP+fences/");
            if placement.is_none() {
                println!("SB+fences, the scoped [intra] rows (strongly-ordered shared memory) and");
            } else {
                println!("SB+fences and");
            }
            println!("no-str- stay at zero everywhere.");
        }
    }
    cells
}

/// Print the matrix: one row per (shape, distance) with its placement,
/// one column per (chip, strategy).
fn print_matrix(chips: &[Chip], strategies: &[SuiteStrategy], cells: &[SuiteCell]) {
    print!("{:>13} {:>7}", "shape", "place");
    for chip in chips {
        for s in strategies {
            print!(" {:>15}", format!("{}/{}", chip.short, s.name));
        }
    }
    println!();
    let mut i = 0;
    while i < cells.len() {
        let row = &cells[i];
        print!(
            "{:>13} {:>7}",
            format!("{}@{}", row.shape, row.distance),
            row.placement
        );
        for _ in 0..chips.len() * strategies.len() {
            let c = &cells[i];
            print!(
                " {:>15}",
                format!(
                    "{}/{} ({:.1}%)",
                    c.hist.weak(),
                    c.hist.total(),
                    100.0 * c.weak_rate()
                )
            );
            i += 1;
        }
        println!();
    }
    println!();
}

/// Serialise suite cells as JSON (hand-rolled; values are numbers and
/// plain ASCII names, so no string escaping is needed).
pub fn to_json(cells: &[SuiteCell], execs: u32, seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"execs\": {execs},\n  \"seed\": {seed},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let outcomes: Vec<String> = c
            .hist
            .iter()
            .map(|(obs, n)| {
                let vals: Vec<String> = obs.iter().map(|v| v.to_string()).collect();
                format!("{{\"obs\": [{}], \"count\": {n}}}", vals.join(", "))
            })
            .collect();
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"distance\": {}, \"placement\": \"{}\", \
             \"chip\": \"{}\", \"strategy\": \"{}\", \
             \"weak\": {}, \"total\": {}, \"rate\": {:.6}, \"outcomes\": [{}]}}{}\n",
            c.shape,
            c.distance,
            c.placement,
            c.chip,
            c.strategy,
            c.hist.weak(),
            c.hist.total(),
            c.weak_rate(),
            outcomes.join(", "),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_catalogue_and_goes_weak_under_stress() {
        let scale = Scale {
            execs: 24,
            ..Scale::quick()
        };
        let cells = run(Some(vec!["Titan".to_string()]), None, scale);
        // Every shape × 1 chip × 3 strategies.
        assert_eq!(cells.len(), Shape::ALL.len() * 3);
        // Under sys-str+, the relaxed two-thread shapes show weak
        // behaviour; the coherence tests and the scoped rows never do.
        let weak_of = |shape: Shape, strat: &str| {
            cells
                .iter()
                .find(|c| c.shape == shape && c.strategy == strat)
                .map(|c| c.hist.weak())
                .unwrap()
        };
        assert!(weak_of(Shape::Mp, "sys-str+") > 0, "MP should go weak");
        assert_eq!(
            weak_of(Shape::CoRR, "sys-str+"),
            0,
            "CoRR must stay coherent"
        );
        assert_eq!(
            weak_of(Shape::CoWW, "sys-str+"),
            0,
            "CoWW must stay coherent"
        );
        for shape in Shape::SCOPED {
            assert_eq!(
                weak_of(shape, "sys-str+"),
                0,
                "{shape} communicates through strongly-ordered shared memory"
            );
        }
        assert_eq!(weak_of(Shape::CoAdd, "sys-str+"), 0, "CoAdd must be atomic");
    }

    #[test]
    fn placement_filter_selects_the_scoped_rows() {
        let scale = Scale {
            execs: 8,
            ..Scale::quick()
        };
        let cells = run(
            Some(vec!["K20".to_string()]),
            Some(Placement::IntraBlock),
            scale,
        );
        assert_eq!(cells.len(), Shape::SCOPED.len() * 3);
        assert!(cells.iter().all(|c| c.placement == Placement::IntraBlock));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let scale = Scale {
            execs: 8,
            ..Scale::quick()
        };
        let cfg = SuiteConfig {
            execs: scale.execs,
            pad: suite_scratchpad(&[Chip::by_short("K20").unwrap()]),
            base_seed: scale.seed,
            workers: 1,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp, Shape::CoWW],
            &[Chip::by_short("K20").unwrap()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        let j = to_json(&cells, cfg.execs, cfg.base_seed);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"shape\"").count(), 2);
        assert!(j.contains("\"MP\""));
        assert!(j.contains("\"CoWW\""));
        assert_eq!(j.matches("\"placement\": \"inter\"").count(), 2);
        // Balanced brackets (cheap structural sanity).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
