//! `repro suite` — campaign the generated litmus suite.
//!
//! Runs every shape of the `wmm-gen` catalogue across chips × stress
//! strategies — through the unified campaign facade
//! (`wmm_core::campaign`), with each `(chip, strategy)` column's stress
//! kernels compiled once for the whole matrix — and prints a weak-rate
//! matrix. Each cell's weak-outcome predicate is derived by the
//! SC-enumeration oracle — nothing on this path carries a hand-written
//! predicate. Optionally serialises the matrix to JSON (`--json <path>`,
//! hand-rolled — no serde in the dependency-free build container) so
//! bench trajectories can be captured as `BENCH_*.json` artifacts.

use crate::Scale;
use wmm_core::stress::Scratchpad;
use wmm_core::suite::{run_suite, SuiteCell, SuiteConfig, SuiteStrategy};
use wmm_gen::{Placement, Shape};
use wmm_obs::Provenance;
use wmm_sim::chip::Chip;

/// The scratchpad suite campaigns stress (after the litmus layout,
/// covering the chip's scaled L2 like the tuning stages do).
fn suite_scratchpad(chips: &[Chip]) -> Scratchpad {
    let words = chips
        .iter()
        .map(|c| c.l2_scaled_words)
        .max()
        .unwrap_or(2048)
        .max(2048);
    Scratchpad::new(2048, words)
}

/// The suite's default strategy column set: native, the paper's tuned
/// systematic environment and the random baseline (both with thread
/// randomisation), the shared-stress column `shm+sys-str+` —
/// systematic global stress with the block's idle lanes hammering a
/// shared scratchpad, the configuration under which the scoped
/// (intra-block, shared-memory) rows go observably weak — and the
/// structural column `l1-str+`, whose write-only cross-SM traffic
/// pressures incoherent SM-private L1s so the same-address read pairs
/// (`CoRR`) go weak on the Tesla-class chips.
pub fn default_strategies() -> Vec<SuiteStrategy> {
    vec![
        SuiteStrategy::native(),
        SuiteStrategy::sys_str_plus(40),
        SuiteStrategy::rand_str_plus(40),
        SuiteStrategy::shared_sys_str_plus(40),
        SuiteStrategy::l1_str_plus(40),
    ]
}

/// Run the suite for the requested chips (default: Titan and K20, one
/// Kepler flagship and one compute part) and print the weak-rate
/// matrix. `placement` restricts the catalogue to shapes of one thread
/// placement (`repro suite --placement intra` runs just the scoped
/// rows). `provenance` adds a per-row weakness-channel breakdown column
/// (`repro suite --provenance`). Returns the cells for JSON
/// serialisation and tests.
pub fn run(
    chips: Option<Vec<String>>,
    placement: Option<Placement>,
    scale: Scale,
    provenance: bool,
) -> Vec<SuiteCell> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => vec![
            Chip::by_short("Titan").expect("chip"),
            Chip::by_short("K20").expect("chip"),
        ],
    };
    let shapes: Vec<Shape> = Shape::ALL
        .into_iter()
        .filter(|s| placement.is_none_or(|p| s.placement() == p))
        .collect();
    let strategies = default_strategies();
    let cfg = SuiteConfig {
        distances: vec![64],
        execs: scale.execs,
        pad: suite_scratchpad(&chips),
        base_seed: scale.seed,
        workers: scale.workers,
    };
    println!(
        "Generated litmus suite: {} shapes x {} chip(s) x {} strategies, d={:?}, {} execs/cell",
        shapes.len(),
        chips.len(),
        strategies.len(),
        cfg.distances,
        cfg.execs
    );
    println!("(weak predicate of every cell derived by the SC-enumeration oracle)\n");
    let cells = run_suite(&shapes, &chips, &strategies, &cfg);
    print_matrix(&chips, &strategies, &cells, provenance);
    // Describe only the rows actually in the table above.
    match placement {
        Some(Placement::IntraBlock) => {
            println!("Expected shape: the scoped intra rows relax only under shm+sys-str+,");
            println!("whose shared-scratchpad stressing lanes feed the per-block shared");
            println!("contention factor — MP.shared/SB.shared and the mixed-scope shapes go");
            println!("weak there, while their +fence_block twins (the cheap membar.cta rung");
            println!("of the fence hierarchy) and the single-location CoRR.shared stay at");
            println!("zero under every column.");
        }
        _ => {
            println!("Expected shape: sys-str+ provokes weak outcomes on the relaxed shapes");
            println!("(MP/LB/SB/S/R/2+2W, the 3/4-thread cycles and the RMW cycles MP+CAS/");
            println!("2+2W.exch); CoWW/CoAdd never go weak (same-line write ordering and");
            println!("atomicity are preserved), and CoRR holds on coherent-L1 chips — but on");
            println!("the incoherent-L1 Teslas (C2075/C2050) the l1-str+ column's cross-SM");
            println!("write pressure makes CoRR read stale L1 lines, with CoRR+fence pinned");
            println!("at zero; every +fences variant stays at");
            if placement.is_none() {
                println!("zero, the scoped [intra] rows go weak only under shm+sys-str+ (with");
                println!("their +fence_block twins pinned at zero), and no-str- stays at zero");
                println!("everywhere.");
            } else {
                println!("zero, and no-str- stays at zero everywhere.");
            }
        }
    }
    cells
}

/// Print the matrix: one row per (shape, distance) with its placement,
/// one column per (chip, strategy). With `provenance`, a trailing
/// column aggregates the row's weakness-channel attribution across all
/// its cells (`-` when the row never went weak).
fn print_matrix(
    chips: &[Chip],
    strategies: &[SuiteStrategy],
    cells: &[SuiteCell],
    provenance: bool,
) {
    print!("{:>13} {:>7} {:>12}", "shape", "place", "static");
    for chip in chips {
        for s in strategies {
            print!(" {:>15}", format!("{}/{}", chip.short, s.name));
        }
    }
    if provenance {
        print!("  provenance");
    }
    println!();
    let mut i = 0;
    while i < cells.len() {
        let row = &cells[i];
        print!(
            "{:>13} {:>7} {:>12}",
            format!("{}@{}", row.shape, row.distance),
            row.placement,
            row.static_verdict
        );
        let mut row_prov = Provenance::default();
        for _ in 0..chips.len() * strategies.len() {
            let c = &cells[i];
            print!(
                " {:>15}",
                format!(
                    "{}/{} ({:.1}%)",
                    c.hist.weak(),
                    c.hist.total(),
                    100.0 * c.weak_rate()
                )
            );
            row_prov.add(&c.hist.provenance_total());
            i += 1;
        }
        if provenance {
            print!("  {row_prov}");
        }
        println!();
    }
    println!();
}

/// Serialise suite cells as JSON (hand-rolled; values are numbers and
/// plain ASCII names, so no string escaping is needed). With
/// `provenance`, every cell carries its deterministic weakness-channel
/// counters plus a per-weak-outcome attribution breakdown that sums to
/// the outcome's count; without it the output is byte-identical to the
/// pre-provenance format.
pub fn to_json(cells: &[SuiteCell], execs: u32, seed: u64, provenance: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"execs\": {execs},\n  \"seed\": {seed},\n  \"cells\": [\n"
    ));
    for (i, c) in cells.iter().enumerate() {
        let outcomes: Vec<String> = c
            .hist
            .iter()
            .map(|(obs, n)| {
                let vals: Vec<String> = obs.iter().map(|v| v.to_string()).collect();
                match c.hist.provenance(obs).filter(|_| provenance) {
                    Some(p) => format!(
                        "{{\"obs\": [{}], \"count\": {n}, \"provenance\": {}}}",
                        vals.join(", "),
                        p.to_json()
                    ),
                    None => format!("{{\"obs\": [{}], \"count\": {n}}}", vals.join(", ")),
                }
            })
            .collect();
        let spaces: Vec<String> = c
            .spaces
            .iter()
            .map(|s| match s {
                wmm_sim::ir::Space::Global => "\"global\"".to_string(),
                wmm_sim::ir::Space::Shared => "\"shared\"".to_string(),
            })
            .collect();
        let prov_fields = if provenance {
            format!(
                "\"channels\": {}, \"provenance\": {}, ",
                c.hist.channels().to_json(),
                c.hist.provenance_total().to_json()
            )
        } else {
            String::new()
        };
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"distance\": {}, \"placement\": \"{}\", \
             \"spaces\": [{}], \"chip\": \"{}\", \"strategy\": \"{}\", \
             \"static\": \"{}\", \"static_warnings\": {}, \
             \"weak\": {}, \"total\": {}, \"rate\": {:.6}, {}\"outcomes\": [{}]}}{}\n",
            c.shape,
            c.distance,
            c.placement,
            spaces.join(", "),
            c.chip,
            c.strategy,
            c.static_verdict,
            c.static_verdict.warnings,
            c.hist.weak(),
            c.hist.total(),
            c.weak_rate(),
            prov_fields,
            outcomes.join(", "),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_catalogue_and_goes_weak_under_stress() {
        let scale = Scale {
            execs: 24,
            ..Scale::quick()
        };
        let cells = run(Some(vec!["Titan".to_string()]), None, scale, true);
        // Every shape × 1 chip × the default strategy columns.
        assert_eq!(cells.len(), Shape::ALL.len() * default_strategies().len());
        // Under sys-str+, the relaxed two-thread shapes show weak
        // behaviour; the coherence tests never do, and the scoped rows
        // relax only once the shared-stress column pressures the block.
        let weak_of = |shape: Shape, strat: &str| {
            cells
                .iter()
                .find(|c| c.shape == shape && c.strategy == strat)
                .map(|c| c.hist.weak())
                .unwrap()
        };
        assert!(weak_of(Shape::Mp, "sys-str+") > 0, "MP should go weak");
        assert_eq!(
            weak_of(Shape::CoRR, "sys-str+"),
            0,
            "CoRR must stay coherent"
        );
        assert_eq!(
            weak_of(Shape::CoWW, "sys-str+"),
            0,
            "CoWW must stay coherent"
        );
        for shape in Shape::SCOPED {
            assert_eq!(
                weak_of(shape, "sys-str+"),
                0,
                "{shape}: without shared-space stress the block is quiescent"
            );
        }
        // The shared-stress column flips the scoped rows...
        assert!(
            weak_of(Shape::MpShared, "shm+sys-str+") > 0,
            "MP.shared should go weak under shared stress"
        );
        assert!(
            weak_of(Shape::SbShared, "shm+sys-str+") > 0,
            "SB.shared should go weak under shared stress"
        );
        // ...while coherence and the block-fenced twins hold at zero.
        assert_eq!(weak_of(Shape::CoRRShared, "shm+sys-str+"), 0);
        for shape in Shape::SCOPED_FENCED {
            assert_eq!(
                weak_of(shape, "shm+sys-str+"),
                0,
                "{shape}: fence_block must order shared space"
            );
        }
        for shape in Shape::WIDE_FENCED {
            assert_eq!(
                weak_of(shape, "sys-str+"),
                0,
                "{shape}: device fences must suppress the wide cycles"
            );
        }
        assert_eq!(weak_of(Shape::CoAdd, "sys-str+"), 0, "CoAdd must be atomic");
    }

    #[test]
    fn placement_filter_selects_the_scoped_rows() {
        let scale = Scale {
            execs: 8,
            ..Scale::quick()
        };
        let cells = run(
            Some(vec!["K20".to_string()]),
            Some(Placement::IntraBlock),
            scale,
            false,
        );
        let intra = Shape::SCOPED.len() + Shape::SCOPED_FENCED.len() + Shape::MIXED.len();
        assert_eq!(cells.len(), intra * default_strategies().len());
        assert!(cells.iter().all(|c| c.placement == Placement::IntraBlock));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let scale = Scale {
            execs: 8,
            ..Scale::quick()
        };
        let cfg = SuiteConfig {
            execs: scale.execs,
            pad: suite_scratchpad(&[Chip::by_short("K20").unwrap()]),
            base_seed: scale.seed,
            workers: 1,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp, Shape::CoWW, Shape::MpShared, Shape::MpMixed],
            &[Chip::by_short("K20").unwrap()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        let j = to_json(&cells, cfg.execs, cfg.base_seed, false);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        // Without --provenance the document carries no channel fields.
        assert!(!j.contains("\"channels\""));
        assert!(!j.contains("\"provenance\""));
        assert_eq!(j.matches("\"shape\"").count(), 4);
        assert!(j.contains("\"MP\""));
        assert!(j.contains("\"CoWW\""));
        assert_eq!(j.matches("\"placement\": \"inter\"").count(), 2);
        // The spaces axis lets tooling filter rows without name-parsing.
        assert_eq!(j.matches("\"spaces\": [\"global\"]").count(), 2);
        assert_eq!(j.matches("\"spaces\": [\"shared\"]").count(), 1);
        assert_eq!(j.matches("\"spaces\": [\"global\", \"shared\"]").count(), 1);
        // The static column rides along: MP warns at device level,
        // MP.shared at block level, and CoWW is certified quiet.
        assert_eq!(j.matches("\"static\"").count(), 4);
        assert!(j.contains("\"static\": \"warn(device)\""));
        assert!(j.contains("\"static\": \"warn(block)\""));
        assert!(j.contains("\"static\": \"quiet\""));
        // Balanced brackets (cheap structural sanity).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn provenance_json_breaks_down_every_weak_outcome() {
        let cfg = SuiteConfig {
            execs: 40,
            pad: suite_scratchpad(&[Chip::by_short("Titan").unwrap()]),
            base_seed: 7,
            workers: 1,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp],
            &[Chip::by_short("Titan").unwrap()],
            &[SuiteStrategy::sys_str_plus(40)],
            &cfg,
        );
        let c = &cells[0];
        assert!(c.hist.weak() > 0, "MP under sys-str+ must go weak");
        // Every weak outcome's attribution sums to its count, so the
        // row-level provenance totals the row's weak count.
        for (obs, n) in c.hist.iter() {
            if let Some(p) = c.hist.provenance(obs) {
                assert_eq!(p.total(), n);
            }
        }
        assert_eq!(c.hist.provenance_total().total(), c.hist.weak());
        let j = to_json(&cells, cfg.execs, cfg.base_seed, true);
        assert!(j.contains("\"channels\": {\"window_global\":"), "{j}");
        assert!(j.contains("\"provenance\": {\"window_global\":"), "{j}");
        // MP on a coherent-L1 Kepler relaxes through the store window
        // only — never the structural L1 channel.
        assert!(j.contains("\"l1_stale\": 0"), "{j}");
        // The no-provenance rendering of the same cells stays clean.
        assert!(!to_json(&cells, cfg.execs, cfg.base_seed, false).contains("\"channels\""));
    }
}
