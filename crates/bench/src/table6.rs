//! Tab. 6 — empirical fence insertion results.

use crate::Scale;
use wmm_apps::app_by_name;
use wmm_core::app::{Application, FenceSite};
use wmm_core::harden::{empirical_fence_insertion, HardenConfig, HardenResult};
use wmm_sim::chip::Chip;

/// The seven fence-free applications the paper runs insertion on
/// (Sec. 5.2: the apps that contain no fences, i.e. the originals that
/// shipped none plus the manufactured `-nf` variants).
pub const INSERTION_APPS: [&str; 7] = [
    "cbe-ht",
    "cbe-dot",
    "ct-octree",
    "tpo-tm",
    "sdk-red-nf",
    "cub-scan-nf",
    "ls-bh-nf",
];

/// Insertion outcome for one app on one chip.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Application name.
    pub app: String,
    /// Chip short name.
    pub chip: String,
    /// The result.
    pub result: HardenResult,
}

/// Run insertion for one (app, chip).
pub fn harden_one(app: &dyn Application, chip: &Chip, scale: Scale) -> HardenResult {
    let cfg = HardenConfig {
        initial_iters: scale.harden_iters,
        stable_runs: scale.harden_stable,
        max_rounds: 3,
        base_seed: scale.seed,
        parallelism: scale.workers,
    };
    empirical_fence_insertion(chip, app, &cfg)
}

/// Run the table: insertion on every fence-free app, on a reference chip
/// (Titan, which the paper uses as the comparison baseline) plus the
/// other requested chips for the agreement count.
pub fn run(chips: Option<Vec<String>>, scale: Scale) -> Vec<Entry> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => Chip::all(),
    };
    println!("Tab. 6: empirical fence insertion (testing environment: sys-str+)\n");
    println!(
        "{:12} {:>6} {:>12} {:>9} {:>10} {:>9}",
        "app", "init.", "red.(Titan)", "agreeing", "execs", "time"
    );
    let titan = Chip::by_short("Titan").expect("Titan");
    let mut out = Vec::new();
    for name in INSERTION_APPS {
        let app = app_by_name(name).expect("table app");
        let reference = harden_one(app.as_ref(), &titan, scale);
        let mut agreeing = 0;
        for chip in chips.iter().filter(|c| c.short != "Titan") {
            let r = harden_one(app.as_ref(), chip, scale);
            if same_sites(&r.fences, &reference.fences) {
                agreeing += 1;
            }
            out.push(Entry {
                app: name.to_string(),
                chip: chip.short.to_string(),
                result: r,
            });
        }
        println!(
            "{:12} {:>6} {:>12} {:>9} {:>10} {:>8.1}s{}",
            name,
            reference.initial_fences,
            reference.fences.len(),
            agreeing,
            reference.executions,
            reference.elapsed.as_secs_f64(),
            if reference.converged { "" } else { "  (t.o.)" },
        );
        out.push(Entry {
            app: name.to_string(),
            chip: "Titan".into(),
            result: reference,
        });
    }
    println!("\nExpected shape: most apps reduce to a single fence; cub-scan-nf to the two");
    println!("fences CUB ships; ls-bh-nf to the largest set (a superset of ls-bh's own).");
    out
}

fn same_sites(a: &[FenceSite], b: &[FenceSite]) -> bool {
    let mut a: Vec<FenceSite> = a.to_vec();
    let mut b: Vec<FenceSite> = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_apps_are_the_fence_free_seven() {
        for name in INSERTION_APPS {
            let app = app_by_name(name).expect(name);
            assert_eq!(app.spec().fence_count(), 0, "{name} must be fence-free");
        }
    }

    #[test]
    fn site_comparison_is_order_insensitive() {
        assert!(same_sites(&[(0, 1), (0, 5)], &[(0, 5), (0, 1)]));
        assert!(!same_sites(&[(0, 1)], &[(0, 2)]));
    }
}
