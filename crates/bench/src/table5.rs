//! Tab. 5 — effectiveness of the eight testing environments, per chip.

use crate::Scale;
use wmm_apps::all_apps;
use wmm_core::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

/// One chip's row: per environment, `(effective count, any-error count)`
/// — the paper's `a / b` cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Chip short name.
    pub chip: String,
    /// Per environment (Tab. 5 column order): environment name,
    /// effective count `a`, error count `b`, and the failing app names.
    pub cells: Vec<(String, u32, u32, Vec<String>)>,
}

/// Evaluate every environment × application for one chip.
pub fn run_chip(chip: &Chip, scale: Scale) -> Row {
    let apps = all_apps();
    let envs = Environment::all_eight(chip);
    let mut cells = Vec::new();
    for env in &envs {
        let mut effective = 0;
        let mut any = 0;
        let mut failing = Vec::new();
        for app in &apps {
            let h = AppHarness::new(chip, app.as_ref());
            let r = h.campaign(env, scale.app_runs, scale.seed, scale.workers);
            if r.any_error() {
                any += 1;
                failing.push(app.name().to_string());
            }
            if r.effective() {
                effective += 1;
            }
        }
        cells.push((env.name(), effective, any, failing));
    }
    Row {
        chip: chip.short.to_string(),
        cells,
    }
}

/// Run the whole table and print it in the paper's layout.
pub fn run(chips: Option<Vec<String>>, scale: Scale) -> Vec<Row> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => Chip::all(),
    };
    println!(
        "Tab. 5: environment effectiveness (cells are a/b: errors in >5% of runs for a\napps, any error for b apps; {} runs per cell; 10 applications)\n",
        scale.app_runs
    );
    let header: Vec<String> = Environment::all_eight(&chips[0])
        .iter()
        .map(Environment::name)
        .collect();
    print!("{:7}", "chip");
    for h in &header {
        print!(" {h:>10}");
    }
    println!();
    let mut rows = Vec::new();
    for chip in &chips {
        let row = run_chip(chip, scale);
        print!("{:7}", row.chip);
        for (_, a, b, _) in &row.cells {
            print!(" {:>10}", format!("{a}/{b}"));
        }
        println!();
        rows.push(row);
    }
    println!("\nExpected shape: sys-str columns dominate every other strategy; no-str");
    println!("shows errors almost nowhere; the fenced sdk-red and cub-scan never fail;");
    println!("their -nf variants and ls-bh (whose fences are insufficient) do fail.");
    rows
}
