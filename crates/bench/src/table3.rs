//! Tab. 3 — snippet of access-sequence scores for the GTX Titan.

use crate::Scale;
use wmm_core::tuning::{sequence, TuningConfig};
use wmm_gen::Shape;
use wmm_sim::chip::Chip;

/// Score all sequences on one chip and print the paper's table shape:
/// top three and bottom three per test, plus the rank of the overall
/// (Pareto) winner in each per-test ranking.
pub fn run(chip_short: &str, scale: Scale) {
    let chip = Chip::by_short(chip_short).expect("chip");
    let mut cfg = TuningConfig::scaled();
    cfg.execs = scale.execs;
    cfg.base_seed = scale.seed;
    cfg.parallelism = scale.workers;
    println!("Tab. 3: access-sequence scores for {}\n", chip.name);
    let scores = sequence::score_sequences(&chip, chip.patch_words, &cfg);
    let winner = sequence::most_effective(&scores);
    println!(
        "overall most effective sequence: '{}' (paper: '{}')\n",
        winner.seq, chip.preferred_seq
    );
    for (ti, test) in Shape::TRIO.iter().enumerate() {
        let ranked = scores.ranked_for(*test);
        println!("{test}:");
        for (rank, e) in ranked.iter().take(3).enumerate() {
            println!(
                "  rank {:>2}  {:12} score {}",
                rank + 1,
                e.seq.to_string(),
                e.scores[ti]
            );
        }
        let wrank = ranked
            .iter()
            .position(|e| e.seq == winner.seq)
            .map(|p| p + 1)
            .unwrap_or(0);
        println!(
            "  ...     {:12} rank {} (the overall winner is rarely #1 for any single test)",
            winner.seq.to_string(),
            wrank
        );
        let n = ranked.len();
        for (back, e) in ranked.iter().rev().take(3).rev().enumerate() {
            println!(
                "  rank {:>2}  {:12} score {}",
                n - 2 + back,
                e.seq.to_string(),
                e.scores[ti]
            );
        }
    }
    println!("\nExpected shape: pure-store sequences rank at the bottom for every test;");
    println!("score disparity between top and bottom spans orders of magnitude.");
}
