//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--chips A,B,...] [--execs N] [--runs N] [--seed N]
//!                    [--workers N] [--json PATH] [--placement inter|intra]
//!                    [--provenance] [--env NAME] [--full]
//!
//! experiments:
//!   fig3            patch-finding plots (Titan, C2075, 980)
//!   table2          tuned stressing parameters per chip
//!   table3          access-sequence ranking snippet (Titan)
//!   fig4            spread-finding curves (980, K20)
//!   table5          testing-environment effectiveness
//!   table6          empirical fence insertion
//!   fig5            fence runtime/energy cost
//!   running-example cbe-dot on the K20 (Sec. 1)
//!   speedup         parallel campaign-layer scaling measurement
//!   suite           generated litmus suite (shapes x chips x strategies;
//!                   --provenance adds the weakness-channel breakdown
//!                   column and JSON fields)
//!   trace SHAPE     replay one campaign with a bounded event log
//!                   (--chips C picks the chip, default Titan; --env NAME
//!                   picks the suite environment, default by placement;
//!                   --json PATH writes the buffered events)
//!   analyze TARGET  static delay-set analysis of a shape or app kernel
//!                   (TARGET: shape short name, app name, shapes, apps, all;
//!                   --chips A,B re-runs the analysis per chip, adding the
//!                   incoherent-L1 read-read channel where the chip has one)
//!   bench           campaign-throughput baseline (BENCH_campaign.json)
//!   serve           batch campaign jobs through the engine
//!                   (--jobs FILE-or-inline-spec; jobs separated by
//!                   newlines or `;`)
//!   soak            deterministic soak/throughput harness
//!                   (--quick|--extended|--stress; seed from --seed,
//!                   else SOAK_SEED, else 2016; exits nonzero when a
//!                   throughput/cache/determinism gate fails)
//!   all             everything above, in order (except bench/serve/soak)
//!
//! `--seed N` sets the base seed every subcommand derives its
//! per-campaign seeds from (default 2016) — one flag reseeds the entire
//! reproduction. `--workers N` sets the campaign worker-thread count
//! (0 = all cores; default from the WMM_WORKERS env var). Results are
//! bit-identical for every worker count. `--json PATH` (suite and
//! analyze) writes the result as JSON. `--placement inter|intra`
//! (suite only) restricts the catalogue to one thread placement —
//! `intra` runs just the scoped shared-memory shapes.
//! ```

use wmm_bench::{
    analyze, bench, fig3, fig4, fig5, running, serve, soak, speedup, suite, table2, table3, table5,
    table6, trace, Scale,
};
use wmm_server::SoakProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return;
    };
    let mut scale = if args.iter().any(|a| a == "--full") {
        Scale::full()
    } else {
        Scale::quick()
    };
    // Env fallback first; an explicit --workers flag overrides it.
    if let Ok(v) = std::env::var("WMM_WORKERS") {
        if let Ok(w) = v.parse() {
            scale.workers = w;
        }
    }
    let mut chips: Option<Vec<String>> = None;
    let mut json_path: Option<String> = None;
    let mut placement: Option<wmm_gen::Placement> = None;
    let mut jobs_spec: Option<String> = None;
    let mut soak_profile = SoakProfile::Quick;
    let mut seed_flag: Option<u64> = None;
    let mut provenance = false;
    let mut env_name: Option<String> = None;
    // `analyze` and `trace` take one positional target before the flags.
    let mut analyze_target: Option<String> = None;
    let mut flag_start = 1;
    if cmd == "analyze" || cmd == "trace" {
        match args.get(1) {
            Some(t) if !t.starts_with("--") => {
                analyze_target = Some(t.clone());
                flag_start = 2;
            }
            _ => {
                if cmd == "analyze" {
                    eprintln!("analyze wants a target (shape, app, shapes, apps, or all)");
                } else {
                    eprintln!("trace wants a shape short name (e.g. MP, CoRR, MP.shared)");
                }
                usage();
                return;
            }
        }
    }
    let mut it = args.iter().skip(flag_start);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chips" => {
                chips = it
                    .next()
                    .map(|v| v.split(',').map(str::to_string).collect());
            }
            "--execs" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale.execs = v;
                }
            }
            "--runs" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale.app_runs = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale.seed = v;
                    seed_flag = Some(v);
                }
            }
            "--jobs" => {
                jobs_spec = it.next().cloned();
            }
            "--provenance" => provenance = true,
            "--env" => {
                env_name = it.next().cloned();
            }
            "--quick" => soak_profile = SoakProfile::Quick,
            "--extended" => soak_profile = SoakProfile::Extended,
            "--stress" => soak_profile = SoakProfile::Stress,
            "--workers" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    scale.workers = v;
                }
            }
            "--json" => {
                json_path = it.next().cloned();
            }
            "--placement" => match it.next() {
                Some(v) => match v.parse() {
                    Ok(p) => placement = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                        return;
                    }
                },
                None => {
                    eprintln!("--placement wants a value (inter|intra)");
                    usage();
                    return;
                }
            },
            "--full" => {}
            other => {
                eprintln!("unknown flag {other}");
                usage();
                return;
            }
        }
    }
    let run_suite = |chips: Option<Vec<String>>, json_path: &Option<String>| {
        let cells = suite::run(chips, placement, scale, provenance);
        if let Some(path) = json_path {
            let json = suite::to_json(&cells, scale.execs, scale.seed, provenance);
            match std::fs::write(path, json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    };
    match cmd.as_str() {
        "fig3" => fig3::run(scale),
        "table2" => {
            table2::run(chips, scale);
        }
        "table3" => table3::run("Titan", scale),
        "fig4" => fig4::run(scale),
        "table5" => {
            table5::run(chips, scale);
        }
        "table6" => {
            table6::run(chips, scale);
        }
        "fig5" => {
            fig5::run(chips, scale);
        }
        "running-example" => {
            running::run(scale);
        }
        "speedup" => {
            speedup::run(scale);
        }
        "suite" => run_suite(chips, &json_path),
        "trace" => {
            let target = analyze_target.as_deref().unwrap_or_default();
            if let Err(e) = trace::run(
                target,
                chips,
                env_name.as_deref(),
                scale,
                json_path.as_deref(),
            ) {
                eprintln!("{e}");
                usage();
            }
        }
        "analyze" => {
            let target = analyze_target.as_deref().unwrap_or_default();
            if let Err(e) = analyze::run(target, chips, json_path.as_deref()) {
                eprintln!("{e}");
                usage();
            }
        }
        "bench" => {
            bench::run(scale, json_path.as_deref());
        }
        "serve" => {
            let Some(spec) = jobs_spec else {
                eprintln!("serve wants --jobs FILE-or-inline-spec");
                usage();
                return;
            };
            if let Err(e) = serve::run(&spec, scale.workers) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        "soak" => {
            // Precedence: explicit --seed, then SOAK_SEED, then 2016.
            let seed = seed_flag.unwrap_or_else(|| {
                std::env::var("SOAK_SEED")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(scale.seed)
            });
            if !soak::run(soak_profile, seed, scale.workers) {
                std::process::exit(1);
            }
        }
        "all" => {
            running::run(scale);
            println!("\n{}\n", "=".repeat(76));
            fig3::run(scale);
            println!("\n{}\n", "=".repeat(76));
            table2::run(chips.clone(), scale);
            println!("\n{}\n", "=".repeat(76));
            table3::run("Titan", scale);
            println!("\n{}\n", "=".repeat(76));
            fig4::run(scale);
            println!("\n{}\n", "=".repeat(76));
            table5::run(chips.clone(), scale);
            println!("\n{}\n", "=".repeat(76));
            table6::run(chips.clone(), scale);
            println!("\n{}\n", "=".repeat(76));
            fig5::run(chips.clone(), scale);
            println!("\n{}\n", "=".repeat(76));
            speedup::run(scale);
            println!("\n{}\n", "=".repeat(76));
            run_suite(chips, &json_path);
        }
        _ => usage(),
    }
}

fn usage() {
    eprintln!(
        "usage: repro <fig3|table2|table3|fig4|table5|table6|fig5|running-example|speedup|suite|\
         analyze TARGET|trace SHAPE|bench|serve|soak|all> \
         [--chips A,B] [--execs N] [--runs N] [--seed N] [--workers N] [--json PATH] \
         [--placement inter|intra] [--provenance] [--env NAME] [--jobs SPEC] \
         [--quick|--extended|--stress] [--full]\n\
         \n\
         --seed N       base seed for every subcommand's campaigns (default 2016)\n\
         --workers N    campaign worker threads (0 = all cores; WMM_WORKERS env default);\n\
         \x20              results are bit-identical for every value\n\
         --placement P  (suite) restrict the catalogue to inter- or intra-block shapes\n\
         --provenance   (suite) add the weakness-channel breakdown column; with --json,\n\
         \x20              per-cell channel counters and per-weak-outcome attribution\n\
         trace SHAPE    replay one campaign with a bounded structured event log;\n\
         \x20              --chips C picks the chip (default Titan), --env NAME the suite\n\
         \x20              environment (default by placement), --json PATH the event dump\n\
         analyze TARGET static delay-set analysis; TARGET is a shape short name\n\
         \x20              (e.g. MP.shared), an app name (e.g. cbe-dot, shm-pipe),\n\
         \x20              shapes, apps, or all; --json PATH writes the report;\n\
         \x20              --chips A,B analyzes per chip (adds the incoherent-L1\n\
         \x20              read-read channel on chips that have one)\n\
         bench          campaign-throughput baseline; writes BENCH_campaign.json\n\
         \x20              (or --json PATH) and appends a summary to BENCH_soak.json\n\
         serve          batch campaign jobs through the engine; --jobs is a file\n\
         \x20              of job lines or an inline `;`-separated spec\n\
         soak           deterministic soak harness; --quick/--extended/--stress\n\
         \x20              pick the mix, seed from --seed else SOAK_SEED else 2016;\n\
         \x20              writes tests/artifacts/soak/<profile>-seed<seed>/report.json,\n\
         \x20              appends to BENCH_soak.json, exits nonzero on gate failure"
    );
}
