//! # wmm-bench — the experiment harness
//!
//! One generator per table and figure of the paper's evaluation:
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig3`] | Fig. 3 — patch finding plots (Titan, C2075, 980) |
//! | [`table2`] | Tab. 2 — tuned stressing parameters per chip |
//! | [`table3`] | Tab. 3 — access-sequence ranking snippet (Titan) |
//! | [`fig4`] | Fig. 4 — spread finding curves (980, K20) |
//! | [`table5`] | Tab. 5 — testing-environment effectiveness |
//! | [`table6`] | Tab. 6 — empirical fence insertion results |
//! | [`fig5`] | Fig. 5 — fence runtime/energy cost scatter |
//! | [`running`] | Sec. 1 — the cbe-dot running example |
//! | [`speedup`] | parallel campaign-layer scaling measurement |
//! | [`suite`] | generated litmus suite: shapes × chips × strategies |
//! | [`analyze`] | static delay-set analyzer over shapes and app kernels |
//! | [`bench`](mod@bench) | campaign-throughput baseline (`BENCH_campaign.json`) |
//! | [`serve`] | `repro serve` — batch jobs through the campaign engine |
//! | [`soak`] | `repro soak` — deterministic soak/throughput harness (`BENCH_soak.json`) |
//! | [`trace`] | `repro trace` — replay one campaign with a bounded event log |
//!
//! Every generator takes a [`Scale`] so the half-billion-execution grids
//! of the paper shrink to laptop scale while preserving the shapes; the
//! `repro` binary exposes them as subcommands.

pub mod analyze;
pub mod bench;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod running;
pub mod serve;
pub mod soak;
pub mod speedup;
pub mod suite;
pub mod table2;
pub mod table3;
pub mod table5;
pub mod table6;
pub mod trace;

/// Execution-budget scaling shared by the experiment generators.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Litmus executions per tuning configuration (the paper's C = 1000).
    pub execs: u32,
    /// Application executions per campaign cell (the paper runs "for one
    /// hour", i.e. hundreds to thousands of executions).
    pub app_runs: u32,
    /// Per-check iteration count I for fence insertion (paper: 32).
    pub harden_iters: u32,
    /// Runs of the final empirical-stability check.
    pub harden_stable: u32,
    /// Base seed every subcommand derives its per-campaign seeds from
    /// (the `repro` binary's global `--seed` flag; default 2016).
    pub seed: u64,
    /// Worker threads for campaign layers (0 ⇒ all cores). Set by the
    /// `repro` binary's `--workers` flag or the `WMM_WORKERS` env var;
    /// results are bit-identical for every value.
    pub workers: usize,
}

impl Scale {
    /// Quick defaults: every experiment finishes in minutes on one core.
    pub fn quick() -> Self {
        Scale {
            execs: 32,
            app_runs: 120,
            harden_iters: 24,
            harden_stable: 120,
            seed: 2016,
            workers: 0,
        }
    }

    /// Heavier defaults for overnight runs.
    pub fn full() -> Self {
        Scale {
            execs: 200,
            app_runs: 600,
            harden_iters: 32,
            harden_stable: 600,
            seed: 2016,
            workers: 0,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

/// Render a histogram bar for plot-style terminal output.
pub fn bar(count: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((count as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0, 10, 10), "");
        assert_eq!(bar(10, 10, 10), "##########");
        assert_eq!(bar(5, 10, 10), "#####");
        assert_eq!(bar(7, 0, 10), "");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::full().execs > Scale::quick().execs);
        assert!(Scale::full().app_runs > Scale::quick().app_runs);
    }
}
