//! Tab. 2 — tuned stressing parameters and tuning time, per chip.

use crate::Scale;
use wmm_core::tuning::{tune_chip, ChipTuning, TuningConfig};
use wmm_sim::chip::Chip;

/// Tune one chip with the scaled pipeline.
pub fn tune_one(chip: &Chip, scale: Scale) -> ChipTuning {
    let mut cfg = TuningConfig::scaled();
    cfg.execs = scale.execs;
    cfg.base_seed = scale.seed;
    cfg.parallelism = scale.workers;
    tune_chip(chip, &cfg)
}

/// Run the full pipeline for the requested chips (paper order when
/// `None`) and print the table next to the paper's values.
pub fn run(chips: Option<Vec<String>>, scale: Scale) -> Vec<ChipTuning> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => Chip::all(),
    };
    println!("Tab. 2: stressing parameters and time spent tuning\n");
    println!(
        "{:8} {:>8} {:>8} {:12} {:12} {:>7} {:>7}  {:>10} {:>9}",
        "chip",
        "patch",
        "(paper)",
        "sequence",
        "(paper)",
        "spread",
        "(paper)",
        "executions",
        "time"
    );
    let mut out = Vec::new();
    for chip in &chips {
        let t = tune_one(chip, scale);
        println!(
            "{:8} {:>8} {:>8} {:12} {:12} {:>7} {:>7}  {:>10} {:>8.1}s",
            chip.short,
            t.patch_words,
            chip.patch_words,
            t.seq.to_string(),
            chip.preferred_seq.to_string(),
            t.spread,
            2,
            t.executions,
            t.elapsed.as_secs_f64()
        );
        out.push(t);
    }
    println!("\n(paper columns show Tab. 2's published values; the scaled grids trade");
    println!("some selection stability for a ~1000x smaller execution budget)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_one_runs_on_tiny_budget() {
        let chip = Chip::by_short("Titan").unwrap();
        let mut cfg = TuningConfig::quick();
        cfg.execs = 8;
        cfg.max_spread = 2;
        cfg.max_seq_len = 2;
        let t = tune_chip(&chip, &cfg);
        assert!(t.executions > 0);
        assert!(t.spread >= 1);
    }
}
