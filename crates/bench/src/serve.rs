//! `repro serve --jobs <spec>` — batch campaign jobs through the engine.
//!
//! The spec is a path to a job file (one [`JobSpec`] text form per
//! line, `#` comments allowed) or, if no such file exists, inline text
//! with jobs separated by `;`. The whole batch runs through one
//! [`Engine`], so every job against the same chip × environment shares
//! one compiled set of stress artifacts.
//!
//! ```text
//! repro serve --jobs 'litmus Titan sys-str+ MP 64 100 7; app K20 sys-str+ cbe-dot 50 7'
//! ```

use std::time::Instant;
use wmm_obs::{ChannelCounts, LatencyHistogram};
use wmm_server::{parse_jobs, Engine, EngineConfig, JobSpec};

/// Resolve the `--workers` convention (0 ⇒ all cores) to a pool size.
pub fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Read the job list from a file path or inline text.
pub fn load_jobs(spec: &str) -> Result<Vec<JobSpec>, String> {
    let text = match std::fs::read_to_string(spec) {
        Ok(t) => t,
        Err(_) => spec.to_string(),
    };
    let jobs = parse_jobs(&text)?;
    if jobs.is_empty() {
        return Err("no jobs in spec (expected `litmus <chip> <env> <shape> <distance> <execs> <seed>` or `app <chip> <env> <name> <runs> <seed>` lines)".to_string());
    }
    Ok(jobs)
}

/// Run the batch and print per-job results plus engine counters.
pub fn run(spec: &str, workers: usize) -> Result<(), String> {
    let jobs = load_jobs(spec)?;
    let workers = effective_workers(workers);
    println!("engine: {} workers, {} jobs queued\n", workers, jobs.len());
    let engine = Engine::start(EngineConfig {
        workers,
        job_parallelism: 1,
    });
    let started = Instant::now();
    for job in jobs {
        engine.submit(job)?;
    }
    let results = engine.drain()?;
    let elapsed = started.elapsed().as_secs_f64();
    println!("{:>4}  {:<52} {:>10} {:>9}", "id", "job", "result", "ms");
    for r in &results {
        let outcome = match (r.summary.as_litmus(), r.summary.as_app()) {
            (Some(h), _) => format!("{}/{} weak", h.weak(), h.total()),
            (_, Some(c)) => format!("{}/{} err", c.errors, c.runs),
            _ => "-".to_string(),
        };
        println!(
            "{:>4}  {:<52} {:>10} {:>9.2}",
            r.id,
            r.spec.to_string(),
            outcome,
            r.latency_ms
        );
    }
    let stats = engine.cache_stats();
    println!(
        "\n{} jobs in {:.2}s ({:.1} jobs/sec); artifact cache: {} builds, {} hits ({:.1}% hit rate), max queue depth {}",
        results.len(),
        elapsed,
        if elapsed > 0.0 {
            results.len() as f64 / elapsed
        } else {
            f64::INFINITY
        },
        stats.builds,
        stats.hits,
        stats.hit_rate() * 100.0,
        engine.max_depth()
    );
    // Wall-clock span telemetry plus the batch's deterministic
    // weakness-channel totals (the litmus jobs' provenance counters).
    let m = engine.metrics();
    let zero = LatencyHistogram::default();
    println!(
        "spans (wall-clock): queue_wait {}; execute {}; compile {}",
        m.span("queue_wait").unwrap_or(&zero),
        m.span("execute").unwrap_or(&zero),
        engine.compile_times()
    );
    let mut channels = ChannelCounts::default();
    for r in &results {
        if let Some(h) = r.summary.as_litmus() {
            channels.add(h.channels());
        }
    }
    println!("weakness channels (deterministic): {channels}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_specs_load_without_a_file() {
        let jobs =
            load_jobs("litmus Titan sys-str+ MP 64 8 7; app Titan no-str- shm-pipe 2 9").unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].chip, "Titan");
    }

    #[test]
    fn empty_and_malformed_specs_error() {
        assert!(load_jobs("# just a comment").is_err());
        assert!(load_jobs("litmus Titan sys-str+ NOPE 64 8 7").is_err());
    }

    #[test]
    fn zero_workers_means_all_cores() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }
}
