//! `repro speedup` — measure the parallel campaign layer.
//!
//! Times a [`Campaign`](wmm_core::campaign::Campaign) at worker counts
//! 1, 2, 4, … up to the machine's core count (always including at least
//! 1 and 2), verifying at each count that the histogram is bit-identical
//! to the single-worker reference before reporting throughput. On an
//! N-core machine the campaign shape is embarrassingly parallel, so
//! throughput should scale near-linearly until workers exceed physical
//! cores.

use crate::Scale;
use std::time::Instant;
use wmm_core::campaign::CampaignBuilder;
use wmm_core::stress::{Scratchpad, StressArtifacts};
use wmm_gen::Shape;
use wmm_litmus::LitmusLayout;
use wmm_sim::chip::Chip;

/// One measured point of the scaling curve.
#[derive(Debug, Clone)]
pub struct Point {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the campaign.
    pub secs: f64,
    /// Executions per second.
    pub throughput: f64,
    /// Speedup relative to the 1-worker measurement.
    pub speedup: f64,
}

/// Worker counts to measure: 1, 2, 4, … up to the core count, plus the
/// core count itself if it is not a power of two. Always contains ≥ 2
/// entries so the determinism cross-check is never vacuous.
pub fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize];
    let mut w = 2;
    while w <= cores {
        counts.push(w);
        w *= 2;
    }
    if !counts.contains(&cores) {
        counts.push(cores);
    }
    if counts.len() == 1 {
        counts.push(2);
    }
    counts
}

/// Timed samples per worker count; the median is reported so one noisy
/// sample (shared CI, scheduler hiccups) doesn't skew the curve.
const SAMPLES: usize = 3;

/// Measure the scaling curve for one `(test, distance)` under
/// systematic stressing, asserting seed-identical histograms across all
/// worker counts.
///
/// One untimed warm-up campaign runs first so the 1-worker baseline
/// (always measured first) doesn't absorb one-time process costs —
/// first-touch page faults, allocator growth — that would inflate the
/// apparent speedup of every later point.
pub fn measure(chip: &Chip, test: Shape, distance: u32, count: u32, seed: u64) -> Vec<Point> {
    let pad = Scratchpad::new(2048, 2048);
    let inst = test.instance(LitmusLayout::standard(distance, pad.required_words()));
    // One stress kernel for the whole measurement, shared by every
    // worker count (the compile cost is off the timed path entirely).
    let artifacts = StressArtifacts::pinned(pad, &chip.preferred_seq, &[0], 40);
    let campaign = |parallelism: usize| {
        CampaignBuilder::new(chip)
            .stress(artifacts.clone())
            .randomize_ids(true)
            .count(count)
            .base_seed(seed)
            .parallelism(parallelism)
            .build()
            .run_litmus(&inst)
    };
    let reference = campaign(1); // also serves as the untimed warm-up
    let mut base_secs = 0.0;
    let mut points = Vec::new();
    for workers in worker_counts() {
        let mut samples = [0.0f64; SAMPLES];
        for s in &mut samples {
            let start = Instant::now();
            let h = campaign(workers);
            *s = start.elapsed().as_secs_f64();
            assert_eq!(
                h, reference,
                "{test} d={distance}: {workers}-worker histogram diverged from 1-worker"
            );
        }
        samples.sort_by(f64::total_cmp);
        let secs = samples[SAMPLES / 2];
        if points.is_empty() {
            base_secs = secs;
        }
        points.push(Point {
            workers,
            secs,
            throughput: f64::from(count) / secs,
            speedup: base_secs / secs,
        });
    }
    points
}

/// Run the full measurement and print the scaling table.
pub fn run(scale: Scale) {
    let chip = Chip::by_short("Titan").unwrap();
    // 8× the per-configuration count so each point is long enough to
    // time, with a floor keeping even `--execs 1` meaningful.
    let count = scale.execs.max(8) * 8;
    println!(
        "parallel campaign scaling — {} executions per point, chip {}, {} core(s)\n",
        count,
        chip.short,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    for (test, d) in [(Shape::Mp, 64), (Shape::Lb, 64), (Shape::Sb, 32)] {
        println!("{test} d={d} (histograms verified identical across worker counts)");
        println!("  workers      time    execs/s   speedup");
        for p in measure(&chip, test, d, count, scale.seed) {
            println!(
                "  {:>7}  {:>7.2}s  {:>9.0}  {:>6.2}x",
                p.workers, p.secs, p.throughput, p.speedup
            );
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_start_at_one_and_have_two_points() {
        let counts = worker_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.len() >= 2);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn measure_verifies_and_reports() {
        let chip = Chip::by_short("K20").unwrap();
        let points = measure(&chip, Shape::Mp, 64, 24, 7);
        assert!(points.len() >= 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points.iter().all(|p| p.secs > 0.0 && p.throughput > 0.0));
    }
}
