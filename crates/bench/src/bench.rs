//! `repro bench` — campaign-throughput baseline.
//!
//! Times the litmus campaign layer over a small shape × strategy ×
//! worker-count grid and reports runs/sec per cell, writing the result
//! to `BENCH_campaign.json` (override with `--json PATH`). The grid
//! covers the three relaxation channels a campaign exercises — native
//! (no stress), the tuned in-flight-window stress `sys-str+`, and the
//! structural L1 stress `l1-str+` — on one coherent-L1 chip and one
//! incoherent-L1 Tesla, so later perf work has a like-for-like baseline
//! for every hot path (including the L1 branch of the load path).
//!
//! Unlike every other subcommand, the *numbers* here are wall-clock
//! measurements and therefore machine-dependent; the campaign results
//! themselves remain bit-identical across worker counts.

use std::time::Instant;

use crate::Scale;
use wmm_core::stress::Scratchpad;
use wmm_core::suite::{run_suite, SuiteConfig, SuiteStrategy};
use wmm_gen::Shape;
use wmm_obs::ChannelCounts;
use wmm_sim::chip::Chip;

/// Worker counts the bench sweeps — the same 1/2/8 grid the
/// determinism tests pin, so the baseline covers serial, small-parallel
/// and oversubscribed scheduling.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// One timed cell of the bench grid.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Shape short name.
    pub shape: String,
    /// Chip short name.
    pub chip: String,
    /// Strategy column name.
    pub strategy: String,
    /// Campaign worker threads.
    pub workers: usize,
    /// Executions performed.
    pub execs: u32,
    /// Wall-clock seconds for the campaign.
    pub seconds: f64,
    /// Throughput: executions per second.
    pub runs_per_sec: f64,
}

/// The shapes the bench times: a relaxed inter-block cycle, the
/// structural coherence probe, and a scoped intra-block row — one per
/// code path the campaign layer can take.
fn bench_shapes() -> Vec<Shape> {
    vec![Shape::Mp, Shape::CoRR, Shape::MpShared]
}

fn bench_strategies() -> Vec<SuiteStrategy> {
    vec![
        SuiteStrategy::native(),
        SuiteStrategy::sys_str_plus(40),
        SuiteStrategy::l1_str_plus(40),
    ]
}

/// Run the bench grid and return the timed rows plus the summed
/// deterministic weakness-channel counters of every campaign in the
/// grid (the trajectory point's provenance payload).
pub fn measure(scale: Scale) -> (Vec<BenchRow>, ChannelCounts) {
    let chips = [
        Chip::by_short("Titan").expect("chip"),
        Chip::by_short("C2075").expect("chip"),
    ];
    let shapes = bench_shapes();
    let strategies = bench_strategies();
    let mut rows = Vec::new();
    let mut channels = ChannelCounts::default();
    for chip in &chips {
        for strat in &strategies {
            for &shape in &shapes {
                for workers in WORKER_COUNTS {
                    let cfg = SuiteConfig {
                        distances: vec![64],
                        execs: scale.execs,
                        pad: Scratchpad::new(2048, chip.l2_scaled_words.max(2048)),
                        base_seed: scale.seed,
                        workers,
                    };
                    let start = Instant::now();
                    let cells = run_suite(
                        &[shape],
                        std::slice::from_ref(chip),
                        std::slice::from_ref(strat),
                        &cfg,
                    );
                    let seconds = start.elapsed().as_secs_f64();
                    let execs: u64 = cells.iter().map(|c| c.hist.total()).sum();
                    for c in &cells {
                        channels.add(c.hist.channels());
                    }
                    rows.push(BenchRow {
                        shape: shape.short().to_string(),
                        chip: chip.short.to_string(),
                        strategy: strat.name.clone(),
                        workers,
                        execs: execs as u32,
                        seconds,
                        runs_per_sec: if seconds > 0.0 {
                            execs as f64 / seconds
                        } else {
                            0.0
                        },
                    });
                }
            }
        }
    }
    (rows, channels)
}

/// Serialise bench rows as JSON (hand-rolled, like the suite output).
pub fn to_json(rows: &[BenchRow], scale: Scale) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"execs\": {},\n  \"seed\": {},\n  \"rows\": [\n",
        scale.execs, scale.seed
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"chip\": \"{}\", \"strategy\": \"{}\", \
             \"workers\": {}, \"execs\": {}, \"seconds\": {:.6}, \
             \"runs_per_sec\": {:.1}}}{}\n",
            r.shape,
            r.chip,
            r.strategy,
            r.workers,
            r.execs,
            r.seconds,
            r.runs_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The normalized service-level summary `repro bench` appends to
/// `BENCH_soak.json`: one point aggregating the whole grid — wall-clock
/// throughput plus the grid's deterministic weakness-channel totals, so
/// the trajectory records *which* relaxation machinery each baseline
/// actually exercised.
pub fn trajectory_point(rows: &[BenchRow], scale: Scale, channels: &ChannelCounts) -> String {
    let cells = rows.len();
    let total_secs: f64 = rows.iter().map(|r| r.seconds).sum();
    let total_execs: u64 = rows.iter().map(|r| u64::from(r.execs)).sum();
    format!(
        "{{\"source\": \"bench\", \"seed\": {}, \"execs_per_cell\": {}, \"cells\": {}, \"cells_per_sec\": {:.1}, \"runs_per_sec\": {:.1}, \"channels\": {}}}",
        scale.seed,
        scale.execs,
        cells,
        if total_secs > 0.0 {
            cells as f64 / total_secs
        } else {
            0.0
        },
        if total_secs > 0.0 {
            total_execs as f64 / total_secs
        } else {
            0.0
        },
        channels.to_json()
    )
}

/// Run the bench, print the throughput table, write the JSON artifact
/// (default `BENCH_campaign.json`), and append the normalized summary
/// to `BENCH_soak.json`.
pub fn run(scale: Scale, json_path: Option<&str>) -> Vec<BenchRow> {
    println!(
        "Campaign throughput baseline: {} shapes x 2 chips x {} strategies x {:?} workers, {} execs/cell",
        bench_shapes().len(),
        bench_strategies().len(),
        WORKER_COUNTS,
        scale.execs
    );
    println!("(wall-clock; campaign results stay bit-identical across worker counts)\n");
    let (rows, channels) = measure(scale);
    println!(
        "{:>10} {:>7} {:>10} {:>8} {:>7} {:>9} {:>12}",
        "shape", "chip", "strategy", "workers", "execs", "secs", "runs/sec"
    );
    for r in &rows {
        println!(
            "{:>10} {:>7} {:>10} {:>8} {:>7} {:>9.3} {:>12.1}",
            r.shape, r.chip, r.strategy, r.workers, r.execs, r.seconds, r.runs_per_sec
        );
    }
    println!("\nweakness channels exercised: {channels}");
    let path = json_path.unwrap_or("BENCH_campaign.json");
    let json = to_json(&rows, scale);
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    let point = trajectory_point(&rows, scale, &channels);
    match wmm_server::soak::append_trajectory_point(
        std::path::Path::new(crate::soak::TRAJECTORY_PATH),
        &point,
    ) {
        Ok(()) => println!(
            "appended trajectory point to {}",
            crate::soak::TRAJECTORY_PATH
        ),
        Err(e) => eprintln!("failed to append to {}: {e}", crate::soak::TRAJECTORY_PATH),
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_grid_times_every_cell() {
        let scale = Scale {
            execs: 4,
            ..Scale::quick()
        };
        let (rows, channels) = measure(scale);
        assert_eq!(
            rows.len(),
            bench_shapes().len() * bench_strategies().len() * WORKER_COUNTS.len() * 2
        );
        for r in &rows {
            assert_eq!(r.execs, 4, "{}/{}", r.shape, r.strategy);
            assert!(r.seconds >= 0.0);
            assert!(r.runs_per_sec > 0.0, "{}/{}", r.shape, r.strategy);
        }
        // Every grid axis is represented.
        assert!(rows.iter().any(|r| r.strategy == "l1-str+"));
        assert!(rows.iter().any(|r| r.chip == "C2075"));
        assert!(rows.iter().any(|r| r.workers == 8));
        // The stressed columns exercise the window channel.
        assert!(channels.window_global > 0, "{channels:?}");
    }

    #[test]
    fn trajectory_point_is_one_aggregated_line() {
        let scale = Scale {
            execs: 2,
            ..Scale::quick()
        };
        let (rows, channels) = measure(scale);
        let p = trajectory_point(&rows, scale, &channels);
        assert!(p.starts_with("{\"source\": \"bench\""));
        assert!(p.contains(&format!("\"cells\": {}", rows.len())));
        assert!(p.contains("\"runs_per_sec\""));
        assert!(p.contains("\"channels\": {\"window_global\":"));
        assert!(!p.contains('\n'));
    }

    #[test]
    fn bench_json_is_well_formed_enough() {
        let scale = Scale {
            execs: 2,
            ..Scale::quick()
        };
        let (rows, _) = measure(scale);
        let j = to_json(&rows, scale);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"shape\"").count(), rows.len());
        assert!(j.contains("\"runs_per_sec\""));
        assert!(j.contains("\"l1-str+\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
