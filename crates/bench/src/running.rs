//! The Sec. 1 running example: `cbe-dot` on the Tesla K20.
//!
//! "No erroneous behaviour is observed when conducting 1000 executions
//! of the application on a Tesla K20 GPU. [...] Under our testing
//! environment, errors (due to weak memory) appear in 102 out of 1000
//! executions of cbe-dot on the K20."

use crate::Scale;
use wmm_apps::CbeDot;
use wmm_core::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

/// Run the example and print both campaign results.
pub fn run(scale: Scale) -> (u32, u32) {
    let runs = scale.app_runs.max(200);
    let chip = Chip::by_short("K20").expect("K20");
    let app = CbeDot::new();
    let h = AppHarness::new(&chip, &app);
    println!(
        "Running example (Sec. 1): cbe-dot on {}, {} executions\n",
        chip.name, runs
    );
    let native = h.campaign(&Environment::native(), runs, scale.seed, scale.workers);
    println!(
        "native (no-str-): {:>4} / {} erroneous   (paper: 0 / 1000)",
        native.errors, native.runs
    );
    let sys = h.campaign(
        &Environment::sys_str_plus(&chip),
        runs,
        scale.seed + 1,
        scale.workers,
    );
    println!(
        "under sys-str+ :  {:>4} / {} erroneous   (paper: 102 / 1000)",
        sys.errors, sys.runs
    );
    println!(
        "\nA developer who is not suspicious about weak memory effects might conclude\nthe application is correct — until it runs under the testing environment."
    );
    (native.errors, sys.errors)
}
