//! `repro trace` — replay one campaign with a bounded structured event
//! log, for answering "*why* did this cell go weak?" run by run.
//!
//! Replays a single `(shape, chip, environment)` campaign sequentially
//! through [`wmm_core::campaign::Campaign::run_litmus_observed`] — the
//! observed replay is bit-identical to the parallel campaign at any
//! worker count — and records one [`TraceEvent`] per execution into a
//! fixed-capacity ring buffer ([`wmm_obs::EventLog`], 256 events): the
//! run index, the observed register values, the weak verdict, and the
//! weakness channels that fired during that run. The printed table
//! shows the buffered weak runs (the ones the provenance column
//! explains); `--json PATH` writes every buffered event.
//!
//! Everything this subcommand prints is deterministic in
//! `(shape, chip, env, execs, seed)` — there is no wall-clock anywhere
//! on this path.

use std::fmt::Write as _;

use crate::suite::default_strategies;
use crate::Scale;
use wmm_core::campaign::CampaignBuilder;
use wmm_core::stress::Scratchpad;
use wmm_core::suite::SuiteStrategy;
use wmm_gen::{Placement, Shape};
use wmm_litmus::LitmusLayout;
use wmm_obs::{ChannelCounts, EventLog};
use wmm_sim::chip::Chip;

/// Ring-buffer capacity of the trace event log. A bound, not a budget:
/// a million-execution replay keeps the *last* 256 events and reports
/// how many it dropped.
pub const EVENT_CAPACITY: usize = 256;

/// Layout distance traced instances use (the suite's standard cell).
const DISTANCE: u32 = 64;

/// One traced execution.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Run index within the campaign (the seed derivation input).
    pub run: u64,
    /// Observed register values, in litmus observer order.
    pub obs: Vec<u32>,
    /// Whether the observation falls outside the SC-reachable set.
    pub weak: bool,
    /// The weakness channels that fired during this run (a channel can
    /// fire without the run going weak — stress keeps the window busy
    /// even when the final observation is SC).
    pub channels: ChannelCounts,
}

/// The full result of one traced replay.
pub struct TraceReport {
    /// Shape short name.
    pub shape: String,
    /// Chip short name.
    pub chip: String,
    /// Environment (suite strategy) name.
    pub env: String,
    /// The campaign histogram, bit-identical to `repro suite`'s cell
    /// for the same coordinates and seed.
    pub hist: wmm_litmus::Histogram,
    /// The bounded event log (most recent `EVENT_CAPACITY` runs).
    pub events: EventLog<TraceEvent>,
    /// Executions and base seed the replay ran at.
    pub execs: u32,
    /// Base seed.
    pub seed: u64,
}

/// Resolve the environment column: an explicit `--env NAME` must match
/// one of the default suite strategies; otherwise the default is the
/// column under which the shape's placement actually relaxes
/// (`shm+sys-str+` for intra-block rows, `sys-str+` for the rest).
fn resolve_env(shape: Shape, env: Option<&str>) -> Result<SuiteStrategy, String> {
    let strategies = default_strategies();
    match env {
        Some(name) => strategies
            .iter()
            .find(|s| s.name == name)
            .cloned()
            .ok_or_else(|| {
                let names: Vec<&str> = strategies.iter().map(|s| s.name.as_str()).collect();
                format!("unknown env `{name}` (want one of: {})", names.join(", "))
            }),
        None => {
            let default = match shape.placement() {
                Placement::IntraBlock => "shm+sys-str+",
                Placement::InterBlock => "sys-str+",
            };
            Ok(strategies
                .into_iter()
                .find(|s| s.name == default)
                .expect("default strategy present"))
        }
    }
}

/// Replay the campaign and collect the trace.
pub fn trace(shape: Shape, chip: &Chip, strategy: &SuiteStrategy, scale: Scale) -> TraceReport {
    let pad = Scratchpad::new(2048, chip.l2_scaled_words.max(2048));
    let inst = shape.instance(LitmusLayout::standard(DISTANCE, pad.required_words()));
    let artifacts = strategy.artifacts(chip, pad);
    let mut events = EventLog::new(EVENT_CAPACITY);
    let hist = CampaignBuilder::new(chip)
        .stress(artifacts)
        .randomize_ids(strategy.randomize)
        .count(scale.execs)
        .base_seed(scale.seed)
        .build()
        .run_litmus_observed(&inst, |run, outcome| {
            events.push(TraceEvent {
                run,
                obs: outcome.obs.clone(),
                weak: outcome.weak,
                channels: outcome.channels,
            });
        });
    TraceReport {
        shape: shape.short().to_string(),
        chip: chip.short.to_string(),
        env: strategy.name.clone(),
        hist,
        events,
        execs: scale.execs,
        seed: scale.seed,
    }
}

/// Render the report as a JSON document (hand-rolled, single trailing
/// newline; every buffered event rides along).
pub fn to_json(r: &TraceReport) -> String {
    let mut s = String::from("{\n");
    let _ = write!(
        s,
        "  \"shape\": \"{}\", \"chip\": \"{}\", \"env\": \"{}\",\n  \
         \"execs\": {}, \"seed\": {},\n  \
         \"weak\": {}, \"total\": {},\n  \
         \"channels\": {},\n  \"provenance\": {},\n  \
         \"dropped\": {},\n  \"events\": [\n",
        r.shape,
        r.chip,
        r.env,
        r.execs,
        r.seed,
        r.hist.weak(),
        r.hist.total(),
        r.hist.channels().to_json(),
        r.hist.provenance_total().to_json(),
        r.events.dropped(),
    );
    let n = r.events.len();
    for (i, e) in r.events.iter().enumerate() {
        let vals: Vec<String> = e.obs.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(
            s,
            "    {{\"run\": {}, \"obs\": [{}], \"weak\": {}, \"channels\": {}}}{}",
            e.run,
            vals.join(", "),
            e.weak,
            e.channels.to_json(),
            if i + 1 < n { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_report(r: &TraceReport) {
    println!(
        "Trace: {} on {} under {} — {} execs, seed {}, event ring {}",
        r.shape, r.chip, r.env, r.execs, r.seed, EVENT_CAPACITY
    );
    println!("(deterministic replay; bit-identical to the parallel campaign)\n");
    let weak_events: Vec<&TraceEvent> = r.events.iter().filter(|e| e.weak).collect();
    if weak_events.is_empty() {
        println!("no weak executions in the buffered window");
    } else {
        println!("{:>8} {:>20} channels fired", "run", "obs");
        for e in &weak_events {
            let vals: Vec<String> = e.obs.iter().map(|v| v.to_string()).collect();
            println!(
                "{:>8} {:>20} {}",
                e.run,
                format!("[{}]", vals.join(", ")),
                e.channels
            );
        }
    }
    if r.events.dropped() > 0 {
        println!(
            "({} earlier event(s) dropped by the {}-event ring)",
            r.events.dropped(),
            EVENT_CAPACITY
        );
    }
    println!(
        "\n{}/{} weak; channels: {}; provenance: {}",
        r.hist.weak(),
        r.hist.total(),
        r.hist.channels(),
        r.hist.provenance_total()
    );
}

/// `repro trace <shape>` entry point: resolve the shape (short name,
/// as in `repro analyze`), the chip (`--chips`, first name; default
/// Titan), and the environment (`--env`, default by placement), replay,
/// print, and optionally write JSON.
pub fn run(
    target: &str,
    chips: Option<Vec<String>>,
    env: Option<&str>,
    scale: Scale,
    json_path: Option<&str>,
) -> Result<(), String> {
    let shape: Shape = target
        .parse()
        .map_err(|_| format!("unknown trace target `{target}` (want a shape short name)"))?;
    let chip_name = chips
        .as_ref()
        .and_then(|c| c.first().cloned())
        .unwrap_or_else(|| "Titan".to_string());
    let chip = Chip::by_short(&chip_name).ok_or_else(|| format!("unknown chip {chip_name}"))?;
    let strategy = resolve_env(shape, env)?;
    let report = trace(shape, &chip, &strategy, scale);
    print_report(&report);
    if let Some(path) = json_path {
        let json = to_json(&report);
        std::fs::write(path, json).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(execs: u32, seed: u64) -> Scale {
        Scale {
            execs,
            seed,
            ..Scale::quick()
        }
    }

    #[test]
    fn trace_matches_the_suite_cell_and_logs_every_run() {
        let chip = Chip::by_short("Titan").unwrap();
        let strategy = resolve_env(Shape::Mp, None).unwrap();
        assert_eq!(strategy.name, "sys-str+");
        let r = trace(Shape::Mp, &chip, &strategy, quick(40, 42));
        assert_eq!(r.hist.total(), 40);
        assert!(
            r.hist.weak() > 0,
            "MP under sys-str+ must go weak: {}",
            r.hist
        );
        assert_eq!(r.events.len(), 40, "every run under capacity is kept");
        assert_eq!(r.events.dropped(), 0);
        // The buffered weak events agree with the histogram's count.
        let weak_events = r.events.iter().filter(|e| e.weak).count() as u64;
        assert_eq!(weak_events, r.hist.weak());
        // Replays are deterministic.
        let again = trace(Shape::Mp, &chip, &strategy, quick(40, 42));
        assert_eq!(r.hist, again.hist);
        let runs: Vec<u64> = r.events.iter().map(|e| e.run).collect();
        let runs2: Vec<u64> = again.events.iter().map(|e| e.run).collect();
        assert_eq!(runs, runs2);
    }

    #[test]
    fn trace_ring_drops_the_oldest_runs() {
        let chip = Chip::by_short("Titan").unwrap();
        let strategy = resolve_env(Shape::Mp, Some("no-str-")).unwrap();
        let execs = (EVENT_CAPACITY + 10) as u32;
        let r = trace(Shape::Mp, &chip, &strategy, quick(execs, 1));
        assert_eq!(r.events.len(), EVENT_CAPACITY);
        assert_eq!(r.events.dropped(), 10);
        // The ring keeps the most recent runs.
        assert_eq!(r.events.iter().next().unwrap().run, 10);
    }

    #[test]
    fn scoped_shapes_default_to_the_shared_stress_column() {
        assert_eq!(
            resolve_env(Shape::MpShared, None).unwrap().name,
            "shm+sys-str+"
        );
        assert!(resolve_env(Shape::Mp, Some("nope")).is_err());
    }

    #[test]
    fn trace_json_carries_channels_and_events() {
        let chip = Chip::by_short("C2075").unwrap();
        let strategy = resolve_env(Shape::CoRR, Some("l1-str+")).unwrap();
        let r = trace(Shape::CoRR, &chip, &strategy, quick(32, 2016));
        assert!(r.hist.weak() > 0, "CoRR@C2075 under l1-str+: {}", r.hist);
        // The structural channel is what fired.
        assert!(r.hist.channels().l1_stale > 0);
        assert!(r.hist.provenance_total().l1_stale > 0);
        let j = to_json(&r);
        assert!(j.contains("\"shape\": \"CoRR\""));
        assert!(j.contains("\"channels\": {\"window_global\":"));
        assert!(j.contains("\"provenance\""));
        assert!(j.contains("\"events\""));
        assert_eq!(j.matches("\"run\":").count(), 32);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn run_rejects_unknown_targets_and_chips() {
        let scale = quick(4, 1);
        assert!(run("nope", None, None, scale, None).is_err());
        assert!(run("MP", Some(vec!["NotAChip".into()]), None, scale, None).is_err());
        assert!(run("MP", None, Some("bogus"), scale, None).is_err());
    }
}
