//! `repro soak` — the deterministic soak/throughput harness.
//!
//! Streams a profile's seeded job mix (`--quick`, `--extended` or
//! `--stress`; see [`wmm_server::soak`]) through the campaign engine,
//! prints the throughput/latency/cache summary, writes the gated
//! report to `tests/artifacts/soak/<profile>-seed<seed>/report.json`,
//! and appends a trajectory point to `BENCH_soak.json`. The base seed
//! comes from `--seed`, else the `SOAK_SEED` env var, else 2016.
//!
//! Returns whether every gate passed; the `repro` binary exits
//! nonzero otherwise.

use crate::serve::effective_workers;
use std::path::Path;
use wmm_server::soak::append_trajectory_point;
use wmm_server::{run_soak, SoakConfig, SoakProfile};

/// The trajectory file `repro soak` and `repro bench` both append to.
pub const TRAJECTORY_PATH: &str = "BENCH_soak.json";

/// Run a soak profile end to end. Prints the report, writes the
/// artifacts, and returns `true` iff every gate passed.
pub fn run(profile: SoakProfile, seed: u64, workers: usize) -> bool {
    let mut cfg = SoakConfig::new(profile);
    cfg.seed = seed;
    cfg.workers = effective_workers(workers);
    println!(
        "soak --{}: seed {}, {} workers",
        profile, cfg.seed, cfg.workers
    );
    let report = match run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak run failed: {e}");
            return false;
        }
    };
    println!(
        "\n{} jobs ({} litmus, {} app) in {:.2}s — {:.1} jobs/sec",
        report.jobs, report.litmus_jobs, report.app_jobs, report.elapsed_sec, report.jobs_per_sec
    );
    println!(
        "latency ms: p50 {:.2}  p90 {:.2}  p99 {:.2}; max queue depth {}",
        report.latency_ms_p50, report.latency_ms_p90, report.latency_ms_p99, report.max_queue_depth
    );
    println!(
        "artifact cache: {} builds, {} hits ({:.1}% hit rate)",
        report.cache.builds,
        report.cache.hits,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "spans (wall-clock): queue_wait {}; execute {}; compile {}",
        report.metrics.queue_wait, report.metrics.execute, report.metrics.compile
    );
    println!(
        "weakness channels (deterministic): {}; provenance: {}",
        report.metrics.channels, report.metrics.provenance
    );
    println!("results digest: {}", report.results_digest);
    println!(
        "gates: throughput {}  cache {}  determinism {} ({} checked, {} mismatches)",
        ok(report.gates.throughput_ok),
        ok(report.gates.cache_ok),
        ok(report.gates.determinism_ok),
        report.determinism_checked,
        report.determinism_mismatches
    );
    match report.write_report(Path::new(".")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write report: {e}"),
    }
    match append_trajectory_point(Path::new(TRAJECTORY_PATH), &report.trajectory_point()) {
        Ok(()) => println!("appended trajectory point to {TRAJECTORY_PATH}"),
        Err(e) => eprintln!("failed to append to {TRAJECTORY_PATH}: {e}"),
    }
    if report.gates.pass {
        println!("soak: PASS");
    } else {
        eprintln!("soak: FAIL (see gate lines in the report)");
    }
    report.gates.pass
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "FAIL"
    }
}
