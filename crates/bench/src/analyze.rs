//! `repro analyze` — the static scoped-communication analyzer as a
//! subcommand: delay-set warnings, per-site fence verdicts, and quiet
//! certificates for litmus shapes and application kernels, with zero
//! simulator executions.
//!
//! Targets:
//!
//! * a shape short name (`MP`, `MP.shared`, `MP+fences`, ...) — exact
//!   per-test-thread analysis of the generated kernel;
//! * an application name (`cbe-dot`, `ls-bh-nf`, `shm-pipe`, ...) —
//!   per-phase analysis under representative launch threads;
//! * `shapes` — the whole shape catalogue;
//! * `apps` — the Tab. 4 set plus the scoped `shm-pipe` demo;
//! * `all` — both of the above.
//!
//! `--chips A,B` routes shape targets through the chip-aware analyzer
//! (`wmm_analysis::analyze_litmus_on_chip`), one report per chip: on
//! incoherent-L1 chips (C2075/C2050) the structural read-read channel
//! joins the delay set, so `CoRR` warns there and stays quiet on the
//! coherent presets. Without the flag the analysis is chip-independent,
//! exactly as before.
//!
//! `--json PATH` additionally writes a machine-readable report whose
//! verdict strings (`DemotableToBlock`, `Required(Device)`,
//! `RemovalCandidate`), warning counts, and per-chip quiet flags CI
//! greps for.

use std::fmt::Write as _;

use wmm_analysis::{analyze_litmus, analyze_litmus_on_chip, ProgramAnalysis};
use wmm_apps::{all_apps, app_by_name};
use wmm_core::analyze_spec;
use wmm_gen::Shape;
use wmm_litmus::{LitmusLayout, Placement};
use wmm_sim::chip::Chip;
use wmm_sim::ir::{FenceLevel, Space};

/// Layout the shape targets are instantiated at. The analyzer's verdict
/// depends on spaces and launch geometry, not on the concrete location
/// distance, so one standard layout represents every suite row.
const DISTANCE: u32 = 64;
const GLOBAL_WORDS: u32 = 2048;

/// One analyzed target.
enum Report {
    /// A litmus shape, analyzed exactly.
    Shape {
        shape: Shape,
        threads: u32,
        /// Chip the analysis ran on (`None` ⇒ chip-independent).
        chip: Option<String>,
        analysis: ProgramAnalysis,
    },
    /// An application, analyzed per phase under representative threads.
    App {
        name: String,
        phases: Vec<ProgramAnalysis>,
    },
}

fn analyze_shape(shape: Shape, chip: Option<&Chip>) -> Report {
    let li = shape.instance(LitmusLayout::standard(DISTANCE, GLOBAL_WORDS));
    let analysis = match chip {
        Some(c) => analyze_litmus_on_chip(&li, c),
        None => analyze_litmus(&li),
    };
    Report::Shape {
        shape,
        threads: li.threads,
        chip: chip.map(|c| c.short.to_string()),
        analysis,
    }
}

/// One report per requested chip, or one chip-independent report.
fn shape_reports(shape: Shape, chips: &Option<Vec<Chip>>) -> Vec<Report> {
    match chips {
        None => vec![analyze_shape(shape, None)],
        Some(cs) => cs.iter().map(|c| analyze_shape(shape, Some(c))).collect(),
    }
}

fn analyze_app(name: &str) -> Option<Report> {
    let app = app_by_name(name)?;
    Some(Report::App {
        name: name.to_string(),
        phases: analyze_spec(app.spec()).phases,
    })
}

/// The Tab. 4 application names plus the scoped demo workload.
fn app_targets() -> Vec<String> {
    let mut names: Vec<String> = all_apps().iter().map(|a| a.name().to_string()).collect();
    names.push("shm-pipe".to_string());
    names
}

fn resolve(target: &str, chips: &Option<Vec<Chip>>) -> Result<Vec<Report>, String> {
    match target {
        "shapes" => Ok(Shape::ALL
            .iter()
            .flat_map(|&s| shape_reports(s, chips))
            .collect()),
        "apps" => Ok(app_targets()
            .iter()
            .filter_map(|n| analyze_app(n))
            .collect()),
        "all" => {
            let mut out: Vec<Report> = Shape::ALL
                .iter()
                .flat_map(|&s| shape_reports(s, chips))
                .collect();
            out.extend(app_targets().iter().filter_map(|n| analyze_app(n)));
            Ok(out)
        }
        name => {
            if let Ok(shape) = name.parse::<Shape>() {
                return Ok(shape_reports(shape, chips));
            }
            if let Some(r) = analyze_app(name) {
                return Ok(vec![r]);
            }
            Err(format!(
                "unknown analyze target `{name}` (want a shape short name, an \
                 application name, `shapes`, `apps`, or `all`)"
            ))
        }
    }
}

fn space_name(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

fn level_name(l: FenceLevel) -> &'static str {
    match l {
        FenceLevel::Block => "block",
        FenceLevel::Device => "device",
    }
}

fn print_analysis(a: &ProgramAnalysis, indent: &str) {
    for w in &a.warnings {
        println!("{indent}{w}");
    }
    for s in &a.sites {
        println!("{indent}{s}");
    }
    if a.quiet() {
        println!(
            "{indent}quiet: {} delay pair(s) already ordered by fences/barriers",
            a.ordered_edges
        );
    } else {
        println!(
            "{indent}{} warning(s), minimal fence = {}",
            a.warnings.len(),
            a.max_warning_level().map(level_name).unwrap_or("-"),
        );
    }
}

fn print_report(r: &Report) {
    match r {
        Report::Shape {
            shape,
            threads,
            chip,
            analysis,
        } => {
            let placement = match shape.placement() {
                Placement::InterBlock => "inter-block",
                Placement::IntraBlock => "intra-block",
            };
            match chip {
                Some(c) => println!(
                    "== {} on {c} ({placement}, {threads} threads) ==",
                    shape.short()
                ),
                None => println!("== {} ({placement}, {threads} threads) ==", shape.short()),
            }
            print_analysis(analysis, "  ");
        }
        Report::App { name, phases } => {
            println!("== {name} ({} phase(s)) ==", phases.len());
            for (i, a) in phases.iter().enumerate() {
                println!("  phase {i}:");
                print_analysis(a, "    ");
            }
        }
    }
}

fn json_analysis(out: &mut String, a: &ProgramAnalysis) {
    let _ = write!(
        out,
        "\"quiet\": {}, \"warnings\": {}, \"ordered_edges\": {}, \"level\": {}, ",
        a.quiet(),
        a.warnings.len(),
        a.ordered_edges,
        match a.max_warning_level() {
            Some(l) => format!("\"{}\"", level_name(l)),
            None => "null".to_string(),
        },
    );
    let delays: Vec<String> = a
        .warnings
        .iter()
        .map(|w| {
            format!(
                "{{\"from\": {}, \"to\": {}, \"from_space\": \"{}\", \"to_space\": \"{}\", \
                 \"level\": \"{}\"}}",
                w.from,
                w.to,
                space_name(w.from_space),
                space_name(w.to_space),
                level_name(w.level),
            )
        })
        .collect();
    let sites: Vec<String> = a
        .sites
        .iter()
        .map(|s| {
            format!(
                "{{\"index\": {}, \"space\": \"{}\", \"verdict\": \"{}\"}}",
                s.index,
                space_name(s.space),
                s.verdict,
            )
        })
        .collect();
    let _ = write!(
        out,
        "\"delays\": [{}], \"sites\": [{}]",
        delays.join(", "),
        sites.join(", "),
    );
}

/// Render the reports as a JSON document.
fn to_json(reports: &[Report]) -> String {
    let mut out = String::from("{\n  \"targets\": [\n");
    for (i, r) in reports.iter().enumerate() {
        match r {
            Report::Shape {
                shape,
                threads,
                chip,
                analysis,
            } => {
                let _ = write!(
                    out,
                    "    {{\"kind\": \"shape\", \"name\": \"{}\", \"placement\": \"{}\", \
                     \"threads\": {threads}, ",
                    shape.short(),
                    match shape.placement() {
                        Placement::InterBlock => "inter",
                        Placement::IntraBlock => "intra",
                    },
                );
                if let Some(c) = chip {
                    let _ = write!(out, "\"chip\": \"{c}\", ");
                }
                json_analysis(&mut out, analysis);
                out.push('}');
            }
            Report::App { name, phases } => {
                let _ = write!(out, "    {{\"kind\": \"app\", \"name\": \"{name}\", ");
                let quiet = phases.iter().all(ProgramAnalysis::quiet);
                let warnings: usize = phases.iter().map(|a| a.warnings.len()).sum();
                let _ = write!(
                    out,
                    "\"quiet\": {quiet}, \"warnings\": {warnings}, \"phases\": ["
                );
                for (p, a) in phases.iter().enumerate() {
                    if p > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{{\"phase\": {p}, ");
                    json_analysis(&mut out, a);
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Analyze `target` — on specific chips when `chips` names any — print
/// the report, and optionally write JSON.
pub fn run(
    target: &str,
    chips: Option<Vec<String>>,
    json_path: Option<&str>,
) -> Result<(), String> {
    let chips: Option<Vec<Chip>> = match chips {
        None => None,
        Some(names) => Some(
            names
                .iter()
                .map(|n| Chip::by_short(n).ok_or_else(|| format!("unknown chip {n}")))
                .collect::<Result<_, _>>()?,
        ),
    };
    let reports = resolve(target, &chips)?;
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print_report(r);
    }
    if let Some(path) = json_path {
        let json = to_json(&reports);
        std::fs::write(path, json).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_of(target: &str) -> String {
        to_json(&resolve(target, &None).unwrap())
    }

    fn json_on(target: &str, chip: &str) -> String {
        let chips = Some(vec![Chip::by_short(chip).unwrap()]);
        to_json(&resolve(target, &chips).unwrap())
    }

    #[test]
    fn scoped_shape_reports_demotable_sites() {
        let json = json_of("MP.shared");
        assert!(json.contains("\"placement\": \"intra\""));
        assert!(json.contains("\"level\": \"block\""));
        assert!(json.contains("DemotableToBlock"), "{json}");
    }

    #[test]
    fn fenced_mp_is_certified_quiet() {
        let json = json_of("MP+fences");
        assert!(json.contains("\"quiet\": true"), "{json}");
        assert!(json.contains("\"warnings\": 0"), "{json}");
        assert!(!json.contains("\"level\": \"device\""), "{json}");
    }

    #[test]
    fn corr_analysis_is_chip_aware() {
        // Chip-independent: CoRR is coherence-exempt, no chip field.
        let bare = json_of("CoRR");
        assert!(bare.contains("\"quiet\": true"), "{bare}");
        assert!(!bare.contains("\"chip\""), "{bare}");
        // On an incoherent-L1 Tesla the read-read pair warns at device
        // level; a coherent chip stays quiet.
        let c2075 = json_on("CoRR", "C2075");
        assert!(c2075.contains("\"chip\": \"C2075\""), "{c2075}");
        assert!(c2075.contains("\"quiet\": false"), "{c2075}");
        assert!(c2075.contains("\"level\": \"device\""), "{c2075}");
        let titan = json_on("CoRR", "Titan");
        assert!(titan.contains("\"chip\": \"Titan\""), "{titan}");
        assert!(titan.contains("\"quiet\": true"), "{titan}");
        // The fenced twin is quiet even on the incoherent chip.
        let twin = json_on("CoRR+fence", "C2075");
        assert!(twin.contains("\"quiet\": true"), "{twin}");
    }

    #[test]
    fn chip_list_fans_out_shape_reports() {
        let chips = Some(vec![
            Chip::by_short("C2075").unwrap(),
            Chip::by_short("K20").unwrap(),
        ]);
        let reports = resolve("CoRR", &chips).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(run("nope", Some(vec!["C2075".into()]), None).is_err());
        assert!(run("CoRR", Some(vec!["NotAChip".into()]), None).is_err());
    }

    #[test]
    fn every_app_target_resolves() {
        let reports = resolve("apps", &None).unwrap();
        // Tab. 4's ten plus shm-pipe.
        assert_eq!(reports.len(), 11);
        let json = to_json(&reports);
        // The unfenced Tab. 4 apps communicate through global memory.
        assert!(json.contains("Required(Device)"), "{json}");
        // The scoped demo exposes block-demotable shared sites.
        assert!(json.contains("DemotableToBlock"), "{json}");
    }

    #[test]
    fn unknown_targets_error_out() {
        assert!(resolve("nope", &None).is_err());
        assert!(run("nope", None, None).is_err());
    }
}
