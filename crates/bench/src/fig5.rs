//! Fig. 5 — the cost of fences: runtime and energy under `no`, `emp`
//! (empirically inserted) and `cons` (after every access) fencing.

use crate::{table6, Scale};
use wmm_apps::app_by_name;
use wmm_core::app::AppSpec;
use wmm_core::env::{AppHarness, Environment, RunVerdict};
use wmm_sim::chip::Chip;

/// One scatter point: a chip/application combination.
#[derive(Debug, Clone)]
pub struct Point {
    /// Chip short name.
    pub chip: String,
    /// Application name.
    pub app: String,
    /// Mean runtime (ms) for no / emp / cons fences.
    pub runtime_ms: [f64; 3],
    /// Mean energy (J), when the chip supports power queries.
    pub energy_j: Option<[f64; 3]>,
}

impl Point {
    /// Percentage overhead of emp fences over no fences (runtime).
    pub fn emp_overhead(&self) -> f64 {
        100.0 * (self.runtime_ms[1] / self.runtime_ms[0] - 1.0)
    }

    /// Percentage overhead of cons fences over no fences (runtime).
    pub fn cons_overhead(&self) -> f64 {
        100.0 * (self.runtime_ms[2] / self.runtime_ms[0] - 1.0)
    }
}

/// Benchmark one fencing variant natively (no testing environment),
/// averaging runtime/energy over passing runs, as in Sec. 6.
fn measure(
    chip: &Chip,
    app: &dyn wmm_core::app::Application,
    spec: AppSpec,
    runs: u32,
    seed: u64,
) -> (f64, Option<f64>) {
    let h = AppHarness::with_spec(chip, app, spec);
    let env = Environment::native();
    let mut time = 0.0;
    let mut energy = 0.0;
    let mut n = 0u32;
    for i in 0..runs {
        let out = h.run_once(&env, seed.wrapping_add(u64::from(i)));
        // The paper records results only for runs that pass the
        // post-condition (native weak failures are rare).
        if out.verdict == RunVerdict::Pass {
            time += out.runtime_ms;
            energy += out.energy_j.unwrap_or(0.0);
            n += 1;
        }
    }
    let n = n.max(1) as f64;
    (time / n, chip.supports_power.then_some(energy / n))
}

/// Produce the scatter data for the requested chips.
pub fn run(chips: Option<Vec<String>>, scale: Scale) -> Vec<Point> {
    let chips: Vec<Chip> = match chips {
        Some(names) => names
            .iter()
            .map(|n| Chip::by_short(n).unwrap_or_else(|| panic!("unknown chip {n}")))
            .collect(),
        None => Chip::all(),
    };
    let runs = (scale.app_runs / 2).max(20);
    println!("Fig. 5: cost of fences ({runs} native runs per point; emp fences from");
    println!("empirical insertion on each chip, as in Sec. 6)\n");
    println!(
        "{:7} {:12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>10}",
        "chip", "app", "no(ms)", "emp(ms)", "cons(ms)", "emp+%", "cons+%", "energy(J)"
    );
    let mut points = Vec::new();
    for chip in &chips {
        for name in table6::INSERTION_APPS {
            let app = app_by_name(name).expect("fig5 app");
            let base = app.spec().clone();
            let emp = table6::harden_one(app.as_ref(), chip, scale);
            let emp_spec = base.with_fences(&emp.fences);
            let cons_spec = base.with_all_fences();
            let (t_no, e_no) = measure(chip, app.as_ref(), base, runs, scale.seed);
            let (t_emp, e_emp) = measure(chip, app.as_ref(), emp_spec, runs, scale.seed + 1);
            let (t_cons, e_cons) = measure(chip, app.as_ref(), cons_spec, runs, scale.seed + 2);
            let energy = match (e_no, e_emp, e_cons) {
                (Some(a), Some(b), Some(c)) => Some([a, b, c]),
                _ => None,
            };
            let p = Point {
                chip: chip.short.to_string(),
                app: name.to_string(),
                runtime_ms: [t_no, t_emp, t_cons],
                energy_j: energy,
            };
            println!(
                "{:7} {:12} {:>9.4} {:>9.4} {:>9.4} {:>7.1}% {:>7.1}% {:>10}",
                p.chip,
                p.app,
                t_no,
                t_emp,
                t_cons,
                p.emp_overhead(),
                p.cons_overhead(),
                energy
                    .map(|e| format!("{:.3}/{:.3}/{:.3}", e[0], e[1], e[2]))
                    .unwrap_or_else(|| "-".into())
            );
            points.push(p);
        }
    }
    let mut emp: Vec<f64> = points.iter().map(Point::emp_overhead).collect();
    let mut cons: Vec<f64> = points.iter().map(Point::cons_overhead).collect();
    emp.sort_by(|a, b| a.total_cmp(b));
    cons.sort_by(|a, b| a.total_cmp(b));
    let med = |v: &[f64]| v[v.len() / 2];
    println!(
        "\nmedian runtime overhead: emp fences {:+.1}% (paper: <3%), cons fences {:+.1}% (paper: ~174%)",
        med(&emp),
        med(&cons)
    );
    println!("Expected shape: no point below the diagonal (fences never speed things up);");
    println!("cons >> emp; the oldest chips (770, C2075, C2050) show the extreme costs.");
    points
}
