//! Fig. 4 — spread-finding curves (score per spread, per litmus test).

use crate::{bar, Scale};
use wmm_core::tuning::{spread, TuningConfig};
use wmm_sim::chip::Chip;

/// Generate and print the curve for one chip.
pub fn run_chip(chip: &Chip, scale: Scale) {
    let mut cfg = TuningConfig::scaled();
    cfg.execs = scale.execs;
    cfg.base_seed = scale.seed;
    cfg.parallelism = scale.workers;
    println!("== Fig. 4 panel: {} ==", chip.name);
    let scores = spread::score_spreads(&chip.clone(), chip.patch_words, &chip.preferred_seq, &cfg);
    let max = scores
        .entries
        .iter()
        .map(|(_, s)| s.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>7}",
        "spread", "MP", "LB", "SB", "total"
    );
    for (m, s) in &scores.entries {
        let total: u64 = s.iter().sum();
        println!(
            "{:>6} {:>6} {:>6} {:>6} {:>7} |{}",
            m,
            s[0],
            s[1],
            s[2],
            total,
            bar(total, max, 30)
        );
    }
    println!(
        "best spread = {} (paper: 2)\n",
        spread::best_spread(&scores)
    );
}

/// Generate and print the figure's two panels (980 and K20).
pub fn run(scale: Scale) {
    println!("Fig. 4: spread finding\n");
    for short in ["980", "K20"] {
        let chip = Chip::by_short(short).expect("paper chip");
        run_chip(&chip, scale);
    }
    println!("Expected shape: scores peak at a spread of 2 and decline as stress spreads");
    println!("thin (the paper notes the K20 curve is shallower than the 980's).");
}
