//! Fig. 3 — patch-finding plots: weak behaviours per stressed location.

use crate::{bar, Scale};
use wmm_core::tuning::{patch, TuningConfig};
use wmm_gen::Shape;
use wmm_sim::chip::Chip;

/// The figure's chips and distance rows: (chip, distances).
pub fn paper_panels() -> Vec<(&'static str, [u32; 3])> {
    vec![
        ("Titan", [0, 32, 64]),
        ("C2075", [0, 64, 128]),
        ("980", [0, 64, 128]),
    ]
}

/// Generate and print the figure for one chip.
pub fn run_chip(chip: &Chip, distances: &[u32], scale: Scale) {
    let mut cfg = TuningConfig::scaled();
    cfg.execs = scale.execs.max(48);
    cfg.base_seed = scale.seed;
    cfg.parallelism = scale.workers;
    println!(
        "== Fig. 3 panel: {} ({}; critical patch size {}) ==",
        chip.name, chip.arch, chip.patch_words
    );
    for &d in distances {
        for test in [Shape::Mp, Shape::Lb] {
            let grid = patch::sweep(chip, test, d, &cfg);
            let max = grid.counts.iter().copied().max().unwrap_or(0);
            print!("{test} d={d:<4} |");
            for &c in &grid.counts {
                // One character per sampled location, height-coded.
                let ch = match bar(c, max.max(1), 4).len() {
                    0 => {
                        if c > cfg.noise {
                            '.'
                        } else {
                            ' '
                        }
                    }
                    1 => '_',
                    2 => '=',
                    3 => '#',
                    _ => '#',
                };
                print!("{ch}");
            }
            println!("| max={max}/{}", cfg.execs);
            let patches = patch::epsilon_patches(&grid, cfg.noise);
            if !patches.is_empty() {
                let sizes: Vec<String> = patches
                    .iter()
                    .map(|p| format!("@{}+{}", p.start, p.size_words))
                    .collect();
                println!("          eps-patches: {}", sizes.join(" "));
            }
        }
    }
    println!();
}

/// Generate and print the full figure.
pub fn run(scale: Scale) {
    println!("Fig. 3: patch finding (x axis = stressed scratchpad location, 0..256 step 8)\n");
    for (short, distances) in paper_panels() {
        let chip = Chip::by_short(short).expect("paper chip");
        run_chip(&chip, &distances, scale);
    }
    println!("Expected shape: no weak behaviour for d < patch size; effective patches of");
    println!("size 32 (Kepler) / 64 (Fermi, Maxwell) whose positions shift with d; the 980");
    println!("shows only ambient MP noise at these distances (its MP patches need d >= 256).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_match_figure() {
        let p = paper_panels();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].0, "Titan");
        assert_eq!(p[0].1, [0, 32, 64]);
        assert_eq!(p[1].1, [0, 64, 128]);
    }
}
