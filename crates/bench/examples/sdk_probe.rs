//! Diagnose sdk-red-nf: bypasses vs failures.
use wmm_apps::SdkRed;
use wmm_core::app::Application;
use wmm_core::env::{AppHarness, Environment, RunVerdict};
use wmm_sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("K20").unwrap();
    let app = SdkRed::new(false);
    let h = AppHarness::new(&chip, &app);
    let env = Environment::sys_str_plus(&chip);
    let mut fails = 0;
    for seed in 0..400u64 {
        let out = h.run_once(&env, seed);
        if out.verdict != RunVerdict::Pass {
            fails += 1;
            if fails <= 3 {
                println!("seed {seed}: {:?}", out.verdict);
            }
        }
    }
    println!("failures: {fails}/400");
    let _ = app.spec();
}
