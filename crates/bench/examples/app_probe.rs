//! Probe: error rates for all apps under native vs sys-str+ on one chip.
use wmm_apps::all_apps;
use wmm_core::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

fn main() {
    let short = std::env::args().nth(1).unwrap_or_else(|| "K20".into());
    let runs: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let chip = Chip::by_short(&short).expect("chip");
    println!("chip = {short}, runs = {runs}");
    println!("{:12} {:>10} {:>10}", "app", "no-str-", "sys-str+");
    for app in all_apps() {
        let h = AppHarness::new(&chip, app.as_ref());
        let native = h.campaign(&Environment::native(), runs, 1, 0);
        let sys = h.campaign(&Environment::sys_str_plus(&chip), runs, 2, 0);
        println!(
            "{:12} {:>6}/{:<4} {:>6}/{:<4}  (pc={} to={} f={})",
            app.name(),
            native.errors,
            native.runs,
            sys.errors,
            sys.runs,
            sys.postcondition_failures,
            sys.timeouts,
            sys.faults,
        );
    }
}
