//! The machine word of the simulated GPU.
//!
//! All memory in the simulator is word-addressed: a [`Word`] is a 32-bit
//! value, matching the word size that the paper's micro-benchmarks stress
//! (scratchpad locations are "word-sized", Sec. 3.2). Floating point values
//! are stored as IEEE-754 bit patterns and manipulated by the `F*` ALU
//! instructions.

/// A 32-bit machine word. Memory, registers, and immediates all hold words.
pub type Word = u32;

/// Reinterpret a word as an `f32` (bit-level, never lossy).
#[inline]
pub fn to_f32(w: Word) -> f32 {
    f32::from_bits(w)
}

/// Reinterpret an `f32` as a word (bit-level, never lossy).
#[inline]
pub fn from_f32(f: f32) -> Word {
    f.to_bits()
}

/// Reinterpret a word as a signed 32-bit integer.
#[inline]
pub fn to_i32(w: Word) -> i32 {
    w as i32
}

/// Reinterpret a signed 32-bit integer as a word.
#[inline]
pub fn from_i32(i: i32) -> Word {
    i as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        for f in [0.0f32, 1.5, -2.25, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(to_f32(from_f32(f)), f);
        }
    }

    #[test]
    fn f32_nan_bits_preserved() {
        let bits = 0x7fc0_0001u32;
        assert!(to_f32(bits).is_nan());
        assert_eq!(from_f32(to_f32(bits)), bits);
    }

    #[test]
    fn i32_round_trip() {
        for i in [0i32, 1, -1, i32::MAX, i32::MIN] {
            assert_eq!(to_i32(from_i32(i)), i);
        }
    }
}
