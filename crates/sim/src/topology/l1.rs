//! Per-SM incoherent L1 caches: staleness parameters and runtime state.

use std::collections::{HashMap, VecDeque};

use crate::word::Word;

/// How much cross-SM write pressure stretches a stale line's lifetime:
/// `ttl_eff = ttl_turns * (1 + TTL_PRESSURE_SCALE * chi)`. Under heavy
/// remote write traffic the L1 has no bandwidth to refresh, so stale
/// lines survive longer (pressure-coupled eviction).
const TTL_PRESSURE_SCALE: f64 = 3.0;

/// Ceiling on the stale-hit probability, matching the reorder-rate
/// clamp of the in-flight window.
const MAX_STALE_PROB: f64 = 0.95;

/// Per-chip knobs of the incoherent-L1 weakness channel.
///
/// A chip whose rates are all zero has a *coherent* L1: the channel is
/// structurally off and the execution engine never touches any L1
/// state (nor its RNG) for it — the legacy path, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1Params {
    /// Pressure-independent stale-hit probability floor.
    pub stale_base: f64,
    /// Stale-hit probability gained per unit of cross-SM write
    /// pressure χ (saturating, see [`L1System::stale_candidate`]).
    pub stale_gain: f64,
    /// Capacity of the stale-line store, in words. Oldest entries are
    /// evicted first when a chip-wide write burst overflows it.
    pub words: u32,
    /// Base lifetime of a stale line, in scheduler turns.
    pub ttl_turns: u64,
    /// Half-saturation constant of the write-pressure curve.
    pub pressure_half: f64,
    /// Pressure below which staleness never manifests: a handful of
    /// writes (a litmus test's own traffic, a quiet app) refreshes
    /// through L2 fast enough to stay coherent in practice.
    pub pressure_floor: f64,
    /// Exponential decay constant of per-SM write pressure, in turns.
    pub pressure_tau: f64,
}

impl L1Params {
    /// Can this L1 ever serve a stale value?
    pub fn weak(&self) -> bool {
        self.stale_base > 0.0 || self.stale_gain > 0.0
    }
}

/// One potentially stale line: the pre-write value a remote SM's L1
/// may still hold after a write completed.
#[derive(Debug, Clone, Copy)]
struct StaleEntry {
    /// The overwritten value.
    old: Word,
    /// Home SM of the writing block (its own L1 was updated).
    writer_sm: u32,
    /// Monotonic creation stamp, compared against per-SM clear epochs.
    seq: u64,
    /// Scheduler turn of the write's completion, for TTL eviction.
    turn: u64,
}

/// Runtime L1 state of one run: the stale-line store, per-SM
/// invalidation epochs, and per-SM decaying write pressure.
///
/// Only allocated for runs on chips whose [`L1Params::weak`] is true.
/// All bookkeeping is deterministic; the only randomness in the
/// channel is the single stale-hit draw the execution engine makes
/// when [`L1System::stale_candidate`] returns a positive probability.
#[derive(Debug, Clone)]
pub struct L1System {
    params: L1Params,
    /// Address → youngest stale entry for that address.
    entries: HashMap<u32, StaleEntry>,
    /// FIFO of (addr, seq) for capacity eviction; stale pairs whose
    /// seq no longer matches the live entry are skipped lazily.
    fifo: VecDeque<(u32, u64)>,
    /// Per-SM clear epoch: entries with `seq <= cleared_at[sm]` are
    /// invisible to SM `sm` (a device fence refreshed its L1).
    cleared_at: Vec<u64>,
    /// Per-SM decaying count of completed global writes.
    write_pressure: Vec<f64>,
    /// Turn the pressure vector was last decayed to.
    pressure_turn: u64,
    /// Monotonic stamp source; turn values collide within a scheduler
    /// round, sequence numbers cannot.
    seq: u64,
}

impl L1System {
    /// Fresh, empty L1 state for a chip with `total_sms` SMs.
    pub fn new(total_sms: u32, params: L1Params) -> Self {
        L1System {
            params,
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            cleared_at: vec![0; total_sms as usize],
            write_pressure: vec![0.0; total_sms as usize],
            pressure_turn: 0,
            seq: 0,
        }
    }

    /// Decay all per-SM pressure counters to `turn`.
    fn decay_to(&mut self, turn: u64) {
        if turn <= self.pressure_turn {
            return;
        }
        let dt = (turn - self.pressure_turn) as f64;
        let f = (-dt / self.params.pressure_tau).exp();
        for w in &mut self.write_pressure {
            *w *= f;
            if *w < 1e-9 {
                *w = 0.0;
            }
        }
        self.pressure_turn = turn;
    }

    /// Saturating cross-SM write pressure seen by `reader_sm`: the sum
    /// of every *other* SM's decayed write counter, gated by the floor.
    fn chi(&mut self, reader_sm: u32, turn: u64) -> f64 {
        self.decay_to(turn);
        let remote: f64 = self
            .write_pressure
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != reader_sm as usize)
            .map(|(_, w)| w)
            .sum();
        if remote < self.params.pressure_floor {
            0.0
        } else {
            remote / (remote + self.params.pressure_half)
        }
    }

    /// Record a completed global write by a block homed on
    /// `writer_sm`: every other SM's L1 may now hold the pre-write
    /// value `old`. The writing SM's own line is updated in place
    /// (invalidation-on-own-write), which
    /// [`stale_candidate`](L1System::stale_candidate) encodes by never
    /// serving an entry back to its own writer.
    pub fn record_write(&mut self, addr: u32, old: Word, writer_sm: u32, turn: u64) {
        self.decay_to(turn);
        self.write_pressure[writer_sm as usize] += 1.0;
        self.seq += 1;
        let seq = self.seq;
        self.entries.insert(
            addr,
            StaleEntry {
                old,
                writer_sm,
                seq,
                turn,
            },
        );
        self.fifo.push_back((addr, seq));
        // Capacity eviction, oldest first; superseded FIFO pairs are
        // dropped without touching the live entry.
        while self.entries.len() > self.params.words as usize {
            match self.fifo.pop_front() {
                Some((a, s)) => {
                    if self.entries.get(&a).is_some_and(|e| e.seq == s) {
                        self.entries.remove(&a);
                    }
                }
                None => break,
            }
        }
    }

    /// A device fence completed on `sm`: its L1 refreshes, so every
    /// stale entry recorded so far becomes invisible to that SM.
    pub fn note_fence(&mut self, sm: u32) {
        self.cleared_at[sm as usize] = self.seq;
    }

    /// May a global load by a block homed on `reader_sm` hit a stale
    /// line at `addr`? Returns the stale value and the hit probability
    /// when a live, visible, remote-written entry exists and the
    /// probability is positive; `None` otherwise (the caller then
    /// reads fresh memory and, crucially, draws no randomness).
    pub fn stale_candidate(&mut self, addr: u32, reader_sm: u32, turn: u64) -> Option<(Word, f64)> {
        let e = *self.entries.get(&addr)?;
        if e.writer_sm == reader_sm || e.seq <= self.cleared_at[reader_sm as usize] {
            return None;
        }
        let chi = self.chi(reader_sm, turn);
        let ttl_eff =
            (self.params.ttl_turns as f64 * (1.0 + TTL_PRESSURE_SCALE * chi)).round() as u64;
        if turn.saturating_sub(e.turn) > ttl_eff {
            self.entries.remove(&addr);
            return None;
        }
        let p = (self.params.stale_base + self.params.stale_gain * chi).clamp(0.0, MAX_STALE_PROB);
        if p > 0.0 {
            Some((e.old, p))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> L1Params {
        L1Params {
            stale_base: 0.0,
            stale_gain: 0.6,
            words: 4,
            ttl_turns: 1000,
            pressure_half: 48.0,
            pressure_floor: 24.0,
            pressure_tau: 96.0,
        }
    }

    /// Drive pressure above the floor with remote writes on SM 1.
    fn pressurize(l1: &mut L1System, turn: u64) {
        for i in 0..40 {
            l1.record_write(900 + i, 0, 1, turn);
        }
    }

    #[test]
    fn all_zero_rates_are_coherent() {
        let p = L1Params {
            stale_base: 0.0,
            stale_gain: 0.0,
            ..params()
        };
        assert!(!p.weak());
        let mut l1 = L1System::new(4, p);
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        assert_eq!(l1.stale_candidate(7, 0, 11), None, "p stays zero");
    }

    #[test]
    fn below_pressure_floor_never_serves_stale() {
        let mut l1 = L1System::new(4, params());
        l1.record_write(7, 5, 1, 10);
        assert_eq!(
            l1.stale_candidate(7, 0, 11),
            None,
            "a single write is far below the pressure floor"
        );
    }

    #[test]
    fn remote_reader_sees_stale_under_pressure() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        let (old, p) = l1.stale_candidate(7, 0, 11).expect("stale candidate");
        assert_eq!(old, 5, "the pre-write value is served");
        assert!(p > 0.1 && p <= MAX_STALE_PROB, "p = {p}");
    }

    #[test]
    fn own_sm_reads_fresh() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 2, 10);
        assert_eq!(
            l1.stale_candidate(7, 2, 11),
            None,
            "invalidation-on-own-write: the writer's SM is coherent with itself"
        );
        assert!(l1.stale_candidate(7, 0, 11).is_some(), "but peers are not");
    }

    #[test]
    fn fence_clears_the_issuing_sm_only() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        l1.note_fence(0);
        assert_eq!(l1.stale_candidate(7, 0, 11), None, "SM 0 refreshed");
        assert!(
            l1.stale_candidate(7, 2, 11).is_some(),
            "SM 2's L1 is still stale"
        );
        // A write after the fence is visible to SM 0 again.
        l1.record_write(7, 6, 1, 12);
        let (old, _) = l1.stale_candidate(7, 0, 13).expect("new entry");
        assert_eq!(old, 6);
    }

    #[test]
    fn ttl_evicts_old_entries() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        assert!(l1.stale_candidate(7, 0, 50).is_some(), "young enough");
        // Far past ttl_eff even at maximal pressure coupling:
        // 1000 * (1 + 3).
        assert_eq!(l1.stale_candidate(7, 0, 10 + 4001), None, "expired");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10); // also overflows the 4-word store
        l1.record_write(1, 11, 1, 10);
        l1.record_write(2, 12, 1, 10);
        l1.record_write(3, 13, 1, 10);
        l1.record_write(4, 14, 1, 10);
        l1.record_write(5, 15, 1, 10);
        assert_eq!(l1.stale_candidate(1, 0, 11), None, "addr 1 evicted");
        assert!(l1.stale_candidate(5, 0, 11).is_some(), "addr 5 resident");
    }

    #[test]
    fn rewrite_supersedes_the_old_entry() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        l1.record_write(7, 9, 3, 10);
        let (old, _) = l1.stale_candidate(7, 0, 11).expect("entry");
        assert_eq!(old, 9, "the youngest pre-write value wins");
        assert_eq!(
            l1.stale_candidate(7, 3, 11),
            None,
            "the latest writer's SM is coherent"
        );
    }

    #[test]
    fn pressure_decays_back_to_coherence() {
        let mut l1 = L1System::new(4, params());
        pressurize(&mut l1, 10);
        l1.record_write(7, 5, 1, 10);
        assert!(l1.stale_candidate(7, 0, 11).is_some());
        // Long after the burst, pressure decays below the floor.
        assert_eq!(l1.stale_candidate(7, 0, 10 + 800), None);
    }
}
