//! Cluster/SM structure and deterministic home-SM assignment.

/// The structural layout of a chip: `clusters` clusters of
/// `sms_per_cluster` streaming multiprocessors each, with at most
/// `blocks_per_sm` resident blocks per SM.
///
/// Blocks are assigned a *home SM* round-robin over their launch
/// index ([`Topology::home_sm`]); when a grid exceeds the chip's
/// block capacity the assignment wraps deterministically, modelling
/// waves of blocks re-using the same SMs (and therefore the same
/// private L1s). The assignment draws no randomness, so topology is
/// invisible to runs that do not use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of SM clusters on the chip.
    pub clusters: u32,
    /// SMs per cluster.
    pub sms_per_cluster: u32,
    /// Maximum resident blocks per SM (the occupancy limit).
    pub blocks_per_sm: u32,
}

impl Topology {
    /// A uniform topology. Panics if any dimension is zero — a chip
    /// with no SMs cannot run anything.
    pub fn uniform(clusters: u32, sms_per_cluster: u32, blocks_per_sm: u32) -> Self {
        assert!(
            clusters > 0 && sms_per_cluster > 0 && blocks_per_sm > 0,
            "topology dimensions must be nonzero"
        );
        Topology {
            clusters,
            sms_per_cluster,
            blocks_per_sm,
        }
    }

    /// Total SMs on the chip.
    pub fn total_sms(&self) -> u32 {
        self.clusters * self.sms_per_cluster
    }

    /// Blocks the whole chip can hold resident at once.
    pub fn capacity_blocks(&self) -> u32 {
        self.total_sms() * self.blocks_per_sm
    }

    /// The home SM of the `launch_index`-th launched block:
    /// round-robin over all SMs, wrapping deterministically past the
    /// occupancy limit (later waves re-use earlier SMs' L1s).
    pub fn home_sm(&self, launch_index: u32) -> u32 {
        launch_index % self.total_sms()
    }

    /// Which cluster an SM belongs to.
    pub fn cluster_of(&self, sm: u32) -> u32 {
        debug_assert!(sm < self.total_sms(), "SM index out of range");
        sm / self.sms_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_multiply() {
        let t = Topology::uniform(2, 4, 8);
        assert_eq!(t.total_sms(), 8);
        assert_eq!(t.capacity_blocks(), 64);
    }

    #[test]
    fn home_sm_round_robins_and_wraps() {
        let t = Topology::uniform(2, 2, 2);
        let homes: Vec<u32> = (0..6).map(|i| t.home_sm(i)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1], "wraps past total_sms");
    }

    #[test]
    fn consecutive_launches_land_on_distinct_sms() {
        // The launch queue interleaves app and stress blocks; the
        // round-robin guarantees consecutive blocks get distinct home
        // SMs whenever the chip has more than one.
        let t = Topology::uniform(2, 4, 8);
        for i in 0..t.total_sms() - 1 {
            assert_ne!(t.home_sm(i), t.home_sm(i + 1));
        }
    }

    #[test]
    fn cluster_of_partitions_sms() {
        let t = Topology::uniform(2, 4, 8);
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(3), 0);
        assert_eq!(t.cluster_of(4), 1);
        assert_eq!(t.cluster_of(7), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_is_rejected() {
        Topology::uniform(0, 4, 8);
    }
}
