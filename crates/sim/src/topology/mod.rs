//! Structural chip topology: clusters of SMs with private, incoherent
//! L1 caches.
//!
//! The paper's headline observation is *structural*: GPUs are built
//! from streaming multiprocessors (SMs), grouped into clusters, each
//! with a private L1 cache that is **not coherent** with its peers —
//! which is why even read-read coherence (`CoRR`) is observably weak
//! on the Tesla-class chips of Tab. 1. Until now the simulator's
//! [`Chip`](crate::chip::Chip) was a flat bag of reorder matrices with
//! no notion of SMs or caches, so that relaxation was structurally
//! impossible to produce.
//!
//! This module adds the missing structure at the simulator's
//! abstraction level (the SIMT-core / cluster / L1 decomposition of
//! real GPU simulators, kept parameter-light):
//!
//! * [`Topology`] — N clusters × M SMs with a per-SM occupancy limit;
//!   every launched block is deterministically assigned a **home SM**
//!   (round-robin over the launch order, wrapping when the grid
//!   exceeds capacity).
//! * [`L1Params`] — the per-chip knobs of the incoherent-L1 weakness
//!   channel: staleness rates, capacity, time-to-live, and the
//!   write-pressure coupling.
//! * [`L1System`] — the per-run runtime state: the stale-line store,
//!   per-SM invalidation epochs, and per-SM decaying write pressure.
//!
//! The weakness channel is entirely distinct from the in-flight-window
//! reorderings: a *completed* global store leaves the pre-write value
//! visible as a potentially stale line in every **other** SM's L1
//! (invalidation-on-own-write: the writing SM's own cache is updated),
//! and a later global load on a remote SM may hit that stale line with
//! a probability driven by cross-SM write pressure. A device fence
//! invalidates the issuing SM's entire stale view. Chips with all-zero
//! staleness rates never consult any of this state — the legacy
//! execution path, bit for bit.

mod cluster;
mod l1;

pub use cluster::Topology;
pub use l1::{L1Params, L1System};
