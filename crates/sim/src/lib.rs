//! # wmm-sim — a simulated GPU with a configurable weak memory model
//!
//! The substrate for reproducing *"Exposing Errors Related to Weak Memory
//! in GPU Applications"* (Sorensen & Donaldson, PLDI 2016). The paper
//! tests real CUDA applications on seven NVIDIA GPUs; this crate provides
//! the equivalent surface in software:
//!
//! * a CUDA-like kernel [IR](ir) with a structured
//!   [builder](ir::builder::KernelBuilder), a validator, a disassembler,
//!   and the [fence-insertion passes](ir::transform) the paper's fencing
//!   strategies are built from;
//! * a SIMT [execution engine](exec) — threads, warps, blocks, barriers,
//!   atomics, occupancy-limited wave scheduling — whose global memory
//!   operations complete out of order according to per-chip probabilities
//!   amplified by [channel contention](mem);
//! * the seven [chip profiles](chip) of the paper's Tab. 1, calibrated so
//!   that the black-box tuning pipeline in `wmm-core` rediscovers the
//!   paper's Tab. 2 parameters;
//! * a cost model (cycles and energy) for the fence-overhead study of
//!   Sec. 6.
//!
//! ## Quick start
//!
//! ```
//! use wmm_sim::chip::Chip;
//! use wmm_sim::exec::{Gpu, LaunchSpec};
//! use wmm_sim::ir::builder::KernelBuilder;
//!
//! // A kernel in which every thread increments a shared counter
//! // atomically.
//! let mut b = KernelBuilder::new("counter");
//! let addr = b.const_(0);
//! let one = b.const_(1);
//! let _ = b.atomic_add_global(addr, one);
//! let program = b.finish().expect("valid kernel");
//!
//! let mut gpu = Gpu::new(Chip::by_short("Titan").expect("known chip"));
//! let result = gpu.run(&LaunchSpec::app(program, 4, 32, 16), 7);
//! assert_eq!(result.word(0), 4 * 32);
//! ```

pub mod chip;
pub mod exec;
pub mod ir;
pub mod mem;
pub mod seq;
pub mod topology;
pub mod word;

pub use chip::{Arch, Chip, ReorderKind};
pub use exec::{Gpu, KernelGroup, LaunchSpec, Role, RunResult, RunStatus};
pub use ir::{builder::KernelBuilder, Program};
pub use topology::{L1Params, Topology};
pub use word::Word;
