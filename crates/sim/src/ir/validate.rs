//! Static validation of kernel programs.
//!
//! Validation catches malformed programs before they reach the simulator:
//! out-of-range registers, branch targets outside the program, and empty
//! programs. It runs automatically from
//! [`KernelBuilder::finish`](super::builder::KernelBuilder::finish) and the
//! fence-transformation passes.

use super::{Inst, Program, Reg};
use std::fmt;

/// A validation failure, carrying the offending instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program contains no instructions.
    Empty,
    /// A register operand is out of range for the declared register file.
    RegOutOfRange {
        /// Instruction index.
        at: usize,
        /// The offending register.
        reg: Reg,
        /// Registers declared by the program.
        num_regs: u16,
    },
    /// A branch target lies outside the program.
    ///
    /// Targets equal to `len` are allowed: they fall off the end, which is
    /// an implicit halt.
    TargetOutOfRange {
        /// Instruction index.
        at: usize,
        /// The offending target.
        target: usize,
        /// Program length.
        len: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no instructions"),
            ValidateError::RegOutOfRange { at, reg, num_regs } => write!(
                f,
                "instruction {at} uses register r{reg} but the program declares {num_regs} registers"
            ),
            ValidateError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} branches to {target} but the program has {len} instructions"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Check a program for well-formedness.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found, scanning in instruction
/// order.
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    if p.insts.is_empty() {
        return Err(ValidateError::Empty);
    }
    for (at, inst) in p.insts.iter().enumerate() {
        for reg in inst_regs(inst) {
            if reg >= p.num_regs {
                return Err(ValidateError::RegOutOfRange {
                    at,
                    reg,
                    num_regs: p.num_regs,
                });
            }
        }
        if let Some(target) = inst.target() {
            if target > p.insts.len() {
                return Err(ValidateError::TargetOutOfRange {
                    at,
                    target,
                    len: p.insts.len(),
                });
            }
        }
    }
    Ok(())
}

/// All register operands mentioned by an instruction.
pub fn inst_regs(inst: &Inst) -> Vec<Reg> {
    match *inst {
        Inst::Const { dst, .. } => vec![dst],
        Inst::Mov { dst, src } => vec![dst, src],
        Inst::Bin { dst, a, b, .. } => vec![dst, a, b],
        Inst::Special { dst, .. } => vec![dst],
        Inst::Load { dst, addr, .. } => vec![dst, addr],
        Inst::Store { addr, src, .. } => vec![addr, src],
        Inst::AtomicCas {
            dst,
            addr,
            cmp,
            val,
            ..
        } => vec![dst, addr, cmp, val],
        Inst::AtomicExch { dst, addr, val, .. } => vec![dst, addr, val],
        Inst::AtomicAdd { dst, addr, val, .. } => vec![dst, addr, val],
        Inst::Fence(_) | Inst::Barrier | Inst::Halt => vec![],
        Inst::Jump { .. } => vec![],
        Inst::BranchZ { cond, .. } | Inst::BranchNZ { cond, .. } => vec![cond],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Space;

    fn prog(insts: Vec<Inst>, num_regs: u16) -> Program {
        Program {
            insts,
            num_regs,
            name: "t".into(),
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(validate(&prog(vec![], 0)), Err(ValidateError::Empty));
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let p = prog(vec![Inst::Const { dst: 3, value: 0 }], 2);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::RegOutOfRange { at: 0, reg: 3, .. })
        ));
    }

    #[test]
    fn target_past_end_rejected() {
        let p = prog(vec![Inst::Jump { target: 5 }], 0);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::TargetOutOfRange {
                at: 0,
                target: 5,
                ..
            })
        ));
    }

    #[test]
    fn target_at_end_allowed() {
        // Falling off the end is an implicit halt.
        let p = prog(vec![Inst::Jump { target: 1 }], 0);
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn valid_program_accepted() {
        let p = prog(
            vec![
                Inst::Const { dst: 0, value: 1 },
                Inst::Store {
                    space: Space::Global,
                    addr: 0,
                    src: 0,
                },
                Inst::Halt,
            ],
            1,
        );
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn inst_regs_covers_atomics() {
        let i = Inst::AtomicCas {
            dst: 1,
            space: Space::Global,
            addr: 2,
            cmp: 3,
            val: 4,
        };
        assert_eq!(inst_regs(&i), vec![1, 2, 3, 4]);
    }

    #[test]
    fn error_display_mentions_location() {
        let e = ValidateError::RegOutOfRange {
            at: 7,
            reg: 9,
            num_regs: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("r9"));
    }
}
