//! Static validation of kernel programs.
//!
//! Validation catches malformed programs before they reach the simulator:
//! out-of-range registers, branch targets outside the program, and empty
//! programs. It runs automatically from
//! [`KernelBuilder::finish`](super::builder::KernelBuilder::finish) and the
//! fence-transformation passes.

use super::{Inst, Program, Reg, Space};
use std::fmt;

/// A validation failure, carrying the offending instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program contains no instructions.
    Empty,
    /// A register operand is out of range for the declared register file.
    RegOutOfRange {
        /// Instruction index.
        at: usize,
        /// The offending register.
        reg: Reg,
        /// Registers declared by the program.
        num_regs: u16,
    },
    /// A branch target lies outside the program.
    ///
    /// Targets equal to `len` are allowed: they fall off the end, which is
    /// an implicit halt.
    TargetOutOfRange {
        /// Instruction index.
        at: usize,
        /// The offending target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// A shared-space access whose address register provably holds one
    /// constant addresses a word at or past the launch's `shared_words`
    /// budget — an out-of-bounds access on every execution.
    SharedConstOutOfBounds {
        /// Instruction index of the access.
        at: usize,
        /// The constant address.
        addr: u32,
        /// Words of shared memory the launch provides.
        shared_words: u32,
    },
    /// The instruction after an unconditional backward jump is the
    /// target of no branch: it can never execute.
    UnreachableAfterBackwardJump {
        /// Index of the unreachable instruction.
        at: usize,
        /// Index of the backward jump it follows.
        jump_at: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no instructions"),
            ValidateError::RegOutOfRange { at, reg, num_regs } => write!(
                f,
                "instruction {at} uses register r{reg} but the program declares {num_regs} registers"
            ),
            ValidateError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} branches to {target} but the program has {len} instructions"
            ),
            ValidateError::SharedConstOutOfBounds {
                at,
                addr,
                shared_words,
            } => write!(
                f,
                "instruction {at} accesses shared[{addr}] but the launch provides only \
                 {shared_words} shared words"
            ),
            ValidateError::UnreachableAfterBackwardJump { at, jump_at } => write!(
                f,
                "instruction {at} is unreachable: it follows the unconditional backward \
                 jump at {jump_at} and no branch targets it"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Check a program for well-formedness.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found, scanning in instruction
/// order.
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    if p.insts.is_empty() {
        return Err(ValidateError::Empty);
    }
    for (at, inst) in p.insts.iter().enumerate() {
        for reg in inst_regs(inst) {
            if reg >= p.num_regs {
                return Err(ValidateError::RegOutOfRange {
                    at,
                    reg,
                    num_regs: p.num_regs,
                });
            }
        }
        if let Some(target) = inst.target() {
            if target > p.insts.len() {
                return Err(ValidateError::TargetOutOfRange {
                    at,
                    target,
                    len: p.insts.len(),
                });
            }
        }
    }
    Ok(())
}

/// Launch-aware deep validation: everything [`validate`] checks, plus
/// two static checks that need (or benefit from) launch context.
///
/// 1. **Shared-space constant addresses in bounds** — a shared access
///    whose address register is written exactly once, by a `Const`, has
///    a statically-known address; if it is `>= shared_words` every
///    execution faults.
/// 2. **No unreachable code after an unconditional backward jump** — an
///    instruction directly after a backward `Jump` that no branch
///    targets can never execute (a `Jump` does not fall through), which
///    in builder-produced programs indicates a malformed loop.
///
/// These run here rather than in [`validate`] because the first needs
/// the launch's shared-memory budget and both are lints over the
/// *source* program — transformation passes (fence stripping, stress
/// lane injection) are free to produce odd-but-harmless shapes.
///
/// # Errors
///
/// Returns the first error found: [`validate`]'s errors first, then
/// these checks in instruction order.
pub fn validate_launch(p: &Program, shared_words: u32) -> Result<(), ValidateError> {
    validate(p)?;
    // Registers holding exactly one statically-known constant: written
    // once, by a Const. Any other write (or a second Const) demotes the
    // register to unknown.
    let mut const_of: Vec<Option<u32>> = vec![None; p.num_regs as usize];
    let mut writes: Vec<u32> = vec![0; p.num_regs as usize];
    for inst in &p.insts {
        if let Some(dst) = inst_dst(inst) {
            writes[dst as usize] += 1;
            const_of[dst as usize] = match inst {
                Inst::Const { value, .. } if writes[dst as usize] == 1 => Some(*value),
                _ => None,
            };
        }
    }
    for (at, inst) in p.insts.iter().enumerate() {
        if inst.space() == Some(Space::Shared) {
            let addr = inst.addr_reg().expect("memory access has an address");
            if let Some(value) = const_of[addr as usize] {
                if value >= shared_words {
                    return Err(ValidateError::SharedConstOutOfBounds {
                        at,
                        addr: value,
                        shared_words,
                    });
                }
            }
        }
    }
    let targeted: std::collections::BTreeSet<usize> =
        p.insts.iter().filter_map(Inst::target).collect();
    for (at, inst) in p.insts.iter().enumerate() {
        if let Inst::Jump { target } = inst {
            let next = at + 1;
            if *target <= at && next < p.insts.len() && !targeted.contains(&next) {
                return Err(ValidateError::UnreachableAfterBackwardJump {
                    at: next,
                    jump_at: at,
                });
            }
        }
    }
    Ok(())
}

/// The destination register an instruction writes, if any.
fn inst_dst(inst: &Inst) -> Option<Reg> {
    match *inst {
        Inst::Const { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::Special { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::AtomicCas { dst, .. }
        | Inst::AtomicExch { dst, .. }
        | Inst::AtomicAdd { dst, .. } => Some(dst),
        _ => None,
    }
}

/// All register operands mentioned by an instruction.
pub fn inst_regs(inst: &Inst) -> Vec<Reg> {
    match *inst {
        Inst::Const { dst, .. } => vec![dst],
        Inst::Mov { dst, src } => vec![dst, src],
        Inst::Bin { dst, a, b, .. } => vec![dst, a, b],
        Inst::Special { dst, .. } => vec![dst],
        Inst::Load { dst, addr, .. } => vec![dst, addr],
        Inst::Store { addr, src, .. } => vec![addr, src],
        Inst::AtomicCas {
            dst,
            addr,
            cmp,
            val,
            ..
        } => vec![dst, addr, cmp, val],
        Inst::AtomicExch { dst, addr, val, .. } => vec![dst, addr, val],
        Inst::AtomicAdd { dst, addr, val, .. } => vec![dst, addr, val],
        Inst::Fence(_) | Inst::Barrier | Inst::Halt => vec![],
        Inst::Jump { .. } => vec![],
        Inst::BranchZ { cond, .. } | Inst::BranchNZ { cond, .. } => vec![cond],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Space;

    fn prog(insts: Vec<Inst>, num_regs: u16) -> Program {
        Program {
            insts,
            num_regs,
            name: "t".into(),
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(validate(&prog(vec![], 0)), Err(ValidateError::Empty));
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let p = prog(vec![Inst::Const { dst: 3, value: 0 }], 2);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::RegOutOfRange { at: 0, reg: 3, .. })
        ));
    }

    #[test]
    fn target_past_end_rejected() {
        let p = prog(vec![Inst::Jump { target: 5 }], 0);
        assert!(matches!(
            validate(&p),
            Err(ValidateError::TargetOutOfRange {
                at: 0,
                target: 5,
                ..
            })
        ));
    }

    #[test]
    fn target_at_end_allowed() {
        // Falling off the end is an implicit halt.
        let p = prog(vec![Inst::Jump { target: 1 }], 0);
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn valid_program_accepted() {
        let p = prog(
            vec![
                Inst::Const { dst: 0, value: 1 },
                Inst::Store {
                    space: Space::Global,
                    addr: 0,
                    src: 0,
                },
                Inst::Halt,
            ],
            1,
        );
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn inst_regs_covers_atomics() {
        let i = Inst::AtomicCas {
            dst: 1,
            space: Space::Global,
            addr: 2,
            cmp: 3,
            val: 4,
        };
        assert_eq!(inst_regs(&i), vec![1, 2, 3, 4]);
    }

    #[test]
    fn error_display_mentions_location() {
        let e = ValidateError::RegOutOfRange {
            at: 7,
            reg: 9,
            num_regs: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("r9"));
    }

    #[test]
    fn shared_const_out_of_bounds_rejected() {
        use crate::ir::builder::KernelBuilder;
        let mut b = KernelBuilder::new("oob");
        let a = b.const_(64);
        let v = b.const_(1);
        b.store_shared(a, v);
        let p = b.finish().unwrap();
        assert!(matches!(
            validate_launch(&p, 64),
            Err(ValidateError::SharedConstOutOfBounds {
                addr: 64,
                shared_words: 64,
                ..
            })
        ));
        assert_eq!(validate_launch(&p, 65), Ok(()));
    }

    #[test]
    fn shared_bounds_check_skips_non_constant_addresses() {
        use crate::ir::builder::KernelBuilder;
        // tid-derived addresses are not statically constant: no verdict.
        let mut b = KernelBuilder::new("dyn");
        let tid = b.tid();
        let big = b.const_(1 << 20);
        let addr = b.add(tid, big);
        let v = b.const_(1);
        b.store_shared(addr, v);
        let p = b.finish().unwrap();
        assert_eq!(validate_launch(&p, 4), Ok(()));
    }

    #[test]
    fn shared_bounds_check_skips_redefined_registers() {
        use crate::ir::Space;
        // r0 is written twice; its value is not statically known even
        // though one of the writes is a large constant.
        let p = prog(
            vec![
                Inst::Const { dst: 0, value: 99 },
                Inst::Const { dst: 0, value: 1 },
                Inst::Store {
                    space: Space::Shared,
                    addr: 0,
                    src: 0,
                },
                Inst::Halt,
            ],
            1,
        );
        assert_eq!(validate_launch(&p, 8), Ok(()));
    }

    #[test]
    fn global_const_addresses_not_bounds_checked() {
        use crate::ir::builder::KernelBuilder;
        // The shared-words budget constrains only Space::Shared.
        let mut b = KernelBuilder::new("glob");
        let a = b.const_(1 << 20);
        let v = b.const_(1);
        b.store_global(a, v);
        let p = b.finish().unwrap();
        assert_eq!(validate_launch(&p, 0), Ok(()));
    }

    #[test]
    fn unreachable_after_backward_jump_rejected() {
        let p = prog(
            vec![
                Inst::Const { dst: 0, value: 0 },
                Inst::Jump { target: 0 },
                Inst::Const { dst: 0, value: 1 }, // unreachable
                Inst::Halt,
            ],
            1,
        );
        assert!(matches!(
            validate_launch(&p, 0),
            Err(ValidateError::UnreachableAfterBackwardJump { at: 2, jump_at: 1 })
        ));
    }

    #[test]
    fn targeted_instruction_after_backward_jump_allowed() {
        // A loop exit branch targets the instruction after the back
        // jump: the classic while-loop shape must pass.
        let p = prog(
            vec![
                Inst::BranchZ { cond: 0, target: 3 },
                Inst::Const { dst: 0, value: 1 },
                Inst::Jump { target: 0 },
                Inst::Halt,
            ],
            1,
        );
        assert_eq!(validate_launch(&p, 0), Ok(()));
    }

    #[test]
    fn builder_loops_pass_launch_validation() {
        use crate::ir::builder::KernelBuilder;
        let mut b = KernelBuilder::new("loop");
        let i = b.reg();
        b.assign_const(i, 0);
        let n = b.const_(5);
        let one = b.const_(1);
        let a = b.const_(3);
        b.while_(
            |k| k.lt_u(i, n),
            |k| {
                let x = k.load_shared(a);
                k.store_shared(a, x);
                k.bin_into(i, super::super::BinOp::Add, i, one);
            },
        );
        let p = b.finish().unwrap();
        assert_eq!(validate_launch(&p, 4), Ok(()));
    }

    #[test]
    fn launch_error_display_texts() {
        let e = ValidateError::SharedConstOutOfBounds {
            at: 3,
            addr: 128,
            shared_words: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("shared[128]") && msg.contains("64"), "{msg}");
        let e = ValidateError::UnreachableAfterBackwardJump { at: 5, jump_at: 4 };
        let msg = e.to_string();
        assert!(msg.contains("unreachable") && msg.contains('5') && msg.contains('4'));
    }
}
