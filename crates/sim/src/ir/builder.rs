//! Structured construction of kernel [`Program`]s.
//!
//! [`KernelBuilder`] offers a CUDA-flavoured API: registers are allocated
//! on demand, arithmetic helpers return fresh registers, and structured
//! control flow (`if_`, `if_else`, `while_`, `for_range`) is lowered to
//! branches with patched targets, so callers never touch instruction
//! indices.
//!
//! # Examples
//!
//! A spinlock-guarded increment (the heart of the paper's running example):
//!
//! ```
//! use wmm_sim::ir::builder::KernelBuilder;
//!
//! let mut b = KernelBuilder::new("incr");
//! let lock = b.const_(0); // word 0 holds the mutex
//! let cell = b.const_(1); // word 1 holds the counter
//! b.spin_lock(lock);
//! let v = b.load_global(cell);
//! let one = b.const_(1);
//! let v1 = b.add(v, one);
//! b.store_global(cell, v1);
//! b.unlock(lock);
//! let program = b.finish().expect("valid kernel");
//! assert!(program.len() > 5);
//! ```

use super::validate::{validate, ValidateError};
use super::{BinOp, FenceLevel, Inst, Program, Reg, Space, SpecialReg};
use crate::word::{from_f32, Word};

/// Incrementally builds a [`Program`]; see the module docs for an example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Inst>,
    next_reg: u32,
}

impl KernelBuilder {
    /// Start a new kernel with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            next_reg: 0,
        }
    }

    /// Allocate a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` registers are allocated.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        assert!(r <= u16::MAX as u32, "register file exhausted");
        r as Reg
    }

    /// Current instruction count (the index the next emitted instruction
    /// will occupy).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    // ---- values ---------------------------------------------------------

    /// `dst ← value` in a fresh register.
    pub fn const_(&mut self, value: Word) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// A float constant, stored as its bit pattern.
    pub fn const_f32(&mut self, value: f32) -> Reg {
        self.const_(from_f32(value))
    }

    /// Copy `src` into a fresh register.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov { dst, src });
        dst
    }

    /// Overwrite an existing register: `dst ← src`.
    pub fn assign(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Overwrite an existing register with a constant.
    pub fn assign_const(&mut self, dst: Reg, value: Word) {
        self.emit(Inst::Const { dst, value });
    }

    fn special(&mut self, sr: SpecialReg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Special { dst, sr });
        dst
    }

    /// `threadIdx.x`.
    pub fn tid(&mut self) -> Reg {
        self.special(SpecialReg::Tid)
    }

    /// `blockIdx.x`.
    pub fn bid(&mut self) -> Reg {
        self.special(SpecialReg::Bid)
    }

    /// `blockDim.x`.
    pub fn block_dim(&mut self) -> Reg {
        self.special(SpecialReg::BlockDim)
    }

    /// `gridDim.x`.
    pub fn grid_dim(&mut self) -> Reg {
        self.special(SpecialReg::GridDim)
    }

    /// The lane index within the warp.
    pub fn lane(&mut self) -> Reg {
        self.special(SpecialReg::Lane)
    }

    /// The global thread id `threadIdx.x + blockIdx.x * blockDim.x`.
    pub fn global_tid(&mut self) -> Reg {
        self.special(SpecialReg::GlobalTid)
    }

    // ---- ALU ------------------------------------------------------------

    /// Emit `dst ← a op b` into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Bin { op, dst, a, b });
        dst
    }

    /// Emit `dst ← a op b` into an existing register.
    pub fn bin_into(&mut self, dst: Reg, op: BinOp, a: Reg, b: Reg) {
        self.emit(Inst::Bin { op, dst, a, b });
    }

    /// Wrapping integer add.
    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    /// Wrapping integer subtract.
    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    /// Wrapping integer multiply.
    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// Unsigned divide.
    pub fn div_u(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::DivU, a, b)
    }

    /// Unsigned remainder.
    pub fn rem_u(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::RemU, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::And, a, b)
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Shr, a, b)
    }

    /// Float add.
    pub fn fadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::FAdd, a, b)
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::FMul, a, b)
    }

    /// `a == b` as 1/0.
    pub fn eq(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::CmpEq, a, b)
    }

    /// `a != b` as 1/0.
    pub fn ne(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::CmpNe, a, b)
    }

    /// Unsigned `a < b` as 1/0.
    pub fn lt_u(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::CmpLtU, a, b)
    }

    /// Unsigned `a <= b` as 1/0.
    pub fn le_u(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::CmpLeU, a, b)
    }

    // ---- memory ---------------------------------------------------------

    /// Load a word from the given memory space.
    pub fn load_in(&mut self, space: Space, addr: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load { dst, space, addr });
        dst
    }

    /// Store a word to the given memory space.
    pub fn store_in(&mut self, space: Space, addr: Reg, src: Reg) {
        self.emit(Inst::Store { space, addr, src });
    }

    /// Load a word from global memory.
    pub fn load_global(&mut self, addr: Reg) -> Reg {
        self.load_in(Space::Global, addr)
    }

    /// Store a word to global memory.
    pub fn store_global(&mut self, addr: Reg, src: Reg) {
        self.store_in(Space::Global, addr, src);
    }

    /// Load a word from shared memory.
    pub fn load_shared(&mut self, addr: Reg) -> Reg {
        self.load_in(Space::Shared, addr)
    }

    /// Store a word to shared memory.
    pub fn store_shared(&mut self, addr: Reg, src: Reg) {
        self.store_in(Space::Shared, addr, src);
    }

    /// `atomicCAS` in the given space, returning the old value.
    pub fn atomic_cas_in(&mut self, space: Space, addr: Reg, cmp: Reg, val: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::AtomicCas {
            dst,
            space,
            addr,
            cmp,
            val,
        });
        dst
    }

    /// `atomicExch` in the given space, returning the old value.
    pub fn atomic_exch_in(&mut self, space: Space, addr: Reg, val: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::AtomicExch {
            dst,
            space,
            addr,
            val,
        });
        dst
    }

    /// `atomicAdd` in the given space, returning the old value.
    pub fn atomic_add_in(&mut self, space: Space, addr: Reg, val: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::AtomicAdd {
            dst,
            space,
            addr,
            val,
        });
        dst
    }

    /// `atomicCAS(&global[addr], cmp, val)`, returning the old value.
    pub fn atomic_cas_global(&mut self, addr: Reg, cmp: Reg, val: Reg) -> Reg {
        self.atomic_cas_in(Space::Global, addr, cmp, val)
    }

    /// `atomicExch(&global[addr], val)`, returning the old value.
    pub fn atomic_exch_global(&mut self, addr: Reg, val: Reg) -> Reg {
        self.atomic_exch_in(Space::Global, addr, val)
    }

    /// `atomicAdd(&global[addr], val)`, returning the old value.
    pub fn atomic_add_global(&mut self, addr: Reg, val: Reg) -> Reg {
        self.atomic_add_in(Space::Global, addr, val)
    }

    /// `atomicCAS(&shared[addr], cmp, val)`, returning the old value.
    /// Shared memory is per-block; on chips with a live shared-space
    /// reorder matrix shared atomics enter the in-flight window like
    /// global ones (still indivisible at completion), otherwise they
    /// complete immediately.
    pub fn atomic_cas_shared(&mut self, addr: Reg, cmp: Reg, val: Reg) -> Reg {
        self.atomic_cas_in(Space::Shared, addr, cmp, val)
    }

    /// `atomicExch(&shared[addr], val)`, returning the old value.
    pub fn atomic_exch_shared(&mut self, addr: Reg, val: Reg) -> Reg {
        self.atomic_exch_in(Space::Shared, addr, val)
    }

    /// `atomicAdd(&shared[addr], val)`, returning the old value.
    pub fn atomic_add_shared(&mut self, addr: Reg, val: Reg) -> Reg {
        self.atomic_add_in(Space::Shared, addr, val)
    }

    /// `__threadfence()` — device-level fence.
    pub fn fence_device(&mut self) {
        self.emit(Inst::Fence(FenceLevel::Device));
    }

    /// `__threadfence_block()` — block-level fence.
    pub fn fence_block(&mut self) {
        self.emit(Inst::Fence(FenceLevel::Block));
    }

    /// `__syncthreads()`.
    pub fn barrier(&mut self) {
        self.emit(Inst::Barrier);
    }

    /// Terminate the thread.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    // ---- structured control flow ---------------------------------------

    /// `if cond != 0 { then }`.
    pub fn if_(&mut self, cond: Reg, then: impl FnOnce(&mut Self)) {
        let br = self.here();
        self.emit(Inst::BranchZ { cond, target: 0 });
        then(self);
        let end = self.here();
        self.patch_target(br, end);
    }

    /// `if cond != 0 { then } else { els }`.
    pub fn if_else(
        &mut self,
        cond: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let br = self.here();
        self.emit(Inst::BranchZ { cond, target: 0 });
        then(self);
        let jmp = self.here();
        self.emit(Inst::Jump { target: 0 });
        let else_start = self.here();
        self.patch_target(br, else_start);
        els(self);
        let end = self.here();
        self.patch_target(jmp, end);
    }

    /// `while { cond ← head(self); cond != 0 } { body }`.
    ///
    /// The `head` closure re-evaluates the condition on every iteration and
    /// returns the register holding it.
    pub fn while_(&mut self, head: impl FnOnce(&mut Self) -> Reg, body: impl FnOnce(&mut Self)) {
        let loop_head = self.here();
        let cond = head(self);
        let br = self.here();
        self.emit(Inst::BranchZ { cond, target: 0 });
        body(self);
        self.emit(Inst::Jump { target: loop_head });
        let end = self.here();
        self.patch_target(br, end);
    }

    /// A counted loop `for i in start..end { body(i) }` over an existing
    /// register `i` (mutated in place; `end` is re-read each iteration).
    pub fn for_range(&mut self, i: Reg, start: Reg, end: Reg, body: impl FnOnce(&mut Self, Reg)) {
        self.assign(i, start);
        let one = self.const_(1);
        self.while_(
            |b| b.lt_u(i, end),
            |b| {
                body(b, i);
                b.bin_into(i, BinOp::Add, i, one);
            },
        );
    }

    /// Spin until `atomicCAS(&global[lock], 0, 1)` succeeds — the paper's
    /// `lock()` function (Fig. 1, line 19).
    pub fn spin_lock(&mut self, lock_addr: Reg) {
        let zero = self.const_(0);
        let one = self.const_(1);
        self.while_(
            |b| {
                let old = b.atomic_cas_global(lock_addr, zero, one);
                b.ne(old, zero)
            },
            |_| {},
        );
    }

    /// `atomicExch(&global[lock], 0)` — the paper's `unlock()` function
    /// (Fig. 1, line 22). Deliberately fence-free: hardening is the job of
    /// the fence-insertion pass.
    pub fn unlock(&mut self, lock_addr: Reg) {
        let zero = self.const_(0);
        let _ = self.atomic_exch_global(lock_addr, zero);
    }

    fn patch_target(&mut self, at: usize, target: usize) {
        match self.insts[at].target_mut() {
            Some(t) => *t = target,
            None => unreachable!("patching a non-branch instruction"),
        }
    }

    /// Finalise the program, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the program is malformed (should not
    /// happen for programs produced purely through the builder API, but
    /// `emit` allows raw instructions).
    pub fn finish(mut self) -> Result<Program, ValidateError> {
        if !matches!(self.insts.last(), Some(Inst::Halt)) {
            self.insts.push(Inst::Halt);
        }
        let program = Program {
            insts: self.insts,
            num_regs: self.next_reg as u16,
            name: self.name,
        };
        validate(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_halt() {
        let mut b = KernelBuilder::new("t");
        let _ = b.const_(1);
        let p = b.finish().unwrap();
        assert!(matches!(p.insts.last(), Some(Inst::Halt)));
    }

    #[test]
    fn if_branches_over_body() {
        let mut b = KernelBuilder::new("t");
        let c = b.const_(0);
        b.if_(c, |b| {
            let _ = b.const_(42);
        });
        let p = b.finish().unwrap();
        // BranchZ target must be past the body.
        let br = p
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::BranchZ { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert!(br <= p.len());
        assert!(br > 1);
    }

    #[test]
    fn while_loops_back() {
        let mut b = KernelBuilder::new("t");
        let i = b.const_(0);
        let n = b.const_(3);
        let one = b.const_(1);
        b.while_(
            |b| b.lt_u(i, n),
            |b| {
                b.bin_into(i, BinOp::Add, i, one);
            },
        );
        let p = b.finish().unwrap();
        let has_back_jump = p
            .insts
            .iter()
            .enumerate()
            .any(|(idx, i)| matches!(i, Inst::Jump { target } if *target < idx));
        assert!(has_back_jump);
    }

    #[test]
    fn spin_lock_contains_cas_loop() {
        let mut b = KernelBuilder::new("t");
        let l = b.const_(0);
        b.spin_lock(l);
        b.unlock(l);
        let p = b.finish().unwrap();
        assert!(p.insts.iter().any(|i| matches!(i, Inst::AtomicCas { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::AtomicExch { .. })));
    }

    #[test]
    fn shared_atomics_carry_the_shared_space() {
        let mut b = KernelBuilder::new("t");
        let a = b.const_(0);
        let z = b.const_(0);
        let one = b.const_(1);
        let _ = b.atomic_cas_shared(a, z, one);
        let _ = b.atomic_exch_shared(a, one);
        let _ = b.atomic_add_shared(a, one);
        let p = b.finish().unwrap();
        let spaces: Vec<Space> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::AtomicCas { space, .. }
                | Inst::AtomicExch { space, .. }
                | Inst::AtomicAdd { space, .. } => Some(*space),
                _ => None,
            })
            .collect();
        assert_eq!(spaces, vec![Space::Shared; 3]);
        assert!(!p.insts.iter().any(Inst::is_global_access));
    }

    #[test]
    fn if_else_produces_both_arms() {
        let mut b = KernelBuilder::new("t");
        let c = b.const_(1);
        b.if_else(
            c,
            |b| {
                let _ = b.const_(10);
            },
            |b| {
                let _ = b.const_(20);
            },
        );
        let p = b.finish().unwrap();
        let consts: Vec<u32> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&10) && consts.contains(&20));
    }

    #[test]
    fn for_range_counts() {
        let mut b = KernelBuilder::new("t");
        let i = b.reg();
        let s = b.const_(2);
        let e = b.const_(5);
        b.for_range(i, s, e, |_, _| {});
        let p = b.finish().unwrap();
        assert!(p.len() > 4);
    }
}
