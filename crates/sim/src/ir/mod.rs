//! The kernel intermediate representation.
//!
//! Kernels for the simulated GPU are small register programs over 32-bit
//! [`Word`]s. The instruction set mirrors the subset of PTX that the
//! paper's case studies exercise: integer and float ALU ops, global and
//! shared loads/stores, the three atomics the applications use
//! (`atomicCAS`, `atomicExch`, `atomicAdd`), block- and device-level
//! memory fences, block barriers, and branches.
//!
//! Programs are built with [`KernelBuilder`](builder::KernelBuilder),
//! checked with [`validate`](validate::validate), pretty-printed via
//! [`Display`](std::fmt::Display), and transformed by the fence passes in
//! [`transform`].

pub mod builder;
pub mod transform;
pub mod validate;

use crate::word::Word;
use std::fmt;

/// A virtual register index. Each thread owns a private register file.
pub type Reg = u16;

/// A memory space of the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Global memory: shared by every thread in the grid; weakly ordered
    /// through the per-thread in-flight window, with contention tracked
    /// per memory channel.
    Global,
    /// Shared memory: per-block scratch with its *own* relaxation level —
    /// on chips with a nonzero shared-space reorder matrix
    /// (`Chip::shared_reorder`) shared accesses flow through the in-flight
    /// window too, pressured by the block's own shared traffic; with the
    /// matrix zeroed the space is strongly ordered and accesses complete
    /// immediately, the pre-scoped behaviour.
    Shared,
}

/// Fence strength, mirroring CUDA's `__threadfence_block` / `__threadfence`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceLevel {
    /// Orders the thread's accesses as observed by its own block.
    Block,
    /// Orders the thread's accesses as observed by the whole device.
    Device,
}

/// Thread-geometry intrinsics (1-D launches, as in all the case studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `threadIdx.x` — the thread's index within its block.
    Tid,
    /// `blockIdx.x` — the block's index within its kernel group.
    Bid,
    /// `blockDim.x` — threads per block.
    BlockDim,
    /// `gridDim.x` — blocks in the kernel group.
    GridDim,
    /// `threadIdx.x % 32` — the thread's lane within its warp.
    Lane,
    /// `threadIdx.x + blockIdx.x * blockDim.x` — the global thread id.
    GlobalTid,
}

/// Two-operand ALU operations. Comparison ops produce 1 or 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping integer add.
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply.
    Mul,
    /// Unsigned divide (b = 0 yields 0, matching GPU semantics of avoiding
    /// traps).
    DivU,
    /// Unsigned remainder (b = 0 yields 0).
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right (shift amount masked to 5 bits).
    Shr,
    /// Minimum, unsigned.
    MinU,
    /// Maximum, unsigned.
    MaxU,
    /// IEEE-754 single-precision add.
    FAdd,
    /// IEEE-754 single-precision subtract.
    FSub,
    /// IEEE-754 single-precision multiply.
    FMul,
    /// IEEE-754 single-precision divide.
    FDiv,
    /// Equal (any bit pattern).
    CmpEq,
    /// Not equal.
    CmpNe,
    /// Unsigned less-than.
    CmpLtU,
    /// Unsigned less-or-equal.
    CmpLeU,
    /// Signed less-than.
    CmpLtS,
    /// Signed less-or-equal.
    CmpLeS,
    /// Float less-than.
    FCmpLt,
}

/// A single IR instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `dst ← value`
    Const { dst: Reg, value: Word },
    /// `dst ← src`
    Mov { dst: Reg, src: Reg },
    /// `dst ← a op b`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst ← special register`
    Special { dst: Reg, sr: SpecialReg },
    /// `dst ← space[addr]` — participates in the weak memory model when
    /// `space` is global.
    Load { dst: Reg, space: Space, addr: Reg },
    /// `space[addr] ← src`
    Store { space: Space, addr: Reg, src: Reg },
    /// `dst ← old; if old == cmp { space[addr] ← val }` — atomic.
    AtomicCas {
        dst: Reg,
        space: Space,
        addr: Reg,
        cmp: Reg,
        val: Reg,
    },
    /// `dst ← old; space[addr] ← val` — atomic.
    AtomicExch {
        dst: Reg,
        space: Space,
        addr: Reg,
        val: Reg,
    },
    /// `dst ← old; space[addr] ← old + val` — atomic, wrapping.
    AtomicAdd {
        dst: Reg,
        space: Space,
        addr: Reg,
        val: Reg,
    },
    /// Memory fence: orders this thread's in-flight accesses.
    Fence(FenceLevel),
    /// Block-wide barrier (`__syncthreads`). Undefined behaviour (detected
    /// and reported) if only part of the block executes it.
    Barrier,
    /// Unconditional jump to an instruction index.
    Jump { target: usize },
    /// Jump to `target` if `cond == 0`.
    BranchZ { cond: Reg, target: usize },
    /// Jump to `target` if `cond != 0`.
    BranchNZ { cond: Reg, target: usize },
    /// Terminate the thread (in-flight accesses still drain).
    Halt,
}

impl Inst {
    /// True if this instruction reads or writes a memory space.
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::AtomicCas { .. }
                | Inst::AtomicExch { .. }
                | Inst::AtomicAdd { .. }
        )
    }

    /// True if this is a *global* memory access — the accesses the paper's
    /// conservative fencing strategy places a fence after.
    pub fn is_global_access(&self) -> bool {
        match self {
            Inst::Load { space, .. }
            | Inst::Store { space, .. }
            | Inst::AtomicCas { space, .. }
            | Inst::AtomicExch { space, .. }
            | Inst::AtomicAdd { space, .. } => *space == Space::Global,
            _ => false,
        }
    }

    /// The memory space this instruction accesses, if it is a memory
    /// access.
    pub fn space(&self) -> Option<Space> {
        match self {
            Inst::Load { space, .. }
            | Inst::Store { space, .. }
            | Inst::AtomicCas { space, .. }
            | Inst::AtomicExch { space, .. }
            | Inst::AtomicAdd { space, .. } => Some(*space),
            _ => None,
        }
    }

    /// The address register of a memory access, if any.
    pub fn addr_reg(&self) -> Option<Reg> {
        match self {
            Inst::Load { addr, .. }
            | Inst::Store { addr, .. }
            | Inst::AtomicCas { addr, .. }
            | Inst::AtomicExch { addr, .. }
            | Inst::AtomicAdd { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// True if this memory access may write its location (stores and
    /// atomics; `AtomicCas` conservatively counts even though it only
    /// writes on a compare hit).
    pub fn may_write(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::AtomicCas { .. }
                | Inst::AtomicExch { .. }
                | Inst::AtomicAdd { .. }
        )
    }

    /// The branch target, if this is a control-flow instruction.
    pub fn target(&self) -> Option<usize> {
        match self {
            Inst::Jump { target }
            | Inst::BranchZ { target, .. }
            | Inst::BranchNZ { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Mutable access to the branch target, if any.
    pub fn target_mut(&mut self) -> Option<&mut usize> {
        match self {
            Inst::Jump { target }
            | Inst::BranchZ { target, .. }
            | Inst::BranchNZ { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// A complete kernel: a flat instruction sequence with resolved branch
/// targets, plus the number of registers each thread needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The instructions; execution begins at index 0 and falls off the end
    /// as an implicit [`Inst::Halt`].
    pub insts: Vec<Inst>,
    /// Registers per thread.
    pub num_regs: u16,
    /// Optional kernel name, used in diagnostics and disassembly.
    pub name: String,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Indices of all global memory accesses (the candidate fence sites of
    /// the paper's conservative fencing strategy).
    pub fn global_access_indices(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_global_access())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of *all* memory accesses, global and shared — the
    /// candidate fence sites of scope-aware fence insertion, where the
    /// cheaper `FenceLevel::Block` rung is admissible after shared
    /// accesses.
    pub fn memory_access_indices(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_memory_access())
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of fence instructions in the program.
    pub fn fence_count(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| matches!(i, Inst::Fence(_)))
            .count()
    }
}

impl fmt::Display for Program {
    /// Disassemble the program in a compact, PTX-flavoured syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {} (regs = {})", self.name, self.num_regs)?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {}", DisplayInst(inst))?;
        }
        Ok(())
    }
}

struct DisplayInst<'a>(&'a Inst);

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn sp(space: Space) -> &'static str {
            match space {
                Space::Global => "global",
                Space::Shared => "shared",
            }
        }
        match self.0 {
            Inst::Const { dst, value } => write!(f, "r{dst} = const {value:#x}"),
            Inst::Mov { dst, src } => write!(f, "r{dst} = r{src}"),
            Inst::Bin { op, dst, a, b } => write!(f, "r{dst} = {op:?}(r{a}, r{b})"),
            Inst::Special { dst, sr } => write!(f, "r{dst} = {sr:?}"),
            Inst::Load { dst, space, addr } => {
                write!(f, "r{dst} = ld.{}[r{addr}]", sp(*space))
            }
            Inst::Store { space, addr, src } => {
                write!(f, "st.{}[r{addr}] = r{src}", sp(*space))
            }
            Inst::AtomicCas {
                dst,
                space,
                addr,
                cmp,
                val,
            } => write!(f, "r{dst} = atom.cas.{}[r{addr}] r{cmp} r{val}", sp(*space)),
            Inst::AtomicExch {
                dst,
                space,
                addr,
                val,
            } => write!(f, "r{dst} = atom.exch.{}[r{addr}] r{val}", sp(*space)),
            Inst::AtomicAdd {
                dst,
                space,
                addr,
                val,
            } => write!(f, "r{dst} = atom.add.{}[r{addr}] r{val}", sp(*space)),
            Inst::Fence(FenceLevel::Block) => write!(f, "fence.block"),
            Inst::Fence(FenceLevel::Device) => write!(f, "fence.device"),
            Inst::Barrier => write!(f, "barrier"),
            Inst::Jump { target } => write!(f, "jump {target}"),
            Inst::BranchZ { cond, target } => write!(f, "brz r{cond} {target}"),
            Inst::BranchNZ { cond, target } => write!(f, "brnz r{cond} {target}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_access_predicate() {
        assert!(Inst::Load {
            dst: 0,
            space: Space::Global,
            addr: 1
        }
        .is_memory_access());
        assert!(Inst::AtomicAdd {
            dst: 0,
            space: Space::Global,
            addr: 1,
            val: 2
        }
        .is_global_access());
        assert!(!Inst::Load {
            dst: 0,
            space: Space::Shared,
            addr: 1
        }
        .is_global_access());
        assert!(!Inst::Barrier.is_memory_access());
    }

    #[test]
    fn display_is_stable() {
        let p = Program {
            insts: vec![
                Inst::Const { dst: 0, value: 7 },
                Inst::Load {
                    dst: 1,
                    space: Space::Global,
                    addr: 0,
                },
                Inst::Fence(FenceLevel::Device),
                Inst::Halt,
            ],
            num_regs: 2,
            name: "demo".into(),
        };
        let text = p.to_string();
        assert!(text.contains(".kernel demo"));
        assert!(text.contains("ld.global"));
        assert!(text.contains("fence.device"));
    }

    #[test]
    fn target_accessors() {
        let mut i = Inst::Jump { target: 3 };
        assert_eq!(i.target(), Some(3));
        *i.target_mut().unwrap() = 9;
        assert_eq!(i.target(), Some(9));
        assert_eq!(Inst::Halt.target(), None);
    }

    #[test]
    fn global_access_indices_found() {
        let p = Program {
            insts: vec![
                Inst::Const { dst: 0, value: 0 },
                Inst::Store {
                    space: Space::Global,
                    addr: 0,
                    src: 0,
                },
                Inst::Store {
                    space: Space::Shared,
                    addr: 0,
                    src: 0,
                },
                Inst::AtomicExch {
                    dst: 1,
                    space: Space::Global,
                    addr: 0,
                    val: 0,
                },
            ],
            num_regs: 2,
            name: String::new(),
        };
        assert_eq!(p.global_access_indices(), vec![1, 3]);
    }
}
