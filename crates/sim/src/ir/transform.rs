//! Fence-oriented program transformations.
//!
//! The paper's fencing strategies are program transformations over a
//! *fence-free* base program:
//!
//! * **cons fences** — a device fence after *every* global memory access
//!   ([`with_all_fences`]), the paper's conservative, safe-but-slow
//!   strategy;
//! * **emp fences** — a fence after a *subset* of accesses
//!   ([`with_fences`]), the output of empirical fence insertion (Alg. 1);
//! * **no fences** — the base program itself, or [`strip_fences`] applied
//!   to an application that shipped with fences (how the paper
//!   manufactured the `-nf` variants).
//!
//! Fence *sites* are identified by the instruction index of the memory
//! access they follow, in the fence-free program. This gives Alg. 1 a
//! stable set to reduce over. Since the static scoped-communication
//! analyzer landed, sites cover *shared*-space accesses too, and
//! [`with_leveled_fences`] can place the cheaper `FenceLevel::Block`
//! rung at a site — the device-only entry points below delegate to it.

use super::validate::validate;
use super::{BinOp, FenceLevel, Inst, Program, SpecialReg};
use crate::ir::Space;

/// The fence sites of a program: instruction indices (in a fence-free
/// program) of memory accesses — global *and* shared — each a candidate
/// location for a trailing fence. Shared-space sites admit the cheaper
/// `FenceLevel::Block` rung via [`with_leveled_fences`].
pub fn fence_sites(p: &Program) -> Vec<usize> {
    p.memory_access_indices()
}

/// Insert a device fence after each instruction index in `sites`.
///
/// `sites` must refer to instruction indices of `p`; duplicates are
/// ignored. Branch targets are remapped so control flow is preserved; a
/// branch that targeted the instruction *after* a site now targets the
/// first instruction after the inserted fence, so fences only execute on
/// paths that execute their memory access.
///
/// # Panics
///
/// Panics if any site index is out of range, or if the transformed
/// program fails validation (a bug in this pass, not in the caller).
pub fn with_fences(p: &Program, sites: &[usize]) -> Program {
    let leveled: Vec<(usize, FenceLevel)> =
        sites.iter().map(|&s| (s, FenceLevel::Device)).collect();
    with_leveled_fences(p, &leveled)
}

/// Insert a fence of the given level after each listed instruction
/// index. Duplicate sites keep the *strongest* requested level (device
/// beats block), so a site never carries two fences.
///
/// # Panics
///
/// As [`with_fences`].
pub fn with_leveled_fences(p: &Program, sites: &[(usize, FenceLevel)]) -> Program {
    for &(s, _) in sites {
        assert!(s < p.insts.len(), "fence site {s} out of range");
    }
    let mut sorted: Vec<(usize, FenceLevel)> = sites.to_vec();
    sorted.sort_unstable_by_key(|&(s, level)| (s, level != FenceLevel::Device));
    sorted.dedup_by_key(|&mut (s, _)| s);

    // new_pos[i] = index of old instruction i in the transformed program.
    let mut new_pos = Vec::with_capacity(p.insts.len() + 1);
    let mut inserted = 0usize;
    let mut site_iter = sorted.iter().peekable();
    for i in 0..p.insts.len() {
        new_pos.push(i + inserted);
        if site_iter.peek().map(|&&(s, _)| s) == Some(i) {
            site_iter.next();
            inserted += 1;
        }
    }
    // Targets may point one-past-the-end (implicit halt).
    new_pos.push(p.insts.len() + inserted);

    let mut insts = Vec::with_capacity(p.insts.len() + sorted.len());
    let mut site_iter = sorted.iter().peekable();
    for (i, inst) in p.insts.iter().enumerate() {
        let mut inst = *inst;
        if let Some(t) = inst.target_mut() {
            *t = new_pos[*t];
        }
        insts.push(inst);
        if site_iter.peek().map(|&&(s, _)| s) == Some(i) {
            let (_, level) = *site_iter.next().unwrap();
            insts.push(Inst::Fence(level));
        }
    }

    let out = Program {
        insts,
        num_regs: p.num_regs,
        name: p.name.clone(),
    };
    validate(&out).expect("fence insertion must preserve validity");
    out
}

/// The paper's conservative strategy: a device fence after every memory
/// access.
pub fn with_all_fences(p: &Program) -> Program {
    with_fences(p, &fence_sites(p))
}

/// Remove every fence instruction, remapping branch targets. This is how
/// the paper manufactured the `-nf` application variants ("The original
/// applications contained fence instructions which we removed", Sec. 4.1).
///
/// A branch that targeted a fence is redirected to the next surviving
/// instruction.
///
/// # Panics
///
/// Panics if the transformed program fails validation (a bug in this
/// pass).
pub fn strip_fences(p: &Program) -> Program {
    // new_pos[i] = index in the stripped program of the first non-fence
    // instruction at old index >= i.
    let mut new_pos = vec![0usize; p.insts.len() + 1];
    let mut kept = 0usize;
    for (i, inst) in p.insts.iter().enumerate() {
        new_pos[i] = kept;
        if !matches!(inst, Inst::Fence(_)) {
            kept += 1;
        }
    }
    new_pos[p.insts.len()] = kept;

    let mut insts = Vec::with_capacity(kept);
    for inst in &p.insts {
        if matches!(inst, Inst::Fence(_)) {
            continue;
        }
        let mut inst = *inst;
        if let Some(t) = inst.target_mut() {
            *t = new_pos[*t];
        }
        insts.push(inst);
    }

    let out = Program {
        insts,
        num_regs: p.num_regs,
        name: p.name.clone(),
    };
    validate(&out).expect("fence stripping must preserve validity");
    out
}

/// Turn a kernel's idle non-zero lanes into **shared-memory stressing
/// threads**: every thread whose lane is not 0 runs a load + store sweep
/// over the `words`-word shared scratchpad at `base` (for `iters`
/// iterations) and halts; lane-0 threads fall through to the original
/// program, whose branch targets are remapped past the prologue.
///
/// This is how scoped litmus campaigns stress a block's shared memory:
/// unlike global-memory stress, shared memory is unreachable from other
/// blocks, so the stressing threads must share the test's block — and the
/// emitted intra-block litmus kernels leave exactly the non-zero lanes
/// idle. The hammered region is disjoint from the test's shared locations
/// (the caller passes `base` past them), so the set of possible test
/// behaviours changes only through the contention factor, never through
/// data interference.
///
/// # Panics
///
/// Panics if `p` contains a block barrier — the stressing lanes halt
/// after their sweep, so a lane-0 thread waiting at a `Barrier` would
/// report a spurious barrier divergence at run time; barrier-free
/// litmus kernels are the intended input. Also panics if the
/// transformed program fails validation (a bug in this pass, not in the
/// caller).
pub fn with_lane_shared_stress(p: &Program, base: u32, words: u32, iters: u32) -> Program {
    assert!(
        !p.insts.iter().any(|i| matches!(i, Inst::Barrier)),
        "with_lane_shared_stress requires a barrier-free kernel: \
         stressing lanes halt early and would diverge at a barrier"
    );
    let words = words.max(1);
    // Fresh registers above the original program's file.
    let r = |k: u16| p.num_regs + k;
    let (r_lane, r_base, r_words, r_iters, r_one, r_i, r_c, r_t, r_off, r_addr, r_v) = (
        r(0),
        r(1),
        r(2),
        r(3),
        r(4),
        r(5),
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
    );
    let mut insts = vec![
        Inst::Special {
            dst: r_lane,
            sr: SpecialReg::Lane,
        },
        // Lane 0 → the original program (prologue length patched below).
        Inst::BranchZ {
            cond: r_lane,
            target: 0,
        },
        Inst::Const {
            dst: r_base,
            value: base,
        },
        Inst::Const {
            dst: r_words,
            value: words,
        },
        Inst::Const {
            dst: r_iters,
            value: iters,
        },
        Inst::Const {
            dst: r_one,
            value: 1,
        },
        Inst::Const { dst: r_i, value: 0 },
    ];
    let loop_head = insts.len();
    insts.extend([
        Inst::Bin {
            op: BinOp::CmpLtU,
            dst: r_c,
            a: r_i,
            b: r_iters,
        },
        Inst::BranchZ {
            cond: r_c,
            target: 0, // patched to the halt below
        },
        // off = (lane + i) % words; addr = base + off — each lane walks
        // the scratchpad from its own offset, mixing loads and stores.
        Inst::Bin {
            op: BinOp::Add,
            dst: r_t,
            a: r_lane,
            b: r_i,
        },
        Inst::Bin {
            op: BinOp::RemU,
            dst: r_off,
            a: r_t,
            b: r_words,
        },
        Inst::Bin {
            op: BinOp::Add,
            dst: r_addr,
            a: r_base,
            b: r_off,
        },
        Inst::Load {
            dst: r_v,
            space: Space::Shared,
            addr: r_addr,
        },
        Inst::Store {
            space: Space::Shared,
            addr: r_addr,
            src: r_v,
        },
        Inst::Bin {
            op: BinOp::Add,
            dst: r_i,
            a: r_i,
            b: r_one,
        },
        Inst::Jump { target: loop_head },
    ]);
    let halt_at = insts.len();
    insts.push(Inst::Halt);
    let prologue = insts.len();
    // Patch the two forward branches now that the prologue is laid out.
    insts[1] = Inst::BranchZ {
        cond: r_lane,
        target: prologue,
    };
    insts[loop_head + 1] = Inst::BranchZ {
        cond: r_c,
        target: halt_at,
    };
    for inst in &p.insts {
        let mut inst = *inst;
        if let Some(t) = inst.target_mut() {
            *t += prologue;
        }
        insts.push(inst);
    }
    let out = Program {
        insts,
        num_regs: p.num_regs + 11,
        name: format!("{}+shm-str", p.name),
    };
    validate(&out).expect("shared-stress lane injection must preserve validity");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::KernelBuilder;

    /// A small kernel with a loop and several global accesses.
    fn sample() -> Program {
        let mut b = KernelBuilder::new("sample");
        let a0 = b.const_(0);
        let a1 = b.const_(64);
        let v = b.load_global(a0);
        b.store_global(a1, v);
        let i = b.const_(0);
        let n = b.const_(3);
        let one = b.const_(1);
        b.while_(
            |b| b.lt_u(i, n),
            |b| {
                let x = b.load_global(a0);
                b.store_global(a1, x);
                b.bin_into(i, crate::ir::BinOp::Add, i, one);
            },
        );
        b.finish().unwrap()
    }

    #[test]
    fn sites_are_memory_accesses() {
        let p = sample();
        let sites = fence_sites(&p);
        assert_eq!(sites.len(), 4);
        for s in sites {
            assert!(p.insts[s].is_memory_access());
        }
    }

    #[test]
    fn all_fences_adds_one_per_site() {
        let p = sample();
        let f = with_all_fences(&p);
        assert_eq!(f.len(), p.len() + fence_sites(&p).len());
        assert_eq!(f.fence_count(), fence_sites(&p).len());
    }

    #[test]
    fn each_fence_follows_its_access() {
        let p = sample();
        let f = with_all_fences(&p);
        for (i, inst) in f.insts.iter().enumerate() {
            if matches!(inst, Inst::Fence(_)) {
                assert!(f.insts[i - 1].is_global_access());
            }
        }
    }

    #[test]
    fn strip_round_trips() {
        let p = sample();
        let stripped = strip_fences(&with_all_fences(&p));
        assert_eq!(stripped, p);
    }

    #[test]
    fn partial_fences_subset() {
        let p = sample();
        let sites = fence_sites(&p);
        let f = with_fences(&p, &sites[..2]);
        assert_eq!(f.fence_count(), 2);
        assert_eq!(strip_fences(&f), p);
    }

    #[test]
    fn empty_site_set_is_identity() {
        let p = sample();
        assert_eq!(with_fences(&p, &[]), p);
    }

    #[test]
    fn duplicate_sites_ignored() {
        let p = sample();
        let sites = fence_sites(&p);
        let f = with_fences(&p, &[sites[0], sites[0]]);
        assert_eq!(f.fence_count(), 1);
    }

    #[test]
    fn loop_still_terminates_after_fencing() {
        // Branch targets must be remapped: the loop back-edge in the
        // sample must still point at the loop head's condition.
        let p = sample();
        let f = with_all_fences(&p);
        // Check all branch targets land on sensible instructions (not
        // out of range — validate covers that — and the program still has
        // exactly one back-jump).
        let back_jumps = f
            .insts
            .iter()
            .enumerate()
            .filter(|(i, inst)| matches!(inst, Inst::Jump { target } if target < i))
            .count();
        assert_eq!(back_jumps, 1);
    }

    #[test]
    fn strip_redirects_branches_to_fences() {
        // Hand-build: jump over a fence.
        let p = Program {
            insts: vec![
                Inst::Jump { target: 2 },
                Inst::Const { dst: 0, value: 1 },
                Inst::Fence(FenceLevel::Device),
                Inst::Halt,
            ],
            num_regs: 1,
            name: "j".into(),
        };
        let s = strip_fences(&p);
        assert_eq!(s.insts[0], Inst::Jump { target: 2 });
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn block_fences_also_stripped() {
        let p = Program {
            insts: vec![
                Inst::Fence(FenceLevel::Block),
                Inst::Fence(FenceLevel::Device),
                Inst::Halt,
            ],
            num_regs: 0,
            name: "f".into(),
        };
        assert_eq!(strip_fences(&p).len(), 1);
    }

    #[test]
    fn shared_stress_lanes_validate_and_preserve_the_original() {
        let p = sample();
        let s = with_lane_shared_stress(&p, 8, 64, 40);
        assert!(validate(&s).is_ok());
        // The original instruction stream survives as a suffix (branch
        // targets shifted by the prologue length).
        let prologue = s.insts.len() - p.insts.len();
        for (i, inst) in p.insts.iter().enumerate() {
            let mut expect = *inst;
            if let Some(t) = expect.target_mut() {
                *t += prologue;
            }
            assert_eq!(s.insts[prologue + i], expect, "inst {i}");
        }
        // The prologue contains the shared-space hammer pair.
        let shared_loads = s.insts[..prologue]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Load {
                        space: Space::Shared,
                        ..
                    }
                )
            })
            .count();
        let shared_stores = s.insts[..prologue]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Store {
                        space: Space::Shared,
                        ..
                    }
                )
            })
            .count();
        assert_eq!((shared_loads, shared_stores), (1, 1));
        assert_eq!(s.num_regs, p.num_regs + 11);
        assert!(s.name.ends_with("+shm-str"));
    }

    #[test]
    fn shared_stress_lanes_execute() {
        use crate::chip::Chip;
        use crate::exec::{Gpu, LaunchSpec};
        // Lane 0 stores a marker to global; other lanes hammer shared.
        let mut b = KernelBuilder::new("probe");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let v = b.const_(7);
            let a = b.const_(0);
            b.store_global(a, v);
        });
        let p = with_lane_shared_stress(&b.finish().unwrap(), 0, 32, 20);
        let mut gpu = Gpu::new(Chip::by_short("K20").unwrap().sequentially_consistent());
        let mut spec = LaunchSpec::app(p, 1, 64, 8);
        spec.shared_words = 32;
        let r = gpu.run(&spec, 3);
        assert!(r.status.is_completed(), "{:?}", r.status);
        assert_eq!(r.word(0), 7);
        // The stress lanes did real work: far more instructions than the
        // lane-0 path alone would execute.
        assert!(r.instructions > 1000, "{}", r.instructions);
    }

    #[test]
    fn shared_accesses_are_fence_sites_too() {
        // Scoped apps are hardenable: shared-space accesses are
        // enumerated as fence sites, admitting the Block rung.
        let mut b = KernelBuilder::new("sh");
        let a = b.const_(0);
        let v = b.load_shared(a);
        b.store_shared(a, v);
        let p = b.finish().unwrap();
        let sites = fence_sites(&p);
        assert_eq!(sites.len(), 2);
        for s in &sites {
            assert!(p.insts[*s].is_memory_access());
            assert!(!p.insts[*s].is_global_access());
        }
    }

    #[test]
    fn leveled_fences_place_the_requested_rungs() {
        let mut b = KernelBuilder::new("lv");
        let a = b.const_(0);
        let g = b.const_(64);
        let v = b.load_shared(a);
        b.store_global(g, v);
        let p = b.finish().unwrap();
        let sites = fence_sites(&p);
        assert_eq!(sites.len(), 2);
        let f = with_leveled_fences(
            &p,
            &[
                (sites[0], FenceLevel::Block),
                (sites[1], FenceLevel::Device),
            ],
        );
        assert_eq!(f.fence_count(), 2);
        let levels: Vec<FenceLevel> = f
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Fence(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(levels, vec![FenceLevel::Block, FenceLevel::Device]);
        assert_eq!(strip_fences(&f), p);
    }

    #[test]
    fn duplicate_leveled_sites_keep_the_stronger_rung() {
        let mut b = KernelBuilder::new("dup");
        let a = b.const_(0);
        let v = b.load_shared(a);
        b.store_shared(a, v);
        let p = b.finish().unwrap();
        let s = fence_sites(&p)[0];
        let f = with_leveled_fences(&p, &[(s, FenceLevel::Block), (s, FenceLevel::Device)]);
        assert_eq!(f.fence_count(), 1);
        assert!(f
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Fence(FenceLevel::Device))));
    }
}
