//! Fence-oriented program transformations.
//!
//! The paper's fencing strategies are program transformations over a
//! *fence-free* base program:
//!
//! * **cons fences** — a device fence after *every* global memory access
//!   ([`with_all_fences`]), the paper's conservative, safe-but-slow
//!   strategy;
//! * **emp fences** — a fence after a *subset* of accesses
//!   ([`with_fences`]), the output of empirical fence insertion (Alg. 1);
//! * **no fences** — the base program itself, or [`strip_fences`] applied
//!   to an application that shipped with fences (how the paper
//!   manufactured the `-nf` variants).
//!
//! Fence *sites* are identified by the instruction index of the global
//! access they follow, in the fence-free program. This gives Alg. 1 a
//! stable set to reduce over.

use super::validate::validate;
use super::{FenceLevel, Inst, Program};

/// The fence sites of a program: instruction indices (in a fence-free
/// program) of global memory accesses, each a candidate location for a
/// trailing device fence.
pub fn fence_sites(p: &Program) -> Vec<usize> {
    p.global_access_indices()
}

/// Insert a device fence after each instruction index in `sites`.
///
/// `sites` must refer to instruction indices of `p`; duplicates are
/// ignored. Branch targets are remapped so control flow is preserved; a
/// branch that targeted the instruction *after* a site now targets the
/// first instruction after the inserted fence, so fences only execute on
/// paths that execute their memory access.
///
/// # Panics
///
/// Panics if any site index is out of range, or if the transformed
/// program fails validation (a bug in this pass, not in the caller).
pub fn with_fences(p: &Program, sites: &[usize]) -> Program {
    for &s in sites {
        assert!(s < p.insts.len(), "fence site {s} out of range");
    }
    let mut sorted: Vec<usize> = sites.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    // new_pos[i] = index of old instruction i in the transformed program.
    let mut new_pos = Vec::with_capacity(p.insts.len() + 1);
    let mut inserted = 0usize;
    let mut site_iter = sorted.iter().peekable();
    for i in 0..p.insts.len() {
        new_pos.push(i + inserted);
        if site_iter.peek() == Some(&&i) {
            site_iter.next();
            inserted += 1;
        }
    }
    // Targets may point one-past-the-end (implicit halt).
    new_pos.push(p.insts.len() + inserted);

    let mut insts = Vec::with_capacity(p.insts.len() + sorted.len());
    let mut site_iter = sorted.iter().peekable();
    for (i, inst) in p.insts.iter().enumerate() {
        let mut inst = *inst;
        if let Some(t) = inst.target_mut() {
            *t = new_pos[*t];
        }
        insts.push(inst);
        if site_iter.peek() == Some(&&i) {
            site_iter.next();
            insts.push(Inst::Fence(FenceLevel::Device));
        }
    }

    let out = Program {
        insts,
        num_regs: p.num_regs,
        name: p.name.clone(),
    };
    validate(&out).expect("fence insertion must preserve validity");
    out
}

/// The paper's conservative strategy: a device fence after every global
/// memory access.
pub fn with_all_fences(p: &Program) -> Program {
    with_fences(p, &fence_sites(p))
}

/// Remove every fence instruction, remapping branch targets. This is how
/// the paper manufactured the `-nf` application variants ("The original
/// applications contained fence instructions which we removed", Sec. 4.1).
///
/// A branch that targeted a fence is redirected to the next surviving
/// instruction.
///
/// # Panics
///
/// Panics if the transformed program fails validation (a bug in this
/// pass).
pub fn strip_fences(p: &Program) -> Program {
    // new_pos[i] = index in the stripped program of the first non-fence
    // instruction at old index >= i.
    let mut new_pos = vec![0usize; p.insts.len() + 1];
    let mut kept = 0usize;
    for (i, inst) in p.insts.iter().enumerate() {
        new_pos[i] = kept;
        if !matches!(inst, Inst::Fence(_)) {
            kept += 1;
        }
    }
    new_pos[p.insts.len()] = kept;

    let mut insts = Vec::with_capacity(kept);
    for inst in &p.insts {
        if matches!(inst, Inst::Fence(_)) {
            continue;
        }
        let mut inst = *inst;
        if let Some(t) = inst.target_mut() {
            *t = new_pos[*t];
        }
        insts.push(inst);
    }

    let out = Program {
        insts,
        num_regs: p.num_regs,
        name: p.name.clone(),
    };
    validate(&out).expect("fence stripping must preserve validity");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::KernelBuilder;
    use crate::ir::Space;

    /// A small kernel with a loop and several global accesses.
    fn sample() -> Program {
        let mut b = KernelBuilder::new("sample");
        let a0 = b.const_(0);
        let a1 = b.const_(64);
        let v = b.load_global(a0);
        b.store_global(a1, v);
        let i = b.const_(0);
        let n = b.const_(3);
        let one = b.const_(1);
        b.while_(
            |b| b.lt_u(i, n),
            |b| {
                let x = b.load_global(a0);
                b.store_global(a1, x);
                b.bin_into(i, crate::ir::BinOp::Add, i, one);
            },
        );
        b.finish().unwrap()
    }

    #[test]
    fn sites_are_global_accesses() {
        let p = sample();
        let sites = fence_sites(&p);
        assert_eq!(sites.len(), 4);
        for s in sites {
            assert!(p.insts[s].is_global_access());
        }
    }

    #[test]
    fn all_fences_adds_one_per_site() {
        let p = sample();
        let f = with_all_fences(&p);
        assert_eq!(f.len(), p.len() + fence_sites(&p).len());
        assert_eq!(f.fence_count(), fence_sites(&p).len());
    }

    #[test]
    fn each_fence_follows_its_access() {
        let p = sample();
        let f = with_all_fences(&p);
        for (i, inst) in f.insts.iter().enumerate() {
            if matches!(inst, Inst::Fence(_)) {
                assert!(f.insts[i - 1].is_global_access());
            }
        }
    }

    #[test]
    fn strip_round_trips() {
        let p = sample();
        let stripped = strip_fences(&with_all_fences(&p));
        assert_eq!(stripped, p);
    }

    #[test]
    fn partial_fences_subset() {
        let p = sample();
        let sites = fence_sites(&p);
        let f = with_fences(&p, &sites[..2]);
        assert_eq!(f.fence_count(), 2);
        assert_eq!(strip_fences(&f), p);
    }

    #[test]
    fn empty_site_set_is_identity() {
        let p = sample();
        assert_eq!(with_fences(&p, &[]), p);
    }

    #[test]
    fn duplicate_sites_ignored() {
        let p = sample();
        let sites = fence_sites(&p);
        let f = with_fences(&p, &[sites[0], sites[0]]);
        assert_eq!(f.fence_count(), 1);
    }

    #[test]
    fn loop_still_terminates_after_fencing() {
        // Branch targets must be remapped: the loop back-edge in the
        // sample must still point at the loop head's condition.
        let p = sample();
        let f = with_all_fences(&p);
        // Check all branch targets land on sensible instructions (not
        // out of range — validate covers that — and the program still has
        // exactly one back-jump).
        let back_jumps = f
            .insts
            .iter()
            .enumerate()
            .filter(|(i, inst)| matches!(inst, Inst::Jump { target } if target < i))
            .count();
        assert_eq!(back_jumps, 1);
    }

    #[test]
    fn strip_redirects_branches_to_fences() {
        // Hand-build: jump over a fence.
        let p = Program {
            insts: vec![
                Inst::Jump { target: 2 },
                Inst::Const { dst: 0, value: 1 },
                Inst::Fence(FenceLevel::Device),
                Inst::Halt,
            ],
            num_regs: 1,
            name: "j".into(),
        };
        let s = strip_fences(&p);
        assert_eq!(s.insts[0], Inst::Jump { target: 2 });
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn block_fences_also_stripped() {
        let p = Program {
            insts: vec![
                Inst::Fence(FenceLevel::Block),
                Inst::Fence(FenceLevel::Device),
                Inst::Halt,
            ],
            num_regs: 0,
            name: "f".into(),
        };
        assert_eq!(strip_fences(&p).len(), 1);
    }

    #[test]
    fn sample_accesses_in_space() {
        // Shared accesses are never fence sites.
        let mut b = KernelBuilder::new("sh");
        let a = b.const_(0);
        let v = b.load_shared(a);
        b.store_shared(a, v);
        let p = b.finish().unwrap();
        assert!(fence_sites(&p).is_empty());
        assert!(p.insts.iter().any(|i| matches!(
            i,
            Inst::Load {
                space: Space::Shared,
                ..
            }
        )));
    }
}
