//! Per-chip microarchitectural profiles.
//!
//! The paper studies seven NVIDIA GPUs (Tab. 1). Each chip exhibits a
//! different weak-memory personality: which reorderings occur, how often,
//! with what sensitivity to memory-system contention, and with what
//! structural quirks (critical patch size, effective access sequences, the
//! GTX 980's ambient-MP noise). NVIDIA has never documented the
//! microarchitectural causes, so — as laid out in DESIGN.md — these
//! profiles *encode the paper's observations as parameters* and let the
//! black-box tuning pipeline rediscover them, exactly as the paper's
//! methodology does on silicon.
//!
//! The profile parameters fall into three groups:
//!
//! 1. **Structure**: patch (cache-line) size in words, memory channel
//!    count, occupancy, in-flight window depth.
//! 2. **Reordering**: per-[`ReorderKind`] base probability (native runs)
//!    and stress gain (how strongly channel contention amplifies the
//!    reordering), plus contention-model coefficients.
//! 3. **Cost**: instruction timing, fence stall, clock and power for the
//!    runtime/energy study of Sec. 6.

use crate::seq::AccessSeq;
use crate::topology::{L1Params, Topology};

/// The three NVIDIA architectures spanned by Tab. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Tesla C2050 / C2075.
    Fermi,
    /// GTX 770, Tesla K20, GTX Titan, Quadro K5200.
    Kepler,
    /// GTX 980.
    Maxwell,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Arch::Fermi => "Fermi",
            Arch::Kepler => "Kepler",
            Arch::Maxwell => "Maxwell",
        };
        write!(f, "{s}")
    }
}

/// The four single-thread reorderings the memory model can exhibit,
/// classified by the kinds of the (older, younger) operation pair, with
/// the litmus idiom each one witnesses:
///
/// * `StSt` — a younger store becomes visible before an older store
///   (message-passing, writer side);
/// * `LdLd` — a younger load reads memory before an older load
///   (message-passing, reader side);
/// * `StLd` — a younger load completes before an older store
///   (store buffering);
/// * `LdSt` — a younger store becomes visible before an older load
///   completes (load buffering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderKind {
    /// Store–store reordering (MP writer side).
    StSt = 0,
    /// Load–load reordering (MP reader side).
    LdLd = 1,
    /// Store–load reordering (SB).
    StLd = 2,
    /// Load–store reordering (LB).
    LdSt = 3,
}

impl ReorderKind {
    /// All four kinds, in index order.
    pub const ALL: [ReorderKind; 4] = [
        ReorderKind::StSt,
        ReorderKind::LdLd,
        ReorderKind::StLd,
        ReorderKind::LdSt,
    ];

    /// The index used into the per-kind parameter arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Per-kind reorder probabilities: `base` applies natively; under stress
/// the probability becomes `base + gain * chi` where `chi ∈ [0, 1]` is the
/// contention factor computed by the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderRates {
    /// Native (unstressed) per-opportunity probability, per kind.
    pub base: [f64; 4],
    /// Stress amplification, per kind.
    pub gain: [f64; 4],
}

/// A complete chip profile. Construct via [`Chip::all`] or
/// [`Chip::by_short`]; fields are public because the profile is a passive
/// parameter record consumed throughout the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    /// Marketing name, e.g. `"GTX Titan"`.
    pub name: &'static str,
    /// The paper's short name, e.g. `"Titan"`.
    pub short: &'static str,
    /// Architecture generation.
    pub arch: Arch,
    /// Release year (Tab. 1).
    pub released: u16,

    // -- structure --------------------------------------------------------
    /// Critical patch size in words (Tab. 2): accesses within one patch
    /// (line) are never reordered with each other.
    pub patch_words: u32,
    /// Number of memory channels; a line maps to channel
    /// `line % channels`. Contention is tracked per channel.
    pub channels: u32,
    /// Maximum concurrently-resident threads (scaled down ~50× from real
    /// occupancies so a run simulates in microseconds; see DESIGN.md).
    pub max_concurrent_threads: u32,
    /// L2 cache size in words, scaled with occupancy — the scratchpad
    /// size the `cache-str` strategy allocates (Sec. 4.2).
    pub l2_scaled_words: u32,
    /// Per-thread in-flight memory window depth.
    pub window: usize,
    /// Probability that the window head completes on a given drain turn.
    pub drain_q: f64,
    /// Cluster/SM layout. Every launched block is deterministically
    /// assigned a home SM (round-robin over the launch order); the home
    /// SM's private L1 is what [`Chip::l1`] parameterises.
    pub topology: Topology,
    /// The per-SM L1 staleness channel. All-zero rates mean the L1 is
    /// *coherent*: global loads always see the latest completed store and
    /// the execution engine skips the channel entirely (the pre-topology
    /// behaviour, bit for bit). The Tesla-class Fermi boards (C2075,
    /// C2050) ship incoherent L1s — the paper's structural explanation
    /// for `CoRR` going weak on them.
    pub l1: L1Params,

    // -- reordering -------------------------------------------------------
    /// Base and stress-amplified reorder probabilities for global-space
    /// accesses.
    pub reorder: ReorderRates,
    /// Base and stress-amplified reorder probabilities for *shared-space*
    /// accesses — the second level of the scope hierarchy. Shared memory
    /// is per-block, so its contention factor comes from the block's own
    /// shared-memory traffic (see `exec`), not from the global channel
    /// trackers. All-zero rates mean the chip's shared memory is strongly
    /// ordered and shared accesses complete immediately, exactly as they
    /// did before the scoped relaxation engine existed.
    pub shared_reorder: ReorderRates,
    /// Half-saturation constant of the per-block shared-memory pressure
    /// (the shared analogue of [`Chip::pressure_half`], much smaller
    /// because a single block's scratchpad traffic is far lighter than a
    /// memory channel's).
    pub shared_pressure_half: f64,
    /// Raw per-block shared pressure below which the shared contention
    /// factor is exactly zero. A scoped litmus test's own handful of
    /// accesses can never reach the floor, so without dedicated
    /// shared-space stressing the shared χ is identically zero and
    /// (with zero shared base rates) scoped shapes cannot go weak.
    pub shared_pressure_floor: f64,
    /// Weight of the access-sequence resonance (signature cosine) in chi.
    pub k_resonance: f64,
    /// Constant mix-gated term in chi.
    pub k_const: f64,
    /// Per-kind weight of saturated read pressure in chi.
    pub k_read: [f64; 4],
    /// Per-kind weight of saturated write pressure in chi.
    pub k_write: [f64; 4],
    /// Read-bias β of the geometric pressure mix `r̂^β · ŵ^(1−β)`:
    /// chips preferring load-heavy stress sequences have β > ½.
    pub read_bias: f64,
    /// Exponent applied to the pressure mix: controls how steeply
    /// effectiveness falls as stress spreads over more locations (the
    /// sharpness of Fig. 4's U-shape; the 980's curve is the sharpest).
    pub gate_exp: f64,
    /// Pressure half-saturation constant (`x̂ = x / (x + half)`).
    pub pressure_half: f64,
    /// Over-concentration knee: when a channel's total pressure exceeds
    /// this, effectiveness is throttled (too many threads serialising on
    /// one location) — why a spread of one loses to a spread of two.
    pub overload_pressure: f64,
    /// Exponential decay time-constant of channel pressure, in scheduler
    /// turns.
    pub pressure_tau: f64,
    /// The access sequence this chip resonates with (Tab. 2's most
    /// effective sequence; calibration target).
    pub preferred_seq: AccessSeq,
    /// Unit-normalised extended signature of `preferred_seq` (see
    /// [`AccessSeq::signature8`]).
    pub resonance: [f64; 8],

    // -- quirks (GTX 980; Sec. 3.2) ---------------------------------------
    /// Ambient MP-kind reorder probability added regardless of stress.
    pub ambient_mp: f64,
    /// MP-kind contention boost is suppressed when the two locations are
    /// closer than this many words (980: 256).
    pub mp_min_dist_words: u32,
    /// LB-kind boost applies broadband (any stressed channel) when the
    /// location distance in words falls in this half-open range.
    pub lb_broadband: Option<(u32, u32)>,

    // -- cost model (Sec. 6) ----------------------------------------------
    /// Turns a device fence stalls at the window head before completing.
    pub fence_stall: u32,
    /// Turns a block fence stalls (cheaper than a device fence).
    pub block_fence_stall: u32,
    /// Simulated core clock, GHz (converts cycles to milliseconds).
    pub clock_ghz: f64,
    /// Board power draw while a kernel runs, watts.
    pub power_watts: f64,
    /// Whether NVML power queries are supported (K5200, Titan, K20, C2075
    /// only — Sec. 6); energy is only reported for these chips.
    pub supports_power: bool,
}

impl Chip {
    /// The seven chips of Tab. 1, in the paper's order (newest first).
    pub fn all() -> Vec<Chip> {
        vec![
            gtx_980(),
            k5200(),
            titan(),
            k20(),
            gtx_770(),
            c2075(),
            c2050(),
        ]
    }

    /// Look a chip up by its paper short name (`"980"`, `"K5200"`,
    /// `"Titan"`, `"K20"`, `"770"`, `"C2075"`, `"C2050"`).
    pub fn by_short(short: &str) -> Option<Chip> {
        Chip::all().into_iter().find(|c| c.short == short)
    }

    /// The memory line ("patch") containing a word address.
    #[inline]
    pub fn line_of(&self, addr: u32) -> u32 {
        addr / self.patch_words
    }

    /// The channel a word address maps to.
    #[inline]
    pub fn channel_of(&self, addr: u32) -> u32 {
        self.line_of(addr) % self.channels
    }

    /// The paper's tuned systematic-stress parameters for this chip
    /// (Tab. 2): (critical patch size, most effective sequence, spread).
    pub fn paper_tuning(&self) -> (u32, AccessSeq, u32) {
        (self.patch_words, self.preferred_seq.clone(), 2)
    }

    /// True if this chip's shared memory is weakly ordered: any nonzero
    /// shared-space reorder rate routes shared accesses through the
    /// in-flight window. When false, shared accesses complete immediately
    /// (the pre-scoped-engine behaviour, bit for bit).
    pub fn shared_weak(&self) -> bool {
        self.shared_reorder
            .base
            .iter()
            .chain(self.shared_reorder.gain.iter())
            .any(|&r| r > 0.0)
    }

    /// True if this chip's per-SM L1s are incoherent: any nonzero
    /// staleness rate makes global loads consult the home SM's L1,
    /// which may serve a stale line. When false, the execution engine
    /// allocates no L1 state and draws no L1 randomness — loads read
    /// straight from memory (the pre-topology behaviour, bit for bit).
    pub fn l1_weak(&self) -> bool {
        self.l1.weak()
    }

    /// This chip with every weak-memory knob zeroed: global *and*
    /// shared-space reorder matrices, the incoherent-L1 staleness
    /// rates, plus the 980's ambient-MP quirk. Under the resulting
    /// profile the simulator is sequentially consistent in both memory
    /// spaces and every L1 is coherent — the canonical way to build an
    /// SC control chip (hand-zeroing only `reorder` would leave the
    /// shared-space matrix and the L1 channel live).
    pub fn sequentially_consistent(mut self) -> Chip {
        self.reorder = ReorderRates {
            base: [0.0; 4],
            gain: [0.0; 4],
        };
        self.shared_reorder = ReorderRates {
            base: [0.0; 4],
            gain: [0.0; 4],
        };
        self.l1.stale_base = 0.0;
        self.l1.stale_gain = 0.0;
        self.ambient_mp = 0.0;
        self
    }
}

fn seq(s: &str) -> AccessSeq {
    s.parse().expect("chip profile sequence literal")
}

fn resonance_of(s: &AccessSeq) -> [f64; 8] {
    s.signature8()
}

/// Shared Kepler-generation defaults; per-chip constructors adjust.
#[allow(clippy::too_many_arguments)]
fn base_chip(
    name: &'static str,
    short: &'static str,
    arch: Arch,
    released: u16,
    patch_words: u32,
    preferred: &str,
) -> Chip {
    let preferred_seq = seq(preferred);
    let resonance = resonance_of(&preferred_seq);
    Chip {
        name,
        short,
        arch,
        released,
        patch_words,
        channels: 8,
        max_concurrent_threads: 512,
        l2_scaled_words: match arch {
            Arch::Fermi => 1536,
            Arch::Kepler => 3072,
            Arch::Maxwell => 4096,
        },
        window: 6,
        drain_q: 0.30,
        // Two clusters of four SMs each, eight resident blocks per SM —
        // the same ~50× occupancy scaling as `max_concurrent_threads`.
        topology: Topology::uniform(2, 4, 8),
        // Coherent L1 by default: zero staleness rates. The structural
        // knobs (capacity, TTL, pressure curve) are shared across chips;
        // only the Fermi Tesla boards switch the rates on.
        l1: L1Params {
            stale_base: 0.0,
            stale_gain: 0.0,
            words: 512,
            ttl_turns: 4000,
            pressure_half: 48.0,
            pressure_floor: 24.0,
            pressure_tau: 96.0,
        },
        reorder: ReorderRates {
            base: [3e-5, 2e-5, 6e-5, 1.5e-5],
            gain: [0.60, 0.48, 0.68, 0.40],
        },
        // Shared-space relaxation: zero base rates (a quiescent block's
        // scratchpad never reorders on its own) with stress gains below
        // the global ones — intra-block forwarding paths are shorter.
        shared_reorder: ReorderRates {
            base: [0.0; 4],
            gain: [0.50, 0.40, 0.55, 0.32],
        },
        shared_pressure_half: 48.0,
        shared_pressure_floor: 24.0,
        k_resonance: 0.80,
        k_const: 0.12,
        k_read: [0.00, 0.10, 0.08, 0.03],
        k_write: [0.10, 0.00, 0.03, 0.08],
        read_bias: 0.5,
        gate_exp: 2.2,
        pressure_half: 280.0,
        overload_pressure: 1400.0,
        pressure_tau: 96.0,
        preferred_seq,
        resonance,
        ambient_mp: 0.0,
        mp_min_dist_words: 0,
        lb_broadband: None,
        fence_stall: 14,
        block_fence_stall: 4,
        clock_ghz: 0.85,
        power_watts: 200.0,
        supports_power: false,
    }
}

fn gtx_980() -> Chip {
    let mut c = base_chip("GTX 980", "980", Arch::Maxwell, 2014, 64, "ld4 st");
    c.read_bias = 0.78; // Maxwell resonates with load-heavy stress.
    c.gate_exp = 2.8; // sharp spread peak (Fig. 4, left)
    c.reorder.base = [1.2e-5, 1.0e-5, 3e-5, 1.2e-5];
    c.reorder.gain = [0.40, 0.30, 0.50, 0.44];
    c.shared_reorder.gain = [0.34, 0.28, 0.38, 0.26]; // Maxwell's tighter SMEM pipe
    c.ambient_mp = 6e-4;
    c.mp_min_dist_words = 256;
    c.lb_broadband = Some((64, 128));
    c.fence_stall = 10;
    c.clock_ghz = 1.13;
    c.power_watts = 165.0;
    c
}

fn k5200() -> Chip {
    let mut c = base_chip("Quadro K5200", "K5200", Arch::Kepler, 2014, 32, "ld3 st ld");
    c.read_bias = 0.68;
    c.fence_stall = 12;
    c.clock_ghz = 0.77;
    c.power_watts = 150.0;
    c.supports_power = true;
    c
}

fn titan() -> Chip {
    let mut c = base_chip("GTX Titan", "Titan", Arch::Kepler, 2013, 32, "ld st2 ld");
    // Titan revealed errors most frequently in the paper's hardening runs
    // (Sec. 5.2): slightly higher stress gains.
    c.reorder.gain = [0.72, 0.56, 0.76, 0.48];
    c.fence_stall = 12;
    c.clock_ghz = 0.84;
    c.power_watts = 250.0;
    c.supports_power = true;
    c
}

fn k20() -> Chip {
    let mut c = base_chip("Tesla K20", "K20", Arch::Kepler, 2013, 32, "ld st2 ld");
    c.fence_stall = 16;
    c.clock_ghz = 0.71;
    c.power_watts = 225.0;
    c.supports_power = true;
    c
}

fn gtx_770() -> Chip {
    let mut c = base_chip("GTX 770", "770", Arch::Kepler, 2013, 32, "st2 ld2");
    // The 770 shows native errors (cbe-ht, Tab. 5) and finds off-by-one
    // fences (Sec. 5.2): elevated base rates and a shallow window.
    c.reorder.base = [4e-4, 6e-5, 3e-4, 3e-5];
    c.read_bias = 0.45;
    c.window = 3;
    c.fence_stall = 40;
    c.clock_ghz = 1.05;
    c.power_watts = 230.0;
    c
}

fn c2075() -> Chip {
    let mut c = base_chip("Tesla C2075", "C2075", Arch::Fermi, 2011, 64, "ld st");
    // Fermi: native ls-bh errors observed (Tab. 5); fences very costly;
    // the oldest shared-memory datapath relaxes the most under pressure.
    c.reorder.base = [2e-4, 5e-5, 2e-4, 2.5e-5];
    c.shared_reorder.gain = [0.58, 0.46, 0.64, 0.38];
    // Fermi's per-SM L1s are incoherent: under cross-SM write pressure a
    // global load may hit a stale line, which is what flips CoRR weak on
    // the Tesla boards (zero stale_base keeps native runs coherent — the
    // channel is pressure-provoked, like every other stress channel).
    c.l1.stale_gain = 0.60;
    c.fence_stall = 60;
    c.clock_ghz = 0.57;
    c.power_watts = 225.0;
    c.supports_power = true;
    c
}

fn c2050() -> Chip {
    let mut c = base_chip("Tesla C2050", "C2050", Arch::Fermi, 2010, 64, "ld st");
    c.reorder.base = [1.2e-4, 4e-5, 1.5e-4, 2e-5];
    c.shared_reorder.gain = [0.58, 0.46, 0.64, 0.38];
    c.l1.stale_gain = 0.55; // incoherent L1, slightly tamer than the C2075
    c.fence_stall = 60;
    c.clock_ghz = 0.57;
    c.power_watts = 238.0;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_chips_match_table_1() {
        let chips = Chip::all();
        assert_eq!(chips.len(), 7);
        let shorts: Vec<&str> = chips.iter().map(|c| c.short).collect();
        assert_eq!(
            shorts,
            vec!["980", "K5200", "Titan", "K20", "770", "C2075", "C2050"]
        );
    }

    #[test]
    fn patch_sizes_match_table_2() {
        for (short, patch) in [
            ("980", 64),
            ("K5200", 32),
            ("Titan", 32),
            ("K20", 32),
            ("770", 32),
            ("C2075", 64),
            ("C2050", 64),
        ] {
            assert_eq!(Chip::by_short(short).unwrap().patch_words, patch, "{short}");
        }
    }

    #[test]
    fn sequences_match_table_2() {
        for (short, s) in [
            ("980", "ld4 st"),
            ("K5200", "ld3 st ld"),
            ("Titan", "ld st2 ld"),
            ("K20", "ld st2 ld"),
            ("770", "st2 ld2"),
            ("C2075", "ld st"),
            ("C2050", "ld st"),
        ] {
            assert_eq!(
                Chip::by_short(short).unwrap().preferred_seq.to_string(),
                s,
                "{short}"
            );
        }
    }

    #[test]
    fn power_support_matches_section_6() {
        // "Only K5200, Titan, K20, and C2075 support power queries."
        for c in Chip::all() {
            let expect = matches!(c.short, "K5200" | "Titan" | "K20" | "C2075");
            assert_eq!(c.supports_power, expect, "{}", c.short);
        }
    }

    #[test]
    fn line_and_channel_mapping() {
        let c = Chip::by_short("Titan").unwrap();
        assert_eq!(c.patch_words, 32);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(31), 0);
        assert_eq!(c.line_of(32), 1);
        assert_eq!(c.channel_of(0), 0);
        assert_eq!(c.channel_of(32), 1);
        assert_eq!(c.channel_of(32 * 8), 0);
    }

    #[test]
    fn resonance_is_unit_or_zero() {
        for c in Chip::all() {
            let n: f64 = c.resonance.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-9, "{}: {:?}", c.short, c.resonance);
        }
    }

    #[test]
    fn fermi_fences_cost_more_than_kepler() {
        let k20 = Chip::by_short("K20").unwrap();
        let c2075 = Chip::by_short("C2075").unwrap();
        assert!(c2075.fence_stall > k20.fence_stall);
    }

    #[test]
    fn by_short_unknown_is_none() {
        assert!(Chip::by_short("H100").is_none());
    }

    #[test]
    fn every_chip_relaxes_shared_memory_under_stress_only() {
        // Per-space matrix: every profile has zero shared base rates
        // (quiescent shared memory is strongly ordered) but nonzero
        // shared stress gains, so shared weakness is stress-provoked.
        for c in Chip::all() {
            assert!(c.shared_weak(), "{}", c.short);
            assert_eq!(c.shared_reorder.base, [0.0; 4], "{}", c.short);
            assert!(
                c.shared_reorder.gain.iter().all(|&g| g > 0.0),
                "{}",
                c.short
            );
            // Intra-block forwarding is shorter than the global path.
            for (s, g) in c.shared_reorder.gain.iter().zip(c.reorder.gain.iter()) {
                assert!(s < g, "{}: shared gain {s} >= global gain {g}", c.short);
            }
            assert!(c.shared_pressure_floor > 0.0, "{}", c.short);
        }
    }

    #[test]
    fn sequentially_consistent_zeroes_both_spaces() {
        for c in Chip::all() {
            let sc = c.sequentially_consistent();
            assert_eq!(sc.reorder.base, [0.0; 4], "{}", sc.short);
            assert_eq!(sc.reorder.gain, [0.0; 4], "{}", sc.short);
            assert_eq!(sc.shared_reorder.base, [0.0; 4], "{}", sc.short);
            assert_eq!(sc.shared_reorder.gain, [0.0; 4], "{}", sc.short);
            assert_eq!(sc.ambient_mp, 0.0, "{}", sc.short);
            assert!(!sc.shared_weak(), "{}", sc.short);
            assert_eq!(sc.l1.stale_base, 0.0, "{}", sc.short);
            assert_eq!(sc.l1.stale_gain, 0.0, "{}", sc.short);
            assert!(!sc.l1_weak(), "{}", sc.short);
        }
    }

    #[test]
    fn only_fermi_teslas_have_incoherent_l1s() {
        // The paper's structural story: CoRR goes weak on the Tesla
        // boards because their per-SM L1s are incoherent; the Kepler
        // and Maxwell consumer/HPC parts read-coherently through L2.
        for c in Chip::all() {
            let expect = matches!(c.short, "C2075" | "C2050");
            assert_eq!(c.l1_weak(), expect, "{}", c.short);
            // Like the shared channel, staleness is stress-provoked
            // only: zero base rate on every profile.
            assert_eq!(c.l1.stale_base, 0.0, "{}", c.short);
            assert!(c.l1.pressure_floor > 0.0, "{}", c.short);
        }
        let c2075 = Chip::by_short("C2075").unwrap();
        let c2050 = Chip::by_short("C2050").unwrap();
        assert!(c2075.l1.stale_gain > c2050.l1.stale_gain);
    }

    #[test]
    fn every_chip_has_a_uniform_topology() {
        for c in Chip::all() {
            assert!(c.topology.total_sms() > 1, "{}", c.short);
            assert!(
                c.topology.capacity_blocks() >= c.topology.total_sms(),
                "{}",
                c.short
            );
            // Round-robin home-SM assignment puts consecutive launches
            // on distinct SMs, so a two-block litmus test always spans
            // two private L1s.
            assert_ne!(c.topology.home_sm(0), c.topology.home_sm(1), "{}", c.short);
        }
    }

    #[test]
    fn paper_tuning_spread_is_two() {
        for c in Chip::all() {
            assert_eq!(c.paper_tuning().2, 2, "{}", c.short);
        }
    }

    #[test]
    fn quirks_limited_to_980() {
        for c in Chip::all() {
            if c.short != "980" {
                assert_eq!(c.ambient_mp, 0.0);
                assert_eq!(c.mp_min_dist_words, 0);
                assert!(c.lb_broadband.is_none());
            }
        }
        let m = Chip::by_short("980").unwrap();
        assert!(m.ambient_mp > 0.0);
        assert_eq!(m.mp_min_dist_words, 256);
    }
}
