//! Global memory and the channel-contention model.
//!
//! Global memory is a flat array of words. Every word belongs to a *line*
//! (a critical-patch-sized region, Sec. 3.2) and every line maps to a
//! *memory channel* (`line % channels`). The simulator tracks, per
//! channel, decaying read/write pressure and the recent pattern of
//! back-to-back same-thread accesses (the *transition profile*). From
//! these it computes the contention factor χ ∈ [0, 1] that amplifies a
//! chip's reorder probabilities — the mechanism by which stressing a
//! scratchpad region provokes weak behaviours in application locations
//! that share its channel, while leaving the application's possible
//! behaviours unchanged when idle.

use crate::chip::{Chip, ReorderKind};
use crate::seq::normalize8;
use crate::word::Word;

/// Maximum channels any chip profile may declare.
pub const MAX_CHANNELS: usize = 16;

/// Decaying per-channel contention state.
#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    /// Read pressure (decayed count of recent loads).
    r: f64,
    /// Write pressure (decayed count of recent stores).
    w: f64,
    /// Transition profile: decayed counts of back-to-back same-thread
    /// accesses, indexed `[ld→ld, ld→st, st→ld, st→st]`.
    tr: [f64; 4],
    /// Loop-boundary profile: decayed counts of first/last accesses of a
    /// loop body, indexed `[first=ld, first=st, last=ld, last=st]`.
    fl: [f64; 4],
    /// Turn of the last update (for lazy exponential decay).
    last_turn: u64,
}

impl Channel {
    #[inline]
    fn decay_to(&mut self, turn: u64, tau: f64) {
        if turn > self.last_turn {
            let f = (-((turn - self.last_turn) as f64) / tau).exp();
            self.r *= f;
            self.w *= f;
            for t in &mut self.tr {
                *t *= f;
            }
            for t in &mut self.fl {
                *t *= f;
            }
            self.last_turn = turn;
        }
    }
}

/// The global memory image plus per-channel contention trackers.
#[derive(Debug, Clone)]
pub struct MemSystem {
    mem: Vec<Word>,
    channels: [Channel; MAX_CHANNELS],
    /// Decayed global (all-channel) pressure, for broadband quirks.
    global_pressure: f64,
    global_last_turn: u64,
}

/// An out-of-bounds global access, reported as a run fault (the paper
/// itself found out-of-bounds queue accesses in two case studies this
/// way, Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobError {
    /// The offending word address.
    pub addr: u32,
    /// The size of the memory space.
    pub len: u32,
}

impl std::fmt::Display for OobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-bounds global access at word {} (memory has {} words)",
            self.addr, self.len
        )
    }
}

impl std::error::Error for OobError {}

impl MemSystem {
    /// Create a zeroed memory of `words` words.
    pub fn new(words: u32) -> Self {
        MemSystem {
            mem: vec![0; words as usize],
            channels: [Channel::default(); MAX_CHANNELS],
            global_pressure: 0.0,
            global_last_turn: 0,
        }
    }

    /// Create a memory of `words` words starting from an existing image
    /// (truncated or zero-extended to fit). Used to carry memory across
    /// kernel phases of a multi-kernel application.
    pub fn from_image(mut image: Vec<Word>, words: u32) -> Self {
        image.resize(words as usize, 0);
        MemSystem {
            mem: image,
            channels: [Channel::default(); MAX_CHANNELS],
            global_pressure: 0.0,
            global_last_turn: 0,
        }
    }

    /// Number of words.
    pub fn len(&self) -> u32 {
        self.mem.len() as u32
    }

    /// True if the memory has no words.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Read a word.
    ///
    /// # Errors
    ///
    /// Returns [`OobError`] if `addr` is out of range.
    #[inline]
    pub fn read(&self, addr: u32) -> Result<Word, OobError> {
        self.mem.get(addr as usize).copied().ok_or(OobError {
            addr,
            len: self.len(),
        })
    }

    /// Write a word.
    ///
    /// # Errors
    ///
    /// Returns [`OobError`] if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: u32, value: Word) -> Result<(), OobError> {
        let len = self.len();
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(OobError { addr, len }),
        }
    }

    /// The full memory image (for post-condition checks).
    pub fn image(&self) -> &[Word] {
        &self.mem
    }

    /// Take ownership of the memory image, leaving an empty one.
    pub fn take_image(&mut self) -> Vec<Word> {
        std::mem::take(&mut self.mem)
    }

    /// Record an access *issue* for the contention trackers.
    ///
    /// `transition` is `Some((from_is_store, to_is_store))` when the same
    /// thread issued its previous access to the same channel within the
    /// loop-boundary gap (see `exec`), i.e. the accesses are back-to-back
    /// in the instruction stream.
    #[inline]
    pub fn note_access(
        &mut self,
        chip: &Chip,
        addr: u32,
        is_store: bool,
        transition: Option<(bool, bool)>,
        turn: u64,
    ) {
        let ch = chip.channel_of(addr) as usize;
        let c = &mut self.channels[ch];
        c.decay_to(turn, chip.pressure_tau);
        if is_store {
            c.w += 1.0;
        } else {
            c.r += 1.0;
        }
        if let Some((from, to)) = transition {
            let idx = match (from, to) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            };
            c.tr[idx] += 1.0;
        }
        // Global pressure (lazy decay).
        if turn > self.global_last_turn {
            let f = (-((turn - self.global_last_turn) as f64) / chip.pressure_tau).exp();
            self.global_pressure *= f;
            self.global_last_turn = turn;
        }
        self.global_pressure += 1.0;
    }

    /// Record a loop-boundary event: the thread's previous access (to
    /// `prev_addr`, a store iff `prev_is_store`) was the *last* access of
    /// a loop body, and the new access (to `addr`) is the *first* of the
    /// next. Detected by the executor via the instruction-count gap.
    #[inline]
    pub fn note_boundary(
        &mut self,
        chip: &Chip,
        prev_addr: u32,
        prev_is_store: bool,
        addr: u32,
        is_store: bool,
        turn: u64,
    ) {
        let pch = chip.channel_of(prev_addr) as usize;
        let c = &mut self.channels[pch];
        c.decay_to(turn, chip.pressure_tau);
        c.fl[2 + usize::from(prev_is_store)] += 1.0;
        let nch = chip.channel_of(addr) as usize;
        let c = &mut self.channels[nch];
        c.decay_to(turn, chip.pressure_tau);
        c.fl[usize::from(is_store)] += 1.0;
    }

    /// χ for one channel: the gated contention factor described in the
    /// module docs. Zero on an idle channel; approaches 1 when the channel
    /// sees a saturating, well-mixed access pattern that resonates with
    /// the chip's preferred sequence.
    fn channel_chi(&mut self, chip: &Chip, kind: ReorderKind, ch: usize, turn: u64) -> f64 {
        let c = &mut self.channels[ch];
        c.decay_to(turn, chip.pressure_tau);
        let half = chip.pressure_half;
        let rhat = c.r / (c.r + half);
        let what = c.w / (c.w + half);
        if rhat <= 0.0 || what <= 0.0 {
            return 0.0;
        }
        // Geometric mix gate: both loads and stores must be present, with
        // a per-chip read bias (pure-store stress ranks bottom on every
        // chip in Tab. 3 — the gate enforces that). The 1.5 exponent makes
        // the gate fall off steeply as stress spreads thin over many
        // locations — the dilution behind Fig. 4's U-shaped spread curve.
        let gate =
            (rhat.powf(chip.read_bias) * what.powf(1.0 - chip.read_bias)).powf(chip.gate_exp);
        // Over-concentration throttle: a channel whose raw pressure far
        // exceeds the overload knee is serialising its requesters, which
        // reduces (not raises) its ability to provoke reorderings.
        let total = c.r + c.w;
        let throttle = 1.0 / (1.0 + (total / chip.overload_pressure).powi(2));
        let mut profile = [0.0f64; 8];
        profile[..4].copy_from_slice(&c.tr);
        profile[4..].copy_from_slice(&c.fl);
        let profile = normalize8(profile);
        let cos: f64 = profile
            .iter()
            .zip(chip.resonance.iter())
            .map(|(a, b)| a * b)
            .sum();
        let k = kind.idx();
        // Cubing the cosine sharpens the resonance: sequences close to
        // the chip's preferred pattern are rewarded steeply, which is
        // what makes the Pareto winner of the sequence search stable.
        let resonance = cos.max(0.0).powi(3);
        let inner = chip.k_const
            + chip.k_resonance * resonance
            + chip.k_read[k] * rhat
            + chip.k_write[k] * what;
        (gate * throttle * inner).clamp(0.0, 1.0)
    }

    /// Saturated global pressure in [0, 1).
    fn global_sat(&mut self, chip: &Chip, turn: u64) -> f64 {
        if turn > self.global_last_turn {
            let f = (-((turn - self.global_last_turn) as f64) / chip.pressure_tau).exp();
            self.global_pressure *= f;
            self.global_last_turn = turn;
        }
        let half = chip.pressure_half * chip.channels as f64;
        self.global_pressure / (self.global_pressure + half)
    }

    /// The contention factor χ ∈ [0, 1] for a candidate reordering of two
    /// accesses at `addr_old` and `addr_young`, applying the chip's quirk
    /// rules (Sec. 3.2's GTX 980 observations).
    pub fn chi(
        &mut self,
        chip: &Chip,
        kind: ReorderKind,
        addr_old: u32,
        addr_young: u32,
        turn: u64,
    ) -> f64 {
        let ch_a = chip.channel_of(addr_old) as usize;
        let ch_b = chip.channel_of(addr_young) as usize;
        let chi_a = self.channel_chi(chip, kind, ch_a, turn);
        let chi_b = if ch_b == ch_a {
            chi_a
        } else {
            self.channel_chi(chip, kind, ch_b, turn)
        };
        // Stressing either communication channel is effective (patch
        // finding stresses a single location); covering both is better —
        // which is why a spread of two wins the spread search.
        let mut chi = 0.55 * chi_a.max(chi_b) + 0.45 * chi_a.min(chi_b);
        let dist = addr_old.abs_diff(addr_young);
        // 980 quirk: MP-kind stress response requires widely separated
        // locations.
        if matches!(kind, ReorderKind::StSt | ReorderKind::LdLd)
            && chip.mp_min_dist_words > 0
            && dist < chip.mp_min_dist_words
        {
            chi *= 0.05;
        }
        // 980 quirk: LB responds to stress on *any* channel for a band of
        // distances.
        if kind == ReorderKind::LdSt {
            if let Some((lo, hi)) = chip.lb_broadband {
                if dist >= lo && dist < hi {
                    let g = self.global_sat(chip, turn);
                    chi = chi.max(0.5 * g);
                }
            }
        }
        chi.clamp(0.0, 1.0)
    }

    /// Effective reorder probability for a candidate bypass.
    pub fn reorder_prob(
        &mut self,
        chip: &Chip,
        kind: ReorderKind,
        addr_old: u32,
        addr_young: u32,
        turn: u64,
    ) -> f64 {
        let k = kind.idx();
        let chi = self.chi(chip, kind, addr_old, addr_young, turn);
        let ambient = if matches!(kind, ReorderKind::StSt | ReorderKind::LdLd) {
            chip.ambient_mp
        } else {
            0.0
        };
        (chip.reorder.base[k] + ambient + chip.reorder.gain[k] * chi).clamp(0.0, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> Chip {
        Chip::by_short("Titan").unwrap()
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = MemSystem::new(16);
        m.write(3, 0xdead_beef).unwrap();
        assert_eq!(m.read(3).unwrap(), 0xdead_beef);
        assert_eq!(m.read(4).unwrap(), 0);
    }

    #[test]
    fn oob_detected() {
        let mut m = MemSystem::new(4);
        assert!(m.read(4).is_err());
        assert!(m.write(100, 1).is_err());
        let e = m.read(9).unwrap_err();
        assert_eq!(e, OobError { addr: 9, len: 4 });
        assert!(e.to_string().contains("word 9"));
    }

    #[test]
    fn idle_channel_has_zero_chi() {
        let chip = titan();
        let mut m = MemSystem::new(1024);
        let chi = m.chi(&chip, ReorderKind::StSt, 0, 64, 0);
        assert_eq!(chi, 0.0);
    }

    #[test]
    fn native_probability_is_base_rate() {
        let chip = titan();
        let mut m = MemSystem::new(1024);
        let p = m.reorder_prob(&chip, ReorderKind::StSt, 0, 64, 10);
        assert!((p - chip.reorder.base[0]).abs() < 1e-12);
    }

    #[test]
    fn mixed_stress_raises_chi_on_matching_channel() {
        let chip = titan();
        let mut m = MemSystem::new(4096);
        // Saturate channel 0 with the chip's preferred pattern
        // (ld st2 ld, back-to-back transitions), at the density many
        // stressing threads produce (several accesses per turn), with
        // loop-boundary events.
        let addr = 0u32; // line 0, channel 0
        let pat = [false, true, true, false];
        let mut prev: Option<bool> = None;
        for step in 0..20_000u64 {
            let turn = step / 8;
            let is_store = pat[(step % 4) as usize];
            let tr = prev.map(|p| (p, is_store));
            m.note_access(&chip, addr, is_store, tr, turn);
            if step % 4 == 3 {
                m.note_boundary(&chip, addr, is_store, addr, false, turn);
                prev = None;
            } else {
                prev = Some(is_store);
            }
        }
        let turn_end = 20_000 / 8;
        // x on channel 0, y on channel 1: chi should clearly exceed the
        // idle level (the single-thread synthetic stream here is far
        // weaker than real stressing blocks, so the absolute value is
        // modest).
        let chi = m.chi(&chip, ReorderKind::StSt, 0, 64, turn_end);
        assert!(chi > 0.05, "chi = {chi}");
        // A pair on completely different channels sees nothing.
        let chi_far = m.chi(&chip, ReorderKind::StSt, 2 * 32, 3 * 32, turn_end);
        assert!(chi_far < chi / 10.0, "chi_far = {chi_far} vs chi = {chi}");
    }

    #[test]
    fn pure_store_stress_is_gated_out() {
        let chip = titan();
        let mut m = MemSystem::new(4096);
        let mut prev: Option<bool> = None;
        for turn in 0..2000u64 {
            m.note_access(&chip, 0, true, prev.map(|p| (p, true)), turn);
            prev = Some(true);
        }
        let chi = m.chi(&chip, ReorderKind::StSt, 0, 64, 2000);
        assert!(chi < 0.01, "pure stores must not boost: chi = {chi}");
    }

    #[test]
    fn pressure_decays() {
        let chip = titan();
        let mut m = MemSystem::new(4096);
        let mut prev: Option<bool> = None;
        for turn in 0..1000u64 {
            let is_store = turn % 2 == 1;
            m.note_access(&chip, 0, is_store, prev.map(|p| (p, is_store)), turn);
            prev = Some(is_store);
        }
        let hot = m.chi(&chip, ReorderKind::StSt, 0, 64, 1000);
        let cold = m.chi(
            &chip,
            ReorderKind::StSt,
            0,
            64,
            1000 + 50 * chip.pressure_tau as u64,
        );
        assert!(hot > 0.0);
        assert!(cold < hot * 0.05, "hot {hot} cold {cold}");
    }

    #[test]
    fn mp_min_dist_quirk_suppresses_close_pairs() {
        let chip = Chip::by_short("980").unwrap();
        let mut m = MemSystem::new(4096);
        let mut prev: Option<bool> = None;
        // Saturate every channel so both pairs see stress.
        for turn in 0..4000u64 {
            let is_store = turn % 5 == 4; // ld4 st-ish
            let addr = ((turn / 5) % 8) as u32 * 64;
            m.note_access(&chip, addr, is_store, prev.map(|p| (p, is_store)), turn);
            prev = if turn % 5 == 4 { None } else { Some(is_store) };
        }
        let near = m.chi(&chip, ReorderKind::StSt, 0, 128, 4000);
        let far = m.chi(&chip, ReorderKind::StSt, 0, 512, 4000);
        assert!(far > near * 2.0, "near {near} far {far}");
    }

    #[test]
    fn take_image_empties() {
        let mut m = MemSystem::new(8);
        m.write(1, 7).unwrap();
        let img = m.take_image();
        assert_eq!(img[1], 7);
        assert!(m.is_empty());
    }
}
