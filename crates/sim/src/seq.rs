//! Stressing access sequences σ ∈ `(ld|st)+`.
//!
//! Section 3.3 of the paper tunes, per chip, the sequence of load/store
//! instructions that the body of a stressing thread's loop executes. This
//! module provides the sequence type, its paper-style compact notation
//! (`ld3 st ld` denotes three loads, a store, then a load), enumeration of
//! all sequences up to a maximum length (63 sequences for N = 5), and the
//! *transition signature* used by the simulator's contention model.

use std::fmt;
use std::str::FromStr;

/// A single stressing access: a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Acc {
    /// A load (`ld`) from the stressed scratchpad location.
    Ld,
    /// A store (`st`) to the stressed scratchpad location.
    St,
}

impl fmt::Display for Acc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Acc::Ld => write!(f, "ld"),
            Acc::St => write!(f, "st"),
        }
    }
}

/// An access sequence σ: a non-empty run of loads and stores executed on
/// every iteration of a stressing thread's loop.
///
/// # Examples
///
/// ```
/// use wmm_sim::seq::{Acc, AccessSeq};
/// let s: AccessSeq = "ld st2 ld".parse().unwrap();
/// assert_eq!(s.accs(), &[Acc::Ld, Acc::St, Acc::St, Acc::Ld]);
/// assert_eq!(s.to_string(), "ld st2 ld");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessSeq {
    accs: Vec<Acc>,
}

impl AccessSeq {
    /// Create a sequence from raw accesses.
    ///
    /// # Panics
    ///
    /// Panics if `accs` is empty — σ matches `(ld|st)+`.
    pub fn new(accs: Vec<Acc>) -> Self {
        assert!(!accs.is_empty(), "access sequence must be non-empty");
        AccessSeq { accs }
    }

    /// The accesses, in loop-body order.
    pub fn accs(&self) -> &[Acc] {
        &self.accs
    }

    /// Number of accesses in the loop body.
    pub fn len(&self) -> usize {
        self.accs.len()
    }

    /// Always false: sequences are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of loads in the sequence.
    pub fn loads(&self) -> usize {
        self.accs.iter().filter(|a| **a == Acc::Ld).count()
    }

    /// Number of stores in the sequence.
    pub fn stores(&self) -> usize {
        self.accs.iter().filter(|a| **a == Acc::St).count()
    }

    /// Rotate the sequence left by `n` positions.
    ///
    /// The paper observed that rotations of a sequence are *not* equivalent
    /// in practice (Sec. 3.3), which the simulator reproduces via the
    /// loop-boundary gap in its transition tracker.
    pub fn rotated(&self, n: usize) -> AccessSeq {
        let len = self.accs.len();
        let mut accs = Vec::with_capacity(len);
        for i in 0..len {
            accs.push(self.accs[(i + n) % len]);
        }
        AccessSeq { accs }
    }

    /// True if `other` is a rotation of `self`.
    pub fn is_rotation_of(&self, other: &AccessSeq) -> bool {
        self.len() == other.len() && (0..self.len()).any(|n| &self.rotated(n) == other)
    }

    /// Enumerate every sequence matching `(ld|st)+` with length ≤ `max_len`.
    ///
    /// For `max_len = 5` this yields the paper's 2^(N+1) − 2 = 62 … — more
    /// precisely 2 + 4 + 8 + 16 + 32 = 62 sequences of length 1–5 plus the
    /// empty-excluded root; the paper counts 63 by the formula 2^(N+1) − 1
    /// including a length-0 placeholder it never runs. We enumerate exactly
    /// the non-empty sequences.
    pub fn enumerate(max_len: usize) -> Vec<AccessSeq> {
        let mut out = Vec::new();
        for len in 1..=max_len {
            for bits in 0..(1u32 << len) {
                let accs = (0..len)
                    .map(|i| if bits >> i & 1 == 1 { Acc::St } else { Acc::Ld })
                    .collect();
                out.push(AccessSeq { accs });
            }
        }
        out
    }

    /// The *transition signature* of the loop body: counts of adjacent
    /// (from, to) access pairs **within one iteration** (the wrap-around
    /// pair is separated by loop-control instructions and is tracked
    /// separately by the memory system's gap heuristic).
    ///
    /// Index order: `[ld→ld, ld→st, st→ld, st→st]`.
    pub fn transition_counts(&self) -> [f64; 4] {
        let mut t = [0.0f64; 4];
        for w in self.accs.windows(2) {
            t[transition_index(w[0], w[1])] += 1.0;
        }
        t
    }

    /// The transition signature normalised to unit (L2) length, or the zero
    /// vector for length-1 sequences (which have no intra-iteration
    /// transitions).
    pub fn signature(&self) -> [f64; 4] {
        normalize4(self.transition_counts())
    }

    /// The *extended* signature: intra-iteration transitions plus the
    /// loop-boundary features `[first=ld, first=st, last=ld, last=st]`.
    /// The boundary features are what distinguish rotations (and
    /// coincidentally transition-equivalent sequences such as `ld st2 ld`
    /// vs `st2 ld st`): the loop-control gap makes the first and last
    /// accesses of the body observable to the memory system.
    pub fn signature8(&self) -> [f64; 8] {
        let t = self.transition_counts();
        let mut v = [0.0f64; 8];
        v[..4].copy_from_slice(&t);
        let first = self.accs[0];
        let last = self.accs[self.accs.len() - 1];
        v[4 + usize::from(first == Acc::St)] = 1.0;
        v[6 + usize::from(last == Acc::St)] = 1.0;
        normalize8(v)
    }
}

/// Normalise an 8-vector to unit L2 length (zero vector maps to itself).
pub fn normalize8(v: [f64; 8]) -> [f64; 8] {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 {
        return v;
    }
    let mut out = v;
    for x in &mut out {
        *x /= norm;
    }
    out
}

/// Cosine similarity between two 8-vectors (0 if either is zero).
pub fn cosine8(a: [f64; 8], b: [f64; 8]) -> f64 {
    let na = normalize8(a);
    let nb = normalize8(b);
    na.iter().zip(nb.iter()).map(|(x, y)| x * y).sum()
}

/// Map an adjacent access pair to its index in a transition vector.
#[inline]
pub fn transition_index(from: Acc, to: Acc) -> usize {
    match (from, to) {
        (Acc::Ld, Acc::Ld) => 0,
        (Acc::Ld, Acc::St) => 1,
        (Acc::St, Acc::Ld) => 2,
        (Acc::St, Acc::St) => 3,
    }
}

/// Normalise a 4-vector to unit L2 length (zero vector maps to itself).
pub fn normalize4(v: [f64; 4]) -> [f64; 4] {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 {
        v
    } else {
        [v[0] / norm, v[1] / norm, v[2] / norm, v[3] / norm]
    }
}

/// Cosine similarity between two transition vectors (0 if either is zero).
pub fn cosine4(a: [f64; 4], b: [f64; 4]) -> f64 {
    let na = normalize4(a);
    let nb = normalize4(b);
    na.iter().zip(nb.iter()).map(|(x, y)| x * y).sum()
}

impl fmt::Display for AccessSeq {
    /// Paper notation: runs are compressed, `ld^x` printed as `ldx`.
    /// `[Ld, St, St, Ld]` displays as `ld st2 ld`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut i = 0;
        while i < self.accs.len() {
            let a = self.accs[i];
            let mut run = 1;
            while i + run < self.accs.len() && self.accs[i + run] == a {
                run += 1;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if run == 1 {
                write!(f, "{a}")?;
            } else {
                write!(f, "{a}{run}")?;
            }
            i += run;
        }
        Ok(())
    }
}

/// Error produced when parsing an access sequence from paper notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeqError {
    token: String,
}

impl fmt::Display for ParseSeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid access sequence token `{}`", self.token)
    }
}

impl std::error::Error for ParseSeqError {}

impl FromStr for AccessSeq {
    type Err = ParseSeqError;

    /// Parse paper notation, e.g. `"ld3 st ld"` or `"st2 ld2"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut accs = Vec::new();
        for tok in s.split_whitespace() {
            let (kind, count) = if let Some(rest) = tok.strip_prefix("ld") {
                (Acc::Ld, rest)
            } else if let Some(rest) = tok.strip_prefix("st") {
                (Acc::St, rest)
            } else {
                return Err(ParseSeqError {
                    token: tok.to_string(),
                });
            };
            let n: usize = if count.is_empty() {
                1
            } else {
                count.parse().map_err(|_| ParseSeqError {
                    token: tok.to_string(),
                })?
            };
            if n == 0 {
                return Err(ParseSeqError {
                    token: tok.to_string(),
                });
            }
            accs.extend(std::iter::repeat_n(kind, n));
        }
        if accs.is_empty() {
            return Err(ParseSeqError {
                token: s.to_string(),
            });
        }
        Ok(AccessSeq { accs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_compresses_runs() {
        let s = AccessSeq::new(vec![Acc::Ld, Acc::Ld, Acc::Ld, Acc::St, Acc::Ld]);
        assert_eq!(s.to_string(), "ld3 st ld");
        let s = AccessSeq::new(vec![Acc::St, Acc::St, Acc::Ld, Acc::Ld]);
        assert_eq!(s.to_string(), "st2 ld2");
    }

    #[test]
    fn parse_round_trip() {
        for text in ["ld", "st", "ld st2 ld", "ld4 st", "st2 ld3", "ld st"] {
            let s: AccessSeq = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("xy".parse::<AccessSeq>().is_err());
        assert!("".parse::<AccessSeq>().is_err());
        assert!("ld0".parse::<AccessSeq>().is_err());
        assert!("ldx".parse::<AccessSeq>().is_err());
    }

    #[test]
    fn enumerate_counts_match_paper() {
        // N = 5 gives 62 non-empty sequences (paper quotes 2^{N+1}-1 = 63,
        // counting the empty word, which cannot be run).
        assert_eq!(AccessSeq::enumerate(5).len(), 62);
        assert_eq!(AccessSeq::enumerate(1).len(), 2);
    }

    #[test]
    fn enumerate_is_unique() {
        let seqs = AccessSeq::enumerate(5);
        let mut set: Vec<_> = seqs.iter().map(|s| s.accs().to_vec()).collect();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), seqs.len());
    }

    #[test]
    fn rotation_detection() {
        let a: AccessSeq = "ld st2 ld".parse().unwrap();
        let b: AccessSeq = "st2 ld2".parse().unwrap();
        assert!(a.is_rotation_of(&b), "paper notes these are rotations");
        let c: AccessSeq = "ld2 st2".parse().unwrap();
        assert!(a.is_rotation_of(&c));
        let d: AccessSeq = "ld st ld st".parse().unwrap();
        assert!(!a.is_rotation_of(&d));
    }

    #[test]
    fn signature8_distinguishes_transition_twins() {
        // `ld st2 ld` and `st2 ld st` share a transition multiset but
        // differ in boundary features.
        let a: AccessSeq = "ld st2 ld".parse().unwrap();
        let b: AccessSeq = "st2 ld st".parse().unwrap();
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature8(), b.signature8());
        let c = cosine8(a.signature8(), b.signature8());
        assert!(c < 0.7, "cos = {c}");
    }

    #[test]
    fn signature8_self_cosine_is_one() {
        for s in AccessSeq::enumerate(4) {
            let sig = s.signature8();
            assert!((cosine8(sig, sig) - 1.0).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn signature_distinguishes_rotations() {
        // `ld4 st` and `ld3 st ld` are rotations but have distinct
        // intra-iteration signatures (the wrap transition is excluded).
        let a: AccessSeq = "ld4 st".parse().unwrap();
        let b: AccessSeq = "ld3 st ld".parse().unwrap();
        assert!(a.is_rotation_of(&b));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn cosine_self_is_max() {
        let seqs = AccessSeq::enumerate(4);
        for s in &seqs {
            if s.len() < 2 {
                continue;
            }
            let sig = s.signature();
            for other in &seqs {
                let c = cosine4(other.signature(), sig);
                assert!(c <= 1.0 + 1e-12);
            }
            assert!((cosine4(sig, sig) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn loads_and_stores_counted() {
        let s: AccessSeq = "ld3 st ld".parse().unwrap();
        assert_eq!(s.loads(), 4);
        assert_eq!(s.stores(), 1);
    }
}
