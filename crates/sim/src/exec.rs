//! The SIMT execution engine.
//!
//! A [`Gpu`] executes a [`LaunchSpec`]: one or more *kernel groups*
//! (application blocks plus, optionally, stressing blocks — the paper
//! partitions the two at block level, Sec. 3). Threads are grouped into
//! warps of 32 that advance in near-lockstep; warps are scheduled by a
//! seeded random scheduler subject to the chip's occupancy limit, with
//! excess blocks queued in launch waves.
//!
//! Weak memory behaviour comes from the per-thread **in-flight window**:
//! memory operations *issue* in program order but *complete* (become
//! visible) possibly out of order. A younger operation may bypass older
//! ones only if it targets a different line (critical patch) than every
//! same-space operation it passes and no fence in its scope intervenes;
//! the probability of a bypass is the chip's base rate for that
//! [`ReorderKind`] amplified by contention. The window is **scoped**, the
//! paper's central axis:
//!
//! * *Global-space* operations always enter the window; their contention
//!   factor comes from the per-channel trackers in [`crate::mem`].
//! * *Shared-space* operations enter the window only on chips whose
//!   shared-space reorder matrix ([`Chip::shared_reorder`]) is nonzero;
//!   their contention factor comes from the owning **block's** shared
//!   traffic tracker (shared memory is per-block, so only block-mates can
//!   pressure it). With all-zero shared rates they complete immediately —
//!   the pre-scoped behaviour, bit for bit.
//! * Operations in *different* spaces travel different datapaths and may
//!   complete out of order with each other (subject to fences), which is
//!   what makes mixed-scope litmus shapes observable.
//!
//! Orthogonal to the window, the chip's [`topology`](crate::topology)
//! adds a *structural* weakness channel: every block is assigned a home
//! SM at launch, and on chips with incoherent per-SM L1s
//! ([`Chip::l1_weak`]) a completed global store leaves the pre-write
//! value visible as a stale line to every **other** SM. A later global
//! load may hit that stale line with a probability driven by cross-SM
//! write pressure — which is how same-address load-load pairs (`CoRR`)
//! go weak even though the window can never reorder them. A device
//! fence refreshes the issuing SM's L1; chips with zero staleness rates
//! never touch any of this (no state, no RNG draws — the legacy path,
//! bit for bit).
//!
//! The fence hierarchy is two-level, mirroring `membar.cta`/`membar.gl`:
//! a **device** fence ([`FenceLevel::Device`]) orders everything in the
//! window, while a **block** fence ([`FenceLevel::Block`]) orders only the
//! thread's shared-space operations (the simulator models global
//! visibility device-wide, so the cheaper fence buys only intra-block
//! ordering — exactly the gap the paper's scoped tests probe). Atomics
//! are atomic at completion but do **not** order other accesses — the
//! pre-Volta NVIDIA behaviour that makes spinlock idioms without fences
//! incorrect, which is precisely what the paper's case studies exercise.

use crate::chip::{Chip, ReorderKind};
use crate::ir::{BinOp, FenceLevel, Inst, Program, Reg, Space, SpecialReg};
use crate::mem::{MemSystem, OobError};
use crate::topology::L1System;
use crate::word::{from_f32, to_f32, Word};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use wmm_obs::ChannelCounts;

/// Threads per warp, as on all NVIDIA architectures in the study.
pub const WARP_SIZE: u32 = 32;

/// Maximum in-flight window depth any chip may declare.
pub const MAX_WINDOW: usize = 8;

/// Extra completion delay (in the owning thread's drain turns) applied to
/// operations that a younger operation bypassed: the congested memory
/// system holds them back, which is what makes the inversion observable
/// by other threads.
pub const BYPASS_DELAY_TURNS: u32 = 16;

/// Same-thread instruction-count gap within which two accesses to the same
/// channel count as "back-to-back" for the transition profile. Loop
/// control (increment, compare, branch) exceeds the gap, so the
/// wrap-around pair of a stressing loop is not recorded — the mechanism
/// behind the paper's observation that rotations of an access sequence
/// are not equivalent (Sec. 3.3).
pub const TRANSITION_GAP: u32 = 3;

/// Whether a kernel group is part of the application under test or of the
/// testing environment's memory stress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Application blocks: the run completes when all of them retire.
    App,
    /// Stressing blocks: killed when the application finishes.
    Stress,
}

/// A set of blocks executing one program.
#[derive(Debug, Clone)]
pub struct KernelGroup {
    /// The kernel to execute.
    pub program: Arc<Program>,
    /// Number of blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Application or stress.
    pub role: Role,
}

/// A complete launch: kernel groups, memory sizes, initial values, and
/// run limits.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// The kernel groups (typically one application group and zero or one
    /// stress group).
    pub groups: Vec<KernelGroup>,
    /// Words of global memory (zero-initialised, then `init` applied).
    pub global_words: u32,
    /// Words of shared memory per block.
    pub shared_words: u32,
    /// Initial memory image (zero-extended or truncated to
    /// `global_words`); empty means all zeros. Applied before `init`.
    pub init_image: Vec<Word>,
    /// Initial (address, value) writes applied before the run.
    pub init: Vec<(u32, Word)>,
    /// Scheduler-turn budget; exceeding it reports
    /// [`RunStatus::TimedOut`] (the paper's 30-second timeout analogue).
    pub max_turns: u64,
    /// Apply block/warp-respecting thread-id randomisation (Sec. 3.5).
    pub randomize_ids: bool,
}

impl LaunchSpec {
    /// A single-group application launch with defaults: no stress, no
    /// randomisation, and a generous turn budget.
    pub fn app(program: Program, blocks: u32, threads_per_block: u32, global_words: u32) -> Self {
        LaunchSpec {
            groups: vec![KernelGroup {
                program: Arc::new(program),
                blocks,
                threads_per_block,
                role: Role::App,
            }],
            global_words,
            shared_words: 0,
            init_image: Vec::new(),
            init: Vec::new(),
            max_turns: 4_000_000,
            randomize_ids: false,
        }
    }

    /// Total threads across all groups.
    pub fn total_threads(&self) -> u32 {
        self.groups
            .iter()
            .map(|g| g.blocks * g.threads_per_block)
            .sum()
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// All application blocks retired.
    Completed,
    /// The turn budget was exhausted first.
    TimedOut,
    /// A thread exited while block-mates waited at a barrier (undefined
    /// behaviour in CUDA, detected here).
    BarrierDivergence,
    /// An out-of-bounds global or shared access.
    OutOfBounds(OobError),
}

impl RunStatus {
    /// True for [`RunStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        *self == RunStatus::Completed
    }
}

/// The outcome of one kernel execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completion status.
    pub status: RunStatus,
    /// Final global-memory image (fully drained and consistent).
    pub memory: Vec<Word>,
    /// Scheduler turns until the last application block retired.
    pub app_turns: u64,
    /// Total scheduler turns executed.
    pub total_turns: u64,
    /// Instructions executed across all threads.
    pub instructions: u64,
    /// Out-of-order completions that occurred (weak-memory events).
    /// Always equals `channels.window()` — kept as the coarse aggregate
    /// the per-channel split refines.
    pub bypasses: u64,
    /// Per-channel provenance counters: which weakness (and
    /// strengthening) channels fired during this run, and how often.
    /// Pure counts at existing decision points — no extra RNG draws —
    /// so they are exactly as deterministic as the run itself.
    pub channels: ChannelCounts,
    /// Simulated kernel runtime in milliseconds (cycles / clock).
    pub runtime_ms: f64,
    /// Estimated energy in joules — `None` on chips without power-query
    /// support (Sec. 6 reports energy only for K5200, Titan, K20, C2075).
    pub energy_j: Option<f64>,
}

impl RunResult {
    /// Read a word of the final memory image.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn word(&self, addr: u32) -> Word {
        self.memory[addr as usize]
    }

    /// Read a word of the final memory image as an `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn f32(&self, addr: u32) -> f32 {
        to_f32(self.word(addr))
    }
}

// ---------------------------------------------------------------------------
// Internal machine state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Load,
    Store,
    Cas,
    Exch,
    Add,
    /// Device-level fence: nothing bypasses it.
    Fence,
    /// Block-level fence: only shared-space operations are held by it;
    /// global operations pass it freely (its visibility guarantee is
    /// intra-block only).
    FenceBlock,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    kind: SlotKind,
    /// Stores and atomics classify as "store-class" for reorder kinds.
    store_class: bool,
    /// The memory space the operation targets; same-line ordering and
    /// block-fence scoping apply per space.
    space: Space,
    addr: u32,
    line: u32,
    v1: Word,
    v2: Word,
    dst: Reg,
    id: u32,
    stall: u32,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            kind: SlotKind::Fence,
            store_class: false,
            space: Space::Global,
            addr: 0,
            line: 0,
            v1: 0,
            v2: 0,
            dst: 0,
            id: 0,
            stall: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Running,
    BarrierDrain,
    BarrierWait,
    HaltDrain,
    Dead,
}

#[derive(Debug, Clone)]
struct ThreadCtx {
    group: u32,
    block: u32,
    pc: u32,
    state: TState,
    regs_at: u32,
    tid: u32,
    bid: u32,
    icount: u32,
    last_is_store: bool,
    last_channel: u32,
    last_addr: u32,
    last_icount: u32,
    has_last: bool,
    stalled: bool,
    stalled_reg: Reg,
    win: [Slot; MAX_WINDOW],
    win_len: u8,
}

#[derive(Debug, Clone)]
struct BlockState {
    group: u32,
    threads: std::ops::Range<u32>,
    shared_at: u32,
    alive: u32,
    waiting: u32,
    retired: bool,
    /// The SM this block is resident on (deterministic round-robin over
    /// the launch order, see [`crate::topology::Topology::home_sm`]);
    /// selects which private L1 the block's global loads consult.
    home_sm: u32,
    /// Decaying read/write pressure on this block's shared memory — the
    /// per-block analogue of a channel tracker, feeding the shared-space
    /// contention factor χ. Only updated on chips with a live shared
    /// reorder matrix.
    sh_r: f64,
    sh_w: f64,
    sh_turn: u64,
}

impl BlockState {
    #[inline]
    fn decay_shared(&mut self, chip: &Chip, turn: u64) {
        if turn > self.sh_turn {
            let f = (-((turn - self.sh_turn) as f64) / chip.pressure_tau).exp();
            self.sh_r *= f;
            self.sh_w *= f;
            self.sh_turn = turn;
        }
    }

    /// Record a shared-space access issue (atomics count as both).
    #[inline]
    fn note_shared(&mut self, chip: &Chip, reads: bool, writes: bool, turn: u64) {
        self.decay_shared(chip, turn);
        if reads {
            self.sh_r += 1.0;
        }
        if writes {
            self.sh_w += 1.0;
        }
    }

    /// The shared-space contention factor χ ∈ [0, 1] for this block:
    /// zero below the pressure floor (a litmus test's own few accesses
    /// cannot self-provoke), then a saturating geometric mix of read and
    /// write pressure — like the channel gate, both kinds must be
    /// present for the scratchpad traffic to count as contention.
    fn shared_chi(&mut self, chip: &Chip, turn: u64) -> f64 {
        self.decay_shared(chip, turn);
        if self.sh_r + self.sh_w < chip.shared_pressure_floor {
            return 0.0;
        }
        let half = chip.shared_pressure_half;
        let rhat = self.sh_r / (self.sh_r + half);
        let what = self.sh_w / (self.sh_w + half);
        if rhat <= 0.0 || what <= 0.0 {
            return 0.0;
        }
        (rhat * what).sqrt().clamp(0.0, 1.0)
    }
}

#[derive(Debug, Clone)]
struct Warp {
    threads: std::ops::Range<u32>,
}

/// A simulated GPU: construct once per chip, run many launches.
///
/// Runs are deterministic in the `(spec, seed)` pair.
///
/// # Examples
///
/// ```
/// use wmm_sim::chip::Chip;
/// use wmm_sim::exec::{Gpu, LaunchSpec};
/// use wmm_sim::ir::builder::KernelBuilder;
///
/// let mut b = KernelBuilder::new("store-tid");
/// let tid = b.global_tid();
/// b.store_global(tid, tid);
/// let program = b.finish().unwrap();
///
/// let mut gpu = Gpu::new(Chip::by_short("K20").unwrap());
/// let result = gpu.run(&LaunchSpec::app(program, 2, 32, 64), 42);
/// assert!(result.status.is_completed());
/// assert_eq!(result.word(63), 63);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    chip: Chip,
}

impl Gpu {
    /// Create a GPU for the given chip profile.
    pub fn new(chip: Chip) -> Self {
        Gpu { chip }
    }

    /// The chip profile.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Execute a launch to completion (or timeout/fault) with the given
    /// seed. All scheduling and reordering randomness derives from the
    /// seed, so identical `(spec, seed)` pairs produce identical results.
    pub fn run(&mut self, spec: &LaunchSpec, seed: u64) -> RunResult {
        let mut run = Run::new(&self.chip, spec, seed);
        run.execute();
        run.into_result()
    }
}

struct Run<'a> {
    chip: &'a Chip,
    spec: &'a LaunchSpec,
    mem: MemSystem,
    shared: Vec<Word>,
    regs: Vec<Word>,
    pending: Vec<u32>,
    threads: Vec<ThreadCtx>,
    blocks: Vec<BlockState>,
    warps: Vec<Warp>,
    live_warps: Vec<u32>,
    queue: VecDeque<(u32, u32)>,
    bid_maps: Vec<Vec<u32>>,
    resident_threads: u32,
    app_blocks_left: u32,
    /// Whether this chip routes shared-space accesses through the
    /// in-flight window (any nonzero shared reorder rate).
    shared_weak: bool,
    /// Incoherent-L1 state — `Some` only on chips with a nonzero L1
    /// staleness rate ([`Chip::l1_weak`]). `None` means global loads
    /// read straight from memory with no L1 bookkeeping and no extra
    /// RNG draws (the pre-topology behaviour, bit for bit).
    l1: Option<L1System>,
    rng: SmallRng,
    turn: u64,
    instructions: u64,
    bypasses: u64,
    channels: ChannelCounts,
    next_op_id: u32,
    status: Option<RunStatus>,
    app_turns: u64,
}

impl<'a> Run<'a> {
    fn new(chip: &'a Chip, spec: &'a LaunchSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut mem = if spec.init_image.is_empty() {
            MemSystem::new(spec.global_words)
        } else {
            MemSystem::from_image(spec.init_image.clone(), spec.global_words)
        };
        for &(addr, value) in &spec.init {
            mem.write(addr, value)
                .expect("LaunchSpec.init address out of range");
        }
        // Interleave the launch queue application-first so stressing
        // blocks can never starve the application.
        let max_blocks = spec.groups.iter().map(|g| g.blocks).max().unwrap_or(0);
        let mut queue = VecDeque::new();
        for b in 0..max_blocks {
            for (gi, g) in spec.groups.iter().enumerate() {
                if b < g.blocks {
                    queue.push_back((gi as u32, b));
                }
            }
        }
        // Per-group logical block-id permutations (thread randomisation).
        let bid_maps = spec
            .groups
            .iter()
            .map(|g| {
                let mut ids: Vec<u32> = (0..g.blocks).collect();
                if spec.randomize_ids {
                    shuffle(&mut ids, &mut rng);
                }
                ids
            })
            .collect();
        let app_blocks_left = spec
            .groups
            .iter()
            .filter(|g| g.role == Role::App)
            .map(|g| g.blocks)
            .sum();
        Run {
            chip,
            spec,
            mem,
            shared: Vec::new(),
            regs: Vec::new(),
            pending: Vec::new(),
            threads: Vec::new(),
            blocks: Vec::new(),
            warps: Vec::new(),
            live_warps: Vec::new(),
            queue,
            bid_maps,
            resident_threads: 0,
            app_blocks_left,
            shared_weak: chip.shared_weak(),
            l1: chip
                .l1_weak()
                .then(|| L1System::new(chip.topology.total_sms(), chip.l1)),
            rng,
            turn: 0,
            instructions: 0,
            bypasses: 0,
            channels: ChannelCounts::default(),
            next_op_id: 1,
            status: None,
            app_turns: 0,
        }
    }

    fn execute(&mut self) {
        self.try_launch();
        loop {
            if self.status.is_some() {
                break;
            }
            if self.app_blocks_left == 0 {
                self.status = Some(RunStatus::Completed);
                break;
            }
            if self.turn >= self.spec.max_turns {
                self.status = Some(RunStatus::TimedOut);
                break;
            }
            let Some(w) = self.pick_warp() else {
                // No live warps but application blocks remain: the queue
                // must have unlaunched blocks; capacity is free, so this
                // launches or we are wedged (treated as timeout).
                self.try_launch();
                if self.live_warps.is_empty() {
                    self.status = Some(RunStatus::TimedOut);
                    break;
                }
                continue;
            };
            let range = self.warps[w as usize].threads.clone();
            for t in range {
                self.step_thread(t);
                if self.status.is_some() {
                    break;
                }
            }
            // Advance the clock in *time* units: the machine executes all
            // resident warps concurrently, so with fewer live warps each
            // scheduler step covers more wall-clock time. This keeps the
            // contention trackers calibrated in absolute time — a lightly
            // occupied (native) launch generates far less memory traffic
            // per unit time than a fully stressed one.
            let live = self.live_warps.len().max(1) as u64;
            let full = u64::from(self.chip.max_concurrent_threads / WARP_SIZE).max(1);
            self.turn += (full / live).max(1);
        }
        if self.app_turns == 0 {
            self.app_turns = self.turn;
        }
    }

    fn into_result(mut self) -> RunResult {
        debug_assert_eq!(self.bypasses, self.channels.window());
        let status = self.status.clone().unwrap_or(RunStatus::TimedOut);
        let runtime_ms = self.app_turns as f64 / (self.chip.clock_ghz * 1e6);
        let energy_j = self
            .chip
            .supports_power
            .then(|| self.chip.power_watts * runtime_ms / 1e3);
        RunResult {
            status,
            memory: self.mem.take_image(),
            app_turns: self.app_turns,
            total_turns: self.turn,
            instructions: self.instructions,
            bypasses: self.bypasses,
            channels: self.channels,
            runtime_ms,
            energy_j,
        }
    }

    // -- scheduling --------------------------------------------------------

    fn pick_warp(&mut self) -> Option<u32> {
        while !self.live_warps.is_empty() {
            let i = self.rng.gen_range(0..self.live_warps.len());
            let w = self.live_warps[i];
            if self.warp_dead(w) {
                self.live_warps.swap_remove(i);
            } else {
                return Some(w);
            }
        }
        None
    }

    fn warp_dead(&self, w: u32) -> bool {
        self.warps[w as usize]
            .threads
            .clone()
            .all(|t| self.threads[t as usize].state == TState::Dead)
    }

    fn try_launch(&mut self) {
        while let Some(&(gi, bid_phys)) = self.queue.front() {
            let g = &self.spec.groups[gi as usize];
            if self.resident_threads + g.threads_per_block > self.chip.max_concurrent_threads
                && self.resident_threads > 0
            {
                break;
            }
            self.queue.pop_front();
            self.launch_block(gi, bid_phys);
        }
    }

    fn launch_block(&mut self, gi: u32, bid_phys: u32) {
        let g = &self.spec.groups[gi as usize];
        let tpb = g.threads_per_block;
        let num_regs = g.program.num_regs as u32;
        let logical_bid = self.bid_maps[gi as usize][bid_phys as usize];
        let block_index = self.blocks.len() as u32;
        // Home-SM assignment is total: launch indices past the chip's
        // block capacity wrap onto earlier SMs deterministically, so
        // oversubscribed grids share (and re-pollute) the same L1s.
        let home_sm = self.chip.topology.home_sm(block_index);
        debug_assert!(home_sm < self.chip.topology.total_sms());
        let t0 = self.threads.len() as u32;
        let shared_at = self.shared.len() as u32;
        self.shared
            .extend(std::iter::repeat_n(0, self.spec.shared_words as usize));

        // Warp/lane randomisation respecting warp membership: full warps
        // are permuted among themselves; lanes permute within each warp.
        let full_warps = tpb / WARP_SIZE;
        let mut warp_map: Vec<u32> = (0..full_warps).collect();
        if self.spec.randomize_ids {
            shuffle(&mut warp_map, &mut self.rng);
        }

        for i in 0..tpb {
            let (w, l) = (i / WARP_SIZE, i % WARP_SIZE);
            let logical_tid = if w < full_warps {
                let lw = warp_map[w as usize];
                lw * WARP_SIZE + l
            } else {
                i // partial trailing warp keeps its ids
            };
            let regs_at = self.regs.len() as u32;
            self.regs.extend(std::iter::repeat_n(0, num_regs as usize));
            self.pending
                .extend(std::iter::repeat_n(0, num_regs as usize));
            self.threads.push(ThreadCtx {
                group: gi,
                block: block_index,
                pc: 0,
                state: TState::Running,
                regs_at,
                tid: logical_tid,
                bid: logical_bid,
                icount: 0,
                last_is_store: false,
                last_channel: 0,
                last_addr: 0,
                last_icount: 0,
                has_last: false,
                stalled: false,
                stalled_reg: 0,
                win: [Slot::default(); MAX_WINDOW],
                win_len: 0,
            });
        }
        self.blocks.push(BlockState {
            group: gi,
            threads: t0..t0 + tpb,
            shared_at,
            alive: tpb,
            waiting: 0,
            retired: false,
            home_sm,
            sh_r: 0.0,
            sh_w: 0.0,
            sh_turn: 0,
        });
        let mut i = t0;
        while i < t0 + tpb {
            let end = (i + WARP_SIZE).min(t0 + tpb);
            self.warps.push(Warp { threads: i..end });
            self.live_warps.push(self.warps.len() as u32 - 1);
            i = end;
        }
        self.resident_threads += tpb;
    }

    // -- thread stepping ---------------------------------------------------

    fn step_thread(&mut self, t: u32) {
        match self.threads[t as usize].state {
            TState::Dead | TState::BarrierWait => {}
            TState::HaltDrain => {
                self.drain_step(t, false);
                if self.threads[t as usize].win_len == 0 {
                    self.threads[t as usize].state = TState::Dead;
                    self.on_thread_dead(t);
                }
            }
            TState::BarrierDrain => {
                self.drain_step(t, false);
                if self.threads[t as usize].win_len == 0 {
                    self.threads[t as usize].state = TState::BarrierWait;
                    let b = self.threads[t as usize].block;
                    self.blocks[b as usize].waiting += 1;
                    self.check_barrier_release(b);
                }
            }
            TState::Running => {
                if self.threads[t as usize].stalled {
                    let th = &self.threads[t as usize];
                    let reg_idx = (th.regs_at + th.stalled_reg as u32) as usize;
                    let demanded = self.pending[reg_idx];
                    self.demand_drain_step(t, demanded);
                    let th = &self.threads[t as usize];
                    let reg_idx = (th.regs_at + th.stalled_reg as u32) as usize;
                    if self.pending[reg_idx] != 0 {
                        return;
                    }
                    self.threads[t as usize].stalled = false;
                } else {
                    self.drain_step(t, false);
                }
                if self.status.is_none() {
                    self.exec_inst(t);
                }
            }
        }
    }

    fn on_thread_dead(&mut self, t: u32) {
        let b = self.threads[t as usize].block as usize;
        let all_dead = self.blocks[b]
            .threads
            .clone()
            .all(|i| self.threads[i as usize].state == TState::Dead);
        if all_dead && !self.blocks[b].retired {
            self.blocks[b].retired = true;
            let gi = self.blocks[b].group as usize;
            let g = &self.spec.groups[gi];
            self.resident_threads -= g.threads_per_block;
            if g.role == Role::App {
                self.app_blocks_left -= 1;
                if self.app_blocks_left == 0 {
                    self.app_turns = self.turn;
                }
            }
            self.try_launch();
        }
    }

    fn check_barrier_release(&mut self, b: u32) {
        let blk = &self.blocks[b as usize];
        if blk.waiting > 0 && blk.waiting == blk.alive {
            let total = blk.threads.end - blk.threads.start;
            if blk.alive < total {
                // Every remaining thread is at the barrier but some
                // block-mates already exited: they would wait forever.
                self.status = Some(RunStatus::BarrierDivergence);
                return;
            }
            let range = blk.threads.clone();
            self.blocks[b as usize].waiting = 0;
            for t in range {
                if self.threads[t as usize].state == TState::BarrierWait {
                    self.threads[t as usize].state = TState::Running;
                }
            }
        }
    }

    // -- window drain ------------------------------------------------------

    /// True if window slot `j` may complete before every older in-flight
    /// op: no fence of its scope in the way and no same-space same-line
    /// older op. A device fence holds everything; a block fence holds
    /// only shared-space operations (its visibility guarantee is
    /// intra-block, and global completion is modelled device-wide).
    fn can_bypass(&self, t: u32, j: usize) -> bool {
        let th = &self.threads[t as usize];
        let sj = th.win[j];
        if matches!(sj.kind, SlotKind::Fence | SlotKind::FenceBlock) {
            return false;
        }
        for i in 0..j {
            let si = th.win[i];
            match si.kind {
                SlotKind::Fence => return false,
                SlotKind::FenceBlock => {
                    if sj.space == Space::Shared {
                        return false;
                    }
                }
                _ => {
                    if si.space == sj.space && si.line == sj.line {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The probability that window slot `sj` (younger) completes before
    /// `head` (older). The younger operation's space selects the reorder
    /// matrix and contention source: global bypasses are driven by the
    /// channel trackers, shared bypasses by the owning block's shared
    /// traffic. When the head is in the other space — or is a fence the
    /// candidate may legitimately pass (a global op passing a block
    /// fence) — the two sides travel different datapaths, so only the
    /// younger side's address feeds its contention lookup.
    fn bypass_prob(&mut self, t: u32, head: Slot, sj: Slot) -> f64 {
        let kind = classify(head.store_class, sj.store_class);
        let head_is_fence = matches!(head.kind, SlotKind::Fence | SlotKind::FenceBlock);
        match sj.space {
            Space::Global => {
                let addr_old = if head.space == Space::Global && !head_is_fence {
                    head.addr
                } else {
                    sj.addr
                };
                self.mem
                    .reorder_prob(self.chip, kind, addr_old, sj.addr, self.turn)
            }
            Space::Shared => {
                let chip = self.chip;
                let b = self.threads[t as usize].block as usize;
                let chi = self.blocks[b].shared_chi(chip, self.turn);
                let k = kind.idx();
                (chip.shared_reorder.base[k] + chip.shared_reorder.gain[k] * chi).clamp(0.0, 0.95)
            }
        }
    }

    /// Drain while the thread is stalled on a register produced by the
    /// in-flight op `demanded`. The pipeline *demands* that op: like a
    /// real memory system returning an atomic or load result while older
    /// plain stores sit in the write buffer, the demanded op may complete
    /// out of order (with the usual contention-dependent probability —
    /// this is exactly the reordering that breaks `sdk-red-nf`'s
    /// partial/counter protocol). Otherwise the head drains in order.
    fn demand_drain_step(&mut self, t: u32, demanded: u32) {
        let len = self.threads[t as usize].win_len as usize;
        if len == 0 {
            return;
        }
        let pos = (0..len).find(|&j| self.threads[t as usize].win[j].id == demanded);
        if let Some(j) = pos {
            if j > 0 && self.can_bypass(t, j) {
                let head = self.threads[t as usize].win[0];
                let sj = self.threads[t as usize].win[j];
                let p = self.bypass_prob(t, head, sj);
                if self.rng.gen::<f64>() < p {
                    for i in 0..j {
                        self.threads[t as usize].win[i].stall += BYPASS_DELAY_TURNS;
                    }
                    self.complete_slot(t, j);
                    self.note_bypass(sj.space);
                    return;
                }
            }
        }
        // Otherwise resolve in order: complete the head (respecting its
        // stall delay).
        let head = self.threads[t as usize].win[0];
        if head.stall > 0 {
            self.threads[t as usize].win[0].stall -= 1;
            return;
        }
        self.complete_slot(t, 0);
    }

    /// One drain turn: possibly complete a younger op out of order
    /// (a weak-memory event), otherwise maybe complete the head.
    /// `in_order` forces head-only completion (used while the thread is
    /// draining for a barrier or halt in program order).
    fn drain_step(&mut self, t: u32, in_order: bool) {
        let len = self.threads[t as usize].win_len as usize;
        if len == 0 {
            return;
        }
        if !in_order && len >= 2 {
            // One bypass attempt per turn, by the youngest candidate that
            // may pass every older in-flight op.
            if let Some(j) = (1..len.min(4)).find(|&j| self.can_bypass(t, j)) {
                let head = self.threads[t as usize].win[0];
                let sj = self.threads[t as usize].win[j];
                let p = self.bypass_prob(t, head, sj);
                if self.rng.gen::<f64>() < p {
                    // The bypassed-over operations are the ones the
                    // congested memory system is sitting on: delay them,
                    // widening the visibility inversion (this is what
                    // makes a stale value observable by other threads).
                    for i in 0..j {
                        self.threads[t as usize].win[i].stall += BYPASS_DELAY_TURNS;
                    }
                    self.complete_slot(t, j);
                    self.note_bypass(sj.space);
                    return;
                }
            }
        }
        // Head completion. `stall` covers both fence latency and the
        // contention delay applied to bypassed-over operations.
        let head = self.threads[t as usize].win[0];
        if head.stall > 0 {
            self.threads[t as usize].win[0].stall -= 1;
            return;
        }
        let full = len == self.chip.window;
        if in_order || full || self.rng.gen::<f64>() < self.chip.drain_q {
            self.complete_slot(t, 0);
        }
    }

    /// Count one in-flight-window bypass, split by the completing
    /// slot's space — the per-channel refinement of `bypasses`.
    fn note_bypass(&mut self, space: Space) {
        self.bypasses += 1;
        match space {
            Space::Global => self.channels.window_global += 1,
            Space::Shared => self.channels.window_shared += 1,
        }
    }

    /// Complete (make visible in its space) the window slot at `j`,
    /// shifting younger entries down. Shared-space slots land in the
    /// owning block's shared array (bounds were checked at issue).
    fn complete_slot(&mut self, t: u32, j: usize) {
        let slot = self.threads[t as usize].win[j];
        let result: Result<Option<Word>, OobError> = if slot.space == Space::Shared
            && !matches!(slot.kind, SlotKind::Fence | SlotKind::FenceBlock)
        {
            self.shared_index(t, slot.addr).map(|i| match slot.kind {
                SlotKind::Load => Some(self.shared[i]),
                SlotKind::Store => {
                    self.shared[i] = slot.v1;
                    None
                }
                SlotKind::Cas => {
                    let old = self.shared[i];
                    if old == slot.v1 {
                        self.shared[i] = slot.v2;
                    }
                    Some(old)
                }
                SlotKind::Exch => {
                    let old = self.shared[i];
                    self.shared[i] = slot.v1;
                    Some(old)
                }
                SlotKind::Add => {
                    let old = self.shared[i];
                    self.shared[i] = old.wrapping_add(slot.v1);
                    Some(old)
                }
                SlotKind::Fence | SlotKind::FenceBlock => unreachable!("guarded above"),
            })
        } else {
            self.complete_global(t, slot)
        };
        match result {
            Err(e) => {
                self.status = Some(RunStatus::OutOfBounds(e));
            }
            Ok(value) => {
                if let Some(v) = value {
                    if slot.kind != SlotKind::Fence {
                        let th = &self.threads[t as usize];
                        let reg_idx = (th.regs_at + slot.dst as u32) as usize;
                        // Only land the value if this op still owns the
                        // destination register.
                        if self.pending[reg_idx] == slot.id {
                            self.regs[reg_idx] = v;
                            self.pending[reg_idx] = 0;
                        }
                    }
                }
            }
        }
        let th = &mut self.threads[t as usize];
        let len = th.win_len as usize;
        for k in j..len - 1 {
            th.win[k] = th.win[k + 1];
        }
        th.win_len -= 1;
    }

    /// Complete a global-space slot against memory and, on chips with an
    /// incoherent L1 ([`Chip::l1_weak`]), against the home SM's cache:
    ///
    /// * a **load** reads fresh memory, then may be served the stale
    ///   pre-write value instead when a live remote-written line covers
    ///   the address (one RNG draw, made only when the hit probability
    ///   is positive);
    /// * a **store** (or the write half of an atomic) records the
    ///   overwritten value as the stale line every *other* SM may still
    ///   see — the writing SM's own L1 is updated in place;
    /// * the **read half of an atomic always reads fresh**: RMWs are
    ///   performed at the shared L2, bypassing the L1, which is what
    ///   keeps lock words and counters exact even on incoherent chips;
    /// * a **device fence** refreshes the issuing SM's entire L1.
    ///
    /// With `l1` absent every arm reduces to the plain memory access.
    fn complete_global(&mut self, t: u32, slot: Slot) -> Result<Option<Word>, OobError> {
        let home = self.blocks[self.threads[t as usize].block as usize].home_sm;
        match slot.kind {
            SlotKind::Fence => {
                if let Some(l1) = self.l1.as_mut() {
                    l1.note_fence(home);
                    self.channels.fence_inval += 1;
                }
                Ok(None)
            }
            SlotKind::FenceBlock => Ok(None),
            SlotKind::Load => {
                let fresh = self.mem.read(slot.addr)?;
                if let Some(l1) = self.l1.as_mut() {
                    if let Some((stale, p)) = l1.stale_candidate(slot.addr, home, self.turn) {
                        if self.rng.gen::<f64>() < p {
                            self.channels.l1_stale += 1;
                            return Ok(Some(stale));
                        }
                    }
                }
                Ok(Some(fresh))
            }
            SlotKind::Store => {
                let old = if self.l1.is_some() {
                    Some(self.mem.read(slot.addr)?)
                } else {
                    None
                };
                self.mem.write(slot.addr, slot.v1)?;
                if let (Some(l1), Some(old)) = (self.l1.as_mut(), old) {
                    l1.record_write(slot.addr, old, home, self.turn);
                }
                Ok(None)
            }
            SlotKind::Cas => {
                if self.l1.is_some() {
                    self.channels.atomic_read_through += 1;
                }
                let old = self.mem.read(slot.addr)?;
                if old == slot.v1 {
                    self.mem.write(slot.addr, slot.v2)?;
                    if let Some(l1) = self.l1.as_mut() {
                        l1.record_write(slot.addr, old, home, self.turn);
                    }
                }
                Ok(Some(old))
            }
            SlotKind::Exch => {
                if self.l1.is_some() {
                    self.channels.atomic_read_through += 1;
                }
                let old = self.mem.read(slot.addr)?;
                self.mem.write(slot.addr, slot.v1)?;
                if let Some(l1) = self.l1.as_mut() {
                    l1.record_write(slot.addr, old, home, self.turn);
                }
                Ok(Some(old))
            }
            SlotKind::Add => {
                if self.l1.is_some() {
                    self.channels.atomic_read_through += 1;
                }
                let old = self.mem.read(slot.addr)?;
                self.mem.write(slot.addr, old.wrapping_add(slot.v1))?;
                if let Some(l1) = self.l1.as_mut() {
                    l1.record_write(slot.addr, old, home, self.turn);
                }
                Ok(Some(old))
            }
        }
    }

    // -- instruction execution ---------------------------------------------

    fn reg_ready(&self, t: u32, r: Reg) -> bool {
        let th = &self.threads[t as usize];
        self.pending[(th.regs_at + r as u32) as usize] == 0
    }

    fn read_reg(&self, t: u32, r: Reg) -> Word {
        let th = &self.threads[t as usize];
        self.regs[(th.regs_at + r as u32) as usize]
    }

    fn write_reg(&mut self, t: u32, r: Reg, v: Word) {
        let th = &self.threads[t as usize];
        let idx = (th.regs_at + r as u32) as usize;
        self.regs[idx] = v;
        self.pending[idx] = 0;
    }

    fn stall_on(&mut self, t: u32, r: Reg) {
        let th = &mut self.threads[t as usize];
        th.stalled = true;
        th.stalled_reg = r;
    }

    /// Require registers ready; returns false (and stalls) otherwise.
    fn need(&mut self, t: u32, rs: &[Reg]) -> bool {
        for &r in rs {
            if !self.reg_ready(t, r) {
                self.stall_on(t, r);
                return false;
            }
        }
        true
    }

    fn push_slot(&mut self, t: u32, slot: Slot) -> bool {
        let len = self.threads[t as usize].win_len as usize;
        if len == self.chip.window {
            // Window full: force the head out first. A stalling fence at
            // the head blocks issue this turn.
            let head = self.threads[t as usize].win[0];
            if head.stall > 0 {
                self.threads[t as usize].win[0].stall -= 1;
                return false;
            }
            self.complete_slot(t, 0);
            if self.status.is_some() {
                return false;
            }
        }
        let th = &mut self.threads[t as usize];
        let len = th.win_len as usize;
        th.win[len] = slot;
        th.win_len += 1;
        true
    }

    /// Record contention-tracker state for a global access issue: a
    /// back-to-back transition when the previous access is within the
    /// gap, or a loop-boundary (last/first) event when it is not.
    fn note_global_issue(&mut self, t: u32, addr: u32, is_store: bool) {
        let channel = self.chip.channel_of(addr);
        let th = &self.threads[t as usize];
        let within_gap = th.icount.wrapping_sub(th.last_icount) <= TRANSITION_GAP;
        let transition = (th.has_last && th.last_channel == channel && within_gap)
            .then_some((th.last_is_store, is_store));
        if th.has_last && !within_gap {
            let (pa, ps) = (th.last_addr, th.last_is_store);
            self.mem
                .note_boundary(self.chip, pa, ps, addr, is_store, self.turn);
        }
        self.mem
            .note_access(self.chip, addr, is_store, transition, self.turn);
        let th = &mut self.threads[t as usize];
        th.has_last = true;
        th.last_channel = channel;
        th.last_addr = addr;
        th.last_is_store = is_store;
        th.last_icount = th.icount;
    }

    fn shared_index(&self, t: u32, addr: u32) -> Result<usize, OobError> {
        if addr >= self.spec.shared_words {
            return Err(OobError {
                addr,
                len: self.spec.shared_words,
            });
        }
        let b = self.threads[t as usize].block as usize;
        Ok((self.blocks[b].shared_at + addr) as usize)
    }

    /// Record a shared-space access issue on the owning block's traffic
    /// tracker (the feed of the shared contention factor χ).
    fn note_shared_issue(&mut self, t: u32, reads: bool, writes: bool) {
        let chip = self.chip;
        let b = self.threads[t as usize].block as usize;
        self.blocks[b].note_shared(chip, reads, writes, self.turn);
    }

    fn fresh_op_id(&mut self) -> u32 {
        let id = self.next_op_id;
        self.next_op_id += 1;
        id
    }

    fn halt_thread(&mut self, t: u32) {
        let b = self.threads[t as usize].block;
        self.threads[t as usize].state = TState::HaltDrain;
        self.blocks[b as usize].alive -= 1;
        if self.blocks[b as usize].waiting > 0 {
            // Some block-mates are at a barrier this thread will never
            // reach: barrier divergence.
            self.status = Some(RunStatus::BarrierDivergence);
            return;
        }
        // Fast path: if the window is already empty the thread dies now.
        if self.threads[t as usize].win_len == 0 {
            self.threads[t as usize].state = TState::Dead;
            self.on_thread_dead(t);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(&mut self, t: u32) {
        let th = &self.threads[t as usize];
        let gi = th.group as usize;
        let pc = th.pc as usize;
        let program: &Arc<Program> = &self.spec.groups[gi].program;
        if pc >= program.insts.len() {
            self.halt_thread(t);
            return;
        }
        let inst = program.insts[pc];
        let mut next_pc = pc as u32 + 1;
        match inst {
            Inst::Const { dst, value } => {
                if !self.need(t, &[dst]) {
                    return;
                }
                self.write_reg(t, dst, value);
            }
            Inst::Mov { dst, src } => {
                if !self.need(t, &[src, dst]) {
                    return;
                }
                let v = self.read_reg(t, src);
                self.write_reg(t, dst, v);
            }
            Inst::Bin { op, dst, a, b } => {
                if !self.need(t, &[a, b, dst]) {
                    return;
                }
                let va = self.read_reg(t, a);
                let vb = self.read_reg(t, b);
                self.write_reg(t, dst, eval_bin(op, va, vb));
            }
            Inst::Special { dst, sr } => {
                if !self.need(t, &[dst]) {
                    return;
                }
                let g = &self.spec.groups[gi];
                let th = &self.threads[t as usize];
                let v = match sr {
                    SpecialReg::Tid => th.tid,
                    SpecialReg::Bid => th.bid,
                    SpecialReg::BlockDim => g.threads_per_block,
                    SpecialReg::GridDim => g.blocks,
                    SpecialReg::Lane => th.tid % WARP_SIZE,
                    SpecialReg::GlobalTid => th.tid + th.bid * g.threads_per_block,
                };
                self.write_reg(t, dst, v);
            }
            Inst::Load { dst, space, addr } => {
                if !self.need(t, &[addr, dst]) {
                    return;
                }
                let a = self.read_reg(t, addr);
                match space {
                    Space::Shared => {
                        let i = match self.shared_index(t, a) {
                            Ok(i) => i,
                            Err(e) => {
                                self.status = Some(RunStatus::OutOfBounds(e));
                                return;
                            }
                        };
                        if self.shared_weak {
                            let id = self.fresh_op_id();
                            let slot = Slot {
                                kind: SlotKind::Load,
                                store_class: false,
                                space: Space::Shared,
                                addr: a,
                                line: self.chip.line_of(a),
                                v1: 0,
                                v2: 0,
                                dst,
                                id,
                                stall: 0,
                            };
                            if !self.push_slot(t, slot) {
                                return;
                            }
                            let th = &self.threads[t as usize];
                            let idx = (th.regs_at + dst as u32) as usize;
                            self.pending[idx] = id;
                            self.note_shared_issue(t, true, false);
                        } else {
                            let v = self.shared[i];
                            self.write_reg(t, dst, v);
                        }
                    }
                    Space::Global => {
                        let id = self.fresh_op_id();
                        let slot = Slot {
                            kind: SlotKind::Load,
                            store_class: false,
                            space: Space::Global,
                            addr: a,
                            line: self.chip.line_of(a),
                            v1: 0,
                            v2: 0,
                            dst,
                            id,
                            stall: 0,
                        };
                        if !self.push_slot(t, slot) {
                            return;
                        }
                        let th = &self.threads[t as usize];
                        let idx = (th.regs_at + dst as u32) as usize;
                        self.pending[idx] = id;
                        self.note_global_issue(t, a, false);
                    }
                }
            }
            Inst::Store { space, addr, src } => {
                if !self.need(t, &[addr, src]) {
                    return;
                }
                let a = self.read_reg(t, addr);
                let v = self.read_reg(t, src);
                match space {
                    Space::Shared => {
                        let i = match self.shared_index(t, a) {
                            Ok(i) => i,
                            Err(e) => {
                                self.status = Some(RunStatus::OutOfBounds(e));
                                return;
                            }
                        };
                        if self.shared_weak {
                            let id = self.fresh_op_id();
                            let slot = Slot {
                                kind: SlotKind::Store,
                                store_class: true,
                                space: Space::Shared,
                                addr: a,
                                line: self.chip.line_of(a),
                                v1: v,
                                v2: 0,
                                dst: 0,
                                id,
                                stall: 0,
                            };
                            if !self.push_slot(t, slot) {
                                return;
                            }
                            self.note_shared_issue(t, false, true);
                        } else {
                            self.shared[i] = v;
                        }
                    }
                    Space::Global => {
                        let id = self.fresh_op_id();
                        let slot = Slot {
                            kind: SlotKind::Store,
                            store_class: true,
                            space: Space::Global,
                            addr: a,
                            line: self.chip.line_of(a),
                            v1: v,
                            v2: 0,
                            dst: 0,
                            id,
                            stall: 0,
                        };
                        if !self.push_slot(t, slot) {
                            return;
                        }
                        self.note_global_issue(t, a, true);
                    }
                }
            }
            Inst::AtomicCas {
                dst,
                space,
                addr,
                cmp,
                val,
            } => {
                if !self.need(t, &[addr, cmp, val, dst]) {
                    return;
                }
                let a = self.read_reg(t, addr);
                let c = self.read_reg(t, cmp);
                let v = self.read_reg(t, val);
                if !self.issue_atomic(t, space, SlotKind::Cas, a, c, v, dst) {
                    return;
                }
            }
            Inst::AtomicExch {
                dst,
                space,
                addr,
                val,
            } => {
                if !self.need(t, &[addr, val, dst]) {
                    return;
                }
                let a = self.read_reg(t, addr);
                let v = self.read_reg(t, val);
                if !self.issue_atomic(t, space, SlotKind::Exch, a, v, 0, dst) {
                    return;
                }
            }
            Inst::AtomicAdd {
                dst,
                space,
                addr,
                val,
            } => {
                if !self.need(t, &[addr, val, dst]) {
                    return;
                }
                let a = self.read_reg(t, addr);
                let v = self.read_reg(t, val);
                if !self.issue_atomic(t, space, SlotKind::Add, a, v, 0, dst) {
                    return;
                }
            }
            Inst::Fence(level) => {
                let (kind, stall) = match level {
                    FenceLevel::Device => (SlotKind::Fence, self.chip.fence_stall),
                    FenceLevel::Block => (SlotKind::FenceBlock, self.chip.block_fence_stall),
                };
                let id = self.fresh_op_id();
                let slot = Slot {
                    kind,
                    store_class: false,
                    space: Space::Global,
                    addr: 0,
                    line: u32::MAX,
                    v1: 0,
                    v2: 0,
                    dst: 0,
                    id,
                    stall,
                };
                if !self.push_slot(t, slot) {
                    return;
                }
            }
            Inst::Barrier => {
                self.threads[t as usize].state = TState::BarrierDrain;
                self.threads[t as usize].pc = next_pc;
                self.threads[t as usize].icount += 1;
                self.instructions += 1;
                return;
            }
            Inst::Jump { target } => {
                next_pc = target as u32;
            }
            Inst::BranchZ { cond, target } => {
                if !self.need(t, &[cond]) {
                    return;
                }
                if self.read_reg(t, cond) == 0 {
                    next_pc = target as u32;
                }
            }
            Inst::BranchNZ { cond, target } => {
                if !self.need(t, &[cond]) {
                    return;
                }
                if self.read_reg(t, cond) != 0 {
                    next_pc = target as u32;
                }
            }
            Inst::Halt => {
                self.instructions += 1;
                self.halt_thread(t);
                return;
            }
        }
        if self.status.is_some() {
            return;
        }
        let th = &mut self.threads[t as usize];
        th.pc = next_pc;
        th.icount += 1;
        self.instructions += 1;
    }

    /// Issue an atomic. Global atomics enter the window; shared-space
    /// atomics do too on chips with a live shared reorder matrix (they
    /// stay indivisible — the read-modify-write happens in one completion
    /// step — but, like global atomics, do not order *other* accesses).
    /// With all-zero shared rates they complete immediately, the legacy
    /// strongly-ordered behaviour.
    #[allow(clippy::too_many_arguments)]
    fn issue_atomic(
        &mut self,
        t: u32,
        space: Space,
        kind: SlotKind,
        addr: u32,
        v1: Word,
        v2: Word,
        dst: Reg,
    ) -> bool {
        match space {
            Space::Shared => {
                let i = match self.shared_index(t, addr) {
                    Ok(i) => i,
                    Err(e) => {
                        self.status = Some(RunStatus::OutOfBounds(e));
                        return false;
                    }
                };
                if self.shared_weak {
                    let id = self.fresh_op_id();
                    let slot = Slot {
                        kind,
                        store_class: true,
                        space: Space::Shared,
                        addr,
                        line: self.chip.line_of(addr),
                        v1,
                        v2,
                        dst,
                        id,
                        stall: 0,
                    };
                    if !self.push_slot(t, slot) {
                        return false;
                    }
                    let th = &self.threads[t as usize];
                    let idx = (th.regs_at + dst as u32) as usize;
                    self.pending[idx] = id;
                    self.note_shared_issue(t, true, true);
                    return true;
                }
                let old = self.shared[i];
                match kind {
                    SlotKind::Cas => {
                        if old == v1 {
                            self.shared[i] = v2;
                        }
                    }
                    SlotKind::Exch => self.shared[i] = v1,
                    SlotKind::Add => self.shared[i] = old.wrapping_add(v1),
                    _ => unreachable!("issue_atomic called with non-atomic kind"),
                }
                self.write_reg(t, dst, old);
                true
            }
            Space::Global => {
                let id = self.fresh_op_id();
                let slot = Slot {
                    kind,
                    store_class: true,
                    space: Space::Global,
                    addr,
                    line: self.chip.line_of(addr),
                    v1,
                    v2,
                    dst,
                    id,
                    stall: 0,
                };
                if !self.push_slot(t, slot) {
                    return false;
                }
                let th = &self.threads[t as usize];
                let idx = (th.regs_at + dst as u32) as usize;
                self.pending[idx] = id;
                self.note_global_issue(t, addr, true);
                true
            }
        }
    }
}

/// Classify an (older, younger) store-class pair as a reorder kind.
#[inline]
fn classify(older_store: bool, younger_store: bool) -> ReorderKind {
    match (older_store, younger_store) {
        (true, true) => ReorderKind::StSt,
        (false, false) => ReorderKind::LdLd,
        (true, false) => ReorderKind::StLd,
        (false, true) => ReorderKind::LdSt,
    }
}

/// Evaluate a [`BinOp`] on two words with the simulator's exact
/// semantics (wrapping integer arithmetic, trap-free division, 5-bit
/// shift masks, IEEE-754 bit-pattern floats). Public so static analyses
/// can share the operational semantics instead of re-implementing them.
pub fn eval_bin(op: BinOp, a: Word, b: Word) -> Word {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or(0),
        BinOp::RemU => a.checked_rem(b).unwrap_or(0),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a << (b & 31),
        BinOp::Shr => a >> (b & 31),
        BinOp::MinU => a.min(b),
        BinOp::MaxU => a.max(b),
        BinOp::FAdd => from_f32(to_f32(a) + to_f32(b)),
        BinOp::FSub => from_f32(to_f32(a) - to_f32(b)),
        BinOp::FMul => from_f32(to_f32(a) * to_f32(b)),
        BinOp::FDiv => from_f32(to_f32(a) / to_f32(b)),
        BinOp::CmpEq => (a == b) as Word,
        BinOp::CmpNe => (a != b) as Word,
        BinOp::CmpLtU => (a < b) as Word,
        BinOp::CmpLeU => (a <= b) as Word,
        BinOp::CmpLtS => ((a as i32) < (b as i32)) as Word,
        BinOp::CmpLeS => ((a as i32) <= (b as i32)) as Word,
        BinOp::FCmpLt => (to_f32(a) < to_f32(b)) as Word,
    }
}

/// Fisher–Yates shuffle using the run's RNG (avoids pulling in the `rand`
/// `SliceRandom` trait for a single call site, and keeps the shuffle
/// order stable across `rand` versions).
fn shuffle<T>(xs: &mut [T], rng: &mut SmallRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;
    use crate::ir::builder::KernelBuilder;

    /// A chip with all weak behaviour disabled — in both memory spaces —
    /// so the simulator is sequentially consistent under this profile.
    fn sc_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    fn run_simple(program: Program, blocks: u32, tpb: u32, words: u32, seed: u64) -> RunResult {
        let mut gpu = Gpu::new(sc_chip());
        gpu.run(&LaunchSpec::app(program, blocks, tpb, words), seed)
    }

    #[test]
    fn every_thread_stores_its_gtid() {
        let mut b = KernelBuilder::new("gtid");
        let g = b.global_tid();
        b.store_global(g, g);
        let p = b.finish().unwrap();
        let r = run_simple(p, 4, 32, 128, 1);
        assert!(r.status.is_completed());
        for i in 0..128 {
            assert_eq!(r.word(i), i, "word {i}");
        }
    }

    #[test]
    fn alu_arithmetic() {
        let mut b = KernelBuilder::new("alu");
        let x = b.const_(10);
        let y = b.const_(3);
        let sum = b.add(x, y);
        let dif = b.sub(x, y);
        let prod = b.mul(x, y);
        let quot = b.div_u(x, y);
        let rem = b.rem_u(x, y);
        let a0 = b.const_(0);
        let a1 = b.const_(1);
        let a2 = b.const_(2);
        let a3 = b.const_(3);
        let a4 = b.const_(4);
        b.store_global(a0, sum);
        b.store_global(a1, dif);
        b.store_global(a2, prod);
        b.store_global(a3, quot);
        b.store_global(a4, rem);
        let p = b.finish().unwrap();
        let r = run_simple(p, 1, 1, 8, 7);
        assert_eq!(
            (r.word(0), r.word(1), r.word(2), r.word(3), r.word(4)),
            (13, 7, 30, 3, 1)
        );
    }

    #[test]
    fn float_math_via_bits() {
        let mut b = KernelBuilder::new("float");
        let x = b.const_f32(1.5);
        let y = b.const_f32(2.0);
        let s = b.fadd(x, y);
        let m = b.fmul(x, y);
        let a0 = b.const_(0);
        let a1 = b.const_(1);
        b.store_global(a0, s);
        b.store_global(a1, m);
        let p = b.finish().unwrap();
        let r = run_simple(p, 1, 1, 4, 3);
        assert_eq!(r.f32(0), 3.5);
        assert_eq!(r.f32(1), 3.0);
    }

    #[test]
    fn while_loop_sums() {
        // sum 0..10 into global[0] via a register accumulator.
        let mut b = KernelBuilder::new("loop");
        let acc = b.const_(0);
        let i = b.const_(0);
        let n = b.const_(10);
        let one = b.const_(1);
        b.while_(
            |b| b.lt_u(i, n),
            |b| {
                b.bin_into(acc, BinOp::Add, acc, i);
                b.bin_into(i, BinOp::Add, i, one);
            },
        );
        let a0 = b.const_(0);
        b.store_global(a0, acc);
        let p = b.finish().unwrap();
        let r = run_simple(p, 1, 1, 4, 5);
        assert_eq!(r.word(0), 45);
    }

    #[test]
    fn atomic_add_counts_all_threads() {
        let mut b = KernelBuilder::new("count");
        let a0 = b.const_(0);
        let one = b.const_(1);
        let _ = b.atomic_add_global(a0, one);
        let p = b.finish().unwrap();
        let r = run_simple(p, 4, 32, 4, 11);
        assert!(r.status.is_completed());
        assert_eq!(r.word(0), 128);
    }

    #[test]
    fn spinlock_mutual_exclusion_under_sc() {
        // Non-atomic increment under a spinlock: correct when the memory
        // model is strong.
        let mut b = KernelBuilder::new("mutex");
        let lock = b.const_(0);
        let cell = b.const_(64);
        b.spin_lock(lock);
        let v = b.load_global(cell);
        let one = b.const_(1);
        let v1 = b.add(v, one);
        b.store_global(cell, v1);
        b.unlock(lock);
        let p = b.finish().unwrap();
        for seed in 0..5 {
            let r = run_simple(p.clone(), 4, 8, 128, seed);
            assert!(r.status.is_completed());
            assert_eq!(r.word(64), 32, "seed {seed}");
        }
    }

    #[test]
    fn barrier_orders_shared_memory() {
        // Thread 0 writes shared[1]; all threads barrier; thread 1 copies
        // shared[1] to global. Requires barrier to work.
        let mut b = KernelBuilder::new("barrier");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        let a1 = b.const_(1);
        let v = b.const_(99);
        b.if_(is0, |b| {
            b.store_shared(a1, v);
        });
        b.barrier();
        let one = b.const_(1);
        let is1 = b.eq(tid, one);
        b.if_(is1, |b| {
            let got = b.load_shared(a1);
            b.store_global(zero, got);
        });
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 1, 32, 4);
        spec.shared_words = 8;
        for seed in 0..10 {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed());
            assert_eq!(r.word(0), 99, "seed {seed}");
        }
    }

    #[test]
    fn shared_atomic_add_counts_block_mates_only() {
        // Each block's 32 threads atomically bump shared[0]; lane 0
        // publishes the final count after a barrier. Shared memory is
        // per-block, so every block reports 32 — not 64.
        let mut b = KernelBuilder::new("shared-count");
        let a0 = b.const_(0);
        let one = b.const_(1);
        let _ = b.atomic_add_shared(a0, one);
        b.barrier();
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let v = b.load_shared(a0);
            let bid = b.bid();
            b.store_global(bid, v);
        });
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 2, 32, 8);
        spec.shared_words = 4;
        for seed in 0..5 {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed());
            assert_eq!((r.word(0), r.word(1)), (32, 32), "seed {seed}");
        }
    }

    #[test]
    fn barrier_divergence_detected() {
        // Half the block skips the barrier and exits.
        let mut b = KernelBuilder::new("diverge");
        let tid = b.tid();
        let half = b.const_(16);
        let low = b.lt_u(tid, half);
        b.if_(low, |b| {
            b.barrier();
        });
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let spec = LaunchSpec::app(p, 1, 32, 4);
        let mut saw_divergence = false;
        for seed in 0..20 {
            let r = gpu.run(&spec, seed);
            if r.status == RunStatus::BarrierDivergence {
                saw_divergence = true;
            }
        }
        assert!(saw_divergence);
    }

    #[test]
    fn timeout_reported() {
        // Infinite loop.
        let mut b = KernelBuilder::new("spin");
        let one = b.const_(1);
        b.while_(|b| b.mov(one), |_| {});
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 1, 1, 4);
        spec.max_turns = 10_000;
        let r = gpu.run(&spec, 0);
        assert_eq!(r.status, RunStatus::TimedOut);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = KernelBuilder::new("oob");
        let a = b.const_(1 << 20);
        let v = b.const_(1);
        b.store_global(a, v);
        let p = b.finish().unwrap();
        let r = run_simple(p, 1, 1, 16, 0);
        assert!(matches!(r.status, RunStatus::OutOfBounds(_)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = KernelBuilder::new("det");
        let a0 = b.const_(0);
        let one = b.const_(1);
        let _ = b.atomic_add_global(a0, one);
        let g = b.global_tid();
        b.store_global(g, g);
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(Chip::by_short("Titan").unwrap());
        let spec = LaunchSpec::app(p, 4, 32, 256);
        let a = gpu.run(&spec, 1234);
        let b2 = gpu.run(&spec, 1234);
        assert_eq!(a.memory, b2.memory);
        assert_eq!(a.total_turns, b2.total_turns);
        assert_eq!(a.bypasses, b2.bypasses);
        assert_eq!(a.channels, b2.channels);
    }

    #[test]
    fn init_values_applied() {
        let mut b = KernelBuilder::new("copy");
        let src = b.const_(0);
        let dst = b.const_(1);
        let v = b.load_global(src);
        b.store_global(dst, v);
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 1, 1, 4);
        spec.init = vec![(0, 77)];
        let r = gpu.run(&spec, 0);
        assert_eq!(r.word(1), 77);
    }

    #[test]
    fn fences_cost_cycles() {
        // The same kernel with many fences takes longer.
        fn kernel(fences: bool) -> Program {
            let mut b = KernelBuilder::new("f");
            let a0 = b.const_(0);
            let i = b.const_(0);
            let n = b.const_(20);
            let one = b.const_(1);
            b.while_(
                |b| b.lt_u(i, n),
                |b| {
                    b.store_global(a0, i);
                    if fences {
                        b.fence_device();
                    }
                    b.bin_into(i, BinOp::Add, i, one);
                },
            );
            b.finish().unwrap()
        }
        let mut gpu = Gpu::new(sc_chip());
        let plain = gpu.run(&LaunchSpec::app(kernel(false), 1, 32, 4), 5);
        let fenced = gpu.run(&LaunchSpec::app(kernel(true), 1, 32, 4), 5);
        assert!(
            fenced.app_turns > plain.app_turns * 2,
            "fenced {} vs plain {}",
            fenced.app_turns,
            plain.app_turns
        );
    }

    #[test]
    fn wave_scheduling_handles_oversubscription() {
        // More blocks than the occupancy limit admits at once.
        let mut b = KernelBuilder::new("wave");
        let g = b.global_tid();
        let bid = b.bid();
        let one = b.const_(1);
        let _ = b.mov(bid);
        let v = b.add(g, one);
        b.store_global(g, v);
        let p = b.finish().unwrap();
        let mut chip = sc_chip();
        chip.max_concurrent_threads = 64;
        let mut gpu = Gpu::new(chip);
        let r = gpu.run(&LaunchSpec::app(p, 16, 32, 512), 3);
        assert!(r.status.is_completed());
        for i in 0..512 {
            assert_eq!(r.word(i), i + 1);
        }
    }

    #[test]
    fn randomized_ids_still_cover_all_work() {
        let mut b = KernelBuilder::new("rand-ids");
        let g = b.global_tid();
        let one = b.const_(1);
        let v = b.add(g, one);
        b.store_global(g, v);
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        let mut spec = LaunchSpec::app(p, 4, 64, 256);
        spec.randomize_ids = true;
        let r = gpu.run(&spec, 99);
        assert!(r.status.is_completed());
        for i in 0..256 {
            assert_eq!(r.word(i), i + 1, "word {i}");
        }
    }

    #[test]
    fn stress_group_does_not_change_app_result_under_sc() {
        let mut b = KernelBuilder::new("app");
        let g = b.global_tid();
        b.store_global(g, g);
        let app = b.finish().unwrap();

        let mut s = KernelBuilder::new("stress");
        let base = b_stress_addr();
        let i = s.const_(0);
        let n = s.const_(50);
        let one = s.const_(1);
        let addr = s.const_(base);
        s.while_(
            |s| s.lt_u(i, n),
            |s| {
                let v = s.load_global(addr);
                s.store_global(addr, v);
                s.bin_into(i, BinOp::Add, i, one);
            },
        );
        let stress = s.finish().unwrap();

        let mut gpu = Gpu::new(sc_chip());
        let spec = LaunchSpec {
            groups: vec![
                KernelGroup {
                    program: Arc::new(app),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::App,
                },
                KernelGroup {
                    program: Arc::new(stress),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::Stress,
                },
            ],
            global_words: 1024,
            shared_words: 0,
            init_image: vec![],
            init: vec![],
            max_turns: 4_000_000,
            randomize_ids: false,
        };
        let r = gpu.run(&spec, 21);
        assert!(r.status.is_completed());
        for i in 0..64 {
            assert_eq!(r.word(i), i);
        }
        fn b_stress_addr() -> u32 {
            512
        }
    }

    /// A scoped MP kernel: lane 0 of warp 0 writes shared x then y
    /// (optionally fenced between), lane 0 of warp 1 reads y then x into
    /// global results, and every other lane hammers a shared scratchpad
    /// region with loads and stores — the intra-block pressure that feeds
    /// the shared contention factor.
    fn scoped_mp_kernel(fence: Option<FenceLevel>) -> Program {
        let mut b = KernelBuilder::new("scoped-mp");
        let lane = b.lane();
        let zero = b.const_(0);
        let is_lane0 = b.eq(lane, zero);
        b.if_else(
            is_lane0,
            |b| {
                let tid = b.tid();
                let warp = b.const_(32);
                let me = b.div_u(tid, warp);
                let zero = b.const_(0);
                let one = b.const_(1);
                let is_writer = b.eq(me, zero);
                let x = b.const_(0);
                let y = b.const_(64);
                let emit_fence = |b: &mut KernelBuilder| match fence {
                    Some(FenceLevel::Block) => b.fence_block(),
                    Some(FenceLevel::Device) => b.fence_device(),
                    None => {}
                };
                b.if_else(
                    is_writer,
                    |b| {
                        b.store_shared(x, one);
                        emit_fence(b);
                        b.store_shared(y, one);
                    },
                    |b| {
                        let r0 = b.load_shared(y);
                        emit_fence(b);
                        let r1 = b.load_shared(x);
                        let res0 = b.const_(0);
                        let res1 = b.const_(1);
                        b.store_global(res0, r0);
                        b.store_global(res1, r1);
                    },
                );
            },
            |b| {
                let tid = b.tid();
                let base = b.const_(128);
                let m = b.const_(64);
                let off = b.rem_u(tid, m);
                let addr = b.add(base, off);
                let i = b.reg();
                b.assign_const(i, 0);
                let n = b.const_(60);
                let one = b.const_(1);
                b.while_(
                    |b| b.lt_u(i, n),
                    |b| {
                        let v = b.load_shared(addr);
                        b.store_shared(addr, v);
                        b.bin_into(i, BinOp::Add, i, one);
                    },
                );
            },
        );
        b.finish().unwrap()
    }

    fn scoped_mp_weak_count(chip: Chip, fence: Option<FenceLevel>, seeds: u64) -> u32 {
        let p = scoped_mp_kernel(fence);
        let mut gpu = Gpu::new(chip);
        let mut spec = LaunchSpec::app(p, 1, 64, 16);
        spec.shared_words = 192;
        let mut weak = 0;
        for seed in 0..seeds {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed(), "seed {seed}: {:?}", r.status);
            if (r.word(0), r.word(1)) == (1, 0) {
                weak += 1;
            }
        }
        weak
    }

    #[test]
    fn shared_stores_reorder_under_intra_block_pressure() {
        // With the block's idle lanes hammering the shared scratchpad,
        // the scoped relaxation engine makes the writer's shared stores
        // complete out of order often enough for the reader to observe
        // flag-without-data.
        let weak = scoped_mp_weak_count(Chip::by_short("Titan").unwrap(), None, 200);
        assert!(weak > 0, "scoped MP never went weak under shared pressure");
    }

    #[test]
    fn block_fence_orders_shared_space() {
        // The same kernel with a __threadfence_block between each test
        // thread's shared accesses: the cheap fence is enough to forbid
        // the intra-block reordering entirely.
        let weak = scoped_mp_weak_count(
            Chip::by_short("Titan").unwrap(),
            Some(FenceLevel::Block),
            200,
        );
        assert_eq!(weak, 0, "fence_block must order shared-space accesses");
        // ...and so is the stronger device fence.
        let weak = scoped_mp_weak_count(
            Chip::by_short("Titan").unwrap(),
            Some(FenceLevel::Device),
            200,
        );
        assert_eq!(weak, 0);
    }

    #[test]
    fn sc_chip_keeps_shared_memory_strongly_ordered() {
        // sequentially_consistent() zeroes the shared-space matrix too:
        // the very kernel that goes weak on the Titan never does here.
        let weak = scoped_mp_weak_count(sc_chip(), None, 200);
        assert_eq!(weak, 0, "SC chip exhibited scoped weak behaviour");
    }

    #[test]
    fn zeroed_shared_rates_complete_immediately() {
        // With the shared matrix zeroed, shared accesses take the legacy
        // immediate path: a shared store is visible to a block-mate the
        // turn it issues, with no in-flight delay and no bypasses.
        let mut chip = Chip::by_short("Titan").unwrap();
        chip.shared_reorder.base = [0.0; 4];
        chip.shared_reorder.gain = [0.0; 4];
        assert!(!chip.shared_weak());
        let weak = scoped_mp_weak_count(chip, None, 120);
        assert_eq!(weak, 0);
    }

    #[test]
    fn block_fence_is_transparent_to_global_accesses() {
        // Two-level hierarchy: on a chip with extreme global reorder
        // rates, a block fence between two global stores does *not*
        // prevent the device-wide inversion — only a device fence does.
        fn kernel(level: FenceLevel) -> Program {
            let mut b = KernelBuilder::new("global-mp");
            let tid = b.tid();
            let zero = b.const_(0);
            let is0 = b.eq(tid, zero);
            b.if_(is0, |b| {
                let bid = b.bid();
                let zero = b.const_(0);
                let one = b.const_(1);
                let x = b.const_(0);
                let y = b.const_(64);
                let is_writer = b.eq(bid, zero);
                fn emit(b: &mut KernelBuilder, level: FenceLevel) {
                    match level {
                        FenceLevel::Block => b.fence_block(),
                        FenceLevel::Device => b.fence_device(),
                    }
                }
                b.if_else(
                    is_writer,
                    |b| {
                        b.store_global(x, one);
                        emit(b, level);
                        b.store_global(y, one);
                    },
                    |b| {
                        let r0 = b.load_global(y);
                        emit(b, level);
                        let r1 = b.load_global(x);
                        let res0 = b.const_(128);
                        let res1 = b.const_(129);
                        b.store_global(res0, r0);
                        b.store_global(res1, r1);
                    },
                );
            });
            b.finish().unwrap()
        }
        let mut chip = Chip::by_short("Titan").unwrap();
        chip.reorder.base = [0.9; 4];
        let mut gpu = Gpu::new(chip);
        let mut weak_block = 0;
        let mut weak_device = 0;
        for seed in 0..150 {
            let spec = LaunchSpec::app(kernel(FenceLevel::Block), 2, 32, 256);
            let r = gpu.run(&spec, seed);
            if (r.word(128), r.word(129)) == (1, 0) {
                weak_block += 1;
            }
            let spec = LaunchSpec::app(kernel(FenceLevel::Device), 2, 32, 256);
            let r = gpu.run(&spec, seed);
            if (r.word(128), r.word(129)) == (1, 0) {
                weak_device += 1;
            }
        }
        assert!(
            weak_block > 0,
            "a block fence must not order global accesses"
        );
        assert_eq!(weak_device, 0, "a device fence must order everything");
    }

    #[test]
    fn shared_atomics_stay_indivisible_in_the_window() {
        // 64 block-mates atomically bump shared[0] while their windows
        // churn under self-generated pressure: the count must still be
        // exact — RMWs complete in one indivisible step.
        let mut b = KernelBuilder::new("shared-count-weak");
        let a0 = b.const_(0);
        let one = b.const_(1);
        let _ = b.atomic_add_shared(a0, one);
        b.barrier();
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let v = b.load_shared(a0);
            b.store_global(zero, v);
        });
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(Chip::by_short("Titan").unwrap());
        let mut spec = LaunchSpec::app(p, 1, 64, 8);
        spec.shared_words = 4;
        for seed in 0..20 {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed());
            assert_eq!(r.word(0), 64, "seed {seed}");
        }
    }

    #[test]
    fn sc_chip_never_bypasses() {
        let mut b = KernelBuilder::new("two-stores");
        let a0 = b.const_(0);
        let a1 = b.const_(64);
        let v = b.const_(1);
        b.store_global(a0, v);
        b.store_global(a1, v);
        let p = b.finish().unwrap();
        let mut gpu = Gpu::new(sc_chip());
        for seed in 0..50 {
            let r = gpu.run(&LaunchSpec::app(p.clone(), 2, 32, 128), seed);
            assert_eq!(r.bypasses, 0, "seed {seed}");
            assert!(r.channels.is_zero(), "seed {seed}: {}", r.channels);
        }
    }

    /// A global CoRR kernel across two blocks: block 0 writes x once,
    /// block 1 reads x twice (optionally with a device fence between)
    /// and publishes both reads. The in-flight window can never reorder
    /// the same-address loads, so any (1, 0) outcome comes from the
    /// incoherent-L1 channel.
    fn corr_kernel(fence: bool) -> Program {
        let mut b = KernelBuilder::new("corr");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let bid = b.bid();
            let zero = b.const_(0);
            let one = b.const_(1);
            let x = b.const_(0);
            let is_writer = b.eq(bid, zero);
            b.if_else(
                is_writer,
                |b| {
                    b.store_global(x, one);
                },
                |b| {
                    let r0 = b.load_global(x);
                    if fence {
                        b.fence_device();
                    }
                    let r1 = b.load_global(x);
                    let res0 = b.const_(128);
                    let res1 = b.const_(129);
                    b.store_global(res0, r0);
                    b.store_global(res1, r1);
                },
            );
        });
        b.finish().unwrap()
    }

    /// Write-heavy stress kernel: every thread hammers stores across a
    /// scratchpad region — the cross-SM writer traffic that pressures
    /// remote L1s without feeding the (load+store-gated) channel χ.
    fn write_stress_kernel() -> Program {
        let mut b = KernelBuilder::new("wstress");
        let g = b.global_tid();
        let base = b.const_(256);
        let m = b.const_(256);
        let off = b.rem_u(g, m);
        let addr = b.add(base, off);
        let i = b.reg();
        b.assign_const(i, 0);
        let n = b.const_(120);
        let one = b.const_(1);
        b.while_(
            |b| b.lt_u(i, n),
            |b| {
                b.store_global(addr, i);
                b.bin_into(i, BinOp::Add, i, one);
            },
        );
        b.finish().unwrap()
    }

    /// Count (1, 0) outcomes of the CoRR kernel under cross-SM write
    /// stress. The launch queue interleaves app and stress blocks, so
    /// the round-robin puts the writer on SM 0, stress on SMs 1 and 3,
    /// and the reader on SM 2 — reader and writer never share an L1.
    fn corr_weak_count(chip: Chip, fence: bool, stressed: bool, seeds: u64) -> u32 {
        let mut groups = vec![KernelGroup {
            program: Arc::new(corr_kernel(fence)),
            blocks: 2,
            threads_per_block: 32,
            role: Role::App,
        }];
        if stressed {
            groups.push(KernelGroup {
                program: Arc::new(write_stress_kernel()),
                blocks: 2,
                threads_per_block: 32,
                role: Role::Stress,
            });
        }
        let spec = LaunchSpec {
            groups,
            global_words: 1024,
            shared_words: 0,
            init_image: vec![],
            init: vec![],
            max_turns: 4_000_000,
            randomize_ids: false,
        };
        let mut gpu = Gpu::new(chip);
        let mut weak = 0;
        for seed in 0..seeds {
            let r = gpu.run(&spec, seed);
            assert!(r.status.is_completed(), "seed {seed}: {:?}", r.status);
            if (r.word(128), r.word(129)) == (1, 0) {
                weak += 1;
            }
        }
        weak
    }

    #[test]
    fn incoherent_l1_makes_corr_weak_under_cross_sm_writes() {
        let weak = corr_weak_count(Chip::by_short("C2075").unwrap(), false, true, 200);
        assert!(weak > 0, "CoRR never went weak on the incoherent-L1 chip");
    }

    #[test]
    fn device_fence_refreshes_the_readers_l1() {
        let weak = corr_weak_count(Chip::by_short("C2075").unwrap(), true, true, 200);
        assert_eq!(weak, 0, "a device fence between the reads must refresh");
    }

    #[test]
    fn coherent_l1_chips_keep_corr_strong() {
        // Kepler parts read-coherently through L2, and the SC control
        // zeroes the staleness rates explicitly.
        let weak = corr_weak_count(Chip::by_short("K20").unwrap(), false, true, 200);
        assert_eq!(weak, 0, "K20's L1 is coherent");
        let sc = Chip::by_short("C2075").unwrap().sequentially_consistent();
        let weak = corr_weak_count(sc, false, true, 200);
        assert_eq!(weak, 0, "sequentially_consistent() must zero the L1 too");
    }

    #[test]
    fn l1_staleness_needs_cross_sm_write_pressure() {
        // Without stress traffic the test's own single write stays far
        // below the pressure floor: native C2075 CoRR is coherent.
        let weak = corr_weak_count(Chip::by_short("C2075").unwrap(), false, false, 200);
        assert_eq!(weak, 0, "staleness must be pressure-provoked only");
    }

    #[test]
    fn zeroed_l1_rates_take_the_legacy_path() {
        // With the staleness rates zeroed, no L1 state is consulted at
        // all: the structural knobs (capacity, TTL) cannot influence the
        // run, so wildly different values produce bit-identical results.
        let mut a = Chip::by_short("C2075").unwrap();
        a.l1.stale_gain = 0.0;
        assert!(!a.l1_weak());
        let mut b = a.clone();
        b.l1.words = 1;
        b.l1.ttl_turns = 1;
        let mut gpu_a = Gpu::new(a);
        let mut gpu_b = Gpu::new(b);
        let spec = LaunchSpec {
            groups: vec![
                KernelGroup {
                    program: Arc::new(corr_kernel(false)),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::App,
                },
                KernelGroup {
                    program: Arc::new(write_stress_kernel()),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::Stress,
                },
            ],
            global_words: 1024,
            shared_words: 0,
            init_image: vec![],
            init: vec![],
            max_turns: 4_000_000,
            randomize_ids: false,
        };
        for seed in 0..40 {
            let ra = gpu_a.run(&spec, seed);
            let rb = gpu_b.run(&spec, seed);
            assert_eq!(ra.memory, rb.memory, "seed {seed}");
            assert_eq!(ra.total_turns, rb.total_turns, "seed {seed}");
            assert_eq!(ra.bypasses, rb.bypasses, "seed {seed}");
            assert_eq!(ra.channels, rb.channels, "seed {seed}");
            // The coherent (rate-zeroed) path never consults the L1, so
            // every L1-specific channel must stay exactly zero.
            assert_eq!(ra.channels.l1_stale, 0, "seed {seed}");
            assert_eq!(ra.channels.fence_inval, 0, "seed {seed}");
            assert_eq!(ra.channels.atomic_read_through, 0, "seed {seed}");
        }
    }

    #[test]
    fn channels_refine_the_bypass_aggregate() {
        // On an incoherent-L1 chip under cross-SM write stress the CoRR
        // kernel exercises both the window and the structural channel;
        // the per-channel split must always partition `bypasses`, and
        // the stale-hit counter must light up over enough seeds.
        let spec = LaunchSpec {
            groups: vec![
                KernelGroup {
                    program: Arc::new(corr_kernel(false)),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::App,
                },
                KernelGroup {
                    program: Arc::new(write_stress_kernel()),
                    blocks: 2,
                    threads_per_block: 32,
                    role: Role::Stress,
                },
            ],
            global_words: 1024,
            shared_words: 0,
            init_image: vec![],
            init: vec![],
            max_turns: 4_000_000,
            randomize_ids: false,
        };
        let mut gpu = Gpu::new(Chip::by_short("C2075").unwrap());
        let mut total = ChannelCounts::default();
        for seed in 0..200 {
            let r = gpu.run(&spec, seed);
            assert_eq!(
                r.bypasses,
                r.channels.window(),
                "seed {seed}: the split must partition the aggregate"
            );
            total.add(&r.channels);
        }
        assert!(total.l1_stale > 0, "stale hits never fired: {total}");
        // The fenced variant exercises the invalidation channel.
        let mut fence_spec = spec.clone();
        fence_spec.groups[0].program = Arc::new(corr_kernel(true));
        let r = gpu.run(&fence_spec, 7);
        assert!(r.channels.fence_inval > 0, "device fence not counted");
    }
}
