//! Litmus run outcomes and histograms.

use crate::LitmusTest;
use std::collections::BTreeMap;
use std::fmt;

/// The observed registers of one litmus execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitmusOutcome {
    /// `r1` as defined in Fig. 2.
    pub r1: u32,
    /// `r2` as defined in Fig. 2.
    pub r2: u32,
    /// Whether this is the test's weak outcome.
    pub weak: bool,
}

/// A histogram of `(r1, r2)` outcomes over many executions, in the style
/// of the `litmus` tool's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<(u32, u32), u64>,
    weak: u64,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: LitmusOutcome) {
        *self.counts.entry((outcome.r1, outcome.r2)).or_insert(0) += 1;
        self.total += 1;
        if outcome.weak {
            self.weak += 1;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
        self.weak += other.weak;
    }

    /// Number of weak outcomes.
    pub fn weak(&self) -> u64 {
        self.weak
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weak outcomes as a fraction of total (0 when empty).
    pub fn weak_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.weak as f64 / self.total as f64
        }
    }

    /// Count for a specific `(r1, r2)` outcome.
    pub fn count(&self, r1: u32, r2: u32) -> u64 {
        self.counts.get(&(r1, r2)).copied().unwrap_or(0)
    }

    /// Iterate over `((r1, r2), count)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Render with the weak outcome of `test` flagged `*`, litmus-style.
    pub fn display_for(&self, test: LitmusTest) -> String {
        let mut s = String::new();
        for ((r1, r2), n) in self.iter() {
            let flag = if test.is_weak(r1, r2) { "*" } else { " " };
            s.push_str(&format!("{flag} r1={r1} r2={r2} : {n}\n"));
        }
        s.push_str(&format!(
            "weak: {} / {} ({:.2}%)\n",
            self.weak,
            self.total,
            100.0 * self.weak_rate()
        ));
        s
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ((r1, r2), n) in self.iter() {
            writeln!(f, "r1={r1} r2={r2} : {n}")?;
        }
        writeln!(f, "weak: {} / {}", self.weak, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(r1: u32, r2: u32, weak: bool) -> LitmusOutcome {
        LitmusOutcome { r1, r2, weak }
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(o(1, 0, true));
        h.record(o(1, 1, false));
        h.record(o(1, 0, true));
        assert_eq!(h.count(1, 0), 2);
        assert_eq!(h.count(1, 1), 1);
        assert_eq!(h.count(0, 0), 0);
        assert_eq!(h.weak(), 2);
        assert_eq!(h.total(), 3);
        assert!((h.weak_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let mut a = Histogram::new();
        a.record(o(0, 0, false));
        let mut b = Histogram::new();
        b.record(o(0, 0, false));
        b.record(o(1, 0, true));
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.weak(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_weak_rate_is_zero() {
        assert_eq!(Histogram::new().weak_rate(), 0.0);
    }

    #[test]
    fn display_flags_weak_outcome() {
        let mut h = Histogram::new();
        h.record(o(1, 0, true));
        h.record(o(0, 0, false));
        let s = h.display_for(LitmusTest::Mp);
        assert!(s.contains("* r1=1 r2=0"));
        assert!(s.contains("  r1=0 r2=0"));
    }
}
