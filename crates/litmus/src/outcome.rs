//! Litmus run outcomes and histograms, over N observer values.
//!
//! Until the generator subsystem landed, outcomes were hardwired to the
//! `(r1, r2)` register pair of the Fig. 2 trio. An outcome is now an
//! arbitrary-length vector of observed values — one entry per
//! [`Observer`](crate::Observer) of the instance — so the same histogram
//! machinery serves two-thread coherence tests and four-thread IRIW
//! alike.
//!
//! Each outcome also carries the [`ChannelCounts`] of the run that
//! produced it: how often each weakness channel (window bypass per
//! space, L1 stale hit, …) fired. The histogram folds these two ways —
//! raw event totals across every run ([`Histogram::channels`]), and a
//! per-outcome [`Provenance`] attribution of *weak* runs
//! ([`Histogram::provenance`]) whose buckets always sum to the
//! outcome's count. Both are pure counts merged commutatively, so they
//! are exactly as deterministic (and worker-count-invariant) as the
//! histogram itself.

use std::collections::BTreeMap;
use std::fmt;
use wmm_obs::{ChannelCounts, Provenance};

/// The observed values of one litmus execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusOutcome {
    /// One value per observer of the instance, in observer order.
    pub obs: Vec<u32>,
    /// Whether this outcome is outside the test's SC-reachable set.
    pub weak: bool,
    /// Per-channel weakness-event counts of the producing run.
    pub channels: ChannelCounts,
}

/// A histogram of observer-vector outcomes over many executions, in the
/// style of the `litmus` tool's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<Vec<u32>, u64>,
    weak: u64,
    total: u64,
    /// Raw channel-event totals summed over every recorded run.
    channels: ChannelCounts,
    /// Weak-run attribution per weak observer vector (only weak
    /// outcomes get an entry; its buckets sum to the vector's count).
    provenance: BTreeMap<Vec<u32>, Provenance>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: LitmusOutcome) {
        self.total += 1;
        self.channels.add(&outcome.channels);
        if outcome.weak {
            self.weak += 1;
            self.provenance
                .entry(outcome.obs.clone())
                .or_default()
                .attribute(&outcome.channels);
        }
        *self.counts.entry(outcome.obs).or_insert(0) += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (k, &v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
        self.weak += other.weak;
        self.channels.add(&other.channels);
        for (k, p) in &other.provenance {
            self.provenance.entry(k.clone()).or_default().add(p);
        }
    }

    /// Number of weak outcomes.
    pub fn weak(&self) -> u64 {
        self.weak
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weak outcomes as a fraction of total (0 when empty).
    pub fn weak_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.weak as f64 / self.total as f64
        }
    }

    /// Count for a specific observer vector.
    pub fn count(&self, obs: &[u32]) -> u64 {
        self.counts.get(obs).copied().unwrap_or(0)
    }

    /// Raw channel-event totals summed over every recorded run
    /// (weak and strong alike) — deterministic at a fixed seed.
    pub fn channels(&self) -> &ChannelCounts {
        &self.channels
    }

    /// Weak-run attribution for one observer vector — `None` unless
    /// that vector was recorded as a weak outcome. The returned
    /// buckets sum to [`Histogram::count`] for the vector.
    pub fn provenance(&self, obs: &[u32]) -> Option<&Provenance> {
        self.provenance.get(obs)
    }

    /// Iterate `(observer vector, provenance)` over the weak outcomes
    /// in sorted order.
    pub fn iter_provenance(&self) -> impl Iterator<Item = (&[u32], &Provenance)> {
        self.provenance.iter().map(|(k, v)| (k.as_slice(), v))
    }

    /// The attribution of every weak run, summed over all weak
    /// outcomes; its total always equals [`Histogram::weak`].
    pub fn provenance_total(&self) -> Provenance {
        let mut p = Provenance::default();
        for v in self.provenance.values() {
            p.add(v);
        }
        p
    }

    /// Iterate over `(observer vector, count)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], u64)> + '_ {
        self.counts.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Render with outcomes satisfying `is_weak` flagged `*`,
    /// litmus-style, labelling values with the provided observer names.
    pub fn display_flagged(
        &self,
        labels: &[String],
        mut is_weak: impl FnMut(&[u32]) -> bool,
    ) -> String {
        let mut s = String::new();
        for (obs, n) in self.iter() {
            let flag = if is_weak(obs) { "*" } else { " " };
            let cells: Vec<String> = obs
                .iter()
                .enumerate()
                .map(|(i, v)| match labels.get(i) {
                    Some(l) => format!("{l}={v}"),
                    None => format!("o{i}={v}"),
                })
                .collect();
            s.push_str(&format!("{flag} {} : {n}\n", cells.join(" ")));
        }
        s.push_str(&format!(
            "weak: {} / {} ({:.2}%)\n",
            self.weak,
            self.total,
            100.0 * self.weak_rate()
        ));
        s
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (obs, n) in self.iter() {
            let cells: Vec<String> = obs.iter().map(|v| v.to_string()).collect();
            writeln!(f, "({}) : {n}", cells.join(","))?;
        }
        writeln!(f, "weak: {} / {}", self.weak, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(obs: &[u32], weak: bool) -> LitmusOutcome {
        LitmusOutcome {
            obs: obs.to_vec(),
            weak,
            channels: ChannelCounts::default(),
        }
    }

    fn o_ch(obs: &[u32], weak: bool, channels: ChannelCounts) -> LitmusOutcome {
        LitmusOutcome {
            obs: obs.to_vec(),
            weak,
            channels,
        }
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(o(&[1, 0], true));
        h.record(o(&[1, 1], false));
        h.record(o(&[1, 0], true));
        assert_eq!(h.count(&[1, 0]), 2);
        assert_eq!(h.count(&[1, 1]), 1);
        assert_eq!(h.count(&[0, 0]), 0);
        assert_eq!(h.weak(), 2);
        assert_eq!(h.total(), 3);
        assert!((h.weak_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn vectors_of_any_width_are_keys() {
        let mut h = Histogram::new();
        h.record(o(&[1, 0, 1, 0], false));
        h.record(o(&[7], true));
        assert_eq!(h.count(&[1, 0, 1, 0]), 1);
        assert_eq!(h.count(&[7]), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = Histogram::new();
        a.record(o(&[0, 0], false));
        let mut b = Histogram::new();
        b.record(o(&[0, 0], false));
        b.record(o(&[1, 0], true));
        a.merge(&b);
        assert_eq!(a.count(&[0, 0]), 2);
        assert_eq!(a.weak(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_weak_rate_is_zero() {
        assert_eq!(Histogram::new().weak_rate(), 0.0);
    }

    #[test]
    fn display_flags_weak_outcome() {
        let mut h = Histogram::new();
        h.record(o(&[1, 0], true));
        h.record(o(&[0, 0], false));
        let labels = vec!["r0".to_string(), "r1".to_string()];
        let s = h.display_flagged(&labels, |obs| obs == [1, 0]);
        assert!(s.contains("* r0=1 r1=0"));
        assert!(s.contains("  r0=0 r1=0"));
    }

    #[test]
    fn channels_accumulate_over_all_runs() {
        let mut h = Histogram::new();
        let win = ChannelCounts {
            window_global: 3,
            ..Default::default()
        };
        h.record(o_ch(&[0, 0], false, win));
        h.record(o_ch(&[1, 0], true, win));
        assert_eq!(h.channels().window_global, 6);
        assert_eq!(h.channels().window(), 6);
    }

    #[test]
    fn provenance_tracks_only_weak_outcomes_and_sums_to_their_counts() {
        let mut h = Histogram::new();
        let win = ChannelCounts {
            window_global: 5,
            ..Default::default()
        };
        let stale = ChannelCounts {
            window_global: 5,
            l1_stale: 1,
            ..Default::default()
        };
        h.record(o_ch(&[1, 0], true, win));
        h.record(o_ch(&[1, 0], true, stale));
        h.record(o_ch(&[1, 1], false, win));
        assert!(h.provenance(&[1, 1]).is_none(), "strong outcome tracked");
        let p = h.provenance(&[1, 0]).expect("weak outcome untracked");
        assert_eq!(p.total(), h.count(&[1, 0]));
        assert_eq!(p.window_global, 1);
        assert_eq!(p.l1_stale, 1, "stale hit must win the attribution");
        assert_eq!(h.provenance_total().total(), h.weak());
    }

    #[test]
    fn merge_folds_channels_and_provenance_commutatively() {
        let win = ChannelCounts {
            window_global: 2,
            ..Default::default()
        };
        let mut a = Histogram::new();
        a.record(o_ch(&[1, 0], true, win));
        let mut b = Histogram::new();
        b.record(o_ch(&[1, 0], true, win));
        b.record(o_ch(&[0, 1], true, ChannelCounts::default()));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.channels().window_global, 4);
        assert_eq!(ab.provenance(&[1, 0]).unwrap().window_global, 2);
        assert_eq!(ab.provenance(&[0, 1]).unwrap().unattributed, 1);
        assert_eq!(ab.provenance_total().total(), ab.weak());
    }
}
