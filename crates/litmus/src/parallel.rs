//! Deterministic parallel work distribution for campaign workloads.
//!
//! Every repeat-the-experiment loop in this workspace — litmus and
//! application campaigns (`wmm_core::campaign::Campaign`), and the
//! tuning sweeps of `wmm_core::tuning` — has the same shape: `jobs`
//! independent indexed tasks whose randomness is derived from
//! `(base seed, index)` alone.
//! Results therefore do not depend on which thread executes which index,
//! and these helpers exploit that: they hand out indices in chunks from a
//! shared atomic counter (dynamic load balancing, no idle tail when task
//! durations vary) while the caller keeps bit-identical output for any
//! worker count.
//!
//! Two entry points:
//!
//! * [`parallel_map`] — one result per index, returned in index order;
//! * [`parallel_fold`] — worker-local mutable state (e.g. a reusable
//!   [`Gpu`](wmm_sim::exec::Gpu) plus an accumulator), returned per
//!   worker for a commutative merge.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested worker count: `0` means all available cores, and
/// the result is clamped to `[1, jobs]` so no worker starts with nothing
/// to do.
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = if requested == 0 { hw } else { requested };
    w.clamp(1, jobs.max(1))
}

/// Chunk size targeting ~4 claims per worker: large enough to amortise
/// the atomic claim, small enough to balance uneven task durations.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil(workers * 4).max(1)
}

/// Apply `f` to every index in `0..jobs` using `workers` threads and
/// return the results in index order.
///
/// `f` must be pure up to its index (its output independent of execution
/// order); all callers in this workspace guarantee that by deriving all
/// randomness from `(base_seed, index)`.
pub fn parallel_map<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let chunk = chunk_size(jobs, workers);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs {
                            break;
                        }
                        for i in start..(start + chunk).min(jobs) {
                            out.push((i, f(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("parallel_map worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

/// Process every index in `0..jobs` with worker-local state: each worker
/// creates one `S` via `init`, folds its claimed indices into it via
/// `step`, and the per-worker states are returned (in an unspecified
/// order — merge them commutatively).
///
/// This is the right shape when per-index work needs an expensive
/// reusable resource, like the simulator instance litmus campaigns run
/// on.
pub fn parallel_fold<S, I, F>(workers: usize, jobs: usize, init: I, step: F) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    if workers <= 1 || jobs <= 1 {
        let mut state = init();
        for i in 0..jobs {
            step(&mut state, i);
        }
        return vec![state];
    }
    let chunk = chunk_size(jobs, workers);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs {
                            break;
                        }
                        for i in start..(start + chunk).min(jobs) {
                            step(&mut state, i);
                        }
                    }
                    state
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_fold worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_uses_cores_capped_by_jobs() {
        assert_eq!(resolve_workers(0, 1), 1);
        assert!(resolve_workers(0, 1_000_000) >= 1);
        assert_eq!(resolve_workers(5, 3), 3);
        assert_eq!(resolve_workers(5, 0), 1);
        assert_eq!(resolve_workers(2, 100), 2);
    }

    #[test]
    fn map_preserves_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = parallel_map(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        assert!(parallel_map(4, 0, |i| i).is_empty());
        assert_eq!(parallel_map(4, 1, |i| i + 7), vec![7]);
        assert_eq!(parallel_map(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn fold_visits_every_index_once() {
        for workers in [1, 2, 4, 9] {
            let states = parallel_fold(workers, 257, Vec::new, |v: &mut Vec<usize>, i| v.push(i));
            assert!(states.len() <= workers.max(1));
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..257).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fold_sum_is_worker_count_independent() {
        let expected: u64 = (0..1000u64).map(|i| i * 3 + 1).sum();
        for workers in [1, 2, 8] {
            let states = parallel_fold(workers, 1000, || 0u64, |acc, i| *acc += i as u64 * 3 + 1);
            assert_eq!(states.into_iter().sum::<u64>(), expected);
        }
    }

    #[test]
    fn chunks_cover_without_overlap() {
        // chunk_size must never be zero and must tile the job range.
        for jobs in [1usize, 2, 7, 64, 1001] {
            for workers in [1usize, 2, 5, 32] {
                let c = chunk_size(jobs, workers);
                assert!(c >= 1);
                assert!(c * workers * 4 >= jobs);
            }
        }
    }
}
