//! Single-execution litmus machinery: run one instance alongside
//! stressing blocks, and the seed-mixing function every campaign's
//! per-run determinism is built on.
//!
//! The repeat-`C`-times campaign loop that used to live here
//! (`run_many` and its `RunManyConfig`) is now the unified campaign
//! facade in `wmm-core` (`wmm_core::campaign::CampaignBuilder`), which
//! executes every workload — litmus instances, applications, tuning
//! sweeps, the generated suite — on [`crate::parallel`] with stress
//! artifacts built once per environment. This module keeps the
//! crate-level primitives that facade (and any bespoke driver) builds
//! on.

use crate::{LitmusInstance, LitmusOutcome};
use wmm_sim::exec::{Gpu, KernelGroup};
use wmm_sim::Word;

/// Stressing blocks plus the global-memory initialisation they need
/// (e.g. the systematic strategy's location table).
pub type StressParts = (Vec<KernelGroup>, Vec<(u32, Word)>);

/// Execute one litmus instance alongside the given stressing blocks.
///
/// The outcome vector is read back per the instance's observers —
/// register observers from the result region, final-memory observers
/// from the drained memory image — and flagged weak iff it is absent
/// from the instance's SC-reachable set.
pub fn run_instance(
    gpu: &mut Gpu,
    inst: &LitmusInstance,
    stress: StressParts,
    randomize_ids: bool,
    seed: u64,
) -> LitmusOutcome {
    let (groups, init) = stress;
    let spec = inst.launch(groups, init, randomize_ids);
    let result = gpu.run(&spec, seed);
    let obs = inst.observe(&result);
    let weak = inst.is_weak(&obs);
    LitmusOutcome {
        obs,
        weak,
        channels: result.channels,
    }
}

/// Mix a base seed and a run index into an independent per-run seed
/// (SplitMix64 finaliser). Run `i` of every campaign in this workspace
/// derives all of its randomness from `mix_seed(base_seed, i)` alone,
/// which is what makes campaign results independent of how runs are
/// spread across worker threads.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::mp_instance;
    use crate::LitmusLayout;
    use wmm_sim::chip::Chip;

    #[test]
    fn mix_seed_spreads() {
        let s: std::collections::HashSet<u64> = (0..1000).map(|i| mix_seed(42, i)).collect();
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn run_instance_is_deterministic_in_spec_and_seed() {
        let chip = Chip::by_short("Titan").unwrap();
        let inst = mp_instance(LitmusLayout::standard(64, 4096));
        let mut gpu = Gpu::new(chip);
        let a = run_instance(&mut gpu, &inst, (Vec::new(), Vec::new()), false, 9);
        let b = run_instance(&mut gpu, &inst, (Vec::new(), Vec::new()), false, 9);
        assert_eq!(a, b);
        assert_eq!(a.obs.len(), inst.observers.len());
    }

    #[test]
    fn weak_flag_matches_instance_predicate() {
        let chip = Chip::by_short("K20").unwrap();
        let inst = mp_instance(LitmusLayout::standard(64, 4096));
        let mut gpu = Gpu::new(chip);
        for seed in 0..20 {
            let out = run_instance(&mut gpu, &inst, (Vec::new(), Vec::new()), false, seed);
            assert_eq!(out.weak, inst.is_weak(&out.obs));
        }
    }
}
