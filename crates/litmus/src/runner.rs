//! Repeated litmus execution, sequential or parallel.
//!
//! The paper runs each test configuration `C = 1000` times and counts
//! weak outcomes. [`run_many`] does the same, deterministically: run `i`
//! derives its RNG from `base_seed` and `i` alone, so results are
//! reproducible regardless of how runs are spread across worker threads.

use crate::{Histogram, LitmusInstance, LitmusOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmm_sim::chip::Chip;
use wmm_sim::exec::{Gpu, KernelGroup};
use wmm_sim::Word;

/// Stressing blocks plus the global-memory initialisation they need
/// (e.g. the systematic strategy's location table).
pub type StressParts = (Vec<KernelGroup>, Vec<(u32, Word)>);

/// Execute one litmus instance alongside the given stressing blocks.
///
/// The outcome vector is read back per the instance's observers —
/// register observers from the result region, final-memory observers
/// from the drained memory image — and flagged weak iff it is absent
/// from the instance's SC-reachable set.
pub fn run_instance(
    gpu: &mut Gpu,
    inst: &LitmusInstance,
    stress: StressParts,
    randomize_ids: bool,
    seed: u64,
) -> LitmusOutcome {
    let (groups, init) = stress;
    let spec = inst.launch(groups, init, randomize_ids);
    let result = gpu.run(&spec, seed);
    let obs = inst.observe(&result);
    let weak = inst.is_weak(&obs);
    LitmusOutcome { obs, weak }
}

/// Configuration for [`run_many`].
#[derive(Debug, Clone, Copy)]
pub struct RunManyConfig {
    /// Number of executions (the paper's `C`).
    pub count: u32,
    /// Seed from which each run's randomness is derived.
    pub base_seed: u64,
    /// Apply thread-id randomisation to the test blocks.
    pub randomize_ids: bool,
    /// Worker threads (0 ⇒ all available cores).
    pub parallelism: usize,
}

impl Default for RunManyConfig {
    fn default() -> Self {
        RunManyConfig {
            count: 100,
            base_seed: 0,
            randomize_ids: false,
            parallelism: 0,
        }
    }
}

/// Mix a base seed and a run index into an independent per-run seed
/// (SplitMix64 finaliser).
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run a litmus instance `cfg.count` times, each execution with freshly
/// generated stressing blocks from `make_stress` (the paper randomises
/// the number of stressing threads per execution), and aggregate the
/// outcome histogram.
///
/// Deterministic in `(inst, cfg, make_stress)`: run `i` derives all of
/// its randomness from [`mix_seed`]`(cfg.base_seed, i)`, and histogram
/// merging is commutative, so any `cfg.parallelism` — including `0`
/// ("all cores") on machines with different core counts — reports
/// identical totals. Workers claim run indices dynamically in chunks
/// (see [`crate::parallel`]), each reusing one simulator instance.
pub fn run_many<F>(
    chip: &Chip,
    inst: &LitmusInstance,
    make_stress: F,
    cfg: RunManyConfig,
) -> Histogram
where
    F: Fn(&mut SmallRng) -> StressParts + Sync,
{
    let workers = crate::parallel::resolve_workers(cfg.parallelism, cfg.count as usize);
    let shards = crate::parallel::parallel_fold(
        workers,
        cfg.count as usize,
        || (Gpu::new(chip.clone()), Histogram::new()),
        |(gpu, h), i| h.record(run_one(gpu, inst, &make_stress, cfg, i as u64)),
    );
    let mut merged = Histogram::new();
    for (_, shard) in &shards {
        merged.merge(shard);
    }
    merged
}

fn run_one<F>(
    gpu: &mut Gpu,
    inst: &LitmusInstance,
    make_stress: &F,
    cfg: RunManyConfig,
    index: u64,
) -> LitmusOutcome
where
    F: Fn(&mut SmallRng) -> StressParts + Sync,
{
    let mut rng = SmallRng::seed_from_u64(mix_seed(cfg.base_seed, index));
    let stress = make_stress(&mut rng);
    let seed = rng.gen();
    run_instance(gpu, inst, stress, cfg.randomize_ids, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::mp_instance;
    use crate::LitmusLayout;

    fn strong_chip() -> Chip {
        let mut c = Chip::by_short("K20").unwrap();
        c.reorder.base = [0.0; 4];
        c.reorder.gain = [0.0; 4];
        c
    }

    #[test]
    fn no_weak_outcomes_under_sequential_consistency() {
        let chip = strong_chip();
        let inst = mp_instance(LitmusLayout::standard(64, 4096));
        let h = run_many(
            &chip,
            &inst,
            |_| (Vec::new(), Vec::new()),
            RunManyConfig {
                count: 200,
                base_seed: 7,
                ..Default::default()
            },
        );
        assert_eq!(h.weak(), 0, "MP: {h}");
        assert_eq!(h.total(), 200);
    }

    #[test]
    fn outcomes_are_interleavings_under_sc() {
        // Under SC, MP can produce (0,0), (1,1), (0,1) but never (1,0).
        let chip = strong_chip();
        let inst = mp_instance(LitmusLayout::standard(64, 4096));
        let h = run_many(
            &chip,
            &inst,
            |_| (Vec::new(), Vec::new()),
            RunManyConfig {
                count: 300,
                base_seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(h.count(&[1, 0]), 0);
        // The scheduler's randomness should produce at least two distinct
        // interleaving outcomes across 300 runs.
        let distinct = h.iter().count();
        assert!(distinct >= 2, "{h}");
    }

    #[test]
    fn run_many_is_deterministic() {
        let chip = Chip::by_short("Titan").unwrap();
        let inst = mp_instance(LitmusLayout::standard(32, 4096));
        let cfg = RunManyConfig {
            count: 64,
            base_seed: 11,
            parallelism: 4,
            ..Default::default()
        };
        let a = run_many(&chip, &inst, |_| (Vec::new(), Vec::new()), cfg);
        let b = run_many(&chip, &inst, |_| (Vec::new(), Vec::new()), cfg);
        assert_eq!(a, b);
        // ...and independent of the worker count entirely.
        let seq = run_many(
            &chip,
            &inst,
            |_| (Vec::new(), Vec::new()),
            RunManyConfig {
                parallelism: 1,
                ..cfg
            },
        );
        assert_eq!(a, seq);
    }

    #[test]
    fn mix_seed_spreads() {
        let s: std::collections::HashSet<u64> = (0..1000).map(|i| mix_seed(42, i)).collect();
        assert_eq!(s.len(), 1000);
    }
}
