//! # wmm-litmus — weak-memory litmus tests for the simulated GPU
//!
//! The MP (message passing), LB (load buffering) and SB (store buffering)
//! tests of the paper's Fig. 2, parameterised the way Sec. 3 requires:
//! by the *distance* `d` between the two communication locations, with
//! the communicating threads placed in distinct blocks and the locations
//! in global memory.
//!
//! The crate builds litmus [instances](LitmusInstance) (kernel + memory
//! layout + weak-outcome predicate) and [runs](run_many) them repeatedly —
//! optionally alongside caller-supplied stressing blocks — counting weak
//! behaviours. The tuning pipeline in `wmm-core` drives these runners for
//! its patch-finding, access-sequence and spread searches.

pub mod outcome;
pub mod parallel;
pub mod runner;

pub use outcome::{Histogram, LitmusOutcome};
pub use runner::{run_instance, run_many, RunManyConfig, StressParts};

use std::fmt;
use std::sync::Arc;
use wmm_sim::exec::{KernelGroup, LaunchSpec, Role};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::Program;

/// The three idiomatic weak-memory tests of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LitmusTest {
    /// Message passing: `T1: x←1; y←1` ∥ `T2: r1←y; r2←x`;
    /// weak when `r1 = 1 ∧ r2 = 0`.
    Mp,
    /// Load buffering: `T1: r1←x; y←1` ∥ `T2: r2←y; x←1`;
    /// weak when `r1 = 1 ∧ r2 = 1`.
    Lb,
    /// Store buffering: `T1: x←1; r1←y` ∥ `T2: y←1; r2←x`;
    /// weak when `r1 = 0 ∧ r2 = 0`.
    Sb,
}

impl LitmusTest {
    /// All three tests in the paper's order.
    pub const ALL: [LitmusTest; 3] = [LitmusTest::Mp, LitmusTest::Lb, LitmusTest::Sb];

    /// The paper's abbreviation.
    pub fn short(&self) -> &'static str {
        match self {
            LitmusTest::Mp => "MP",
            LitmusTest::Lb => "LB",
            LitmusTest::Sb => "SB",
        }
    }

    /// Is `(r1, r2)` the weak outcome for this test?
    pub fn is_weak(&self, r1: u32, r2: u32) -> bool {
        match self {
            LitmusTest::Mp => r1 == 1 && r2 == 0,
            LitmusTest::Lb => r1 == 1 && r2 == 1,
            LitmusTest::Sb => r1 == 0 && r2 == 0,
        }
    }
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

/// Memory layout of a litmus instance.
///
/// `x` sits at `comm_base` (keep it line-aligned so "distance below the
/// patch size" means "same line", as in the paper's plots); `y` sits
/// `distance` words later (adjacent when `distance = 0`). The observed
/// registers are written to `result_base` and `result_base + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitmusLayout {
    /// Address of `x` (word index in global memory).
    pub comm_base: u32,
    /// Distance `d` in words between the communication locations.
    pub distance: u32,
    /// Where the two observed registers are stored after the test.
    pub result_base: u32,
    /// Total words of global memory in the launch (must cover the
    /// scratchpad any stressing blocks target).
    pub global_words: u32,
}

impl LitmusLayout {
    /// A standard layout: `x` at word 0, results at word 1024, and
    /// `global_words` words of memory overall.
    pub fn standard(distance: u32, global_words: u32) -> Self {
        LitmusLayout {
            comm_base: 0,
            distance,
            result_base: 1024,
            global_words,
        }
    }

    /// Address of `y`.
    pub fn y_addr(&self) -> u32 {
        self.comm_base + self.distance.max(1)
    }

    /// Address of the start-alignment counter (see
    /// [`LitmusInstance::build`]).
    pub fn sync_addr(&self) -> u32 {
        self.result_base + 2
    }
}

/// A ready-to-run litmus test: program, layout and launch skeleton.
#[derive(Debug, Clone)]
pub struct LitmusInstance {
    /// Which idiom.
    pub test: LitmusTest,
    /// The memory layout.
    pub layout: LitmusLayout,
    /// The two-thread kernel (threads in distinct blocks).
    pub program: Arc<Program>,
}

impl LitmusInstance {
    /// Build the kernel for `test` under `layout`.
    ///
    /// The kernel launches as two blocks of one warp each; only lane 0 of
    /// each block participates (the paper's tests likewise use one active
    /// thread per block). Blocks are distinct so all communication is
    /// inter-block, through global memory.
    ///
    /// # Panics
    ///
    /// Panics if the layout places results inside the communication
    /// region or memory is too small.
    pub fn build(test: LitmusTest, layout: LitmusLayout) -> Self {
        assert!(
            layout.result_base > layout.y_addr(),
            "results must not overlap communication locations"
        );
        assert!(
            layout.global_words > layout.result_base + 2,
            "global memory too small for layout"
        );
        let mut b = KernelBuilder::new(format!("litmus-{}", test.short()));
        let tid = b.tid();
        let zero = b.const_(0);
        let is_lane0 = b.eq(tid, zero);
        b.if_(is_lane0, |b| {
            // Start alignment: both test threads rendezvous on a counter
            // before racing, maximising their temporal overlap (the GPU
            // LITMUS tool uses the same trick; without it most runs have
            // the two threads executing far apart in time).
            let sync = b.const_(layout.sync_addr());
            let one = b.const_(1);
            let two = b.const_(2);
            let _ = b.atomic_add_global(sync, one);
            b.while_(
                |b| {
                    let seen = b.load_global(sync);
                    b.ne(seen, two)
                },
                |_| {},
            );
            let bid = b.bid();
            let zero = b.const_(0);
            let is_t1 = b.eq(bid, zero);
            let x = b.const_(layout.comm_base);
            let y = b.const_(layout.y_addr());
            let one = b.const_(1);
            let res1 = b.const_(layout.result_base);
            let res2 = b.const_(layout.result_base + 1);
            match test {
                LitmusTest::Mp => {
                    b.if_else(
                        is_t1,
                        |b| {
                            b.store_global(x, one);
                            b.store_global(y, one);
                        },
                        |b| {
                            let r1 = b.load_global(y);
                            let r2 = b.load_global(x);
                            b.store_global(res1, r1);
                            b.store_global(res2, r2);
                        },
                    );
                }
                LitmusTest::Lb => {
                    b.if_else(
                        is_t1,
                        |b| {
                            let r1 = b.load_global(x);
                            b.store_global(y, one);
                            b.store_global(res1, r1);
                        },
                        |b| {
                            let r2 = b.load_global(y);
                            b.store_global(x, one);
                            b.store_global(res2, r2);
                        },
                    );
                }
                LitmusTest::Sb => {
                    b.if_else(
                        is_t1,
                        |b| {
                            b.store_global(x, one);
                            let r1 = b.load_global(y);
                            b.store_global(res1, r1);
                        },
                        |b| {
                            b.store_global(y, one);
                            let r2 = b.load_global(x);
                            b.store_global(res2, r2);
                        },
                    );
                }
            }
        });
        let program = b.finish().expect("litmus kernel is valid by construction");
        LitmusInstance {
            test,
            layout,
            program: Arc::new(program),
        }
    }

    /// The launch spec for this instance plus any stressing groups and
    /// the memory initialisation they require (e.g. a stress-location
    /// table).
    pub fn launch(
        &self,
        stress: Vec<KernelGroup>,
        init: Vec<(u32, wmm_sim::Word)>,
        randomize_ids: bool,
    ) -> LaunchSpec {
        let mut groups = vec![KernelGroup {
            program: Arc::clone(&self.program),
            blocks: 2,
            threads_per_block: 32,
            role: Role::App,
        }];
        groups.extend(stress);
        LaunchSpec {
            groups,
            global_words: self.layout.global_words,
            shared_words: 0,
            init_image: Vec::new(),
            init,
            max_turns: 400_000,
            randomize_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_predicates_match_fig_2() {
        assert!(LitmusTest::Mp.is_weak(1, 0));
        assert!(!LitmusTest::Mp.is_weak(1, 1));
        assert!(!LitmusTest::Mp.is_weak(0, 0));
        assert!(!LitmusTest::Mp.is_weak(0, 1));
        assert!(LitmusTest::Lb.is_weak(1, 1));
        assert!(!LitmusTest::Lb.is_weak(0, 1));
        assert!(LitmusTest::Sb.is_weak(0, 0));
        assert!(!LitmusTest::Sb.is_weak(1, 0));
    }

    #[test]
    fn layout_distance_zero_is_adjacent() {
        let l = LitmusLayout::standard(0, 4096);
        assert_eq!(l.y_addr(), 1);
        let l = LitmusLayout::standard(64, 4096);
        assert_eq!(l.y_addr(), 64);
    }

    #[test]
    fn instances_build_for_all_tests_and_distances() {
        for t in LitmusTest::ALL {
            for d in [0, 1, 31, 32, 64, 255] {
                let i = LitmusInstance::build(t, LitmusLayout::standard(d, 8192));
                assert!(i.program.len() > 8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "results must not overlap")]
    fn overlapping_results_rejected() {
        let l = LitmusLayout {
            comm_base: 0,
            distance: 2000,
            result_base: 1024,
            global_words: 8192,
        };
        let _ = LitmusInstance::build(LitmusTest::Mp, l);
    }
}
