//! # wmm-litmus — the weak-memory litmus runtime for the simulated GPU
//!
//! Generic litmus *instances* — a kernel, a memory layout, a set of
//! [observers](Observer) and the SC-reachable outcome set that defines
//! the weak predicate — plus the single-execution machinery
//! ([`run_instance`]) and the deterministic [`parallel`] layer that the
//! unified campaign facade in `wmm-core` (`wmm_core::campaign`) drives
//! to run them repeatedly and histogram the outcomes.
//!
//! Instances are *constructed* elsewhere: the `wmm-gen` crate enumerates
//! the classic communication-cycle shapes (MP, LB, SB, IRIW, …),
//! parameterised by the distance `d` between communication locations the
//! way Sec. 3 of the paper requires, and derives each instance's
//! `allowed` set with an exhaustive sequential-consistency oracle. This
//! crate deliberately contains no shape catalogue and no hardcoded weak
//! predicates — an outcome is weak exactly when it is absent from the
//! instance's SC set.

pub mod outcome;
pub mod parallel;
pub mod runner;

pub use outcome::{Histogram, LitmusOutcome};
pub use runner::{run_instance, StressParts};

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use wmm_sim::exec::{KernelGroup, LaunchSpec, Role, RunResult};
use wmm_sim::ir::Program;

/// Observer slots reserved after `result_base` (bounds the number of
/// reads a generated test may observe; the sync counter lives past them).
pub const MAX_OBSERVERS: u32 = 8;

/// Where the test threads of an instance sit relative to each other —
/// the paper's *scope* axis: weak behaviours depend on whether the
/// communicating threads share a block (and hence can communicate
/// through `Space::Shared`) or live in distinct blocks and communicate
/// through global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Placement {
    /// Every test thread is lane 0 of its own block — the classic
    /// inter-block layout; all communication is through global memory.
    InterBlock,
    /// All test threads share one block (test thread `t` is lane 0 of
    /// warp `t`), so the instance may communicate through the block's
    /// shared memory.
    IntraBlock,
}

impl Placement {
    /// The column label used by suite output (`"inter"` / `"intra"`).
    pub fn short(&self) -> &'static str {
        match self {
            Placement::InterBlock => "inter",
            Placement::IntraBlock => "intra",
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

impl std::str::FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            _ if s.eq_ignore_ascii_case("inter") => Ok(Placement::InterBlock),
            _ if s.eq_ignore_ascii_case("intra") => Ok(Placement::IntraBlock),
            other => Err(format!("unknown placement {other:?} (inter|intra)")),
        }
    }
}

/// Where one observed value of an outcome vector comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Observer {
    /// The value stored by the test's `k`-th read (in thread-major
    /// program order), written by the kernel to `result_base + k`.
    Reg(u32),
    /// The final memory value of communication location `k` (read from
    /// the drained memory image at [`LitmusLayout::loc_addr`]). Used by
    /// write-only shapes (2+2W, CoWW) and mixed shapes (S, R) whose
    /// outcome depends on which write to a location lands last.
    FinalMem(u32),
}

impl Observer {
    /// A short label for table and histogram output: `r{k}` for register
    /// observers, `m{k}` for final-memory observers.
    pub fn label(&self) -> String {
        match self {
            Observer::Reg(k) => format!("r{k}"),
            Observer::FinalMem(k) => format!("m{k}"),
        }
    }
}

/// Memory layout of a litmus instance.
///
/// Communication location `k` sits at `comm_base + k·max(d, 1)` — so at
/// `distance = 0` the locations are adjacent words (same line on every
/// chip), and the distance between consecutive locations is `d` words
/// otherwise, exactly the parameterisation the paper's plots sweep. The
/// observed read values are written to `result_base..result_base + k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LitmusLayout {
    /// Address of the first communication location (keep it line-aligned
    /// so "distance below the patch size" means "same line", as in the
    /// paper's plots).
    pub comm_base: u32,
    /// Distance `d` in words between consecutive communication locations.
    pub distance: u32,
    /// Where observed read values are stored after the test.
    pub result_base: u32,
    /// Total words of global memory in the launch (must cover the
    /// scratchpad any stressing blocks target).
    pub global_words: u32,
}

impl LitmusLayout {
    /// A standard layout: communication at word 0, results at word 1024,
    /// and `global_words` words of memory overall.
    pub fn standard(distance: u32, global_words: u32) -> Self {
        LitmusLayout {
            comm_base: 0,
            distance,
            result_base: 1024,
            global_words,
        }
    }

    /// Address of communication location `k`.
    pub fn loc_addr(&self, k: u32) -> u32 {
        self.comm_base + k * self.distance.max(1)
    }

    /// Address of the second location (`y` in the two-location tests).
    pub fn y_addr(&self) -> u32 {
        self.loc_addr(1)
    }

    /// Address of the start-alignment counter (see
    /// [`LitmusInstance::new`]), past the observer slots.
    pub fn sync_addr(&self) -> u32 {
        self.result_base + MAX_OBSERVERS
    }
}

/// A ready-to-run litmus test: program, layout, launch skeleton,
/// observers, and the SC-reachable outcome set its weak predicate is
/// derived from.
#[derive(Debug, Clone)]
pub struct LitmusInstance {
    /// The test's name (e.g. `"MP"`, `"IRIW"`), used in diagnostics.
    pub name: String,
    /// The memory layout.
    pub layout: LitmusLayout,
    /// The kernel (thread layout per [`LitmusInstance::placement`]).
    pub program: Arc<Program>,
    /// Number of test threads.
    pub threads: u32,
    /// Number of communication locations the kernel touches.
    pub locations: u32,
    /// Whether the test threads occupy distinct blocks or share one.
    pub placement: Placement,
    /// Words of per-block shared memory the launch must provide (0 for
    /// instances that only communicate through global memory).
    pub shared_words: u32,
    /// Where each entry of the outcome vector is observed.
    pub observers: Vec<Observer>,
    /// The set of outcome vectors reachable under sequential
    /// consistency. An observed outcome is *weak* iff it is not in this
    /// set — the predicate is derived, never hardcoded.
    pub allowed: Arc<BTreeSet<Vec<u32>>>,
}

impl LitmusInstance {
    /// Assemble an instance from parts, checking layout invariants.
    ///
    /// # Panics
    ///
    /// Panics if any of the `locations` communication locations reaches
    /// the result region, memory is too small, an observer references a
    /// location outside `locations`, or there are more register
    /// observers than [`MAX_OBSERVERS`].
    pub fn new(
        name: impl Into<String>,
        layout: LitmusLayout,
        program: Program,
        threads: u32,
        locations: u32,
        observers: Vec<Observer>,
        allowed: BTreeSet<Vec<u32>>,
    ) -> Self {
        Self::with_placement(
            name,
            layout,
            program,
            threads,
            locations,
            observers,
            allowed,
            Placement::InterBlock,
            0,
        )
    }

    /// Like [`LitmusInstance::new`], with an explicit thread placement
    /// and the per-block shared-memory budget scoped instances need.
    ///
    /// # Panics
    ///
    /// As [`LitmusInstance::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_placement(
        name: impl Into<String>,
        layout: LitmusLayout,
        program: Program,
        threads: u32,
        locations: u32,
        observers: Vec<Observer>,
        allowed: BTreeSet<Vec<u32>>,
        placement: Placement,
        shared_words: u32,
    ) -> Self {
        assert!(threads >= 1, "a litmus test needs at least one thread");
        assert!(
            locations >= 1,
            "a litmus test touches at least one location"
        );
        assert!(
            layout.loc_addr(locations - 1) < layout.result_base,
            "communication locations must sit below the result region"
        );
        for o in &observers {
            match o {
                Observer::Reg(k) => {
                    assert!(*k < MAX_OBSERVERS, "observer register {k} out of range")
                }
                Observer::FinalMem(k) => {
                    assert!(*k < locations, "observed location {k} out of range")
                }
            }
        }
        assert!(
            layout.global_words > layout.sync_addr(),
            "global memory too small for layout"
        );
        LitmusInstance {
            name: name.into(),
            layout,
            program: Arc::new(program),
            threads,
            locations,
            placement,
            shared_words,
            observers,
            allowed: Arc::new(allowed),
        }
    }

    /// Read this instance's outcome vector back from a finished run:
    /// register observers from the result region, final-memory
    /// observers from the drained memory image.
    pub fn observe(&self, result: &RunResult) -> Vec<u32> {
        self.observers
            .iter()
            .map(|o| match o {
                Observer::Reg(k) => result.word(self.layout.result_base + k),
                Observer::FinalMem(k) => result.word(self.layout.loc_addr(*k)),
            })
            .collect()
    }

    /// Is this outcome vector weak, i.e. unreachable under SC?
    pub fn is_weak(&self, obs: &[u32]) -> bool {
        !self.allowed.contains(obs)
    }

    /// A copy of this instance whose kernel's idle lanes hammer a
    /// `words`-word shared scratchpad for `iters` iterations — the
    /// intra-block analogue of launching global stressing blocks. Shared
    /// memory is unreachable from other blocks, so shared-space stress
    /// must ride inside the test's own block: the emitted intra-block
    /// kernels activate only lane 0 of each warp, and this derivation
    /// (via [`wmm_sim::ir::transform::with_lane_shared_stress`]) turns
    /// the remaining 31 lanes per warp into stressing threads. The
    /// scratchpad starts past the instance's own shared locations, so
    /// outcomes can shift only through contention, never through data
    /// interference.
    ///
    /// # Panics
    ///
    /// Panics on an inter-block instance: its non-zero lanes idle in
    /// *separate* blocks, whose shared traffic cannot pressure anything
    /// the test observes.
    pub fn with_shared_stress(&self, words: u32, iters: u32) -> LitmusInstance {
        assert_eq!(
            self.placement,
            Placement::IntraBlock,
            "shared-space stress requires an intra-block instance"
        );
        let program = wmm_sim::ir::transform::with_lane_shared_stress(
            &self.program,
            self.shared_words,
            words,
            iters,
        );
        LitmusInstance {
            program: Arc::new(program),
            shared_words: self.shared_words + words.max(1),
            ..self.clone()
        }
    }

    /// Labels for the outcome vector entries, observer order.
    pub fn labels(&self) -> Vec<String> {
        self.observers.iter().map(Observer::label).collect()
    }

    /// Render a histogram with this instance's weak outcomes flagged.
    pub fn display_histogram(&self, h: &Histogram) -> String {
        h.display_flagged(&self.labels(), |obs| self.is_weak(obs))
    }

    /// The launch spec for this instance plus any stressing groups and
    /// the memory initialisation they require (e.g. a stress-location
    /// table). Under [`Placement::InterBlock`] the test launches as
    /// `threads` blocks of one warp each with lane 0 active (the paper's
    /// layout — all communication inter-block, through global memory);
    /// under [`Placement::IntraBlock`] it launches as one block of
    /// `threads` warps, test thread `t` being lane 0 of warp `t`, so the
    /// threads may also communicate through the block's shared memory.
    pub fn launch(
        &self,
        stress: Vec<KernelGroup>,
        init: Vec<(u32, wmm_sim::Word)>,
        randomize_ids: bool,
    ) -> LaunchSpec {
        let (blocks, threads_per_block) = match self.placement {
            Placement::InterBlock => (self.threads, 32),
            Placement::IntraBlock => (1, self.threads * 32),
        };
        let mut groups = vec![KernelGroup {
            program: Arc::clone(&self.program),
            blocks,
            threads_per_block,
            role: Role::App,
        }];
        groups.extend(stress);
        LaunchSpec {
            groups,
            global_words: self.layout.global_words,
            shared_words: self.shared_words,
            init_image: Vec::new(),
            init,
            max_turns: 400_000,
            randomize_ids,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A hand-assembled MP instance for this crate's unit tests (the
    //! real construction path lives in `wmm-gen`; duplicating one tiny
    //! kernel here keeps the crate graph acyclic).

    use super::*;
    use wmm_sim::ir::builder::KernelBuilder;

    /// Build MP under `layout` with its SC set written out longhand.
    pub fn mp_instance(layout: LitmusLayout) -> LitmusInstance {
        let mut b = KernelBuilder::new("litmus-MP-test");
        let tid = b.tid();
        let zero = b.const_(0);
        let is_lane0 = b.eq(tid, zero);
        b.if_(is_lane0, |b| {
            let sync = b.const_(layout.sync_addr());
            let one = b.const_(1);
            let two = b.const_(2);
            let _ = b.atomic_add_global(sync, one);
            b.while_(
                |b| {
                    let seen = b.load_global(sync);
                    b.ne(seen, two)
                },
                |_| {},
            );
            let bid = b.bid();
            let zero = b.const_(0);
            let is_t0 = b.eq(bid, zero);
            let x = b.const_(layout.loc_addr(0));
            let y = b.const_(layout.loc_addr(1));
            let one = b.const_(1);
            let res0 = b.const_(layout.result_base);
            let res1 = b.const_(layout.result_base + 1);
            b.if_else(
                is_t0,
                |b| {
                    b.store_global(x, one);
                    b.store_global(y, one);
                },
                |b| {
                    let r0 = b.load_global(y);
                    let r1 = b.load_global(x);
                    b.store_global(res0, r0);
                    b.store_global(res1, r1);
                },
            );
        });
        let program = b.finish().expect("test kernel is valid");
        let allowed: BTreeSet<Vec<u32>> =
            [vec![0, 0], vec![0, 1], vec![1, 1]].into_iter().collect();
        LitmusInstance::new(
            "MP",
            layout,
            program,
            2,
            2,
            vec![Observer::Reg(0), Observer::Reg(1)],
            allowed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_predicate_is_set_complement() {
        let inst = testutil::mp_instance(LitmusLayout::standard(64, 4096));
        assert!(inst.is_weak(&[1, 0]));
        assert!(!inst.is_weak(&[1, 1]));
        assert!(!inst.is_weak(&[0, 0]));
        assert!(!inst.is_weak(&[0, 1]));
        // Garbage values are not SC-reachable either.
        assert!(inst.is_weak(&[2, 2]));
    }

    #[test]
    fn layout_distance_zero_is_adjacent() {
        let l = LitmusLayout::standard(0, 4096);
        assert_eq!(l.y_addr(), 1);
        assert_eq!(l.loc_addr(2), 2);
        let l = LitmusLayout::standard(64, 4096);
        assert_eq!(l.y_addr(), 64);
        assert_eq!(l.loc_addr(2), 128);
    }

    #[test]
    fn sync_counter_sits_past_observer_slots() {
        let l = LitmusLayout::standard(32, 4096);
        assert_eq!(l.sync_addr(), l.result_base + MAX_OBSERVERS);
    }

    #[test]
    fn observer_labels() {
        assert_eq!(Observer::Reg(0).label(), "r0");
        assert_eq!(Observer::FinalMem(1).label(), "m1");
    }

    #[test]
    fn placement_parses_and_displays() {
        assert_eq!("inter".parse::<Placement>().unwrap(), Placement::InterBlock);
        assert_eq!("INTRA".parse::<Placement>().unwrap(), Placement::IntraBlock);
        assert!("warp".parse::<Placement>().is_err());
        assert_eq!(Placement::IntraBlock.to_string(), "intra");
    }

    #[test]
    fn launch_geometry_follows_placement() {
        let inst = testutil::mp_instance(LitmusLayout::standard(64, 4096));
        assert_eq!(inst.placement, Placement::InterBlock);
        let spec = inst.launch(Vec::new(), Vec::new(), false);
        assert_eq!(spec.groups[0].blocks, 2);
        assert_eq!(spec.groups[0].threads_per_block, 32);
        assert_eq!(spec.shared_words, 0);

        let mut intra = inst.clone();
        intra.placement = Placement::IntraBlock;
        intra.shared_words = 128;
        let spec = intra.launch(Vec::new(), Vec::new(), false);
        assert_eq!(spec.groups[0].blocks, 1);
        assert_eq!(spec.groups[0].threads_per_block, 64);
        assert_eq!(spec.shared_words, 128);
    }

    #[test]
    #[should_panic(expected = "global memory too small")]
    fn undersized_memory_rejected() {
        let l = LitmusLayout {
            comm_base: 0,
            distance: 2,
            result_base: 1024,
            global_words: 1030,
        };
        let _ = testutil::mp_instance(l);
    }
}
