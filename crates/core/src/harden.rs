//! Empirical fence insertion — Algorithm 1 (Sec. 5).
//!
//! Starting from a fence after every global memory access, repeatedly
//! remove fences — first halving the set (*binary reduction*), then one
//! at a time (*linear reduction*) — using the testing environment to
//! check, empirically, whether each removal introduces errors. The
//! procedure converges to a set of fences that is *empirically stable*
//! (no errors over a long campaign) and minimal in the sense that
//! removing any single fence exposed errors during reduction. If the
//! final stability check fails, the whole reduction restarts with a
//! doubled per-check iteration count, exactly as in Alg. 1.

use crate::app::{AppSpec, Application, FenceSite};
use crate::env::{AppHarness, Environment};
use wmm_sim::chip::Chip;

/// Configuration of empirical fence insertion.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Initial per-check iteration count `I` (the paper uses 32).
    pub initial_iters: u32,
    /// Executions of the final empirical-stability check (the paper's
    /// "repeatedly executed for one hour").
    pub stable_runs: u32,
    /// Give up after this many doubling rounds.
    pub max_rounds: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (0 ⇒ all cores).
    pub parallelism: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            initial_iters: 32,
            stable_runs: 300,
            max_rounds: 4,
            base_seed: 0xface,
            parallelism: 0,
        }
    }
}

/// The outcome of empirical fence insertion.
#[derive(Debug, Clone)]
pub struct HardenResult {
    /// The initial fence count (one per global access).
    pub initial_fences: usize,
    /// The surviving (empirically required) fence sites.
    pub fences: Vec<FenceSite>,
    /// Whether the final set passed the empirical stability check.
    pub converged: bool,
    /// Doubling rounds used.
    pub rounds: u32,
    /// Total application executions spent.
    pub executions: u64,
    /// Wall-clock time spent.
    pub elapsed: std::time::Duration,
}

/// Internal driver: owns the counters shared by the reduction passes.
struct Reducer<'a> {
    chip: &'a Chip,
    app: &'a dyn Application,
    base: AppSpec,
    env: Environment,
    cfg: &'a HardenConfig,
    executions: u64,
    check_counter: u64,
}

impl<'a> Reducer<'a> {
    /// `CheckApplication(A, F, I)`: run `A + F` for `iters` executions;
    /// true iff no errors are observed.
    fn check_application(&mut self, fences: &[FenceSite], iters: u32) -> bool {
        let spec = self.base.with_fences(fences);
        let harness = AppHarness::with_spec(self.chip, self.app, spec);
        self.check_counter += 1;
        let seed = self
            .cfg
            .base_seed
            .wrapping_mul(31)
            .wrapping_add(self.check_counter);
        let result = harness.campaign(&self.env, iters, seed, self.cfg.parallelism);
        self.executions += u64::from(result.runs);
        !result.any_error()
    }

    /// `BinaryReduction(A, F, I)`: repeatedly try to discard half the
    /// remaining fences.
    fn binary_reduction(&mut self, mut fences: Vec<FenceSite>, iters: u32) -> Vec<FenceSite> {
        while fences.len() > 1 {
            let mid = fences.len() / 2;
            // SplitFences: fences are kept sorted by program location;
            // F1 is the first half, F2 the second.
            let without_first: Vec<FenceSite> = fences[mid..].to_vec();
            if self.check_application(&without_first, iters) {
                fences = without_first;
                continue;
            }
            let without_second: Vec<FenceSite> = fences[..mid].to_vec();
            if self.check_application(&without_second, iters) {
                fences = without_second;
                continue;
            }
            return fences;
        }
        fences
    }

    /// `LinearReduction(A, F, I)`: try to remove fences one at a time.
    fn linear_reduction(&mut self, fences: Vec<FenceSite>, iters: u32) -> Vec<FenceSite> {
        let mut kept: Vec<FenceSite> = fences;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if self.check_application(&candidate, iters) {
                kept = candidate; // fence removed; do not advance
            } else {
                i += 1;
            }
        }
        kept
    }

    /// `EmpiricallyStable(A, F)`: the long final check.
    fn empirically_stable(&mut self, fences: &[FenceSite]) -> bool {
        self.check_application(fences, self.cfg.stable_runs)
    }
}

/// Empirical fence insertion (Alg. 1) for `app` on `chip`, testing under
/// `sys-str+`. The application must be fence-free (strip it first for
/// the shipped `sdk-red`/`cub-scan`/`ls-bh`).
///
/// # Panics
///
/// Panics if `app`'s spec still contains fences.
pub fn empirical_fence_insertion(
    chip: &Chip,
    app: &dyn Application,
    cfg: &HardenConfig,
) -> HardenResult {
    let start = std::time::Instant::now();
    let base = app.spec().clone();
    assert_eq!(
        base.fence_count(),
        0,
        "empirical fence insertion starts from the fence-free program"
    );
    let all_sites = base.fence_sites();
    let mut reducer = Reducer {
        chip,
        app,
        base,
        env: Environment::sys_str_plus(chip),
        cfg,
        executions: 0,
        check_counter: 0,
    };
    let mut iters = cfg.initial_iters;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let fb = reducer.binary_reduction(all_sites.clone(), iters);
        let fl = reducer.linear_reduction(fb, iters);
        if reducer.empirically_stable(&fl) {
            return HardenResult {
                initial_fences: all_sites.len(),
                fences: fl,
                converged: true,
                rounds,
                executions: reducer.executions,
                elapsed: start.elapsed(),
            };
        }
        if rounds >= cfg.max_rounds {
            return HardenResult {
                initial_fences: all_sites.len(),
                fences: fl,
                converged: false,
                rounds,
                executions: reducer.executions,
                elapsed: start.elapsed(),
            };
        }
        iters *= 2; // Alg. 1, line 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppSpec, Phase};
    use wmm_sim::ir::builder::KernelBuilder;
    use wmm_sim::Word;

    /// The miniature lock counter of `env`'s tests: one real fence site
    /// (between the critical-section store and the unlock) suffices.
    struct LockCounter {
        spec: AppSpec,
        expected: u32,
    }

    fn lock_counter(blocks: u32) -> LockCounter {
        let mut b = KernelBuilder::new("lock-counter");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let lock = b.const_(0);
            let cell = b.const_(128);
            b.spin_lock(lock);
            let v = b.load_global(cell);
            let one = b.const_(1);
            let v1 = b.add(v, one);
            b.store_global(cell, v1);
            b.unlock(lock);
        });
        let program = b.finish().unwrap();
        LockCounter {
            spec: AppSpec {
                name: "lock-counter".into(),
                phases: vec![Phase {
                    program,
                    blocks,
                    threads_per_block: 32,
                    shared_words: 0,
                }],
                global_words: 192,
                init: vec![],
                max_turns_per_phase: 2_000_000,
            },
            expected: blocks,
        }
    }

    impl crate::app::Application for LockCounter {
        fn name(&self) -> &str {
            "lock-counter"
        }
        fn spec(&self) -> &AppSpec {
            &self.spec
        }
        fn check(&self, memory: &[Word]) -> Result<(), String> {
            if memory[128] == self.expected {
                Ok(())
            } else {
                Err(format!("{} != {}", memory[128], self.expected))
            }
        }
    }

    #[test]
    fn insertion_finds_small_stable_set() {
        let chip = Chip::by_short("Titan").unwrap();
        let app = lock_counter(8);
        let cfg = HardenConfig {
            initial_iters: 24,
            stable_runs: 60,
            max_rounds: 3,
            base_seed: 5,
            parallelism: 0,
        };
        let r = empirical_fence_insertion(&chip, &app, &cfg);
        assert!(r.initial_fences >= 4);
        assert!(
            r.fences.len() < r.initial_fences,
            "reduction removed nothing: {r:?}"
        );
        // The surviving set must keep the application stable.
        let spec = app.spec().with_fences(&r.fences);
        let h = AppHarness::with_spec(&chip, &app, spec);
        let check = h.campaign(&Environment::sys_str_plus(&chip), 60, 99, 0);
        assert_eq!(check.errors, 0, "{check:?}");
    }

    #[test]
    #[should_panic(expected = "fence-free")]
    fn fenced_input_rejected() {
        let chip = Chip::by_short("K20").unwrap();
        let app = lock_counter(4);
        let fenced = app.spec().with_all_fences();
        struct Fenced(AppSpec);
        impl crate::app::Application for Fenced {
            fn name(&self) -> &str {
                "fenced"
            }
            fn spec(&self) -> &AppSpec {
                &self.0
            }
            fn check(&self, _: &[Word]) -> Result<(), String> {
                Ok(())
            }
        }
        let _ = empirical_fence_insertion(&chip, &Fenced(fenced), &HardenConfig::default());
    }
}
