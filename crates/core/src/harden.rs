//! Empirical fence insertion — Algorithm 1 (Sec. 5).
//!
//! Starting from a fence after every global memory access, repeatedly
//! remove fences — first halving the set (*binary reduction*), then one
//! at a time (*linear reduction*) — using the testing environment to
//! check, empirically, whether each removal introduces errors. The
//! procedure converges to a set of fences that is *empirically stable*
//! (no errors over a long campaign) and minimal in the sense that
//! removing any single fence exposed errors during reduction. If the
//! final stability check fails, the whole reduction restarts with a
//! doubled per-check iteration count, exactly as in Alg. 1.
//!
//! [`empirical_fence_insertion_scoped`] extends the algorithm with the
//! static scoped-communication analyzer (`wmm-analysis`): the initial
//! set covers **all** memory accesses (shared included) at
//! analyzer-chosen levels, a demotion pass downgrades provably
//! intra-block fences to the cheap `fence_block()` rung before any
//! removal is attempted, and every tested candidate feeds a Pareto
//! front over (residual errors, total fence cost).

use crate::analyze::{analyze_spec, SpecAnalysis};
use crate::app::{AppSpec, Application, FenceSite};
use crate::env::{AppHarness, Environment};
use wmm_analysis::{fence_cost, Verdict};
use wmm_sim::chip::Chip;
use wmm_sim::ir::FenceLevel;

/// Configuration of empirical fence insertion.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Initial per-check iteration count `I` (the paper uses 32).
    pub initial_iters: u32,
    /// Executions of the final empirical-stability check (the paper's
    /// "repeatedly executed for one hour").
    pub stable_runs: u32,
    /// Give up after this many doubling rounds.
    pub max_rounds: u32,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads (0 ⇒ all cores).
    pub parallelism: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            initial_iters: 32,
            stable_runs: 300,
            max_rounds: 4,
            base_seed: 0xface,
            parallelism: 0,
        }
    }
}

/// The outcome of empirical fence insertion.
#[derive(Debug, Clone)]
pub struct HardenResult {
    /// The initial fence count (one per global access).
    pub initial_fences: usize,
    /// The surviving (empirically required) fence sites.
    pub fences: Vec<FenceSite>,
    /// Whether the final set passed the empirical stability check.
    pub converged: bool,
    /// Doubling rounds used.
    pub rounds: u32,
    /// Total application executions spent.
    pub executions: u64,
    /// Wall-clock time spent.
    pub elapsed: std::time::Duration,
}

/// Internal driver: owns the counters shared by the reduction passes.
struct Reducer<'a> {
    chip: &'a Chip,
    app: &'a dyn Application,
    base: AppSpec,
    env: Environment,
    cfg: &'a HardenConfig,
    executions: u64,
    check_counter: u64,
}

impl<'a> Reducer<'a> {
    /// `CheckApplication(A, F, I)`: run `A + F` for `iters` executions;
    /// true iff no errors are observed.
    fn check_application(&mut self, fences: &[FenceSite], iters: u32) -> bool {
        let spec = self.base.with_fences(fences);
        let harness = AppHarness::with_spec(self.chip, self.app, spec);
        self.check_counter += 1;
        let seed = self
            .cfg
            .base_seed
            .wrapping_mul(31)
            .wrapping_add(self.check_counter);
        let result = harness.campaign(&self.env, iters, seed, self.cfg.parallelism);
        self.executions += u64::from(result.runs);
        !result.any_error()
    }

    /// `BinaryReduction(A, F, I)`: repeatedly try to discard half the
    /// remaining fences.
    fn binary_reduction(&mut self, mut fences: Vec<FenceSite>, iters: u32) -> Vec<FenceSite> {
        while fences.len() > 1 {
            let mid = fences.len() / 2;
            // SplitFences: fences are kept sorted by program location;
            // F1 is the first half, F2 the second.
            let without_first: Vec<FenceSite> = fences[mid..].to_vec();
            if self.check_application(&without_first, iters) {
                fences = without_first;
                continue;
            }
            let without_second: Vec<FenceSite> = fences[..mid].to_vec();
            if self.check_application(&without_second, iters) {
                fences = without_second;
                continue;
            }
            return fences;
        }
        fences
    }

    /// `LinearReduction(A, F, I)`: try to remove fences one at a time.
    fn linear_reduction(&mut self, fences: Vec<FenceSite>, iters: u32) -> Vec<FenceSite> {
        let mut kept: Vec<FenceSite> = fences;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if self.check_application(&candidate, iters) {
                kept = candidate; // fence removed; do not advance
            } else {
                i += 1;
            }
        }
        kept
    }

    /// `EmpiricallyStable(A, F)`: the long final check.
    fn empirically_stable(&mut self, fences: &[FenceSite]) -> bool {
        self.check_application(fences, self.cfg.stable_runs)
    }
}

/// Empirical fence insertion (Alg. 1) for `app` on `chip`, testing under
/// `sys-str+`. The application must be fence-free (strip it first for
/// the shipped `sdk-red`/`cub-scan`/`ls-bh`).
///
/// # Panics
///
/// Panics if `app`'s spec still contains fences.
pub fn empirical_fence_insertion(
    chip: &Chip,
    app: &dyn Application,
    cfg: &HardenConfig,
) -> HardenResult {
    let start = std::time::Instant::now();
    let base = app.spec().clone();
    assert_eq!(
        base.fence_count(),
        0,
        "empirical fence insertion starts from the fence-free program"
    );
    let all_sites = base.fence_sites();
    let mut reducer = Reducer {
        chip,
        app,
        base,
        env: Environment::sys_str_plus(chip),
        cfg,
        executions: 0,
        check_counter: 0,
    };
    let mut iters = cfg.initial_iters;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let fb = reducer.binary_reduction(all_sites.clone(), iters);
        let fl = reducer.linear_reduction(fb, iters);
        if reducer.empirically_stable(&fl) {
            return HardenResult {
                initial_fences: all_sites.len(),
                fences: fl,
                converged: true,
                rounds,
                executions: reducer.executions,
                elapsed: start.elapsed(),
            };
        }
        if rounds >= cfg.max_rounds {
            return HardenResult {
                initial_fences: all_sites.len(),
                fences: fl,
                converged: false,
                rounds,
                executions: reducer.executions,
                elapsed: start.elapsed(),
            };
        }
        iters *= 2; // Alg. 1, line 5
    }
}

/// A fence site paired with the level to place there.
pub type LeveledFenceSite = (FenceSite, FenceLevel);

/// Total relative cost of a leveled fence set (`fence_block` is priced
/// cheaper than a device fence, see [`wmm_analysis::fence_cost`]).
pub fn leveled_set_cost(fences: &[LeveledFenceSite]) -> u64 {
    fences.iter().map(|&(_, l)| fence_cost(l)).sum()
}

/// One candidate fence set the scoped search actually tested.
#[derive(Debug, Clone)]
pub struct ScopedCandidate {
    /// The leveled fence set.
    pub fences: Vec<LeveledFenceSite>,
    /// Errors observed while checking it.
    pub errors: u32,
    /// Total fence cost of the set.
    pub cost: u64,
}

/// The outcome of analyzer-seeded scoped fence insertion.
#[derive(Debug, Clone)]
pub struct ScopedHardenResult {
    /// The analyzer-chosen initial set: every memory access, fenced at
    /// its verdict's level.
    pub initial: Vec<LeveledFenceSite>,
    /// The surviving fence set with levels.
    pub fences: Vec<LeveledFenceSite>,
    /// Analyzer-sanctioned demotions (`Device` → `Block`) that stuck.
    pub demotions: usize,
    /// Whether the final set passed the empirical stability check.
    pub converged: bool,
    /// Doubling rounds used.
    pub rounds: u32,
    /// Total application executions spent.
    pub executions: u64,
    /// Total fence cost of the surviving set.
    pub fence_cost: u64,
    /// Cost of the same surviving sites fenced at device level — the
    /// baseline the two-rung hierarchy is measured against.
    pub device_baseline_cost: u64,
    /// The Pareto front over (errors, cost) of every candidate set the
    /// search tested, via [`crate::tuning::pareto::pareto_min_front`].
    pub pareto: Vec<ScopedCandidate>,
    /// Wall-clock time spent.
    pub elapsed: std::time::Duration,
}

/// Internal driver for the scoped search: like [`Reducer`] but over
/// leveled sites, recording every tested candidate for the Pareto
/// front.
struct ScopedReducer<'a> {
    chip: &'a Chip,
    app: &'a dyn Application,
    base: AppSpec,
    analysis: SpecAnalysis,
    env: Environment,
    cfg: &'a HardenConfig,
    executions: u64,
    check_counter: u64,
    candidates: Vec<ScopedCandidate>,
}

impl<'a> ScopedReducer<'a> {
    fn check_leveled(&mut self, fences: &[LeveledFenceSite], iters: u32) -> bool {
        let spec = self.base.with_leveled_fences(fences);
        let harness = AppHarness::with_spec(self.chip, self.app, spec);
        self.check_counter += 1;
        let seed = self
            .cfg
            .base_seed
            .wrapping_mul(31)
            .wrapping_add(self.check_counter);
        let result = harness.campaign(&self.env, iters, seed, self.cfg.parallelism);
        self.executions += u64::from(result.runs);
        self.candidates.push(ScopedCandidate {
            fences: fences.to_vec(),
            errors: result.errors,
            cost: leveled_set_cost(fences),
        });
        !result.any_error()
    }

    /// Try every analyzer-sanctioned demotion (`DemotableToBlock`
    /// sites currently fenced at device level) before any removal.
    fn demotion_pass(
        &mut self,
        mut fences: Vec<LeveledFenceSite>,
        iters: u32,
    ) -> (Vec<LeveledFenceSite>, usize) {
        let mut demotions = 0;
        for i in 0..fences.len() {
            let (site, level) = fences[i];
            if level != FenceLevel::Device
                || self.analysis.verdict_of(site) != Some(Verdict::DemotableToBlock)
            {
                continue;
            }
            let mut candidate = fences.clone();
            candidate[i].1 = FenceLevel::Block;
            if self.check_leveled(&candidate, iters) {
                fences = candidate;
                demotions += 1;
            }
        }
        (fences, demotions)
    }

    fn binary_reduction(
        &mut self,
        mut fences: Vec<LeveledFenceSite>,
        iters: u32,
    ) -> Vec<LeveledFenceSite> {
        while fences.len() > 1 {
            let mid = fences.len() / 2;
            let without_first: Vec<LeveledFenceSite> = fences[mid..].to_vec();
            if self.check_leveled(&without_first, iters) {
                fences = without_first;
                continue;
            }
            let without_second: Vec<LeveledFenceSite> = fences[..mid].to_vec();
            if self.check_leveled(&without_second, iters) {
                fences = without_second;
                continue;
            }
            return fences;
        }
        fences
    }

    fn linear_reduction(
        &mut self,
        fences: Vec<LeveledFenceSite>,
        iters: u32,
    ) -> Vec<LeveledFenceSite> {
        let mut kept = fences;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if self.check_leveled(&candidate, iters) {
                kept = candidate;
            } else {
                i += 1;
            }
        }
        kept
    }

    fn empirically_stable(&mut self, fences: &[LeveledFenceSite]) -> bool {
        self.check_leveled(fences, self.cfg.stable_runs)
    }
}

/// Analyzer-seeded scoped fence insertion: Algorithm 1 extended with
/// the static scoped-communication analyzer.
///
/// The initial set covers **all** memory accesses — shared included —
/// at analyzer-chosen levels: `Required` sites keep their proven
/// level, `DemotableToBlock` sites start at device (the demotion is
/// tried empirically, not assumed), and `RemovalCandidate` sites start
/// at the cheapest rung admissible for their space. Each round then
/// runs an analyzer-sanctioned *demotion pass* (device → block where
/// the analysis proves the communication intra-block) before the usual
/// binary/linear removal reductions and stability check. Every tested
/// candidate is recorded, and the result carries the Pareto front over
/// (residual errors, total fence cost).
///
/// # Panics
///
/// Panics if `app`'s spec still contains fences.
pub fn empirical_fence_insertion_scoped(
    chip: &Chip,
    app: &dyn Application,
    cfg: &HardenConfig,
) -> ScopedHardenResult {
    let start = std::time::Instant::now();
    let base = app.spec().clone();
    assert_eq!(
        base.fence_count(),
        0,
        "empirical fence insertion starts from the fence-free program"
    );
    let analysis = analyze_spec(&base);
    let initial: Vec<LeveledFenceSite> = base
        .fence_sites()
        .into_iter()
        .map(|site| (site, analysis.initial_level(site)))
        .collect();
    let mut reducer = ScopedReducer {
        chip,
        app,
        base,
        analysis,
        env: Environment::sys_str_plus(chip),
        cfg,
        executions: 0,
        check_counter: 0,
        candidates: Vec::new(),
    };
    let mut iters = cfg.initial_iters;
    let mut rounds = 0;
    let (fences, demotions, converged) = loop {
        rounds += 1;
        let (fd, demotions) = reducer.demotion_pass(initial.clone(), iters);
        let fb = reducer.binary_reduction(fd, iters);
        let fl = reducer.linear_reduction(fb, iters);
        if reducer.empirically_stable(&fl) {
            break (fl, demotions, true);
        }
        if rounds >= cfg.max_rounds {
            break (fl, demotions, false);
        }
        iters *= 2; // Alg. 1, line 5
    };
    let points: Vec<[u64; 2]> = reducer
        .candidates
        .iter()
        .map(|c| [u64::from(c.errors), c.cost])
        .collect();
    let pareto = crate::tuning::pareto::pareto_min_front(&points)
        .into_iter()
        .map(|i| reducer.candidates[i].clone())
        .collect();
    ScopedHardenResult {
        initial,
        fence_cost: leveled_set_cost(&fences),
        device_baseline_cost: fences.len() as u64 * fence_cost(FenceLevel::Device),
        fences,
        demotions,
        converged,
        rounds,
        executions: reducer.executions,
        pareto,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppSpec, Phase};
    use wmm_sim::ir::builder::KernelBuilder;
    use wmm_sim::Word;

    /// The miniature lock counter of `env`'s tests: one real fence site
    /// (between the critical-section store and the unlock) suffices.
    struct LockCounter {
        spec: AppSpec,
        expected: u32,
    }

    fn lock_counter(blocks: u32) -> LockCounter {
        let mut b = KernelBuilder::new("lock-counter");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let lock = b.const_(0);
            let cell = b.const_(128);
            b.spin_lock(lock);
            let v = b.load_global(cell);
            let one = b.const_(1);
            let v1 = b.add(v, one);
            b.store_global(cell, v1);
            b.unlock(lock);
        });
        let program = b.finish().unwrap();
        LockCounter {
            spec: AppSpec {
                name: "lock-counter".into(),
                phases: vec![Phase {
                    program,
                    blocks,
                    threads_per_block: 32,
                    shared_words: 0,
                }],
                global_words: 192,
                init: vec![],
                max_turns_per_phase: 2_000_000,
            },
            expected: blocks,
        }
    }

    impl crate::app::Application for LockCounter {
        fn name(&self) -> &str {
            "lock-counter"
        }
        fn spec(&self) -> &AppSpec {
            &self.spec
        }
        fn check(&self, memory: &[Word]) -> Result<(), String> {
            if memory[128] == self.expected {
                Ok(())
            } else {
                Err(format!("{} != {}", memory[128], self.expected))
            }
        }
    }

    #[test]
    fn insertion_finds_small_stable_set() {
        let chip = Chip::by_short("Titan").unwrap();
        let app = lock_counter(8);
        let cfg = HardenConfig {
            initial_iters: 24,
            stable_runs: 60,
            max_rounds: 3,
            base_seed: 5,
            parallelism: 0,
        };
        let r = empirical_fence_insertion(&chip, &app, &cfg);
        assert!(r.initial_fences >= 4);
        assert!(
            r.fences.len() < r.initial_fences,
            "reduction removed nothing: {r:?}"
        );
        // The surviving set must keep the application stable.
        let spec = app.spec().with_fences(&r.fences);
        let h = AppHarness::with_spec(&chip, &app, spec);
        let check = h.campaign(&Environment::sys_str_plus(&chip), 60, 99, 0);
        assert_eq!(check.errors, 0, "{check:?}");
    }

    #[test]
    fn scoped_insertion_reduces_the_lock_counter_too() {
        // The lock counter is all-global: the scoped search must behave
        // like Alg. 1 there — no block fences, but the same stable
        // reduction — while exercising the verdict-seeded initial set
        // and the Pareto bookkeeping.
        let chip = Chip::by_short("Titan").unwrap();
        let app = lock_counter(8);
        let cfg = HardenConfig {
            initial_iters: 24,
            stable_runs: 60,
            max_rounds: 3,
            base_seed: 5,
            parallelism: 0,
        };
        let r = empirical_fence_insertion_scoped(&chip, &app, &cfg);
        assert!(r.converged, "{r:?}");
        assert!(r.fences.len() < r.initial.len());
        assert!(
            r.fences.iter().all(|&(_, l)| l == FenceLevel::Device),
            "no shared accesses, so no block rung: {:?}",
            r.fences
        );
        assert_eq!(
            r.fence_cost, r.device_baseline_cost,
            "all-device sets meet the baseline exactly"
        );
        // The front always contains a zero-error candidate (the search
        // only returns converged sets it has checked).
        assert!(r.pareto.iter().any(|c| c.errors == 0), "{:?}", r.pareto);
    }

    #[test]
    #[should_panic(expected = "fence-free")]
    fn fenced_input_rejected() {
        let chip = Chip::by_short("K20").unwrap();
        let app = lock_counter(4);
        let fenced = app.spec().with_all_fences();
        struct Fenced(AppSpec);
        impl crate::app::Application for Fenced {
            fn name(&self) -> &str {
                "fenced"
            }
            fn spec(&self) -> &AppSpec {
                &self.0
            }
            fn check(&self, _: &[Word]) -> Result<(), String> {
                Ok(())
            }
        }
        let _ = empirical_fence_insertion(&chip, &Fenced(fenced), &HardenConfig::default());
    }
}
