//! Static analysis glue for applications: pick representative threads
//! from an [`AppSpec`]'s launch geometry and run the
//! scoped-communication analyzer per phase.
//!
//! Litmus instances are analyzed exactly (one model per test thread,
//! see [`wmm_analysis::analyze_litmus`]); applications launch hundreds
//! of threads, so we model a bounded set of *representatives* — the
//! corner threads of the id space (first/last block, first/second/
//! middle/last thread) — which covers every role selection the
//! kernels in this repository perform (`tid == 0`, `global_tid`
//! striding, warp-0 leaders, last-thread reducers). The result is a
//! conservative report over the modeled threads, not a whole-launch
//! proof; the dynamic campaign remains the ground truth.

use crate::app::{AppSpec, FenceSite};
use wmm_analysis::{analyze_program, AnalysisInput, ProgramAnalysis, ThreadRep, Verdict};
use wmm_sim::ir::FenceLevel;

/// Representative threads for a `blocks × tpb` launch: the corner
/// cases of the id space, deduplicated.
pub fn representatives(blocks: u32, tpb: u32) -> Vec<ThreadRep> {
    let mut out: Vec<ThreadRep> = Vec::new();
    let bids = [0, blocks.saturating_sub(1)];
    let tids = [0, 1, tpb / 2, tpb / 2 + 1, tpb.saturating_sub(1)];
    for &bid in &bids {
        for &tid in &tids {
            if tid < tpb {
                let r = ThreadRep { bid, tid };
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
    }
    out
}

/// The per-phase analyses of one application spec.
#[derive(Debug, Clone)]
pub struct SpecAnalysis {
    /// One report per phase, in phase order.
    pub phases: Vec<ProgramAnalysis>,
}

impl SpecAnalysis {
    /// Total unfenced delay warnings across phases.
    pub fn warning_count(&self) -> usize {
        self.phases.iter().map(|a| a.warnings.len()).sum()
    }

    /// Quiet certificate: no phase warns.
    pub fn quiet(&self) -> bool {
        self.phases.iter().all(ProgramAnalysis::quiet)
    }

    /// The verdict for a phase-qualified fence site.
    pub fn verdict_of(&self, site: FenceSite) -> Option<Verdict> {
        self.phases.get(site.0).and_then(|a| a.verdict_of(site.1))
    }

    /// The analyzer-chosen initial fence level for a site: `Required`
    /// keeps its level, `DemotableToBlock` starts at `Device` (the
    /// demotion is *tried*, not assumed), and a `RemovalCandidate`
    /// starts at the cheapest rung admissible for its space.
    pub fn initial_level(&self, site: FenceSite) -> FenceLevel {
        let Some(phase) = self.phases.get(site.0) else {
            return FenceLevel::Device;
        };
        let shared = phase
            .sites
            .iter()
            .find(|s| s.index == site.1)
            .map(|s| s.space == wmm_sim::ir::Space::Shared)
            .unwrap_or(false);
        match self.verdict_of(site) {
            Some(Verdict::Required(l)) => l,
            Some(Verdict::DemotableToBlock) => FenceLevel::Device,
            Some(Verdict::RemovalCandidate) | None => {
                if shared {
                    FenceLevel::Block
                } else {
                    FenceLevel::Device
                }
            }
        }
    }
}

/// Analyze every phase of `spec` under representative threads.
pub fn analyze_spec(spec: &AppSpec) -> SpecAnalysis {
    let phases = spec
        .phases
        .iter()
        .map(|phase| {
            analyze_program(&AnalysisInput {
                program: &phase.program,
                reps: representatives(phase.blocks, phase.threads_per_block),
                block_dim: phase.threads_per_block,
                grid_dim: phase.blocks,
            })
        })
        .collect();
    SpecAnalysis { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_cover_corners_without_duplicates() {
        let reps = representatives(4, 32);
        assert!(reps.contains(&ThreadRep { bid: 0, tid: 0 }));
        assert!(reps.contains(&ThreadRep { bid: 3, tid: 31 }));
        assert!(reps.contains(&ThreadRep { bid: 0, tid: 16 }));
        let mut dedup = reps.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), reps.len());
        // Degenerate launches collapse cleanly.
        let tiny = representatives(1, 1);
        assert_eq!(tiny, vec![ThreadRep { bid: 0, tid: 0 }]);
    }
}
