//! The generated-suite campaign runner.
//!
//! Campaigns every generated litmus shape across a grid of chips ×
//! stress strategies × distances through the unified
//! [`Campaign`](crate::campaign::Campaign) facade. The stress artifacts
//! of each `(chip, strategy)` column are built **once** and shared by
//! every cell (and every run) in that column.
//!
//! This runner used to live in `wmm-gen` behind per-run closure
//! factories (so that crate could stay below `wmm-core` in the crate
//! graph); with the campaign facade in `wmm-core` the runner lives here
//! and the columns are plain [`StressStrategy`] values.

use crate::cache::ArtifactCache;
use crate::campaign::CampaignBuilder;
use crate::env::Environment;
use crate::stress::{Scratchpad, SharedStress, StressArtifacts, StressStrategy, SystematicParams};
use std::sync::Arc;
use wmm_gen::Shape;
use wmm_litmus::runner::mix_seed;
use wmm_litmus::{Histogram, LitmusLayout, Placement};
use wmm_obs::{MetricsRegistry, SpanTimer};
use wmm_sim::chip::Chip;
use wmm_sim::ir::{FenceLevel, Space};

/// A named suite column: a stress strategy (computed per chip — the
/// systematic strategy's parameters are per-chip, Tab. 2) plus the
/// thread-randomisation toggle of the paper's environment names.
#[derive(Clone)]
pub struct SuiteStrategy {
    /// Display name, e.g. `"sys-str+"`.
    pub name: String,
    /// Whether thread ids are randomised (the `+`/`-` suffix).
    pub randomize: bool,
    /// Stressing-loop iterations per stressing thread.
    pub iters: u32,
    /// Intra-block shared-space stress applied to intra-block rows
    /// (`None` for the paper's global-only columns).
    pub shared: Option<SharedStress>,
    strategy_of: Arc<dyn Fn(&Chip) -> StressStrategy + Send + Sync>,
}

impl SuiteStrategy {
    /// The native column: no stressing blocks, no randomisation.
    pub fn native() -> Self {
        SuiteStrategy {
            name: "no-str-".to_string(),
            randomize: false,
            iters: 0,
            shared: None,
            strategy_of: Arc::new(|_| StressStrategy::None),
        }
    }

    /// A column from a per-chip strategy constructor; the display name
    /// is the strategy's short name plus the `+`/`-` suffix.
    pub fn new(
        short: &str,
        randomize: bool,
        iters: u32,
        strategy_of: impl Fn(&Chip) -> StressStrategy + Send + Sync + 'static,
    ) -> Self {
        SuiteStrategy {
            name: format!("{short}{}", if randomize { "+" } else { "-" }),
            randomize,
            iters,
            shared: None,
            strategy_of: Arc::new(strategy_of),
        }
    }

    /// The paper's tuned systematic environment, `sys-str+` (Tab. 2
    /// parameters per chip).
    pub fn sys_str_plus(iters: u32) -> Self {
        SuiteStrategy::new("sys-str", true, iters, |chip| {
            StressStrategy::Systematic(SystematicParams::from_paper(chip))
        })
    }

    /// The random-stress baseline with randomisation, `rand-str+`.
    pub fn rand_str_plus(iters: u32) -> Self {
        SuiteStrategy::new("rand-str", true, iters, |_| StressStrategy::Random)
    }

    /// The shared-stress column `shm+sys-str+`: the tuned systematic
    /// global stress plus intra-block shared-space stress. Inter-block
    /// rows behave exactly as under `sys-str+`; intra-block rows gain
    /// shared-scratchpad stressing lanes — the column under which the
    /// scoped shapes go observably weak while their `+fence_block`
    /// twins stay at zero.
    pub fn shared_sys_str_plus(iters: u32) -> Self {
        let mut s = SuiteStrategy::sys_str_plus(iters);
        s.name = format!("{}{}", SharedStress::NAME_PREFIX, s.name);
        s.shared = Some(SharedStress::standard());
        s
    }

    /// The structural-channel column `l1-str+`: write-only cross-SM
    /// stress feeding incoherent-L1 write pressure (see
    /// [`StressStrategy::L1`]). The column under which `CoRR`-style
    /// same-address read pairs go observably weak on Tesla-class
    /// (incoherent-L1) chips while their `+fence` twins and the
    /// coherent-L1 chips stay at zero.
    pub fn l1_str_plus(iters: u32) -> Self {
        SuiteStrategy::new("l1-str", true, iters, |_| StressStrategy::L1)
    }

    /// The strategy this column applies on `chip`.
    pub fn strategy(&self, chip: &Chip) -> StressStrategy {
        (self.strategy_of)(chip)
    }

    /// The [`Environment`] this column realises on `chip` — the
    /// structural key under which its artifacts are shared (see
    /// [`ArtifactCache`]).
    pub fn environment(&self, chip: &Chip) -> Environment {
        Environment {
            stress: self.strategy(chip),
            randomize: self.randomize,
            shared: self.shared,
        }
    }

    /// Build this column's stress artifacts for `chip`, compiled once
    /// for the whole column.
    pub fn artifacts(&self, chip: &Chip, pad: Scratchpad) -> StressArtifacts {
        StressArtifacts::for_strategy(chip, &self.strategy(chip), pad, self.iters)
            .with_shared_stress(self.shared)
    }
}

impl std::fmt::Debug for SuiteStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteStrategy")
            .field("name", &self.name)
            .field("randomize", &self.randomize)
            .field("iters", &self.iters)
            .finish_non_exhaustive()
    }
}

/// Suite campaign configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Distances `d` each shape is instantiated at.
    pub distances: Vec<u32>,
    /// Executions per cell (the paper's `C`).
    pub execs: u32,
    /// The scratchpad the strategies stress; every launch provides
    /// `pad.required_words()` words of global memory.
    pub pad: Scratchpad,
    /// Base seed; each cell derives its own seed from its coordinates,
    /// so results are independent of cell iteration order.
    pub base_seed: u64,
    /// Worker threads per cell campaign (0 ⇒ all cores). Histograms are
    /// bit-identical for every value (see [`crate::campaign`]).
    pub workers: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            distances: vec![64],
            execs: 32,
            pad: Scratchpad::new(2048, 6144),
            base_seed: 2016,
            workers: 0,
        }
    }
}

/// The static analyzer's verdict on one suite row's litmus instance,
/// computed once per `(shape, distance)` from the exact per-test-thread
/// models (see [`wmm_analysis::analyze_litmus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticVerdict {
    /// Unfenced delay warnings on the instance's program.
    pub warnings: usize,
    /// The strongest fence level any warning demands (`None` ⇒ quiet).
    pub level: Option<FenceLevel>,
}

impl StaticVerdict {
    /// Quiet certificate: no unfenced critical cycle.
    pub fn quiet(&self) -> bool {
        self.warnings == 0
    }

    /// Compute the chip-independent verdict for one litmus instance.
    pub fn of(inst: &wmm_litmus::LitmusInstance) -> StaticVerdict {
        let a = wmm_analysis::analyze_litmus(inst);
        StaticVerdict {
            warnings: a.warnings.len(),
            level: a.max_warning_level(),
        }
    }

    /// Compute the verdict for one litmus instance on a specific chip:
    /// on incoherent-L1 chips the analyzer adds the structural
    /// read-read channel, so `CoRR`-style rows warn there while staying
    /// quiet on coherent chips (see
    /// [`wmm_analysis::analyze_litmus_on_chip`]).
    pub fn of_chip(inst: &wmm_litmus::LitmusInstance, chip: &Chip) -> StaticVerdict {
        let a = wmm_analysis::analyze_litmus_on_chip(inst, chip);
        StaticVerdict {
            warnings: a.warnings.len(),
            level: a.max_warning_level(),
        }
    }
}

impl std::fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.level {
            None => write!(f, "quiet"),
            Some(FenceLevel::Block) => write!(f, "warn(block)"),
            Some(FenceLevel::Device) => write!(f, "warn(device)"),
        }
    }
}

/// One cell of the suite matrix: a shape at a distance, on a chip,
/// under a strategy.
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// The generated shape.
    pub shape: Shape,
    /// The instantiation distance.
    pub distance: u32,
    /// The shape's thread placement (`inter` — one block per thread —
    /// or `intra` — one block, communicating through shared memory).
    pub placement: Placement,
    /// The memory spaces the shape's events exercise (global first), so
    /// downstream tooling can select scoped/mixed rows without parsing
    /// shape names.
    pub spaces: Vec<Space>,
    /// Chip short name.
    pub chip: String,
    /// Strategy name.
    pub strategy: String,
    /// The outcome histogram (weak = outside the derived SC set).
    pub hist: Histogram,
    /// The static analyzer's verdict on this row's instance **on this
    /// row's chip** (incoherent-L1 chips add the structural read-read
    /// channel): quiet, or warning with the strongest fence level the
    /// delay set demands.
    pub static_verdict: StaticVerdict,
}

impl SuiteCell {
    /// Weak outcomes as a fraction of total.
    pub fn weak_rate(&self) -> f64 {
        self.hist.weak_rate()
    }
}

/// Campaign every `shape × distance × chip × strategy` cell and return
/// the matrix in that (row-major) order.
///
/// Stress artifacts are built once per `(chip, strategy)` column and
/// shared across all of that column's cells and runs.
///
/// Deterministic in `(shapes, cfg, chips, strategies)`: each cell's
/// campaign seed is [`mix_seed`]-derived from the cell's coordinates
/// alone and campaigns are worker-count-independent, so the result is
/// bit-identical for every `cfg.workers`.
pub fn run_suite(
    shapes: &[Shape],
    chips: &[Chip],
    strategies: &[SuiteStrategy],
    cfg: &SuiteConfig,
) -> Vec<SuiteCell> {
    run_suite_with_cache(shapes, chips, strategies, cfg, &ArtifactCache::new())
}

/// [`run_suite`] over a caller-supplied [`ArtifactCache`]: each
/// `(chip, strategy)` column's artifacts are looked up per cell and
/// built at most once — by this suite *or by anything else sharing the
/// cache* (the campaign server seeds its soak runs this way). The
/// cache's build counter is the exactly-once-compilation hook the tests
/// assert on; results are identical to [`run_suite`]'s whether a lookup
/// hits or builds.
pub fn run_suite_with_cache(
    shapes: &[Shape],
    chips: &[Chip],
    strategies: &[SuiteStrategy],
    cfg: &SuiteConfig,
    cache: &ArtifactCache,
) -> Vec<SuiteCell> {
    run_suite_observed(
        shapes,
        chips,
        strategies,
        cfg,
        cache,
        &mut MetricsRegistry::new(),
    )
}

/// [`run_suite_with_cache`] that also records wall-clock telemetry
/// into `metrics`: one `suite_cell` span sample per cell campaign and
/// a `suite_cells` counter. The cells themselves are untouched — the
/// registry is observation only, and its span values are wall-clock
/// (machine-dependent), unlike everything else this function returns.
pub fn run_suite_observed(
    shapes: &[Shape],
    chips: &[Chip],
    strategies: &[SuiteStrategy],
    cfg: &SuiteConfig,
    cache: &ArtifactCache,
    metrics: &mut MetricsRegistry,
) -> Vec<SuiteCell> {
    let mut cells = Vec::new();
    for (si, shape) in shapes.iter().enumerate() {
        for &d in &cfg.distances {
            let inst = shape.instance(LitmusLayout::standard(d, cfg.pad.required_words()));
            for (ci, chip) in chips.iter().enumerate() {
                // Per-chip: incoherent-L1 chips grow the delay set.
                let static_verdict = StaticVerdict::of_chip(&inst, chip);
                for (ki, strat) in strategies.iter().enumerate() {
                    let artifacts = cache.get(chip, &strat.environment(chip), cfg.pad, strat.iters);
                    // Chain one mix per coordinate: unlike a polynomial
                    // pack, this cannot collide for any in-range values.
                    let cell_seed = [si as u64, u64::from(d), ci as u64, ki as u64]
                        .into_iter()
                        .fold(cfg.base_seed, mix_seed);
                    let span = SpanTimer::start();
                    let hist = CampaignBuilder::new(chip)
                        .stress((*artifacts).clone())
                        .randomize_ids(strat.randomize)
                        .count(cfg.execs)
                        .base_seed(cell_seed)
                        .parallelism(cfg.workers)
                        .build()
                        .run_litmus(&inst);
                    span.finish(metrics, "suite_cell");
                    metrics.incr("suite_cells", 1);
                    cells.push(SuiteCell {
                        shape: *shape,
                        distance: d,
                        placement: shape.placement(),
                        spaces: shape.spaces(),
                        chip: chip.short.to_string(),
                        strategy: strat.name.clone(),
                        hist,
                        static_verdict: static_verdict.clone(),
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strong_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn native_suite_on_sc_chip_has_no_weak_outcomes() {
        let cfg = SuiteConfig {
            execs: 12,
            ..Default::default()
        };
        let cells = run_suite(
            &Shape::ALL,
            &[strong_chip()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        assert_eq!(cells.len(), Shape::ALL.len());
        for c in &cells {
            assert_eq!(c.hist.weak(), 0, "{} on SC chip: {}", c.shape, c.hist);
            assert_eq!(c.hist.total(), u64::from(cfg.execs));
        }
    }

    #[test]
    fn suite_is_worker_count_independent() {
        let chips = [Chip::by_short("Titan").unwrap()];
        let shapes = [Shape::Mp, Shape::Iriw, Shape::CoWW];
        let base = SuiteConfig {
            execs: 16,
            ..Default::default()
        };
        let runs: Vec<Vec<SuiteCell>> = [1usize, 2, 8]
            .into_iter()
            .map(|w| {
                let cfg = SuiteConfig {
                    workers: w,
                    ..base.clone()
                };
                run_suite(&shapes, &chips, &[SuiteStrategy::native()], &cfg)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].len(), other.len());
            for (a, b) in runs[0].iter().zip(other.iter()) {
                assert_eq!(a.hist, b.hist, "{} {}", a.shape, a.strategy);
            }
        }
    }

    #[test]
    fn static_column_matches_the_catalogue() {
        let cfg = SuiteConfig {
            execs: 4,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp, Shape::MpFences, Shape::MpShared, Shape::CoRR],
            &[strong_chip()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        let verdict = |shape: Shape| {
            cells
                .iter()
                .find(|c| c.shape == shape)
                .unwrap()
                .static_verdict
                .clone()
        };
        assert_eq!(verdict(Shape::Mp).level, Some(FenceLevel::Device));
        assert!(verdict(Shape::MpFences).quiet());
        assert_eq!(verdict(Shape::MpShared).level, Some(FenceLevel::Block));
        assert!(verdict(Shape::CoRR).quiet(), "coherence-only shape");
        assert_eq!(verdict(Shape::Mp).to_string(), "warn(device)");
        assert_eq!(verdict(Shape::MpShared).to_string(), "warn(block)");
        assert_eq!(verdict(Shape::MpFences).to_string(), "quiet");
    }

    #[test]
    fn cells_carry_the_shape_placement() {
        let cfg = SuiteConfig {
            execs: 8,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp, Shape::MpShared, Shape::MpCas],
            &[strong_chip()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        let placement_of = |shape: Shape| {
            cells
                .iter()
                .find(|c| c.shape == shape)
                .map(|c| c.placement)
                .unwrap()
        };
        assert_eq!(placement_of(Shape::Mp), Placement::InterBlock);
        assert_eq!(placement_of(Shape::MpShared), Placement::IntraBlock);
        assert_eq!(placement_of(Shape::MpCas), Placement::InterBlock);
    }

    #[test]
    fn suite_compiles_each_column_exactly_once() {
        // The full 5-column × 28-shape matrix on one chip: the cache's
        // build counter must read exactly one compile per column, every
        // other cell a hit.
        let chips = [Chip::by_short("Titan").unwrap()];
        let strategies = [
            SuiteStrategy::native(),
            SuiteStrategy::sys_str_plus(40),
            SuiteStrategy::rand_str_plus(40),
            SuiteStrategy::shared_sys_str_plus(40),
            SuiteStrategy::l1_str_plus(40),
        ];
        let cfg = SuiteConfig {
            execs: 2,
            ..Default::default()
        };
        let cache = ArtifactCache::new();
        let cells = run_suite_with_cache(&Shape::ALL, &chips, &strategies, &cfg, &cache);
        assert_eq!(cells.len(), Shape::ALL.len() * strategies.len());
        let s = cache.stats();
        assert_eq!(
            s.builds as usize,
            strategies.len(),
            "one compile per column"
        );
        assert_eq!(s.entries, strategies.len());
        assert_eq!(s.hits, (cells.len() - strategies.len()) as u64);
    }

    #[test]
    fn warm_cache_does_not_change_suite_results() {
        let chips = [Chip::by_short("K20").unwrap()];
        let shapes = [Shape::Mp, Shape::Sb];
        let strategies = [SuiteStrategy::sys_str_plus(40)];
        let cfg = SuiteConfig {
            execs: 12,
            ..Default::default()
        };
        let cache = ArtifactCache::new();
        let cold = run_suite_with_cache(&shapes, &chips, &strategies, &cfg, &cache);
        let warm = run_suite_with_cache(&shapes, &chips, &strategies, &cfg, &cache);
        assert_eq!(cache.stats().builds, 1, "second pass must be all hits");
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.hist, b.hist, "{} {}", a.shape, a.strategy);
        }
    }

    #[test]
    fn strategy_names_carry_the_suffix() {
        assert_eq!(SuiteStrategy::native().name, "no-str-");
        assert_eq!(SuiteStrategy::sys_str_plus(40).name, "sys-str+");
        assert_eq!(SuiteStrategy::rand_str_plus(40).name, "rand-str+");
        assert_eq!(SuiteStrategy::shared_sys_str_plus(40).name, "shm+sys-str+");
        assert_eq!(SuiteStrategy::l1_str_plus(40).name, "l1-str+");
    }

    #[test]
    fn l1_column_flips_corr_on_incoherent_l1_chips_only() {
        let shapes = [Shape::CoRR, Shape::CoRRFence];
        let chips = [
            Chip::by_short("C2075").unwrap(),
            Chip::by_short("K20").unwrap(),
        ];
        let cfg = SuiteConfig {
            execs: 24,
            ..Default::default()
        };
        let cells = run_suite(&shapes, &chips, &[SuiteStrategy::l1_str_plus(40)], &cfg);
        let cell = |shape, chip: &str| {
            cells
                .iter()
                .find(|c| c.shape == shape && c.chip == chip)
                .unwrap()
        };
        // The structural channel: weak CoRR on the incoherent-L1 Tesla,
        // and the static column warns there (at device level).
        let corr = cell(Shape::CoRR, "C2075");
        assert!(corr.hist.weak() > 0, "CoRR under l1-str+: {}", corr.hist);
        assert_eq!(corr.static_verdict.level, Some(FenceLevel::Device));
        // The device fence refreshes the reader's L1: twin at zero, and
        // certified quiet.
        let twin = cell(Shape::CoRRFence, "C2075");
        assert_eq!(twin.hist.weak(), 0, "{}", twin.hist);
        assert!(twin.static_verdict.quiet());
        // Coherent-L1 chips are blind to the column, dynamically and
        // statically.
        let k20 = cell(Shape::CoRR, "K20");
        assert_eq!(k20.hist.weak(), 0, "{}", k20.hist);
        assert!(k20.static_verdict.quiet());
    }

    #[test]
    fn cells_carry_the_spaces_axis() {
        let cfg = SuiteConfig {
            execs: 4,
            ..Default::default()
        };
        let cells = run_suite(
            &[Shape::Mp, Shape::MpShared, Shape::MpMixed],
            &[strong_chip()],
            &[SuiteStrategy::native()],
            &cfg,
        );
        let spaces_of = |shape: Shape| {
            cells
                .iter()
                .find(|c| c.shape == shape)
                .map(|c| c.spaces.clone())
                .unwrap()
        };
        assert_eq!(spaces_of(Shape::Mp), vec![Space::Global]);
        assert_eq!(spaces_of(Shape::MpShared), vec![Space::Shared]);
        assert_eq!(
            spaces_of(Shape::MpMixed),
            vec![Space::Global, Space::Shared]
        );
    }

    #[test]
    fn sc_chip_stays_strong_even_under_shared_stress() {
        // Regression for the SC guard: sequentially_consistent() zeroes
        // the shared-space matrix too, so the scoped and mixed rows show
        // zero weak outcomes at intra-block placement even under the
        // shared-stress column that makes them go weak on real chips.
        let shapes: Vec<Shape> = Shape::SCOPED
            .into_iter()
            .chain(Shape::SCOPED_FENCED)
            .chain(Shape::MIXED)
            .collect();
        let cfg = SuiteConfig {
            execs: 16,
            ..Default::default()
        };
        let cells = run_suite(
            &shapes,
            &[strong_chip()],
            &[SuiteStrategy::shared_sys_str_plus(40)],
            &cfg,
        );
        for c in &cells {
            assert_eq!(c.placement, Placement::IntraBlock, "{}", c.shape);
            assert_eq!(c.hist.weak(), 0, "{} on SC chip: {}", c.shape, c.hist);
        }
    }
}
