//! The per-chip tuning pipeline of Sec. 3.
//!
//! Three stages, each a micro-benchmark campaign over the MP/LB/SB litmus
//! tests, mirroring the paper's ~half-billion-execution study (scaled
//! down by default; [`TuningConfig::paper`] restores the full grid):
//!
//! 1. [`patch`] — find the chip's *critical patch size* by sweeping the
//!    stressed scratchpad location and detecting ε-patches (Sec. 3.2);
//! 2. [`sequence`] — rank every access sequence σ ∈ (ld|st)+ with |σ| ≤ N
//!    and select the maximally effective one by Pareto optimality with
//!    the two-of-three tie-break (Sec. 3.3);
//! 3. [`spread`] — select how many patch-sized regions to stress
//!    simultaneously (Sec. 3.4).
//!
//! [`tune_chip`] chains the stages, feeding each stage's output to the
//! next, and yields a Tab. 2 row.

pub mod pareto;
pub mod patch;
pub mod sequence;
pub mod spread;

use crate::stress::Scratchpad;
use wmm_sim::chip::Chip;
use wmm_sim::seq::AccessSeq;

/// Shared configuration of the tuning campaigns.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// Distances `d` used by the patch-finding sweep.
    pub patch_distances: Vec<u32>,
    /// Extended distances probed when MP shows no patches (the paper's
    /// "extra experiments" for the GTX 980, Sec. 3.2).
    pub extended_distances: Vec<u32>,
    /// Distances used by the sequence and spread stages.
    pub distances: Vec<u32>,
    /// Scratchpad locations swept by patch finding: `0, step, 2·step, …`
    /// up to `locations` (exclusive).
    pub locations: u32,
    /// Stride of the location sweep (1 = the paper's full grid).
    pub location_step: u32,
    /// Executions per configuration (the paper's `C`).
    pub execs: u32,
    /// Noise threshold ε for ε-patch detection (the paper uses 3 at
    /// C = 1000; this scales proportionally with `execs`).
    pub noise: u64,
    /// Maximum access-sequence length `N`.
    pub max_seq_len: usize,
    /// Maximum spread `M`.
    pub max_spread: u32,
    /// Stressing-loop iterations per stressing thread.
    pub stress_iters: u32,
    /// Base seed for all campaigns.
    pub base_seed: u64,
    /// Worker threads (0 ⇒ all cores). The stages parallelise across
    /// *configurations* (locations, sequences, spreads) with each
    /// configuration's campaign sequential on its worker; results are
    /// identical for every value of this knob because per-configuration
    /// seeds depend only on the configuration's coordinates.
    pub parallelism: usize,
}

impl TuningConfig {
    /// The paper's full grid: D = 256, L = 256 (step 1), C = 1000,
    /// ε = 3, N = 5, M = 64. Roughly half a billion executions per chip —
    /// use only for long offline runs.
    pub fn paper() -> Self {
        TuningConfig {
            patch_distances: (0..256).collect(),
            extended_distances: (256..384).collect(),
            distances: (0..256).step_by(16).collect(),
            locations: 256,
            location_step: 1,
            execs: 1000,
            noise: 3,
            max_seq_len: 5,
            max_spread: 64,
            stress_iters: 40,
            base_seed: 0x6e75,
            parallelism: 0,
        }
    }

    /// Scaled-down defaults used by the experiment harness: the same
    /// shapes at ~1/1000 of the execution count.
    pub fn scaled() -> Self {
        TuningConfig {
            patch_distances: vec![0, 8, 16, 32, 48, 64, 96, 128],
            extended_distances: vec![256, 288, 320],
            distances: vec![32, 64],
            locations: 256,
            location_step: 8,
            execs: 80,
            noise: 1,
            max_seq_len: 5,
            max_spread: 16,
            stress_iters: 40,
            base_seed: 2016,
            parallelism: 0,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        TuningConfig {
            patch_distances: vec![0, 32, 64],
            extended_distances: vec![256],
            distances: vec![64],
            locations: 128,
            location_step: 16,
            execs: 24,
            noise: 1,
            max_seq_len: 3,
            max_spread: 4,
            stress_iters: 30,
            base_seed: 7,
            parallelism: 0,
        }
    }

    /// The scratchpad all tuning campaigns target: after the litmus
    /// layout, sized for the location sweep and the spread stage.
    pub fn scratchpad(&self, chip: &Chip) -> Scratchpad {
        let words = self
            .locations
            .max(self.max_spread * chip.patch_words)
            .max(chip.l2_scaled_words);
        Scratchpad::new(2048, words)
    }
}

/// The outcome of the full pipeline for one chip: a row of Tab. 2.
#[derive(Debug, Clone)]
pub struct ChipTuning {
    /// Chip short name.
    pub chip: String,
    /// Critical patch size in words.
    pub patch_words: u32,
    /// Most effective access sequence.
    pub seq: AccessSeq,
    /// Most effective spread.
    pub spread: u32,
    /// Litmus executions spent.
    pub executions: u64,
    /// Wall-clock time spent tuning.
    pub elapsed: std::time::Duration,
}

/// Run the full tuning pipeline (patch → sequence → spread) for a chip.
pub fn tune_chip(chip: &Chip, cfg: &TuningConfig) -> ChipTuning {
    let start = std::time::Instant::now();
    let mut executions = 0u64;

    let patch_report = patch::find_patch_size(chip, cfg);
    executions += patch_report.executions;
    let patch_words = patch_report.critical.unwrap_or(chip.patch_words);

    let seq_scores = sequence::score_sequences(chip, patch_words, cfg);
    executions += seq_scores.executions;
    let seq = sequence::most_effective(&seq_scores).seq.clone();

    let spread_scores = spread::score_spreads(chip, patch_words, &seq, cfg);
    executions += spread_scores.executions;
    let spread = spread::best_spread(&spread_scores);

    ChipTuning {
        chip: chip.short.to_string(),
        patch_words,
        seq,
        spread,
        executions,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_covers_spread_stage() {
        let chip = Chip::by_short("C2075").unwrap();
        let cfg = TuningConfig::scaled();
        let pad = cfg.scratchpad(&chip);
        assert!(pad.words >= cfg.max_spread * chip.patch_words);
        assert!(pad.words >= cfg.locations);
    }

    #[test]
    fn paper_config_matches_section_3() {
        let cfg = TuningConfig::paper();
        assert_eq!(cfg.patch_distances.len(), 256);
        assert_eq!(cfg.locations, 256);
        assert_eq!(cfg.location_step, 1);
        assert_eq!(cfg.execs, 1000);
        assert_eq!(cfg.noise, 3);
        assert_eq!(cfg.max_seq_len, 5);
        assert_eq!(cfg.max_spread, 64);
    }
}
