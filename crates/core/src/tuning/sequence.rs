//! Access-sequence search (Sec. 3.3).
//!
//! Enumerate every σ ∈ (ld|st)+ with |σ| ≤ N, score each against the
//! three litmus tests — summing weak behaviours over all distances and
//! patch-aligned stressing locations — and select the maximally
//! effective sequence (Pareto optimal, two-of-three tie-break).

use super::pareto::select_winner;
use super::TuningConfig;
use crate::campaign::CampaignBuilder;
use crate::stress::StressArtifacts;
use wmm_gen::Shape;
use wmm_litmus::runner::mix_seed;
use wmm_litmus::{LitmusInstance, LitmusLayout};
use wmm_sim::chip::Chip;
use wmm_sim::seq::AccessSeq;

/// Seed salt separating this stage's randomness from the other stages.
const SEQ_STAGE_SALT: u64 = 0x5e9;

/// One sequence's scores: weak-behaviour totals per test (MP, LB, SB).
#[derive(Debug, Clone)]
pub struct SeqScore {
    /// The access sequence.
    pub seq: AccessSeq,
    /// Weak totals, indexed by [`Shape::TRIO`] order.
    pub scores: [u64; 3],
}

/// The sequence stage's full output, ordered as enumerated.
#[derive(Debug, Clone)]
pub struct SeqScores {
    /// Per-sequence scores.
    pub entries: Vec<SeqScore>,
    /// Litmus executions spent.
    pub executions: u64,
}

impl SeqScores {
    /// Entries ranked by score for one test, best first (Tab. 3's
    /// per-test ranking).
    /// # Panics
    ///
    /// Panics if `test` is not one of [`Shape::TRIO`] — the score
    /// arrays are indexed by the Fig. 2 trio the stage campaigns over.
    pub fn ranked_for(&self, test: Shape) -> Vec<&SeqScore> {
        let k = Shape::TRIO
            .iter()
            .position(|t| *t == test)
            .expect("sequence scores are indexed by the Fig. 2 trio");
        let mut v: Vec<&SeqScore> = self.entries.iter().collect();
        v.sort_by(|a, b| b.scores[k].cmp(&a.scores[k]));
        v
    }
}

/// Score every sequence up to the configured length.
///
/// Stress is applied at the first location of each critical-patch-sized
/// region (`{l : P | l}` — "stressing multiple locations in a patch is
/// not worthwhile").
///
/// This is the most expensive tuning stage (62 sequences × 3 tests ×
/// distances × regions at `N = 5`), so the whole configuration grid is
/// flattened into one job list and spread across workers
/// ([`wmm_litmus::parallel`]), with each configuration's campaign run
/// sequentially on its worker. Per-configuration seeds depend only on
/// the configuration's coordinates, so the scores are identical for
/// every `cfg.parallelism`.
pub fn score_sequences(chip: &Chip, patch_words: u32, cfg: &TuningConfig) -> SeqScores {
    let pad = cfg.scratchpad(chip);
    let seqs = AccessSeq::enumerate(cfg.max_seq_len);
    let region_starts: Vec<u32> = (0..cfg.locations)
        .step_by(patch_words.max(1) as usize)
        .collect();
    // Litmus instances depend only on (test, distance); share one per
    // pair across all sequences and locations.
    let insts: Vec<LitmusInstance> = Shape::TRIO
        .iter()
        .flat_map(|test| {
            cfg.distances
                .iter()
                .map(|&d| test.instance(LitmusLayout::standard(d, pad.required_words())))
        })
        .collect();
    // One job per (sequence, test, distance, location), in lexicographic
    // order so aggregation below can address entries directly.
    struct Job {
        si: usize,
        ti: usize,
        inst: usize,
        d: u32,
        l: u32,
    }
    let mut jobs = Vec::new();
    for si in 0..seqs.len() {
        for ti in 0..Shape::TRIO.len() {
            for (di, &d) in cfg.distances.iter().enumerate() {
                for &l in &region_starts {
                    jobs.push(Job {
                        si,
                        ti,
                        inst: ti * cfg.distances.len() + di,
                        d,
                        l,
                    });
                }
            }
        }
    }
    // One pinned stress kernel per sequence, compiled up front and
    // re-pinned per job — not one kernel per (job × run).
    let artifacts: Vec<StressArtifacts> = seqs
        .iter()
        .map(|seq| StressArtifacts::pinned(pad, seq, &[0], cfg.stress_iters))
        .collect();
    let workers = wmm_litmus::parallel::resolve_workers(cfg.parallelism, jobs.len());
    let weaks = wmm_litmus::parallel::parallel_map(workers, jobs.len(), |k| {
        let job = &jobs[k];
        let l = job.l;
        CampaignBuilder::new(chip)
            .stress(artifacts[job.si].with_locations(&[l]))
            .count(cfg.execs)
            .base_seed(mix_seed(
                cfg.base_seed ^ SEQ_STAGE_SALT,
                ((job.si as u64 * 31 + job.ti as u64) * 1_000_003 + u64::from(job.d)) * 1_000_003
                    + u64::from(l),
            ))
            .parallelism(1)
            .build()
            .run_litmus(&insts[job.inst])
            .weak()
    });
    let mut entries: Vec<SeqScore> = seqs
        .iter()
        .map(|seq| SeqScore {
            seq: seq.clone(),
            scores: [0u64; 3],
        })
        .collect();
    for (job, weak) in jobs.iter().zip(weaks) {
        entries[job.si].scores[job.ti] += weak;
    }
    SeqScores {
        entries,
        executions: jobs.len() as u64 * u64::from(cfg.execs),
    }
}

/// The maximally effective sequence per the paper's selection rule.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn most_effective(scores: &SeqScores) -> &SeqScore {
    let vecs: Vec<[u64; 3]> = scores.entries.iter().map(|e| e.scores).collect();
    &scores.entries[select_winner(&vecs)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(s: &str, scores: [u64; 3]) -> SeqScore {
        SeqScore {
            seq: s.parse().unwrap(),
            scores,
        }
    }

    #[test]
    fn winner_is_pareto_two_of_three() {
        let scores = SeqScores {
            entries: vec![
                entry("ld", [10, 2, 3]),
                entry("st", [1, 1, 1]),
                entry("ld st", [9, 9, 9]),
                entry("st ld", [2, 10, 2]),
            ],
            executions: 0,
        };
        assert_eq!(most_effective(&scores).seq.to_string(), "ld st");
    }

    #[test]
    fn ranked_for_orders_descending() {
        let scores = SeqScores {
            entries: vec![
                entry("ld", [1, 0, 0]),
                entry("st", [5, 0, 0]),
                entry("ld st", [3, 0, 0]),
            ],
            executions: 0,
        };
        let ranked = scores.ranked_for(Shape::Mp);
        let names: Vec<String> = ranked.iter().map(|e| e.seq.to_string()).collect();
        assert_eq!(names, vec!["st", "ld st", "ld"]);
    }
}
