//! Patch finding: identifying effective locations to stress (Sec. 3.2).
//!
//! For each litmus test `T`, distance `d` and scratchpad location `l`,
//! run `C` executions of `⟨T_d, l⟩` — the test with stress applied at
//! location `l` — and count weak behaviours. Contiguous runs of locations
//! whose counts exceed the noise threshold ε form *ε-patches*; the patch
//! size that occurs most often, agreed across the three tests, is the
//! chip's **critical patch size**.
//!
//! Patch-finding stress uses the paper's pre-tuning sequence: each
//! stressing thread "stores to and then loads from location l" (`st ld`).

use super::TuningConfig;
use crate::campaign::CampaignBuilder;
use crate::stress::StressArtifacts;
use wmm_gen::Shape;
use wmm_litmus::runner::mix_seed;
use wmm_litmus::LitmusLayout;
use wmm_sim::chip::Chip;
use wmm_sim::seq::AccessSeq;

/// Weak-behaviour counts over a location sweep for one `(test, d)`.
#[derive(Debug, Clone)]
pub struct PatchGrid {
    /// The litmus test.
    pub test: Shape,
    /// The distance between communication locations.
    pub distance: u32,
    /// Location stride of the sweep.
    pub step: u32,
    /// `counts[i]` = weak behaviours at location `i * step` over
    /// `execs` runs.
    pub counts: Vec<u64>,
}

/// An ε-patch: a maximal contiguous run of effective locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    /// First location of the run (in words).
    pub start: u32,
    /// Size of the run in words (`samples × step`).
    pub size_words: u32,
}

/// The patch-finding stage's full output.
#[derive(Debug, Clone)]
pub struct PatchReport {
    /// All sweeps performed.
    pub grids: Vec<PatchGrid>,
    /// Patch size concluded per test (None if that test showed no
    /// patches even after the extended-distance probe).
    pub per_test: Vec<(Shape, Option<u32>)>,
    /// The critical patch size, if the tests agree.
    pub critical: Option<u32>,
    /// Whether MP needed the extended-distance probe (the 980 quirk).
    pub used_extended_mp: bool,
    /// Litmus executions spent.
    pub executions: u64,
}

/// Sweep stress location `l` over `0, step, …` for one `(test, d)`.
///
/// The sweep parallelises across *locations* (each location's campaign
/// runs sequentially on one worker): location campaigns are independent
/// and there are far more of them than cores, so this keeps every core
/// busy without paying a thread fan-out per inner campaign. Each
/// location's base seed is derived from `(test, distance, l)` alone, so
/// the grid is identical for every `cfg.parallelism`.
pub fn sweep(chip: &Chip, test: Shape, distance: u32, cfg: &TuningConfig) -> PatchGrid {
    let pad = cfg.scratchpad(chip);
    let inst = test.instance(LitmusLayout::standard(distance, pad.required_words()));
    let seq: AccessSeq = "st ld".parse().expect("literal");
    // Seed index from the full catalogue so any shape can be swept
    // (the trio occupies positions 0..3, keeping legacy seeds intact).
    let test_idx = Shape::ALL.iter().position(|t| *t == test).unwrap() as u64;
    let locations: Vec<u32> = (0..cfg.locations)
        .step_by(cfg.location_step as usize)
        .collect();
    // One pinned stress kernel serves the whole sweep: every location's
    // campaign re-pins the same compiled program to its location.
    let artifacts = StressArtifacts::pinned(pad, &seq, &[0], cfg.stress_iters);
    let workers = wmm_litmus::parallel::resolve_workers(cfg.parallelism, locations.len());
    let counts = wmm_litmus::parallel::parallel_map(workers, locations.len(), |k| {
        let l = locations[k];
        CampaignBuilder::new(chip)
            .stress(artifacts.with_locations(&[l]))
            .count(cfg.execs)
            .base_seed(mix_seed(
                cfg.base_seed,
                (test_idx * 1_000_003 + u64::from(distance)) * 1_000_003 + u64::from(l),
            ))
            .parallelism(1)
            .build()
            .run_litmus(&inst)
            .weak()
    });
    PatchGrid {
        test,
        distance,
        step: cfg.location_step,
        counts,
    }
}

/// Extract the ε-patches of a grid: maximal runs of sampled locations
/// with more than `noise` weak behaviours.
pub fn epsilon_patches(grid: &PatchGrid, noise: u64) -> Vec<Patch> {
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &c) in grid.counts.iter().enumerate() {
        if c > noise {
            run_start.get_or_insert(i);
        } else if let Some(s) = run_start.take() {
            out.push(Patch {
                start: s as u32 * grid.step,
                size_words: (i - s) as u32 * grid.step,
            });
        }
    }
    if let Some(s) = run_start {
        out.push(Patch {
            start: s as u32 * grid.step,
            size_words: (grid.counts.len() - s) as u32 * grid.step,
        });
    }
    out
}

/// Snap an observed patch size to the nearest power of two (sampling at
/// `location_step > 1` quantises sizes).
pub fn snap_size(words: u32) -> u32 {
    if words == 0 {
        return 0;
    }
    let mut best = 8u32;
    let mut best_d = u32::MAX;
    let mut p = 8u32;
    while p <= 256 {
        let d = p.abs_diff(words);
        if d < best_d || (d == best_d && p > best) {
            best = p;
            best_d = d;
        }
        p *= 2;
    }
    best
}

/// The modal (snapped) patch size across a set of grids, if any patches
/// were seen.
pub fn modal_patch_size(grids: &[&PatchGrid], noise: u64) -> Option<u32> {
    let mut histogram: std::collections::BTreeMap<u32, usize> = Default::default();
    for g in grids {
        for p in epsilon_patches(g, noise) {
            *histogram.entry(snap_size(p.size_words)).or_insert(0) += 1;
        }
    }
    histogram
        .into_iter()
        .max_by_key(|&(size, n)| (n, size))
        .map(|(size, _)| size)
}

/// The full patch-finding stage for one chip.
///
/// Sweeps run one after another (each internally parallel across its
/// location grid), because the extended-distance probe is conditional on
/// the ordinary sweeps' outcome.
pub fn find_patch_size(chip: &Chip, cfg: &TuningConfig) -> PatchReport {
    let mut grids = Vec::new();
    let mut executions = 0u64;
    let samples_per_sweep = u64::from(cfg.locations.div_ceil(cfg.location_step));
    for test in Shape::TRIO {
        for &d in &cfg.patch_distances {
            grids.push(sweep(chip, test, d, cfg));
            executions += samples_per_sweep * u64::from(cfg.execs);
        }
    }
    let mut per_test = Vec::new();
    let mut used_extended_mp = false;
    for test in Shape::TRIO {
        let test_grids: Vec<&PatchGrid> = grids.iter().filter(|g| g.test == test).collect();
        let mut size = modal_patch_size(&test_grids, cfg.noise);
        if size.is_none() && test == Shape::Mp {
            // The paper's 980 path: MP patches only emerge at larger
            // distances; probe the extended range.
            used_extended_mp = true;
            let mut extra = Vec::new();
            for &d in &cfg.extended_distances {
                extra.push(sweep(chip, test, d, cfg));
                executions += samples_per_sweep * u64::from(cfg.execs);
            }
            let refs: Vec<&PatchGrid> = extra.iter().collect();
            size = modal_patch_size(&refs, cfg.noise);
            grids.extend(extra);
        }
        per_test.push((test, size));
    }
    // The paper calls P critical when all three tests agree; for
    // judgement-call chips (980) we accept the majority of the observed
    // sizes.
    let sizes: Vec<u32> = per_test.iter().filter_map(|&(_, s)| s).collect();
    let critical = if sizes.is_empty() {
        None
    } else {
        let mut hist: std::collections::BTreeMap<u32, usize> = Default::default();
        for &s in &sizes {
            *hist.entry(s).or_insert(0) += 1;
        }
        hist.into_iter()
            .max_by_key(|&(s, n)| (n, s))
            .map(|(s, _)| s)
    };
    PatchReport {
        grids,
        per_test,
        critical,
        used_extended_mp,
        executions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(counts: Vec<u64>, step: u32) -> PatchGrid {
        PatchGrid {
            test: Shape::Mp,
            distance: 64,
            step,
            counts,
        }
    }

    #[test]
    fn no_patches_in_quiet_grid() {
        let g = grid(vec![0, 1, 0, 1, 0], 8);
        assert!(epsilon_patches(&g, 1).is_empty());
    }

    #[test]
    fn single_patch_detected() {
        let g = grid(vec![0, 0, 9, 8, 7, 5, 0, 0], 8);
        let ps = epsilon_patches(&g, 1);
        assert_eq!(
            ps,
            vec![Patch {
                start: 16,
                size_words: 32
            }]
        );
    }

    #[test]
    fn patch_at_end_of_sweep_closed() {
        let g = grid(vec![0, 0, 0, 0, 6, 6, 6, 6], 8);
        let ps = epsilon_patches(&g, 1);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].size_words, 32);
    }

    #[test]
    fn multiple_patches_detected() {
        let g = grid(vec![9, 9, 0, 0, 9, 9, 0, 0], 16);
        let ps = epsilon_patches(&g, 1);
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.size_words == 32));
    }

    #[test]
    fn noise_threshold_respected() {
        let g = grid(vec![2, 2, 2, 2], 8);
        assert!(epsilon_patches(&g, 3).is_empty());
        assert_eq!(epsilon_patches(&g, 1).len(), 1);
    }

    #[test]
    fn snap_sizes() {
        assert_eq!(snap_size(32), 32);
        assert_eq!(snap_size(24), 32, "ties snap upward");
        assert_eq!(snap_size(40), 32);
        assert_eq!(snap_size(56), 64);
        assert_eq!(snap_size(64), 64);
        assert_eq!(snap_size(300), 256);
    }

    #[test]
    fn modal_size_across_grids() {
        let g1 = grid(vec![9, 9, 9, 9, 0, 0, 0, 0], 8); // 32 words
        let g2 = grid(vec![0, 0, 9, 9, 9, 9, 0, 0], 8); // 32 words
        let g3 = grid(vec![9, 9, 9, 9, 9, 9, 9, 9], 8); // 64 words
        let refs: Vec<&PatchGrid> = vec![&g1, &g2, &g3];
        assert_eq!(modal_patch_size(&refs, 1), Some(32));
    }
}
