//! Pareto selection over per-litmus-test scores (Sec. 3.3–3.4).
//!
//! A candidate (access sequence or spread) is *maximally effective* if no
//! other candidate is observed to be more effective with respect to **all
//! three** litmus tests — i.e. it is Pareto optimal over (MP, LB, SB)
//! scores. Ties are broken by the paper's rule: pick the candidate that is
//! most effective for two of the three tests; if that still ties, fall
//! back to the highest total score (our deterministic extension).

/// Indices of the Pareto-optimal score vectors. `a` dominates `b` when
/// `a` is strictly greater on every test.
pub fn pareto_front(scores: &[[u64; 3]]) -> Vec<usize> {
    (0..scores.len())
        .filter(|&i| {
            !scores
                .iter()
                .any(|other| (0..3).all(|k| other[k] > scores[i][k]))
        })
        .collect()
}

/// Indices of the Pareto-optimal points under *minimisation* with weak
/// dominance: `a` dominates `b` when `a` is no worse on both axes and
/// strictly better on at least one. Used by the scoped hardening
/// search over (residual errors, fence cost) — duplicate points all
/// stay on the front, so the caller's deterministic tie-breaks apply.
pub fn pareto_min_front(points: &[[u64; 2]]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().any(|o| {
                o[0] <= points[i][0]
                    && o[1] <= points[i][1]
                    && (o[0] < points[i][0] || o[1] < points[i][1])
            })
        })
        .collect()
}

/// Select the single winner: the Pareto front filtered by the
/// two-of-three tie-break, then by total score, then by lowest index
/// (fully deterministic).
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn select_winner(scores: &[[u64; 3]]) -> usize {
    assert!(!scores.is_empty(), "no candidates to select from");
    let front = pareto_front(scores);
    // For each front member, count the tests on which it attains the
    // maximum among front members.
    let mut best_idx = front[0];
    let mut best_key = (0usize, 0u64);
    for &i in &front {
        let mut wins = 0;
        for (k, &score) in scores[i].iter().enumerate() {
            let max_k = front.iter().map(|&j| scores[j][k]).max().unwrap_or(0);
            if score == max_k {
                wins += 1;
            }
        }
        let total: u64 = scores[i].iter().sum();
        let key = (wins, total);
        if key > best_key || (key == best_key && i < best_idx) {
            best_key = key;
            best_idx = i;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_candidate_wins() {
        assert_eq!(select_winner(&[[1, 2, 3]]), 0);
    }

    #[test]
    fn dominated_candidates_excluded() {
        let scores = [[10, 10, 10], [5, 5, 5], [11, 9, 10]];
        let front = pareto_front(&scores);
        assert!(front.contains(&0));
        assert!(!front.contains(&1), "strictly dominated by candidate 0");
        assert!(front.contains(&2), "not dominated (better on test 0)");
    }

    #[test]
    fn winner_takes_two_of_three() {
        // Candidate 0 is best on MP and LB; candidate 1 only on SB.
        let scores = [[10, 10, 1], [9, 9, 20]];
        assert_eq!(select_winner(&scores), 0);
    }

    #[test]
    fn equal_scores_pick_lowest_index() {
        let scores = [[5, 5, 5], [5, 5, 5]];
        assert_eq!(select_winner(&scores), 0);
    }

    #[test]
    fn clear_dominator_always_wins() {
        let scores = [[1, 1, 1], [9, 9, 9], [3, 3, 3]];
        assert_eq!(select_winner(&scores), 1);
        assert_eq!(pareto_front(&scores), vec![1]);
    }

    #[test]
    fn all_zero_scores_handled() {
        let scores = [[0, 0, 0], [0, 0, 0], [0, 0, 0]];
        let w = select_winner(&scores);
        assert_eq!(w, 0);
        assert_eq!(pareto_front(&scores).len(), 3);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_input_panics() {
        let _ = select_winner(&[]);
    }

    #[test]
    fn min_front_keeps_the_tradeoff_curve() {
        // (errors, cost): the zero-error cheap point and the cheapest
        // point survive; anything weakly dominated falls off.
        let pts = [[0, 8], [0, 2], [1, 1], [2, 2], [0, 2]];
        let front = pareto_min_front(&pts);
        assert!(!front.contains(&0), "costlier than [0,2]");
        assert!(front.contains(&1));
        assert!(front.contains(&2), "cheapest point stays despite errors");
        assert!(!front.contains(&3), "dominated by [1,1] and [0,2]");
        assert!(front.contains(&4), "duplicates both stay on the front");
    }

    #[test]
    fn min_front_of_identical_points_is_everyone() {
        let pts = [[3, 3], [3, 3]];
        assert_eq!(pareto_min_front(&pts), vec![0, 1]);
    }
}
