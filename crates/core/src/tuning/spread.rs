//! Spread search: how many locations to stress simultaneously (Sec. 3.4).
//!
//! With the critical patch size and the most effective access sequence
//! fixed, score each spread `m ∈ 1..=M`: per execution, stress a
//! randomly chosen `m`-subset of the first locations of the `M`
//! patch-sized scratchpad regions, with stressing threads distributed
//! evenly over the chosen locations. The best spread is selected by the
//! same Pareto rule as the sequence stage (the paper found 2 on every
//! chip, with a U-shaped score curve — Fig. 4).

use super::pareto::select_winner;
use super::TuningConfig;
use crate::campaign::CampaignBuilder;
use crate::stress::{StressArtifacts, StressStrategy, SystematicParams};
use wmm_gen::Shape;
use wmm_litmus::runner::mix_seed;
use wmm_litmus::LitmusLayout;
use wmm_sim::chip::Chip;
use wmm_sim::seq::AccessSeq;

/// Seed salt separating this stage's randomness from the other stages.
const SPREAD_STAGE_SALT: u64 = 0x59ead;

/// The spread stage's output.
#[derive(Debug, Clone)]
pub struct SpreadScores {
    /// `(m, weak totals per test)` for each spread, in increasing `m`.
    pub entries: Vec<(u32, [u64; 3])>,
    /// Litmus executions spent.
    pub executions: u64,
}

/// Score every spread `1..=M`.
pub fn score_spreads(
    chip: &Chip,
    patch_words: u32,
    seq: &AccessSeq,
    cfg: &TuningConfig,
) -> SpreadScores {
    // The paper's scratchpad for this stage has exactly M regions.
    let mut pad = cfg.scratchpad(chip);
    pad.words = pad.words.min(patch_words * cfg.max_spread).max(patch_words);
    // Densify the distance grid: this stage sums scores over distances
    // (Sec. 3.4) and has few configurations, so extra distances buy
    // variance reduction cheaply.
    let mut distances = cfg.distances.clone();
    for extra in [96, 160] {
        if !distances.contains(&extra) {
            distances.push(extra);
        }
    }
    // One job per (spread, test, distance), flattened and spread across
    // workers with sequential inner campaigns (see `score_sequences`).
    // Per-job seeds depend only on the job's coordinates, so scores are
    // identical for every `cfg.parallelism`.
    let mut jobs = Vec::new();
    for m in 1..=cfg.max_spread {
        for ti in 0..Shape::TRIO.len() {
            for &d in &distances {
                jobs.push((m, ti, d));
            }
        }
    }
    // One compiled systematic kernel per spread, shared by all of that
    // spread's jobs and runs (only the per-run location table is drawn
    // from each run's RNG).
    let artifacts: Vec<StressArtifacts> = (1..=cfg.max_spread)
        .map(|m| {
            let strategy = StressStrategy::Systematic(SystematicParams {
                patch_words,
                seq: seq.clone(),
                spread: m,
            });
            StressArtifacts::for_strategy(chip, &strategy, pad, cfg.stress_iters)
        })
        .collect();
    let workers = wmm_litmus::parallel::resolve_workers(cfg.parallelism, jobs.len());
    let weaks = wmm_litmus::parallel::parallel_map(workers, jobs.len(), |k| {
        let (m, ti, d) = jobs[k];
        let inst = Shape::TRIO[ti].instance(LitmusLayout::standard(d, pad.required_words()));
        CampaignBuilder::new(chip)
            .stress(artifacts[(m - 1) as usize].clone())
            // This stage has far fewer configurations than the
            // location/sequence sweeps (the paper compensates with its
            // much denser distance grid), so spend more executions per
            // spread for a stable curve.
            .count(cfg.execs * 10)
            .base_seed(mix_seed(
                cfg.base_seed ^ SPREAD_STAGE_SALT,
                (u64::from(m) * 31 + ti as u64) * 1_000_003 + u64::from(d),
            ))
            .parallelism(1)
            .build()
            .run_litmus(&inst)
            .weak()
    });
    let mut entries: Vec<(u32, [u64; 3])> = (1..=cfg.max_spread).map(|m| (m, [0u64; 3])).collect();
    for (&(m, ti, _), weak) in jobs.iter().zip(weaks) {
        entries[(m - 1) as usize].1[ti] += weak;
    }
    SpreadScores {
        entries,
        executions: jobs.len() as u64 * u64::from(cfg.execs * 10),
    }
}

/// The maximally effective spread per the paper's Pareto rule.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn best_spread(scores: &SpreadScores) -> u32 {
    let vecs: Vec<[u64; 3]> = scores.entries.iter().map(|&(_, s)| s).collect();
    scores.entries[select_winner(&vecs)].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_spread_picks_pareto_winner() {
        let scores = SpreadScores {
            entries: vec![
                (1, [5, 5, 5]),
                (2, [9, 8, 9]),
                (3, [6, 9, 6]),
                (4, [2, 2, 2]),
            ],
            executions: 0,
        };
        assert_eq!(best_spread(&scores), 2);
    }

    #[test]
    fn u_shape_with_clear_peak() {
        let scores = SpreadScores {
            entries: (1..=8)
                .map(|m| {
                    let v = 10u64.saturating_sub((i64::from(m) - 2).unsigned_abs() * 2);
                    (m, [v, v, v])
                })
                .collect(),
            executions: 0,
        };
        assert_eq!(best_spread(&scores), 2);
    }
}
