//! Spread search: how many locations to stress simultaneously (Sec. 3.4).
//!
//! With the critical patch size and the most effective access sequence
//! fixed, score each spread `m ∈ 1..=M`: per execution, stress a
//! randomly chosen `m`-subset of the first locations of the `M`
//! patch-sized scratchpad regions, with stressing threads distributed
//! evenly over the chosen locations. The best spread is selected by the
//! same Pareto rule as the sequence stage (the paper found 2 on every
//! chip, with a U-shaped score curve — Fig. 4).

use super::pareto::select_winner;
use super::TuningConfig;
use crate::stress::{build_stress, litmus_stress_threads, StressStrategy, SystematicParams};
use wmm_litmus::runner::mix_seed;
use wmm_litmus::{run_many, LitmusInstance, LitmusLayout, LitmusTest, RunManyConfig};
use wmm_sim::chip::Chip;
use wmm_sim::seq::AccessSeq;

/// Seed salt separating this stage's randomness from the other stages.
const SPREAD_STAGE_SALT: u64 = 0x59ead;

/// The spread stage's output.
#[derive(Debug, Clone)]
pub struct SpreadScores {
    /// `(m, weak totals per test)` for each spread, in increasing `m`.
    pub entries: Vec<(u32, [u64; 3])>,
    /// Litmus executions spent.
    pub executions: u64,
}

/// Score every spread `1..=M`.
pub fn score_spreads(
    chip: &Chip,
    patch_words: u32,
    seq: &AccessSeq,
    cfg: &TuningConfig,
) -> SpreadScores {
    // The paper's scratchpad for this stage has exactly M regions.
    let mut pad = cfg.scratchpad(chip);
    pad.words = pad.words.min(patch_words * cfg.max_spread).max(patch_words);
    // Densify the distance grid: this stage sums scores over distances
    // (Sec. 3.4) and has few configurations, so extra distances buy
    // variance reduction cheaply.
    let mut distances = cfg.distances.clone();
    for extra in [96, 160] {
        if !distances.contains(&extra) {
            distances.push(extra);
        }
    }
    let mut entries = Vec::new();
    let mut executions = 0u64;
    for m in 1..=cfg.max_spread {
        let mut scores = [0u64; 3];
        for (ti, test) in LitmusTest::ALL.iter().enumerate() {
            for &d in &distances {
                let inst =
                    LitmusInstance::build(*test, LitmusLayout::standard(d, pad.required_words()));
                let chip2 = chip.clone();
                let strategy = StressStrategy::Systematic(SystematicParams {
                    patch_words,
                    seq: seq.clone(),
                    spread: m,
                });
                let iters = cfg.stress_iters;
                let h = run_many(
                    chip,
                    &inst,
                    move |rng| {
                        let threads = litmus_stress_threads(&chip2, rng);
                        let s = build_stress(&chip2, &strategy, pad, threads, iters, rng);
                        (s.groups, s.init)
                    },
                    RunManyConfig {
                        // This stage has far fewer configurations than the
                        // location/sequence sweeps (the paper compensates
                        // with its much denser distance grid), so spend
                        // more executions per spread for a stable curve.
                        count: cfg.execs * 10,
                        base_seed: mix_seed(
                            cfg.base_seed ^ SPREAD_STAGE_SALT,
                            (u64::from(m) * 31 + ti as u64) * 1_000_003 + u64::from(d),
                        ),
                        randomize_ids: false,
                        parallelism: cfg.parallelism,
                    },
                );
                scores[ti] += h.weak();
                executions += u64::from(cfg.execs * 10);
            }
        }
        entries.push((m, scores));
    }
    SpreadScores {
        entries,
        executions,
    }
}

/// The maximally effective spread per the paper's Pareto rule.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn best_spread(scores: &SpreadScores) -> u32 {
    let vecs: Vec<[u64; 3]> = scores.entries.iter().map(|&(_, s)| s).collect();
    scores.entries[select_winner(&vecs)].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_spread_picks_pareto_winner() {
        let scores = SpreadScores {
            entries: vec![
                (1, [5, 5, 5]),
                (2, [9, 8, 9]),
                (3, [6, 9, 6]),
                (4, [2, 2, 2]),
            ],
            executions: 0,
        };
        assert_eq!(best_spread(&scores), 2);
    }

    #[test]
    fn u_shape_with_clear_peak() {
        let scores = SpreadScores {
            entries: (1..=8)
                .map(|m| {
                    let v = 10u64.saturating_sub(u64::from((i64::from(m) - 2).unsigned_abs()) * 2);
                    (m, [v, v, v])
                })
                .collect(),
            executions: 0,
        };
        assert_eq!(best_spread(&scores), 2);
    }
}
