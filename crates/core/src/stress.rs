//! Memory stressing strategies (Sec. 3 and Sec. 4.2).
//!
//! All strategies target a *scratchpad*: a region of global memory
//! completely disjoint from the application's data, accessed by stressing
//! blocks completely disjoint from the application's blocks — so the set
//! of possible application behaviours is unchanged.
//!
//! Four strategies are evaluated in the paper:
//!
//! * [`StressStrategy::None`] (`no-str`) — run natively;
//! * [`StressStrategy::Random`] (`rand-str`) — each stressing access picks
//!   a random scratchpad location and a random load/store;
//! * [`StressStrategy::CacheSized`] (`cache-str`) — an L2-cache-sized
//!   scratchpad swept with a load + store per location;
//! * [`StressStrategy::Systematic`] (`sys-str`) — the paper's tuned
//!   strategy: stress the first location of `spread` randomly chosen
//!   critical-patch-sized regions, with the chip's most effective access
//!   sequence.
//!
//! One further strategy targets the *structural* relaxation channel the
//! chip topology adds:
//!
//! * [`StressStrategy::L1`] (`l1-str`) — write-only scratchpad traffic.
//!   Pure stores are gated out of the channel contention factor (χ needs
//!   a load/store mix), so this strategy provokes almost no in-flight
//!   reordering; what it does do is complete a torrent of global writes
//!   from stressing blocks homed on *other* SMs, driving the cross-SM
//!   write pressure that makes incoherent L1s serve stale lines
//!   (`CoRR` & friends on the Tesla-class chips). A clean single-channel
//!   probe: coherent-L1 chips are essentially blind to it.
//!
//! Every strategy (and every location-table entry) above targets
//! **global** memory: stressing blocks live in their own blocks, and a
//! block's `Space::Shared` scratch is unreachable from outside it.
//! *Shared-space* stress therefore takes a different route entirely —
//! [`SharedStress`], attached to [`StressArtifacts`], turns the idle
//! non-zero lanes of an intra-block litmus kernel into shared-scratchpad
//! hammers (see `wmm_litmus::LitmusInstance::with_shared_stress`). That
//! intra-block pressure feeds the per-block shared contention factor χ,
//! which is what makes the scoped catalogue shapes (`MP.shared`,
//! `SB.shared`, …) observably weak — while their `+fence_block` twins
//! and the single-location `CoRR.shared` stay forbidden-outcome-free.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wmm_sim::chip::Chip;
use wmm_sim::exec::{KernelGroup, Role};
use wmm_sim::ir::builder::KernelBuilder;
use wmm_sim::ir::{BinOp, Program};
use wmm_sim::seq::{Acc, AccessSeq};
use wmm_sim::Word;

/// The scratchpad region stressing threads target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scratchpad {
    /// First word of the scratchpad (keep line-aligned).
    pub base: u32,
    /// Scratchpad size in words.
    pub words: u32,
    /// Base of a small table region used to pass per-run stress locations
    /// to the kernel (disjoint from the scratchpad and the application).
    pub table_base: u32,
}

impl Scratchpad {
    /// A scratchpad of `words` words at `base`, with the location table
    /// immediately before it.
    ///
    /// # Panics
    ///
    /// Panics if there is no room for the table below `base`.
    pub fn new(base: u32, words: u32) -> Self {
        assert!(base >= 64, "need room for the location table below base");
        Scratchpad {
            base,
            words,
            table_base: base - 64,
        }
    }

    /// Words of global memory a launch must provide to cover this
    /// scratchpad.
    pub fn required_words(&self) -> u32 {
        self.base + self.words
    }
}

/// Parameters of the systematic (tuned) stress — Tab. 2's columns.
///
/// `Eq`/`Hash` are structural (the access sequence and the two word
/// counts), so two strategies tuned to the same parameters — whatever
/// chip produced them — key to the same artifact-cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystematicParams {
    /// The chip's critical patch size in words.
    pub patch_words: u32,
    /// The most effective access sequence.
    pub seq: AccessSeq,
    /// How many patch-sized regions to stress simultaneously.
    pub spread: u32,
}

impl SystematicParams {
    /// The paper's published tuning for a chip (Tab. 2).
    pub fn from_paper(chip: &Chip) -> Self {
        let (patch_words, seq, spread) = chip.paper_tuning();
        SystematicParams {
            patch_words,
            seq,
            spread,
        }
    }
}

/// Intra-block shared-memory stressing: how hard the idle lanes of a
/// scoped litmus block hammer a shared scratchpad. Unlike the global
/// strategies this is not a separate kernel group — shared memory is
/// per-block, so the stress rides inside the test kernel itself
/// (injected by `LitmusInstance::with_shared_stress`), and it only
/// applies to intra-block instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedStress {
    /// Scratchpad size in shared words (placed past the test's own
    /// shared locations).
    pub words: u32,
    /// Load+store sweep iterations per stressing lane.
    pub iters: u32,
}

impl SharedStress {
    /// The prefix shared-stress environment/column names carry (e.g.
    /// `shm+sys-str+`) — one definition so `Environment::name()` and the
    /// suite column labels (which CI greps match against) cannot
    /// diverge.
    pub const NAME_PREFIX: &'static str = "shm+";

    /// The default shared-stress configuration of the suite's
    /// shared-stress environments: enough lanes-by-iterations pressure
    /// to saturate the per-block shared contention factor for the whole
    /// test window.
    pub fn standard() -> Self {
        SharedStress {
            words: 64,
            iters: 60,
        }
    }
}

/// A memory stressing strategy.
///
/// `Eq`/`Hash` compare the strategy's *structure* (for `sys-str`, the
/// full [`SystematicParams`]), not its display name: `sys-str` tuned
/// for the Titan and `sys-str` tuned for the GTX 980 print identically
/// but hash — and cache — separately, while chips that share Tab. 2
/// tuning (Titan and K20) compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StressStrategy {
    /// `no-str`: no stressing blocks at all.
    None,
    /// `rand-str`: random location, random access kind, every iteration.
    Random,
    /// `cache-str`: sweep an L2-sized scratchpad with a load and store per
    /// location.
    CacheSized,
    /// `sys-str`: the tuned strategy of Sec. 3.
    Systematic(SystematicParams),
    /// `l1-str`: write-only scratchpad traffic driving cross-SM L1 write
    /// pressure — the structural (incoherent-L1) relaxation channel's
    /// stress. See the module docs.
    L1,
}

impl StressStrategy {
    /// The paper's name for the strategy (`no-str`, `rand-str`,
    /// `cache-str`, `sys-str`), or `l1-str` for the structural L1
    /// channel's write-only stress.
    pub fn short(&self) -> &'static str {
        match self {
            StressStrategy::None => "no-str",
            StressStrategy::Random => "rand-str",
            StressStrategy::CacheSized => "cache-str",
            StressStrategy::Systematic(_) => "sys-str",
            StressStrategy::L1 => "l1-str",
        }
    }
}

/// A fully instantiated stress configuration for one run: kernel groups
/// plus the memory initialisation they need.
#[derive(Debug, Clone, Default)]
pub struct StressSetup {
    /// Stressing kernel groups (empty for `no-str`).
    pub groups: Vec<KernelGroup>,
    /// Global-memory initialisation (the location table).
    pub init: Vec<(u32, Word)>,
}

/// Per-environment stress artifacts, built **once** and reused across
/// every run of a campaign.
///
/// Compiling a stressing kernel per run is the historic hot-path cost:
/// a campaign of `C` executions under `sys-str` used to emit `C`
/// identical `Program`s. The kernel of the systematic and cache-sized
/// strategies depends only on environment-level constants (scratchpad,
/// access sequence, spread, iteration count), so this type compiles it
/// at construction and [`StressArtifacts::make`] merely re-instantiates
/// the cheap per-run parts — the location table drawn from the run's RNG
/// and the kernel-group thread count.
///
/// `make` draws exactly the values (in exactly the order) the one-shot
/// [`build_stress`] draws — in fact `build_stress` now delegates here —
/// so cached and uncached campaigns are bit-for-bit identical.
///
/// The `rand-str` kernel bakes a fresh in-kernel PRNG seed into the
/// program every run, so it is the one strategy whose kernel cannot be
/// cached; its `make` still rebuilds per run (documented cost of that
/// strategy, not of this API).
#[derive(Debug, Clone)]
pub struct StressArtifacts {
    pad: Scratchpad,
    iters: u32,
    kind: ArtifactKind,
    /// Optional intra-block shared-space stress, applied by the campaign
    /// facade to intra-block litmus instances (see [`SharedStress`]).
    shared: Option<SharedStress>,
}

#[derive(Debug, Clone)]
enum ArtifactKind {
    /// `no-str`: nothing to launch.
    None,
    /// `rand-str`: the kernel embeds a per-run seed; rebuilt per run.
    Random,
    /// `cache-str`: one fixed kernel, no per-run state at all.
    Fixed { program: Arc<Program> },
    /// `sys-str`: one fixed kernel; the location table is drawn per run.
    Systematic {
        program: Arc<Program>,
        regions: u32,
        spread: u32,
        patch_words: u32,
    },
    /// Systematic stress pinned to explicit locations (the tuning
    /// micro-benchmarks' `⟨T_d, σ@L⟩`): kernel *and* table are fixed.
    Pinned {
        program: Arc<Program>,
        init: Vec<(u32, Word)>,
        spread: u32,
    },
}

impl StressArtifacts {
    /// Artifacts for the native environment (`no-str`): nothing is ever
    /// launched.
    pub fn none() -> Self {
        StressArtifacts {
            pad: Scratchpad::new(64, 0),
            iters: 0,
            kind: ArtifactKind::None,
            shared: None,
        }
    }

    /// Build the artifacts for a strategy on a chip: compile whatever is
    /// compilable once, record what must be drawn per run.
    pub fn for_strategy(
        chip: &Chip,
        strategy: &StressStrategy,
        pad: Scratchpad,
        iters: u32,
    ) -> Self {
        let kind = match strategy {
            StressStrategy::None => ArtifactKind::None,
            StressStrategy::Random => ArtifactKind::Random,
            StressStrategy::CacheSized => {
                let words = pad.words.min(chip.l2_scaled_words).max(1);
                ArtifactKind::Fixed {
                    program: Arc::new(cache_stress_kernel(pad, words, iters)),
                }
            }
            StressStrategy::Systematic(p) => {
                let regions = (pad.words / p.patch_words).max(1);
                let spread = p.spread.clamp(1, regions).min(64);
                ArtifactKind::Systematic {
                    program: Arc::new(systematic_stress_kernel(pad, &p.seq, spread, iters)),
                    regions,
                    spread,
                    patch_words: p.patch_words,
                }
            }
            // Like `cache-str`, the L1 stress kernel depends only on
            // environment-level constants: compiled once, nothing drawn
            // per run.
            StressStrategy::L1 => ArtifactKind::Fixed {
                program: Arc::new(l1_stress_kernel(pad, iters)),
            },
        };
        StressArtifacts {
            pad,
            iters,
            kind,
            shared: None,
        }
    }

    /// Artifacts for systematic stress pinned to explicit scratchpad
    /// locations (word offsets within the pad). Kernel and location
    /// table are both environment-level constants here.
    ///
    /// # Panics
    ///
    /// Panics if `rel_locations` is empty or any location exceeds the
    /// pad.
    pub fn pinned(pad: Scratchpad, seq: &AccessSeq, rel_locations: &[u32], iters: u32) -> Self {
        assert!(!rel_locations.is_empty(), "need at least one location");
        for &l in rel_locations {
            assert!(l < pad.words, "location {l} outside scratchpad");
        }
        let spread = rel_locations.len() as u32;
        StressArtifacts {
            pad,
            iters,
            kind: ArtifactKind::Pinned {
                program: Arc::new(systematic_stress_kernel(pad, seq, spread, iters)),
                init: Self::table_for(pad, rel_locations),
                spread,
            },
            shared: None,
        }
    }

    /// Re-pin already-built pinned artifacts to a different location set
    /// of the same size, reusing the compiled kernel (the location sweep
    /// of patch finding visits hundreds of location sets that all share
    /// one kernel).
    ///
    /// # Panics
    ///
    /// Panics if these artifacts are not pinned, the location count
    /// changes (the spread is baked into the kernel), or a location
    /// exceeds the pad.
    pub fn with_locations(&self, rel_locations: &[u32]) -> Self {
        let ArtifactKind::Pinned {
            program, spread, ..
        } = &self.kind
        else {
            panic!("with_locations requires pinned artifacts");
        };
        assert_eq!(
            *spread,
            rel_locations.len() as u32,
            "location count is baked into the pinned kernel"
        );
        for &l in rel_locations {
            assert!(l < self.pad.words, "location {l} outside scratchpad");
        }
        StressArtifacts {
            pad: self.pad,
            iters: self.iters,
            kind: ArtifactKind::Pinned {
                program: Arc::clone(program),
                init: Self::table_for(self.pad, rel_locations),
                spread: *spread,
            },
            shared: self.shared,
        }
    }

    /// Whether this is the native environment (no stressing blocks —
    /// callers skip their per-run thread-count draw, as the legacy
    /// native campaigns did). Intra-block shared stress is orthogonal:
    /// it rides inside the test kernel, not in stressing blocks.
    pub fn is_native(&self) -> bool {
        matches!(self.kind, ArtifactKind::None)
    }

    /// Attach (or clear) intra-block shared-space stress: campaigns
    /// apply it to intra-block litmus instances by injecting stressing
    /// lanes into the test kernel (inter-block instances and application
    /// workloads are unaffected — their blocks have no idle lanes to
    /// repurpose). Takes an `Option` so every environment-to-artifacts
    /// construction site forwards the axis with one unconditional call —
    /// no site can forget the `Some` branch and silently drop it.
    pub fn with_shared_stress(mut self, shared: Option<SharedStress>) -> Self {
        self.shared = shared;
        self
    }

    /// The attached intra-block shared-space stress, if any.
    pub fn shared_stress(&self) -> Option<SharedStress> {
        self.shared
    }

    /// Instantiate one run's stressing blocks. Draws from `rng` exactly
    /// what the one-shot [`build_stress`] would (nothing for `no-str`,
    /// `cache-str` and pinned; the kernel seed for `rand-str`; the
    /// location picks for `sys-str`), so a campaign over cached
    /// artifacts is bit-identical to one rebuilding per run.
    pub fn make(&self, threads: u32, rng: &mut SmallRng) -> StressSetup {
        match &self.kind {
            ArtifactKind::None => StressSetup::default(),
            ArtifactKind::Random => {
                let program = random_stress_kernel(self.pad, self.iters, rng.gen());
                StressSetup {
                    groups: groups_for(Arc::new(program), threads),
                    init: Vec::new(),
                }
            }
            ArtifactKind::Fixed { program } => StressSetup {
                groups: groups_for(Arc::clone(program), threads),
                init: Vec::new(),
            },
            ArtifactKind::Systematic {
                program,
                regions,
                spread,
                patch_words,
            } => {
                // Choose `spread` distinct regions; stress the first
                // location of each (stressing multiple locations of one
                // patch is redundant, Sec. 3.3).
                let mut picks: Vec<u32> = Vec::with_capacity(*spread as usize);
                while picks.len() < *spread as usize {
                    let r = rng.gen_range(0..*regions);
                    if !picks.contains(&r) {
                        picks.push(r);
                    }
                }
                let locations: Vec<u32> = picks.iter().map(|&r| r * patch_words).collect();
                StressSetup {
                    groups: groups_for(Arc::clone(program), threads.max(spread * 32)),
                    init: Self::table_for(self.pad, &locations),
                }
            }
            ArtifactKind::Pinned {
                program,
                init,
                spread,
            } => StressSetup {
                groups: groups_for(Arc::clone(program), threads.max(spread * 32)),
                init: init.clone(),
            },
        }
    }

    /// The location table passing per-run stress targets to the kernel.
    fn table_for(pad: Scratchpad, rel_locations: &[u32]) -> Vec<(u32, Word)> {
        rel_locations
            .iter()
            .enumerate()
            .map(|(i, &l)| (pad.table_base + i as u32, pad.base + l))
            .collect()
    }
}

/// Build the stressing blocks for one run — the one-shot form, now a
/// thin delegate to [`StressArtifacts`] (campaign loops should build the
/// artifacts once instead of calling this per run).
///
/// * `threads` — total stressing threads to launch (the paper randomises
///   this per run; see [`litmus_stress_threads`] and
///   [`app_stress_blocks`]).
/// * `iters` — stressing loop iterations (sized so stress outlives the
///   kernel under test, Sec. 4.2).
pub fn build_stress(
    chip: &Chip,
    strategy: &StressStrategy,
    pad: Scratchpad,
    threads: u32,
    iters: u32,
    rng: &mut SmallRng,
) -> StressSetup {
    StressArtifacts::for_strategy(chip, strategy, pad, iters).make(threads, rng)
}

/// Systematic stress pinned to explicit scratchpad locations (word
/// offsets within the pad) — the form the tuning micro-benchmarks use,
/// where `⟨T_d, σ@L⟩` stresses a *specific* location set `L`. One-shot
/// delegate to [`StressArtifacts::pinned`].
///
/// At least 32 threads per location are used so every location receives
/// stress; threads distribute round-robin over the locations.
///
/// # Panics
///
/// Panics if `rel_locations` is empty or any location exceeds the pad.
pub fn build_systematic_at(
    pad: Scratchpad,
    seq: &AccessSeq,
    rel_locations: &[u32],
    threads: u32,
    iters: u32,
) -> StressSetup {
    // Pinned artifacts draw nothing from an RNG; a throwaway stream
    // keeps `make`'s signature uniform.
    let mut rng = SmallRng::seed_from_u64(0);
    StressArtifacts::pinned(pad, seq, rel_locations, iters).make(threads, &mut rng)
}

fn groups_for(program: Arc<Program>, threads: u32) -> Vec<KernelGroup> {
    let tpb = 64;
    let blocks = threads.div_ceil(tpb).max(1);
    vec![KernelGroup {
        program,
        blocks,
        threads_per_block: tpb,
        role: Role::Stress,
    }]
}

/// The systematic stressing kernel: each thread reads its target location
/// from the table (indexed by global thread id modulo the spread, so
/// threads spread evenly across locations) and hammers it with the access
/// sequence in a loop.
fn systematic_stress_kernel(pad: Scratchpad, seq: &AccessSeq, spread: u32, iters: u32) -> Program {
    let mut b = KernelBuilder::new(format!("sys-str[{seq}]x{spread}"));
    let gtid = b.global_tid();
    let m = b.const_(spread);
    let slot = b.rem_u(gtid, m);
    let tbase = b.const_(pad.table_base);
    let taddr = b.add(tbase, slot);
    let loc = b.load_global(taddr);
    let val = b.const_(0xabcd);
    let i = b.reg();
    b.assign_const(i, 0);
    let n = b.const_(iters);
    let one = b.const_(1);
    b.while_(
        |b| b.lt_u(i, n),
        |b| {
            for acc in seq.accs() {
                match acc {
                    Acc::Ld => {
                        let _ = b.load_global(loc);
                    }
                    Acc::St => b.store_global(loc, val),
                }
            }
            b.bin_into(i, BinOp::Add, i, one);
        },
    );
    b.finish().expect("stress kernel is valid by construction")
}

/// The `rand-str` kernel: an in-kernel xorshift PRNG picks a fresh
/// location and access kind every iteration (standing in for the paper's
/// use of `curand`).
fn random_stress_kernel(pad: Scratchpad, iters: u32, seed: u32) -> Program {
    let mut b = KernelBuilder::new("rand-str");
    let gtid = b.global_tid();
    let seed_r = b.const_(seed | 1);
    let state = b.reg();
    b.bin_into(state, BinOp::Xor, gtid, seed_r);
    let one = b.const_(1);
    let state1 = b.add(state, one); // avoid the all-zero fixed point
    let base = b.const_(pad.base);
    let words = b.const_(pad.words.max(1));
    let val = b.const_(0x5117);
    let i = b.reg();
    b.assign_const(i, 0);
    let n = b.const_(iters);
    let c13 = b.const_(13);
    let c17 = b.const_(17);
    let c5 = b.const_(5);
    b.while_(
        |b| b.lt_u(i, n),
        |b| {
            // xorshift32
            let t1 = b.bin(BinOp::Shl, state1, c13);
            b.bin_into(state1, BinOp::Xor, state1, t1);
            let t2 = b.bin(BinOp::Shr, state1, c17);
            b.bin_into(state1, BinOp::Xor, state1, t2);
            let t3 = b.bin(BinOp::Shl, state1, c5);
            b.bin_into(state1, BinOp::Xor, state1, t3);
            let off = b.rem_u(state1, words);
            let addr = b.add(base, off);
            let bit = b.and(state1, one);
            b.if_else(
                bit,
                |b| b.store_global(addr, val),
                |b| {
                    let _ = b.load_global(addr);
                },
            );
            b.bin_into(i, BinOp::Add, i, one);
        },
    );
    b.finish().expect("stress kernel is valid by construction")
}

/// The `cache-str` kernel: each block sweeps the (L2-sized) scratchpad,
/// performing a load then a store at every location.
fn cache_stress_kernel(pad: Scratchpad, words: u32, iters: u32) -> Program {
    let mut b = KernelBuilder::new("cache-str");
    let tid = b.tid();
    let base = b.const_(pad.base);
    let words_r = b.const_(words);
    let dim = b.block_dim();
    let outer = b.reg();
    b.assign_const(outer, 0);
    // Scale the outer trip count so total accesses roughly match the
    // systematic strategy's budget.
    let outer_n = b.const_(iters.div_ceil(words / 64 + 1).max(1));
    let one = b.const_(1);
    let j = b.reg();
    b.while_(
        |b| b.lt_u(outer, outer_n),
        |b| {
            b.assign(j, tid);
            b.while_(
                |b| b.lt_u(j, words_r),
                |b| {
                    let addr = b.add(base, j);
                    let v = b.load_global(addr);
                    b.store_global(addr, v);
                    b.bin_into(j, BinOp::Add, j, dim);
                },
            );
            b.bin_into(outer, BinOp::Add, outer, one);
        },
    );
    b.finish().expect("stress kernel is valid by construction")
}

/// The `l1-str` kernel: each thread hammers **stores** at a fixed
/// thread-spread location. Write-only on purpose — pure-store traffic
/// does not feed the load/store channel contention factor, so the only
/// thing this kernel moves is the per-SM write-pressure meter of
/// incoherent L1s (the structural staleness channel).
fn l1_stress_kernel(pad: Scratchpad, iters: u32) -> Program {
    let mut b = KernelBuilder::new("l1-str");
    let gtid = b.global_tid();
    let words = b.const_(pad.words.max(1));
    let off = b.rem_u(gtid, words);
    let base = b.const_(pad.base);
    let addr = b.add(base, off);
    let val = b.const_(0x11c4);
    let i = b.reg();
    b.assign_const(i, 0);
    let n = b.const_(iters);
    let one = b.const_(1);
    b.while_(
        |b| b.lt_u(i, n),
        |b| {
            b.store_global(addr, val);
            b.bin_into(i, BinOp::Add, i, one);
        },
    );
    b.finish().expect("stress kernel is valid by construction")
}

/// The paper's per-run stressing-thread count for litmus tuning: a random
/// total in [50%, 100%] of the chip's concurrent capacity, minus the test
/// threads (Sec. 3.2).
pub fn litmus_stress_threads(chip: &Chip, rng: &mut SmallRng) -> u32 {
    let cap = chip.max_concurrent_threads;
    let target = rng.gen_range(cap / 2..=cap);
    target.saturating_sub(64).max(64)
}

/// The paper's per-run stressing-block count for application testing: a
/// random count in [15%, 50%] of the application's block count
/// (Sec. 4.2), converted to threads of 64.
pub fn app_stress_blocks(app_blocks: u32, rng: &mut SmallRng) -> u32 {
    let lo = (app_blocks * 15).div_ceil(100).max(1);
    let hi = (app_blocks * 50).div_ceil(100).max(lo);
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn chip() -> Chip {
        Chip::by_short("Titan").unwrap()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(9)
    }

    #[test]
    fn none_strategy_is_empty() {
        let s = build_stress(
            &chip(),
            &StressStrategy::None,
            Scratchpad::new(2048, 2048),
            256,
            100,
            &mut rng(),
        );
        assert!(s.groups.is_empty());
        assert!(s.init.is_empty());
    }

    #[test]
    fn systematic_builds_table_of_region_starts() {
        let c = chip();
        let pad = Scratchpad::new(2048, 2048);
        let p = SystematicParams::from_paper(&c);
        let s = build_stress(
            &c,
            &StressStrategy::Systematic(p.clone()),
            pad,
            256,
            100,
            &mut rng(),
        );
        assert_eq!(s.init.len(), p.spread as usize);
        for &(addr, loc) in &s.init {
            assert!(addr >= pad.table_base && addr < pad.base);
            assert!(loc >= pad.base && loc < pad.base + pad.words);
            assert_eq!((loc - pad.base) % p.patch_words, 0, "region-aligned");
        }
        // Distinct regions.
        let mut locs: Vec<Word> = s.init.iter().map(|&(_, l)| l).collect();
        locs.sort_unstable();
        locs.dedup();
        assert_eq!(locs.len(), p.spread as usize);
        assert_eq!(s.groups.len(), 1);
        assert!(s.groups[0].blocks * s.groups[0].threads_per_block >= 256);
    }

    #[test]
    fn strategies_produce_runnable_kernels() {
        use wmm_sim::exec::{Gpu, LaunchSpec, Role};
        let c = chip();
        let pad = Scratchpad::new(2048, c.l2_scaled_words);
        for strat in [
            StressStrategy::Random,
            StressStrategy::CacheSized,
            StressStrategy::Systematic(SystematicParams::from_paper(&c)),
            StressStrategy::L1,
        ] {
            let s = build_stress(&c, &strat, pad, 128, 20, &mut rng());
            assert_eq!(s.groups.len(), 1, "{}", strat.short());
            // Run the stress kernel *as an app* so the run completes.
            let mut groups = s.groups.clone();
            groups[0].role = Role::App;
            let spec = LaunchSpec {
                groups,
                global_words: pad.required_words(),
                shared_words: 0,
                init_image: Vec::new(),
                init: s.init.clone(),
                max_turns: 4_000_000,
                randomize_ids: false,
            };
            let mut gpu = Gpu::new(c.clone());
            let r = gpu.run(&spec, 5);
            assert!(r.status.is_completed(), "{}: {:?}", strat.short(), r.status);
            assert!(r.instructions > 1000, "{}", strat.short());
        }
    }

    #[test]
    fn litmus_thread_counts_in_band() {
        let c = chip();
        let mut r = rng();
        for _ in 0..100 {
            let t = litmus_stress_threads(&c, &mut r);
            assert!(t >= 64);
            assert!(t <= c.max_concurrent_threads);
        }
    }

    #[test]
    fn app_stress_blocks_in_band() {
        let mut r = rng();
        for _ in 0..100 {
            let b = app_stress_blocks(8, &mut r);
            assert!((1..=4).contains(&b), "got {b}");
        }
    }

    #[test]
    fn reused_artifacts_match_fresh_artifacts_run_by_run() {
        // Instantiating runs off one cached artifact set must equal
        // building fresh artifacts for every run (what the historic
        // per-run `build_stress` path did).
        let c = chip();
        let pad = Scratchpad::new(2048, 2048);
        for strat in [
            StressStrategy::None,
            StressStrategy::Random,
            StressStrategy::CacheSized,
            StressStrategy::Systematic(SystematicParams::from_paper(&c)),
            StressStrategy::L1,
        ] {
            let cached = StressArtifacts::for_strategy(&c, &strat, pad, 30);
            for run in 0..4u64 {
                let mut r1 = SmallRng::seed_from_u64(run * 7 + 1);
                let mut r2 = r1.clone();
                let a = cached.make(300, &mut r1);
                let b = build_stress(&c, &strat, pad, 300, 30, &mut r2);
                assert_eq!(a.init, b.init, "{} run {run}", strat.short());
                assert_eq!(a.groups.len(), b.groups.len());
                for (ga, gb) in a.groups.iter().zip(&b.groups) {
                    assert_eq!(ga.blocks, gb.blocks, "{}", strat.short());
                    assert_eq!(
                        ga.program.to_string(),
                        gb.program.to_string(),
                        "{} run {run}",
                        strat.short()
                    );
                }
                // The RNG streams must stay in lockstep too.
                assert_eq!(r1.gen::<u64>(), r2.gen::<u64>(), "{}", strat.short());
            }
        }
    }

    #[test]
    fn cached_kernels_are_shared_not_rebuilt() {
        let c = chip();
        let pad = Scratchpad::new(2048, 2048);
        let art = StressArtifacts::for_strategy(
            &c,
            &StressStrategy::Systematic(SystematicParams::from_paper(&c)),
            pad,
            40,
        );
        let a = art.make(256, &mut rng());
        let b = art.make(256, &mut rng());
        assert!(
            Arc::ptr_eq(&a.groups[0].program, &b.groups[0].program),
            "systematic kernel must be compiled once and shared"
        );
    }

    #[test]
    fn with_locations_reuses_the_pinned_kernel() {
        let pad = Scratchpad::new(2048, 2048);
        let seq: AccessSeq = "st ld".parse().unwrap();
        let base = StressArtifacts::pinned(pad, &seq, &[0], 40);
        let moved = base.with_locations(&[96]);
        let a = base.make(128, &mut rng());
        let b = moved.make(128, &mut rng());
        assert!(Arc::ptr_eq(&a.groups[0].program, &b.groups[0].program));
        assert_eq!(b.init, vec![(pad.table_base, pad.base + 96)]);
        // ...and matches a directly pinned build.
        let direct = build_systematic_at(pad, &seq, &[96], 128, 40);
        assert_eq!(b.init, direct.init);
        assert_eq!(b.groups[0].blocks, direct.groups[0].blocks);
    }

    #[test]
    #[should_panic(expected = "location count")]
    fn with_locations_rejects_spread_change() {
        let pad = Scratchpad::new(2048, 2048);
        let seq: AccessSeq = "st".parse().unwrap();
        let _ = StressArtifacts::pinned(pad, &seq, &[0], 40).with_locations(&[0, 64]);
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(StressStrategy::None.short(), "no-str");
        assert_eq!(StressStrategy::Random.short(), "rand-str");
        assert_eq!(StressStrategy::CacheSized.short(), "cache-str");
        let p = SystematicParams::from_paper(&chip());
        assert_eq!(StressStrategy::Systematic(p).short(), "sys-str");
        assert_eq!(StressStrategy::L1.short(), "l1-str");
    }
}
