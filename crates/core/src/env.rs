//! Testing environments and the application test harness (Sec. 4).
//!
//! An [`Environment`] pairs a stressing strategy with the thread
//! randomisation toggle; the paper evaluates eight (`{no,sys,rand,cache}-str`
//! × `{+,-}`). The [`AppHarness`] runs an application repeatedly under an
//! environment — injecting per-run stressing blocks sized per Sec. 4.2 —
//! and counts erroneous runs, applying the paper's *effectiveness*
//! criterion (errors in more than 5% of executions).

use crate::app::{AppSpec, Application};
use crate::campaign::{CampaignBuilder, RunCtx, Workload};
use crate::stress::{
    app_stress_blocks, Scratchpad, SharedStress, StressArtifacts, StressStrategy, SystematicParams,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmm_sim::chip::Chip;
use wmm_sim::exec::{Gpu, KernelGroup, LaunchSpec, Role, RunStatus};
use wmm_sim::Word;

/// A testing environment: a stressing strategy plus thread randomisation,
/// plus (for scoped litmus workloads) optional intra-block shared-space
/// stress — the second axis of the scope hierarchy.
///
/// `Eq`/`Hash` are fully structural, so environments can key shared
/// caches (see [`crate::cache::ArtifactCache`]): two environments
/// compare equal exactly when they carry the same strategy parameters,
/// regardless of how they were constructed or what
/// [`Environment::name`] prints (`sys-str+` tuned for the Titan and for
/// the GTX 980 share a name but are *not* equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Environment {
    /// The (global-memory) stressing strategy.
    pub stress: StressStrategy,
    /// Whether thread ids are randomised (the `+` suffix, Sec. 3.5).
    pub randomize: bool,
    /// Intra-block shared-space stress: the idle lanes of an intra-block
    /// litmus kernel hammer a shared scratchpad, feeding the per-block
    /// shared contention factor. `None` for all of the paper's Tab. 5
    /// environments (their names are pinned); applies only to
    /// intra-block litmus instances.
    pub shared: Option<SharedStress>,
}

impl Environment {
    /// The paper's name: strategy plus `+`/`-`, e.g. `"sys-str+"`;
    /// shared-stress environments carry a `shm+` prefix.
    pub fn name(&self) -> String {
        let base = format!(
            "{}{}",
            self.stress.short(),
            if self.randomize { "+" } else { "-" }
        );
        if self.shared.is_some() {
            format!("{}{base}", SharedStress::NAME_PREFIX)
        } else {
            base
        }
    }

    /// The most effective environment of Sec. 4.3: tuned systematic
    /// stress with thread randomisation.
    pub fn sys_str_plus(chip: &Chip) -> Environment {
        Environment {
            stress: StressStrategy::Systematic(SystematicParams::from_paper(chip)),
            randomize: true,
            shared: None,
        }
    }

    /// The scoped-suite environment `shm+sys-str+`: the tuned systematic
    /// global stress *plus* intra-block shared-space stress, so both
    /// levels of the hierarchy are under pressure at once.
    pub fn shared_sys_str_plus(chip: &Chip) -> Environment {
        Environment {
            shared: Some(SharedStress::standard()),
            ..Environment::sys_str_plus(chip)
        }
    }

    /// The structural-channel environment `l1-str+`: write-only
    /// cross-SM stress (feeding incoherent-L1 write pressure rather than
    /// in-flight-window contention) with thread randomisation. Not one
    /// of the paper's Tab. 5 columns — [`Environment::all_eight`] stays
    /// the paper's eight — but a suite column of its own, because the
    /// staleness channel it provokes is invisible to every load/store-mix
    /// strategy.
    pub fn l1_str_plus() -> Environment {
        Environment {
            stress: StressStrategy::L1,
            randomize: true,
            shared: None,
        }
    }

    /// Native execution, no randomisation (`no-str-`).
    pub fn native() -> Environment {
        Environment {
            stress: StressStrategy::None,
            randomize: false,
            shared: None,
        }
    }

    /// The eight environments of Tab. 5, in the paper's column order:
    /// `no-str-`, `no-str+`, `sys-str-`, `sys-str+`, `rand-str-`,
    /// `rand-str+`, `cache-str-`, `cache-str+`.
    ///
    /// Exactly eight, by design: extensions beyond the paper (the
    /// `shm+…` scoped environments, the structural
    /// [`Environment::l1_str_plus`]) are separate suite columns and do
    /// not grow this pinned list.
    pub fn all_eight(chip: &Chip) -> Vec<Environment> {
        let sys = StressStrategy::Systematic(SystematicParams::from_paper(chip));
        let mut out = Vec::new();
        for stress in [
            StressStrategy::None,
            sys,
            StressStrategy::Random,
            StressStrategy::CacheSized,
        ] {
            for randomize in [false, true] {
                out.push(Environment {
                    stress: stress.clone(),
                    randomize,
                    shared: None,
                });
            }
        }
        out
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How one application execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// Completed and the post-condition held.
    Pass,
    /// Completed but the post-condition failed (a functional error —
    /// under weak-memory-free execution this indicates a data race bug;
    /// under stress, typically a weak-memory error).
    PostConditionFailed(String),
    /// A phase exceeded its turn budget (the paper's 30 s timeout; weak
    /// behaviours can break termination conditions).
    Timeout,
    /// Barrier divergence was detected.
    Divergence,
    /// An out-of-bounds access was detected.
    Fault(String),
}

impl RunVerdict {
    /// Every non-`Pass` verdict counts as an erroneous run.
    pub fn is_error(&self) -> bool {
        *self != RunVerdict::Pass
    }
}

/// The outcome of one application execution under an environment.
#[derive(Debug, Clone)]
pub struct AppRunOutcome {
    /// The verdict.
    pub verdict: RunVerdict,
    /// Scheduler turns spent in application phases (the kernel-time
    /// analogue used by the cost study).
    pub app_turns: u64,
    /// Simulated kernel runtime, summed over phases, in milliseconds.
    pub runtime_ms: f64,
    /// Estimated energy over phases, if the chip supports power queries.
    pub energy_j: Option<f64>,
}

/// Aggregate results of a testing campaign (the paper's "execute
/// repeatedly for one hour" is a fixed execution budget here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Executions performed.
    pub runs: u32,
    /// Erroneous executions (any non-pass verdict).
    pub errors: u32,
    /// Of which: post-condition failures.
    pub postcondition_failures: u32,
    /// Of which: timeouts.
    pub timeouts: u32,
    /// Of which: barrier divergences or faults.
    pub faults: u32,
}

impl CampaignResult {
    /// Fraction of erroneous runs.
    pub fn error_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            f64::from(self.errors) / f64::from(self.runs)
        }
    }

    /// The paper's effectiveness criterion: errors in more than 5% of
    /// executions.
    pub fn effective(&self) -> bool {
        self.error_rate() > 0.05
    }

    /// Whether any error was observed at all.
    pub fn any_error(&self) -> bool {
        self.errors > 0
    }
}

/// Runs one application variant under testing environments on one chip.
///
/// Construction measures the native kernel duration once and sizes the
/// stressing loop so stress runs roughly 10× as long as the kernel under
/// test (Sec. 4.2).
pub struct AppHarness<'a> {
    chip: &'a Chip,
    app: &'a dyn Application,
    spec: AppSpec,
    pad: Scratchpad,
    stress_iters: u32,
}

impl<'a> AppHarness<'a> {
    /// Harness for the application exactly as shipped.
    pub fn new(chip: &'a Chip, app: &'a dyn Application) -> Self {
        Self::with_spec(chip, app, app.spec().clone())
    }

    /// Harness for a program variant (e.g. a fencing variant produced by
    /// [`AppSpec::with_fences`]) checked against the same post-condition.
    pub fn with_spec(chip: &'a Chip, app: &'a dyn Application, spec: AppSpec) -> Self {
        // Scratchpad after the app's memory, line-aligned generously.
        let base = (spec.global_words + 127) / 64 * 64 + 64;
        let words = 2048u32.max(chip.l2_scaled_words);
        let pad = Scratchpad::new(base, words);
        let mut h = AppHarness {
            chip,
            app,
            spec,
            pad,
            stress_iters: 0,
        };
        // One native run to size the stressing loops.
        let native = h.run_once(&Environment::native(), 0);
        let est_warps = 16u64;
        let per_iter = 8u64; // accesses + loop control
        let turns = native.app_turns.max(1);
        h.stress_iters = (10 * turns / (per_iter * est_warps)).clamp(60, 8_000) as u32;
        h
    }

    /// The scratchpad this harness stresses.
    pub fn scratchpad(&self) -> Scratchpad {
        self.pad
    }

    /// The spec under test.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The calibrated stressing-loop iteration count this harness sizes
    /// its stress kernels to (stress runs roughly 10× the kernel under
    /// test, Sec. 4.2). Exposed so artifact caches can key app
    /// campaigns on exactly the `(pad, iters)` this harness would build.
    pub fn calibrated_iters(&self) -> u32 {
        self.stress_iters.max(60)
    }

    /// Build the stress artifacts for running this application under
    /// `env`: the strategy's kernels compiled once, sized to this
    /// harness's scratchpad and calibrated stressing-loop length.
    pub fn artifacts(&self, env: &Environment) -> StressArtifacts {
        StressArtifacts::for_strategy(self.chip, &env.stress, self.pad, self.calibrated_iters())
            .with_shared_stress(env.shared)
    }

    /// Execute the application once under `env` with a deterministic
    /// seed, running all phases and checking the post-condition.
    ///
    /// One-shot convenience: builds the environment's stress artifacts
    /// for this single run. Campaign loops go through
    /// [`AppHarness::campaign`] (or a [`Campaign`](crate::campaign::Campaign)
    /// directly), which builds them once for all runs.
    pub fn run_once(&self, env: &Environment, seed: u64) -> AppRunOutcome {
        let mut gpu = Gpu::new(self.chip.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        self.run_with(&mut gpu, &self.artifacts(env), env.randomize, &mut rng)
    }

    /// The shared per-run body: execute all phases with stressing blocks
    /// instantiated from the prepared artifacts, checking the
    /// post-condition at the end.
    fn run_with(
        &self,
        gpu: &mut Gpu,
        stress: &StressArtifacts,
        randomize_ids: bool,
        rng: &mut SmallRng,
    ) -> AppRunOutcome {
        let mut image: Vec<Word> = Vec::new();
        let mut app_turns = 0u64;
        let mut runtime_ms = 0.0f64;
        let mut energy_j: Option<f64> = self.chip.supports_power.then_some(0.0);
        let total_app_blocks: u32 = self.spec.phases.iter().map(|p| p.blocks).sum();
        for (pi, phase) in self.spec.phases.iter().enumerate() {
            let stress_threads = app_stress_blocks(total_app_blocks.max(2), rng) * 64;
            let setup = stress.make(stress_threads, rng);
            let mut groups = vec![KernelGroup {
                program: std::sync::Arc::new(phase.program.clone()),
                blocks: phase.blocks,
                threads_per_block: phase.threads_per_block,
                role: Role::App,
            }];
            groups.extend(setup.groups);
            let mut init = setup.init;
            if pi == 0 {
                init.extend(self.spec.init.iter().copied());
            }
            let spec = LaunchSpec {
                groups,
                global_words: self.pad.required_words(),
                shared_words: phase.shared_words,
                init_image: std::mem::take(&mut image),
                init,
                max_turns: self.spec.max_turns_per_phase,
                randomize_ids,
            };
            let result = gpu.run(&spec, rng.gen());
            app_turns += result.app_turns;
            runtime_ms += result.runtime_ms;
            if let (Some(acc), Some(e)) = (energy_j.as_mut(), result.energy_j) {
                *acc += e;
            }
            match result.status {
                RunStatus::Completed => {}
                RunStatus::TimedOut => {
                    return AppRunOutcome {
                        verdict: RunVerdict::Timeout,
                        app_turns,
                        runtime_ms,
                        energy_j,
                    }
                }
                RunStatus::BarrierDivergence => {
                    return AppRunOutcome {
                        verdict: RunVerdict::Divergence,
                        app_turns,
                        runtime_ms,
                        energy_j,
                    }
                }
                RunStatus::OutOfBounds(e) => {
                    return AppRunOutcome {
                        verdict: RunVerdict::Fault(e.to_string()),
                        app_turns,
                        runtime_ms,
                        energy_j,
                    }
                }
            }
            image = result.memory;
        }
        let verdict = match self.app.check(&image) {
            Ok(()) => RunVerdict::Pass,
            Err(msg) => RunVerdict::PostConditionFailed(msg),
        };
        AppRunOutcome {
            verdict,
            app_turns,
            runtime_ms,
            energy_j,
        }
    }

    /// Run a campaign of `runs` executions under `env`, in parallel, and
    /// aggregate the verdicts — a thin shim over the unified
    /// [`Campaign`](crate::campaign::Campaign) facade, with this
    /// harness as the [`Workload`]. The environment's stress artifacts
    /// are built once and shared by all runs.
    ///
    /// Deterministic in `(self, env, base_seed)`: run `i` is seeded by
    /// [`mix_seed`](wmm_litmus::runner::mix_seed)`(base_seed, i)` alone,
    /// so any `parallelism` (`0` = all cores) yields the same
    /// [`CampaignResult`]. Workers pull run indices dynamically from a
    /// shared queue ([`wmm_litmus::parallel`]), so long-running
    /// erroneous executions don't leave the other workers idle.
    pub fn campaign(
        &self,
        env: &Environment,
        runs: u32,
        base_seed: u64,
        parallelism: usize,
    ) -> CampaignResult {
        CampaignBuilder::new(self.chip)
            .stress(self.artifacts(env))
            .randomize_ids(env.randomize)
            .count(runs)
            .base_seed(base_seed)
            .parallelism(parallelism)
            .build()
            .run(self)
    }
}

/// An application harness is a campaign [`Workload`]: each run executes
/// every phase under the campaign's environment and is classified by a
/// [`RunVerdict`], folded into a [`CampaignResult`].
impl Workload for AppHarness<'_> {
    type Verdict = RunVerdict;
    type Summary = CampaignResult;

    fn summary(&self) -> CampaignResult {
        CampaignResult::default()
    }

    fn run_once(&self, gpu: &mut Gpu, ctx: &RunCtx<'_>, rng: &mut SmallRng) -> RunVerdict {
        self.run_with(gpu, ctx.stress, ctx.randomize_ids, rng)
            .verdict
    }

    fn fold(&self, into: &mut CampaignResult, verdict: RunVerdict) {
        into.runs += 1;
        if verdict.is_error() {
            into.errors += 1;
        }
        match verdict {
            RunVerdict::PostConditionFailed(_) => into.postcondition_failures += 1,
            RunVerdict::Timeout => into.timeouts += 1,
            RunVerdict::Divergence | RunVerdict::Fault(_) => into.faults += 1,
            RunVerdict::Pass => {}
        }
    }

    fn merge(&self, into: &mut CampaignResult, shard: CampaignResult) {
        into.runs += shard.runs;
        into.errors += shard.errors;
        into.postcondition_failures += shard.postcondition_failures;
        into.timeouts += shard.timeouts;
        into.faults += shard.faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Phase;
    use wmm_sim::ir::builder::KernelBuilder;

    /// A miniature lock-protected accumulator: every thread takes a
    /// global spinlock and adds 1 to a cell non-atomically. The idiom of
    /// the paper's running example (Fig. 1), so it is weak-memory-buggy
    /// by design.
    struct LockCounter {
        spec: AppSpec,
        expected: u32,
    }

    fn lock_counter() -> LockCounter {
        let mut b = KernelBuilder::new("lock-counter");
        let tid = b.tid();
        let zero = b.const_(0);
        let is0 = b.eq(tid, zero);
        b.if_(is0, |b| {
            let lock = b.const_(0);
            let cell = b.const_(128); // different line from the lock
            b.spin_lock(lock);
            let v = b.load_global(cell);
            let one = b.const_(1);
            let v1 = b.add(v, one);
            b.store_global(cell, v1);
            b.unlock(lock);
        });
        let program = b.finish().unwrap();
        let blocks = 8;
        LockCounter {
            spec: AppSpec {
                name: "lock-counter".into(),
                phases: vec![Phase {
                    program,
                    blocks,
                    threads_per_block: 32,
                    shared_words: 0,
                }],
                global_words: 192,
                init: vec![],
                max_turns_per_phase: 2_000_000,
            },
            expected: blocks,
        }
    }

    impl Application for LockCounter {
        fn name(&self) -> &str {
            "lock-counter"
        }
        fn spec(&self) -> &AppSpec {
            &self.spec
        }
        fn check(&self, memory: &[Word]) -> Result<(), String> {
            if memory[128] == self.expected {
                Ok(())
            } else {
                Err(format!(
                    "counter = {}, expected {}",
                    memory[128], self.expected
                ))
            }
        }
    }

    #[test]
    fn environment_names_match_paper() {
        let chip = Chip::by_short("K20").unwrap();
        let names: Vec<String> = Environment::all_eight(&chip)
            .iter()
            .map(Environment::name)
            .collect();
        assert_eq!(
            names,
            vec![
                "no-str-",
                "no-str+",
                "sys-str-",
                "sys-str+",
                "rand-str-",
                "rand-str+",
                "cache-str-",
                "cache-str+"
            ]
        );
        // Extensions stay out of the paper's pinned eight.
        assert_eq!(Environment::l1_str_plus().name(), "l1-str+");
        assert!(!names.contains(&"l1-str+".to_string()));
    }

    #[test]
    fn native_runs_mostly_pass() {
        let chip = Chip::by_short("K20").unwrap();
        let app = lock_counter();
        let h = AppHarness::new(&chip, &app);
        let r = h.campaign(&Environment::native(), 60, 5, 0);
        assert_eq!(r.runs, 60);
        assert!(r.error_rate() < 0.05, "native error rate too high: {:?}", r);
    }

    #[test]
    fn sys_str_plus_provokes_errors_in_buggy_app() {
        let chip = Chip::by_short("K20").unwrap();
        let app = lock_counter();
        let h = AppHarness::new(&chip, &app);
        let r = h.campaign(&Environment::sys_str_plus(&chip), 120, 7, 0);
        assert!(
            r.effective(),
            "sys-str+ should be effective on the lock counter: {:?}",
            r
        );
    }

    #[test]
    fn conservative_fences_suppress_errors() {
        let chip = Chip::by_short("K20").unwrap();
        let app = lock_counter();
        let fenced = app.spec().with_all_fences();
        let h = AppHarness::with_spec(&chip, &app, fenced);
        let r = h.campaign(&Environment::sys_str_plus(&chip), 120, 9, 0);
        assert_eq!(r.errors, 0, "cons fences must suppress all errors: {r:?}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let chip = Chip::by_short("Titan").unwrap();
        let app = lock_counter();
        let h = AppHarness::new(&chip, &app);
        let env = Environment::sys_str_plus(&chip);
        let a = h.campaign(&env, 40, 3, 4);
        let b = h.campaign(&env, 40, 3, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn effectiveness_threshold_is_five_percent() {
        let r = CampaignResult {
            runs: 100,
            errors: 5,
            ..Default::default()
        };
        assert!(!r.effective(), "exactly 5% is not 'more than 5%'");
        let r = CampaignResult {
            runs: 100,
            errors: 6,
            ..Default::default()
        };
        assert!(r.effective());
    }
}
