//! # wmm-core — the PLDI 2016 testing environment
//!
//! The paper's primary contribution, built on the `wmm-sim` substrate and
//! the `wmm-litmus` tests:
//!
//! * [`campaign`] — the unified campaign facade: the [`Workload`] trait
//!   ("run once, observe, classify") and the
//!   [`CampaignBuilder`]/[`Campaign`] driver every repeat-`C`-times loop
//!   in the workspace executes on, with stress artifacts built once per
//!   environment;
//! * [`cache`] — the shared, structurally-keyed [`ArtifactCache`] the
//!   campaign server and the one-shot suite runner deduplicate stress
//!   kernel builds through;
//! * [`stress`] — the four memory stressing strategies (`no-str`,
//!   `rand-str`, `cache-str`, and the tuned `sys-str`) targeting a
//!   scratchpad disjoint from the application (Sec. 3, 4.2), plus the
//!   per-environment [`StressArtifacts`] cache;
//! * [`mod@env`] — the Tab. 5 testing environments and the application
//!   harness;
//! * [`tuning`] — the per-chip tuning pipeline (Sec. 3);
//! * [`suite`] — the generated-litmus-suite campaign runner, each row
//!   cross-checked against the static analyzer's verdict;
//! * [`harden`] — empirical fence insertion (Alg. 1, Sec. 5), plus the
//!   analyzer-seeded scoped variant that places the cheap block-level
//!   rung where communication is provably intra-block;
//! * [`analyze`] — glue binding the `wmm-analysis` static analyzer to
//!   application specs via representative launch threads.

pub mod analyze;
pub mod app;
pub mod cache;
pub mod campaign;
pub mod env;
pub mod harden;
pub mod stress;
pub mod suite;
pub mod tuning;

pub use analyze::{analyze_spec, representatives, SpecAnalysis};
pub use app::{AppSpec, Application, Phase};
pub use cache::{ArtifactCache, ArtifactKey, CacheStats};
pub use campaign::{
    Campaign, CampaignBuilder, CampaignJob, Fnv64, LitmusWorkload, SummaryValue, Workload,
};
pub use env::{AppHarness, CampaignResult, Environment, RunVerdict};
pub use harden::{
    empirical_fence_insertion, empirical_fence_insertion_scoped, HardenConfig, HardenResult,
    LeveledFenceSite, ScopedHardenResult,
};
pub use stress::{Scratchpad, StressArtifacts, StressStrategy, SystematicParams};
pub use suite::{
    run_suite, run_suite_observed, StaticVerdict, SuiteCell, SuiteConfig, SuiteStrategy,
};
