//! # wmm-core — the PLDI 2016 testing environment
//!
//! The paper's primary contribution, built on the `wmm-sim` substrate and
//! the `wmm-litmus` tests:
//!
//! * [`stress`] — the four memory stressing strategies (`no-str`,
//!   `rand-str`, `cache-str`, and the tuned `sys-str`) targeting a
//!   scratchpad disjoint from the application (Sec. 3, 4.2).

pub mod app;
pub mod env;
pub mod harden;
pub mod tuning;
pub mod stress;

pub use app::{AppSpec, Application, Phase};
pub use env::{AppHarness, CampaignResult, Environment, RunVerdict};
pub use stress::{Scratchpad, StressStrategy, SystematicParams};
