//! A concurrent, structurally-keyed cache of [`StressArtifacts`].
//!
//! The campaign server drains a queue where a thousand jobs may target
//! only five environments; compiling the stress kernels per *job* would
//! reintroduce (at the job granularity) exactly the per-run compilation
//! cost [`StressArtifacts`] exists to kill. This cache closes the gap:
//! artifacts are built once per distinct [`ArtifactKey`] — chip ×
//! [`Environment`] × scratchpad × stressing-loop length — and shared
//! (as `Arc`s) by every job that keys to them, whether submitted
//! through the server or driven by the one-shot suite runner.
//!
//! Keying is **structural** ([`Environment`]'s `Eq`/`Hash` compare the
//! strategy's tuned parameters, not its display name), so `sys-str+`
//! tuned for the Titan and `sys-str+` tuned for the GTX 980 occupy
//! separate entries while two independently constructed but identical
//! environments share one.
//!
//! Sharing never changes results: [`StressArtifacts::make`] draws the
//! per-run values from the *run's* RNG, so a campaign over a cache-hit
//! artifact set is bit-identical to one that built its own (pinned by
//! `tests/server_equivalence.rs`). The `rand-str` strategy keeps its
//! documented exception at the kernel level — its artifact *object* is
//! cacheable (it holds no compiled program), but `make` bakes a fresh
//! seed into the kernel every run, so no compiled `rand-str` program is
//! ever shared between runs.

use crate::env::Environment;
use crate::stress::{Scratchpad, StressArtifacts};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use wmm_obs::LatencyHistogram;
use wmm_sim::chip::Chip;

/// Everything [`StressArtifacts::for_strategy`] reads: the cache key
/// under which built artifacts are shared.
///
/// `PartialEq` is fully structural (derived). `Eq` is implemented by
/// hand because [`Chip`] carries `f64` profile parameters — the chip
/// table's constants are never `NaN`, so equality is an equivalence
/// here. `Hash` covers a discriminating subset of the chip (its short
/// name and the two structure fields the stress kernels read) plus the
/// full environment/pad/iters; equal keys hash equal, and the rare
/// collision is resolved by `Eq`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactKey {
    /// The chip the strategy's kernels are sized for.
    pub chip: Chip,
    /// The testing environment (strategy + randomisation + shared
    /// stress).
    pub env: Environment,
    /// The scratchpad the stressing kernels target.
    pub pad: Scratchpad,
    /// Stressing-loop iteration count.
    pub iters: u32,
}

impl Eq for ArtifactKey {}

impl Hash for ArtifactKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.chip.short.hash(state);
        self.chip.l2_scaled_words.hash(state);
        self.chip.patch_words.hash(state);
        self.env.hash(state);
        self.pad.hash(state);
        self.iters.hash(state);
    }
}

impl ArtifactKey {
    /// Build the artifacts this key describes — the single construction
    /// site both the cache and an uncached caller go through, so a hit
    /// and a fresh build are the same value by construction.
    pub fn build(&self) -> StressArtifacts {
        StressArtifacts::for_strategy(&self.chip, &self.env.stress, self.pad, self.iters)
            .with_shared_stress(self.env.shared)
    }
}

/// Counters describing a cache's history, for the soak report's
/// `cache_hit_rate` gate and the exactly-once-compile assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that built (and inserted) a new entry.
    pub builds: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.builds
    }

    /// Fraction of lookups served from cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Concurrent map from [`ArtifactKey`] to shared, immutable
/// [`StressArtifacts`].
///
/// `get` builds missing entries *under the map lock*: when sixteen
/// workers race for a cold key, one compiles and fifteen wait, rather
/// than sixteen compiling and fifteen discarding — artifact compilation
/// is the expensive step the cache exists to deduplicate, so the
/// held-lock build is the point, not an accident.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<ArtifactKey, Arc<StressArtifacts>>>,
    hits: AtomicU64,
    builds: AtomicU64,
    /// Wall-clock artifact-compile durations (one sample per build).
    /// Telemetry only — never folded into any deterministic digest.
    compile: Mutex<LatencyHistogram>,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The artifacts for `key`, building them on first request.
    pub fn get_key(&self, key: &ArtifactKey) -> Arc<StressArtifacts> {
        let mut map = self.map.lock().expect("artifact cache poisoned");
        if let Some(hit) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let built = Arc::new(key.build());
        self.compile
            .lock()
            .expect("compile histogram poisoned")
            .record(started.elapsed());
        map.insert(key.clone(), Arc::clone(&built));
        built
    }

    /// The artifacts for an environment on a chip, built (once) with the
    /// given scratchpad and stressing-loop length.
    pub fn get(
        &self,
        chip: &Chip,
        env: &Environment,
        pad: Scratchpad,
        iters: u32,
    ) -> Arc<StressArtifacts> {
        self.get_key(&ArtifactKey {
            chip: chip.clone(),
            env: env.clone(),
            pad,
            iters,
        })
    }

    /// Hit/build counters and current entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self.map.lock().expect("artifact cache poisoned").len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Snapshot of the wall-clock artifact-compile latency histogram
    /// (one sample per build; empty when every lookup hit).
    pub fn compile_times(&self) -> LatencyHistogram {
        self.compile
            .lock()
            .expect("compile histogram poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chip() -> Chip {
        Chip::by_short("Titan").unwrap()
    }

    fn pad() -> Scratchpad {
        Scratchpad::new(2048, 2048)
    }

    #[test]
    fn structurally_equal_environments_share_an_entry() {
        let c = chip();
        let cache = ArtifactCache::new();
        // Two independently constructed — but structurally identical —
        // environments.
        let a = Environment::sys_str_plus(&c);
        let b = Environment::sys_str_plus(&c);
        assert_eq!(a, b);
        let arta = cache.get(&c, &a, pad(), 40);
        let artb = cache.get(&c, &b, pad(), 40);
        assert!(Arc::ptr_eq(&arta, &artb), "equal keys must share an entry");
        let s = cache.stats();
        assert_eq!((s.builds, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn same_name_different_tuning_does_not_share() {
        // `sys-str+` for the Titan and for the GTX 980 print identically
        // but carry different tuned parameters (patch 32 vs 64, different
        // access sequences): distinct environments, distinct entries.
        let t = chip();
        let m = Chip::by_short("980").unwrap();
        let et = Environment::sys_str_plus(&t);
        let em = Environment::sys_str_plus(&m);
        assert_eq!(et.name(), em.name());
        assert_ne!(et, em);
        let cache = ArtifactCache::new();
        let at = cache.get(&t, &et, pad(), 40);
        let am = cache.get(&m, &em, pad(), 40);
        assert!(!Arc::ptr_eq(&at, &am));
        assert_eq!(cache.stats().builds, 2);
    }

    #[test]
    fn same_tuning_on_different_chips_still_keys_separately() {
        // Titan and K20 share Tab. 2 tuning, so their `sys-str+`
        // environments compare *equal* — but the artifact key carries
        // the chip (kernels are sized to it), so the cache still holds
        // one entry per chip.
        let t = chip();
        let k = Chip::by_short("K20").unwrap();
        let et = Environment::sys_str_plus(&t);
        let ek = Environment::sys_str_plus(&k);
        assert_eq!(et, ek);
        let cache = ArtifactCache::new();
        let at = cache.get(&t, &et, pad(), 40);
        let ak = cache.get(&k, &ek, pad(), 40);
        assert!(!Arc::ptr_eq(&at, &ak));
        assert_eq!(cache.stats().builds, 2);
    }

    #[test]
    fn key_dimensions_are_all_discriminating() {
        let c = chip();
        let cache = ArtifactCache::new();
        let env = Environment::sys_str_plus(&c);
        let _ = cache.get(&c, &env, pad(), 40);
        let _ = cache.get(&c, &env, pad(), 60); // iters differ
        let _ = cache.get(&c, &env, Scratchpad::new(4096, 2048), 40); // pad differs
        let _ = cache.get(&c, &Environment::shared_sys_str_plus(&c), pad(), 40); // shared differs
        let s = cache.stats();
        assert_eq!((s.builds, s.hits, s.entries), (4, 0, 4));
    }

    #[test]
    fn rand_str_kernels_are_never_shared_across_runs() {
        // The cache may hold the `rand-str` artifact *object* (it keeps
        // no compiled program), but every `make` bakes a fresh seed into
        // the kernel: no compiled program crosses runs. Contrast with
        // `sys-str`, whose compiled kernel is exactly what's shared.
        let c = chip();
        let cache = ArtifactCache::new();
        let rand_env = Environment {
            stress: crate::stress::StressStrategy::Random,
            randomize: true,
            shared: None,
        };
        let art = cache.get(&c, &rand_env, pad(), 40);
        let mut rng = SmallRng::seed_from_u64(11);
        let a = art.make(256, &mut rng);
        let b = art.make(256, &mut rng);
        assert!(
            !Arc::ptr_eq(&a.groups[0].program, &b.groups[0].program),
            "rand-str must rebuild its kernel per run"
        );

        let sys = cache.get(&c, &Environment::sys_str_plus(&c), pad(), 40);
        let sa = sys.make(256, &mut rng);
        let sb = sys.make(256, &mut rng);
        assert!(
            Arc::ptr_eq(&sa.groups[0].program, &sb.groups[0].program),
            "sys-str kernels are compiled once and shared"
        );
    }

    #[test]
    fn cached_build_equals_uncached_build() {
        let c = chip();
        let env = Environment::sys_str_plus(&c);
        let key = ArtifactKey {
            chip: c.clone(),
            env: env.clone(),
            pad: pad(),
            iters: 40,
        };
        let cache = ArtifactCache::new();
        let cached = cache.get_key(&key);
        let fresh = key.build();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let a = cached.make(300, &mut r1);
        let b = fresh.make(300, &mut r2);
        assert_eq!(a.init, b.init);
        assert_eq!(a.groups[0].blocks, b.groups[0].blocks);
        assert_eq!(
            a.groups[0].program.to_string(),
            b.groups[0].program.to_string()
        );
    }

    #[test]
    fn compile_times_sample_builds_not_hits() {
        let c = chip();
        let cache = ArtifactCache::new();
        let env = Environment::sys_str_plus(&c);
        assert!(cache.compile_times().is_empty());
        let _ = cache.get(&c, &env, pad(), 40);
        let _ = cache.get(&c, &env, pad(), 40); // hit: no new sample
        assert_eq!(cache.compile_times().count(), 1);
    }

    #[test]
    fn concurrent_cold_lookups_build_once() {
        let c = chip();
        let cache = ArtifactCache::new();
        let env = Environment::sys_str_plus(&c);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _ = cache.get(&c, &env, pad(), 40);
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.builds, 1, "racing workers must not duplicate builds");
        assert_eq!(st.hits, 7);
    }
}
