//! The unified campaign API: one execution path for every
//! repeat-the-experiment loop in the workspace.
//!
//! The paper's core loop — *run a test `C` times under an environment
//! and count bad outcomes* — used to be implemented separately by the
//! litmus runner, the application harness, the generated-suite runner
//! and the tuning sweeps, each with its own config struct and each
//! re-emitting its stressing kernels on every run. This module folds
//! them into one facade:
//!
//! * [`Workload`] — the thing executed per run: build a launch, observe
//!   the result, classify it. Implemented by [`LitmusWorkload`] (any
//!   [`LitmusInstance`]) and by
//!   [`AppHarness`](crate::env::AppHarness) (any
//!   [`Application`](crate::app::Application) variant).
//! * [`CampaignBuilder`] → [`Campaign`] — owns the chip, the stress
//!   artifacts, the execution count, the base seed and the worker
//!   count; executes on the deterministic parallel layer
//!   ([`wmm_litmus::parallel`]) and folds per-run verdicts into the
//!   workload's summary ([`Histogram`] for litmus,
//!   [`CampaignResult`](crate::env::CampaignResult) for applications).
//!
//! Stress artifacts ([`StressArtifacts`]) are built **once per
//! environment** — kernel `Program`s compiled up front, location tables
//! and thread counts instantiated per run from the run's own RNG — so
//! campaigns no longer pay a kernel emission per execution.
//!
//! # Determinism
//!
//! Run `i` derives *all* of its randomness from
//! [`mix_seed`]`(base_seed, i)`: the per-run stress instantiation, the
//! launch seed, everything. Summaries are folded per worker and merged
//! commutatively, so any worker count — including `0` ("all cores") on
//! machines with different core counts — reports bit-identical results.
//! Workers claim run indices dynamically in chunks (see
//! [`wmm_litmus::parallel`]), each reusing one simulator instance.
//!
//! ```
//! use wmm_core::campaign::CampaignBuilder;
//! use wmm_core::env::Environment;
//! use wmm_gen::Shape;
//! use wmm_litmus::LitmusLayout;
//! use wmm_core::stress::Scratchpad;
//! use wmm_sim::chip::Chip;
//!
//! let chip = Chip::by_short("K20").unwrap();
//! let pad = Scratchpad::new(2048, 2048);
//! let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
//! let hist = CampaignBuilder::new(&chip)
//!     .environment(&Environment::sys_str_plus(&chip), pad, 40)
//!     .count(40)
//!     .base_seed(7)
//!     .build()
//!     .run_litmus(&inst);
//! assert_eq!(hist.total(), 40);
//! ```

use crate::env::Environment;
use crate::stress::{litmus_stress_threads, StressArtifacts};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};
use wmm_litmus::runner::{mix_seed, run_instance};
use wmm_litmus::{Histogram, LitmusInstance, LitmusOutcome};
use wmm_sim::chip::Chip;
use wmm_sim::exec::Gpu;

/// Per-run context handed to a [`Workload`]: the campaign's chip, its
/// prepared stress artifacts and the thread-randomisation toggle.
pub struct RunCtx<'a> {
    /// The chip the campaign runs on.
    pub chip: &'a Chip,
    /// Stress artifacts shared by every run of the campaign.
    pub stress: &'a StressArtifacts,
    /// Whether thread ids are randomised (the environment's `+`/`-`).
    pub randomize_ids: bool,
}

/// One unit of repeatable work: build a launch under an environment,
/// observe the result, classify it.
///
/// Implementations must be deterministic in `(self, ctx, rng)` — every
/// run draws all of its randomness from the `rng` it is handed (seeded
/// by the campaign from `(base_seed, index)` alone) — and `fold`/`merge`
/// must be commutative so shard order cannot influence the summary.
pub trait Workload: Sync {
    /// The classification of one run.
    type Verdict: Send;
    /// The campaign-level aggregate of verdicts.
    type Summary: Send;

    /// A fresh, empty summary.
    fn summary(&self) -> Self::Summary;

    /// Execute one run on a reusable simulator.
    fn run_once(&self, gpu: &mut Gpu, ctx: &RunCtx<'_>, rng: &mut SmallRng) -> Self::Verdict;

    /// Fold one verdict into a summary.
    fn fold(&self, into: &mut Self::Summary, verdict: Self::Verdict);

    /// Merge a worker's shard into the aggregate (commutative).
    fn merge(&self, into: &mut Self::Summary, shard: Self::Summary);
}

/// A [`LitmusInstance`] as a campaign workload: each run launches the
/// instance alongside freshly instantiated stressing blocks sized per
/// Sec. 3.2 ([`litmus_stress_threads`]) and records the observed outcome
/// vector into a [`Histogram`].
pub struct LitmusWorkload<'a>(pub &'a LitmusInstance);

impl Workload for LitmusWorkload<'_> {
    type Verdict = LitmusOutcome;
    type Summary = Histogram;

    fn summary(&self) -> Histogram {
        Histogram::new()
    }

    fn run_once(&self, gpu: &mut Gpu, ctx: &RunCtx<'_>, rng: &mut SmallRng) -> LitmusOutcome {
        let stress = if ctx.stress.is_native() {
            // Native campaigns draw nothing before the launch seed.
            (Vec::new(), Vec::new())
        } else {
            let threads = litmus_stress_threads(ctx.chip, rng);
            let s = ctx.stress.make(threads, rng);
            (s.groups, s.init)
        };
        let seed = rng.gen();
        run_instance(gpu, self.0, stress, ctx.randomize_ids, seed)
    }

    fn fold(&self, into: &mut Histogram, verdict: LitmusOutcome) {
        into.record(verdict);
    }

    fn merge(&self, into: &mut Histogram, shard: Histogram) {
        into.merge(&shard);
    }
}

/// 64-bit FNV-1a, the workspace's stable digest for campaign summaries
/// and soak reports: tiny, dependency-free, and — unlike `DefaultHasher`
/// — pinned, so digests written into committed JSON stay comparable
/// across toolchains and runs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold a byte stream into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A type-erased campaign summary: what a job-queue engine hands back
/// when the jobs it drains mix litmus campaigns (summarised by a
/// [`Histogram`]) and application campaigns (summarised by a
/// [`CampaignResult`](crate::env::CampaignResult)). [`Workload`] keeps
/// its associated `Summary` type for the strongly-typed one-shot paths;
/// this enum is the boundary type of the object-safe [`CampaignJob`]
/// dispatch the server uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryValue {
    /// A litmus campaign's outcome histogram.
    Litmus(Histogram),
    /// An application campaign's verdict counts.
    App(crate::env::CampaignResult),
}

impl SummaryValue {
    /// The litmus histogram, if this summary is one.
    pub fn as_litmus(&self) -> Option<&Histogram> {
        match self {
            SummaryValue::Litmus(h) => Some(h),
            SummaryValue::App(_) => None,
        }
    }

    /// The application campaign result, if this summary is one.
    pub fn as_app(&self) -> Option<&crate::env::CampaignResult> {
        match self {
            SummaryValue::Litmus(_) => None,
            SummaryValue::App(r) => Some(r),
        }
    }

    /// A stable 64-bit digest of the summary's contents ([`Fnv64`] over
    /// the histogram's sorted outcome vectors, or the campaign result's
    /// counters). Equal summaries digest equal on every platform, so
    /// soak reports can compare runs by digest alone.
    pub fn digest(&self) -> u64 {
        let mut f = Fnv64::new();
        match self {
            SummaryValue::Litmus(h) => {
                f.write(b"litmus");
                f.write_u64(h.total());
                f.write_u64(h.weak());
                for (obs, n) in h.iter() {
                    f.write_u64(obs.len() as u64);
                    for &v in obs {
                        f.write_u64(u64::from(v));
                    }
                    f.write_u64(n);
                }
            }
            SummaryValue::App(r) => {
                f.write(b"app");
                for v in [
                    r.runs,
                    r.errors,
                    r.postcondition_failures,
                    r.timeouts,
                    r.faults,
                ] {
                    f.write_u64(u64::from(v));
                }
            }
        }
        f.finish()
    }
}

/// An object-safe campaign job: "run yourself on this campaign". The
/// [`Workload`] trait's associated types make it impossible to queue
/// heterogeneous workloads behind one `dyn`; this trait erases the
/// summary type so the server's queue can hold litmus instances and
/// application harnesses side by side. Each impl routes through exactly
/// the same strongly-typed path a standalone caller would use —
/// [`Campaign::run_litmus`] (shared-stress injection included) for
/// litmus, [`Campaign::run`] for applications — so queued and one-shot
/// results are identical by construction.
pub trait CampaignJob: Sync {
    /// Execute the campaign's full run count on this job and summarise.
    fn run_on(&self, campaign: &Campaign<'_>) -> SummaryValue;
}

impl CampaignJob for LitmusInstance {
    fn run_on(&self, campaign: &Campaign<'_>) -> SummaryValue {
        SummaryValue::Litmus(campaign.run_litmus(self))
    }
}

impl CampaignJob for crate::env::AppHarness<'_> {
    fn run_on(&self, campaign: &Campaign<'_>) -> SummaryValue {
        SummaryValue::App(campaign.run(self))
    }
}

/// Builder for a [`Campaign`]: chip, environment (as prepared stress
/// artifacts plus the randomisation toggle), execution count, base seed
/// and parallelism.
#[derive(Clone)]
pub struct CampaignBuilder<'a> {
    chip: &'a Chip,
    stress: StressArtifacts,
    randomize_ids: bool,
    count: u32,
    base_seed: u64,
    parallelism: usize,
}

impl<'a> CampaignBuilder<'a> {
    /// A native campaign on `chip`: no stress, no randomisation,
    /// 100 executions, seed 0, all cores.
    pub fn new(chip: &'a Chip) -> Self {
        CampaignBuilder {
            chip,
            stress: StressArtifacts::none(),
            randomize_ids: false,
            count: 100,
            base_seed: 0,
            parallelism: 0,
        }
    }

    /// Configure from an [`Environment`]: builds the strategy's stress
    /// artifacts once for the given scratchpad and iteration count, and
    /// takes the environment's randomisation toggle and (if any) its
    /// intra-block shared-space stress.
    pub fn environment(
        self,
        env: &Environment,
        pad: crate::stress::Scratchpad,
        iters: u32,
    ) -> Self {
        let stress = StressArtifacts::for_strategy(self.chip, &env.stress, pad, iters)
            .with_shared_stress(env.shared);
        self.stress(stress).randomize_ids(env.randomize)
    }

    /// Use pre-built stress artifacts (e.g. pinned tuning stress, or
    /// artifacts shared across several campaigns).
    pub fn stress(mut self, artifacts: StressArtifacts) -> Self {
        self.stress = artifacts;
        self
    }

    /// Toggle thread-id randomisation (the environment's `+` suffix).
    pub fn randomize_ids(mut self, on: bool) -> Self {
        self.randomize_ids = on;
        self
    }

    /// Number of executions (the paper's `C`).
    pub fn count(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// Seed from which each run's randomness is derived.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Worker threads (0 ⇒ all available cores). Results are
    /// bit-identical for every value.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Finalise into a runnable [`Campaign`].
    pub fn build(self) -> Campaign<'a> {
        Campaign {
            chip: self.chip,
            stress: self.stress,
            randomize_ids: self.randomize_ids,
            count: self.count,
            base_seed: self.base_seed,
            parallelism: self.parallelism,
        }
    }
}

/// A configured campaign, ready to execute any [`Workload`]. Construct
/// through [`CampaignBuilder`]; a campaign can be reused for several
/// workloads (its artifacts are built once).
pub struct Campaign<'a> {
    chip: &'a Chip,
    stress: StressArtifacts,
    randomize_ids: bool,
    count: u32,
    base_seed: u64,
    parallelism: usize,
}

impl<'a> Campaign<'a> {
    /// The chip this campaign runs on.
    pub fn chip(&self) -> &Chip {
        self.chip
    }

    /// The configured execution count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Execute the workload `count` times and return the folded summary.
    pub fn run<W: Workload>(&self, workload: &W) -> W::Summary {
        self.run_impl(workload, None)
    }

    /// Like [`Campaign::run`], with a progress callback invoked after
    /// every completed run with the number of runs finished so far (from
    /// worker threads; keep it cheap and `Sync`). Completion order is
    /// scheduling-dependent — only the final summary is deterministic.
    pub fn run_with_progress<W: Workload>(
        &self,
        workload: &W,
        progress: &(dyn Fn(u32) + Sync),
    ) -> W::Summary {
        self.run_impl(workload, Some(progress))
    }

    /// The instance this campaign actually executes for `inst`: when the
    /// campaign's artifacts carry intra-block shared-space stress and
    /// the instance is intra-block, the stress lanes are injected into
    /// the kernel once per campaign (shared memory is per-block, so the
    /// stress must ride inside the test's own block); inter-block
    /// instances ignore the shared axis. Callers constructing a
    /// [`LitmusWorkload`] by hand for [`Campaign::run`] /
    /// [`Campaign::run_with_progress`] should route through this (or use
    /// [`Campaign::run_litmus`] / [`Campaign::run_litmus_with_progress`],
    /// which do) so the shared-stress axis is never silently dropped.
    pub fn litmus_instance(&self, inst: &LitmusInstance) -> Option<LitmusInstance> {
        match (self.stress.shared_stress(), inst.placement) {
            (Some(s), wmm_litmus::Placement::IntraBlock) => {
                Some(inst.with_shared_stress(s.words, s.iters))
            }
            _ => None,
        }
    }

    /// Convenience: campaign a litmus instance into its outcome
    /// histogram, applying any intra-block shared-space stress the
    /// campaign's artifacts carry (see [`Campaign::litmus_instance`]).
    pub fn run_litmus(&self, inst: &LitmusInstance) -> Histogram {
        match self.litmus_instance(inst) {
            Some(stressed) => self.run(&LitmusWorkload(&stressed)),
            None => self.run(&LitmusWorkload(inst)),
        }
    }

    /// [`Campaign::run_litmus`] with a per-run progress callback — the
    /// litmus analogue of [`Campaign::run_with_progress`], with the same
    /// shared-stress injection as [`Campaign::run_litmus`].
    pub fn run_litmus_with_progress(
        &self,
        inst: &LitmusInstance,
        progress: &(dyn Fn(u32) + Sync),
    ) -> Histogram {
        match self.litmus_instance(inst) {
            Some(stressed) => self.run_with_progress(&LitmusWorkload(&stressed), progress),
            None => self.run_with_progress(&LitmusWorkload(inst), progress),
        }
    }

    /// [`Campaign::run_litmus`], replayed **sequentially** with a
    /// per-run observer: `observe(i, &outcome)` fires for run `i` in
    /// index order before the outcome is folded — the hook `repro
    /// trace` builds its event log on. Because every run draws all of
    /// its randomness from `mix_seed(base_seed, i)` alone, the returned
    /// histogram is bit-identical to [`Campaign::run_litmus`] at any
    /// worker count; only the observation order is fixed here.
    pub fn run_litmus_observed(
        &self,
        inst: &LitmusInstance,
        mut observe: impl FnMut(u64, &LitmusOutcome),
    ) -> Histogram {
        let stressed = self.litmus_instance(inst);
        let workload = LitmusWorkload(stressed.as_ref().unwrap_or(inst));
        let ctx = RunCtx {
            chip: self.chip,
            stress: &self.stress,
            randomize_ids: self.randomize_ids,
        };
        let mut gpu = Gpu::new(self.chip.clone());
        let mut hist = workload.summary();
        for i in 0..u64::from(self.count) {
            let mut rng = SmallRng::seed_from_u64(mix_seed(self.base_seed, i));
            let outcome = workload.run_once(&mut gpu, &ctx, &mut rng);
            observe(i, &outcome);
            workload.fold(&mut hist, outcome);
        }
        hist
    }

    fn run_impl<W: Workload>(
        &self,
        workload: &W,
        progress: Option<&(dyn Fn(u32) + Sync)>,
    ) -> W::Summary {
        let jobs = self.count as usize;
        let workers = wmm_litmus::parallel::resolve_workers(self.parallelism, jobs);
        let done = AtomicU32::new(0);
        let ctx = RunCtx {
            chip: self.chip,
            stress: &self.stress,
            randomize_ids: self.randomize_ids,
        };
        let shards = wmm_litmus::parallel::parallel_fold(
            workers,
            jobs,
            || (Gpu::new(self.chip.clone()), workload.summary()),
            |(gpu, acc), i| {
                let mut rng = SmallRng::seed_from_u64(mix_seed(self.base_seed, i as u64));
                let verdict = workload.run_once(gpu, &ctx, &mut rng);
                workload.fold(acc, verdict);
                if let Some(cb) = progress {
                    cb(done.fetch_add(1, Ordering::Relaxed) + 1);
                }
            },
        );
        let mut out = workload.summary();
        for (_, shard) in shards {
            workload.merge(&mut out, shard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stress::Scratchpad;
    use wmm_gen::Shape;
    use wmm_litmus::LitmusLayout;

    fn strong_chip() -> Chip {
        Chip::by_short("K20").unwrap().sequentially_consistent()
    }

    #[test]
    fn observed_replay_matches_the_parallel_campaign() {
        let chip = Chip::by_short("Titan").unwrap();
        let inst = Shape::Mp.instance(LitmusLayout::standard(64, 4096));
        let c = CampaignBuilder::new(&chip)
            .count(40)
            .base_seed(0xAB)
            .parallelism(4)
            .build();
        let parallel = c.run_litmus(&inst);
        let mut seen = Vec::new();
        let observed = c.run_litmus_observed(&inst, |i, out| seen.push((i, out.clone())));
        assert_eq!(
            observed, parallel,
            "sequential replay must be bit-identical"
        );
        assert_eq!(seen.len(), 40);
        for (k, (i, out)) in seen.iter().enumerate() {
            assert_eq!(k as u64, *i, "observer fires in index order");
            if out.weak {
                assert!(
                    observed.provenance(&out.obs).is_some(),
                    "weak outcome without a provenance entry"
                );
            }
        }
    }

    #[test]
    fn no_weak_outcomes_under_sequential_consistency() {
        let chip = strong_chip();
        let inst = Shape::Mp.instance(LitmusLayout::standard(64, 4096));
        let h = CampaignBuilder::new(&chip)
            .count(200)
            .base_seed(7)
            .build()
            .run_litmus(&inst);
        assert_eq!(h.weak(), 0, "MP: {h}");
        assert_eq!(h.total(), 200);
    }

    #[test]
    fn outcomes_are_interleavings_under_sc() {
        // Under SC, MP can produce (0,0), (1,1), (0,1) but never (1,0).
        let chip = strong_chip();
        let inst = Shape::Mp.instance(LitmusLayout::standard(64, 4096));
        let h = CampaignBuilder::new(&chip)
            .count(300)
            .base_seed(3)
            .build()
            .run_litmus(&inst);
        assert_eq!(h.count(&[1, 0]), 0);
        // The scheduler's randomness should produce at least two
        // distinct interleaving outcomes across 300 runs.
        assert!(h.iter().count() >= 2, "{h}");
    }

    #[test]
    fn scoped_and_rmw_workloads_run_through_the_facade() {
        // A scoped (intra-block, shared-memory) instance and an RMW
        // cycle both campaign through the unified path; on the
        // SC-forced chip neither may go weak, and the RMW instance's
        // outcomes must all respect atomicity (CoAdd: olds {0,1}, final
        // 2).
        let chip = strong_chip();
        for shape in [Shape::MpShared, Shape::CoAdd] {
            let inst = shape.instance(LitmusLayout::standard(64, 4096));
            let h = CampaignBuilder::new(&chip)
                .count(60)
                .base_seed(13)
                .build()
                .run_litmus(&inst);
            assert_eq!(h.weak(), 0, "{shape}: {h}");
            assert_eq!(h.total(), 60);
        }
    }

    #[test]
    fn campaigns_are_deterministic_across_worker_counts() {
        let chip = Chip::by_short("Titan").unwrap();
        let inst = Shape::Mp.instance(LitmusLayout::standard(32, 4096));
        let run = |workers| {
            CampaignBuilder::new(&chip)
                .count(64)
                .base_seed(11)
                .parallelism(workers)
                .build()
                .run_litmus(&inst)
        };
        let a = run(4);
        assert_eq!(a, run(4));
        assert_eq!(a, run(1));
    }

    #[test]
    fn stressed_campaign_reuses_artifacts_and_stays_deterministic() {
        let chip = Chip::by_short("K20").unwrap();
        let pad = Scratchpad::new(2048, 2048);
        let inst = Shape::Mp.instance(LitmusLayout::standard(64, pad.required_words()));
        let env = Environment::sys_str_plus(&chip);
        let run = |workers| {
            CampaignBuilder::new(&chip)
                .environment(&env, pad, 40)
                .count(48)
                .base_seed(5)
                .parallelism(workers)
                .build()
                .run_litmus(&inst)
        };
        let a = run(1);
        assert_eq!(a.total(), 48);
        assert!(
            a.weak() > 0,
            "sys-str+ should provoke weak MP outcomes: {a}"
        );
        assert_eq!(a, run(2));
        assert_eq!(a, run(8));
    }

    #[test]
    fn progress_route_applies_shared_stress_too() {
        // run_litmus_with_progress must inject the shared-stress lanes
        // exactly like run_litmus: same histogram, every run reported.
        let chip = Chip::by_short("Titan").unwrap();
        let pad = Scratchpad::new(2048, 2048);
        let env = crate::env::Environment::shared_sys_str_plus(&chip);
        let inst = Shape::MpShared.instance(LitmusLayout::standard(64, pad.required_words()));
        let campaign = CampaignBuilder::new(&chip)
            .environment(&env, pad, 40)
            .count(60)
            .base_seed(7)
            .build();
        let plain = campaign.run_litmus(&inst);
        let seen = AtomicU32::new(0);
        let with_progress = campaign.run_litmus_with_progress(&inst, &|_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(with_progress, plain);
        assert_eq!(seen.load(Ordering::Relaxed), 60);
        assert!(
            plain.weak() > 0,
            "comparison is vacuous without weak outcomes: {plain}"
        );
    }

    #[test]
    fn progress_callback_sees_every_run() {
        let chip = strong_chip();
        let inst = Shape::Sb.instance(LitmusLayout::standard(64, 4096));
        let seen = AtomicU32::new(0);
        let max = AtomicU32::new(0);
        let h = CampaignBuilder::new(&chip)
            .count(37)
            .parallelism(2)
            .build()
            .run_with_progress(&LitmusWorkload(&inst), &|n| {
                seen.fetch_add(1, Ordering::Relaxed);
                max.fetch_max(n, Ordering::Relaxed);
            });
        assert_eq!(h.total(), 37);
        assert_eq!(seen.load(Ordering::Relaxed), 37);
        assert_eq!(max.load(Ordering::Relaxed), 37);
    }
}
