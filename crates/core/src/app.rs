//! Application specifications and the fencing transformations over them.
//!
//! A GPU application in this framework is a sequence of kernel *phases*
//! (most case studies have one; `ls-bh` has three) over one global memory
//! image, plus a functional post-condition. The testing environment runs
//! the phases in order, carrying memory across phases, with stressing
//! blocks and thread randomisation injected per phase.
//!
//! The paper's three fencing strategies are program transformations over
//! an [`AppSpec`]:
//!
//! * [`AppSpec::strip`] — remove all fences (how the `-nf` variants were
//!   manufactured, Sec. 4.1);
//! * [`AppSpec::with_fences`] — insert a device fence after a chosen
//!   subset of memory accesses (`emp fences`);
//! * [`AppSpec::with_leveled_fences`] — insert fences at chosen levels
//!   (`block`/`device`), for the scoped hardening search;
//! * [`AppSpec::with_all_fences`] — a fence after every access
//!   (`cons fences`, Sec. 6).

use wmm_sim::ir::{transform, FenceLevel, Program};
use wmm_sim::Word;

/// One kernel phase: a program plus its launch geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The kernel.
    pub program: Program,
    /// Blocks in the grid.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Words of shared memory per block.
    pub shared_words: u32,
}

/// A complete application: phases, memory, and run limits.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Short name, e.g. `"cbe-dot"`.
    pub name: String,
    /// Kernel phases, run in order over the same global memory.
    pub phases: Vec<Phase>,
    /// Words of global memory the application itself uses. The harness
    /// appends the stressing scratchpad after this.
    pub global_words: u32,
    /// Initial memory contents.
    pub init: Vec<(u32, Word)>,
    /// Per-phase scheduler-turn budget (the 30 s timeout analogue).
    pub max_turns_per_phase: u64,
}

/// A fence site within an application: `(phase index, instruction index)`
/// in the *fence-free* form of the program.
pub type FenceSite = (usize, usize);

impl AppSpec {
    /// Total fences currently present across all phases.
    pub fn fence_count(&self) -> usize {
        self.phases.iter().map(|p| p.program.fence_count()).sum()
    }

    /// Remove every fence (the `-nf` manufacturing step).
    pub fn strip(&self) -> AppSpec {
        let mut out = self.clone();
        for p in &mut out.phases {
            p.program = transform::strip_fences(&p.program);
        }
        out
    }

    /// All candidate fence sites of the fence-free form: one after every
    /// memory access (global *and* shared), across phases.
    ///
    /// # Panics
    ///
    /// Panics if this spec still contains fences — sites are only
    /// meaningful on the stripped form (call [`AppSpec::strip`] first).
    pub fn fence_sites(&self) -> Vec<FenceSite> {
        assert_eq!(
            self.fence_count(),
            0,
            "fence sites are defined on the fence-free program"
        );
        let mut out = Vec::new();
        for (pi, p) in self.phases.iter().enumerate() {
            for idx in transform::fence_sites(&p.program) {
                out.push((pi, idx));
            }
        }
        out
    }

    /// Insert a device fence after each listed site.
    ///
    /// # Panics
    ///
    /// Panics if this spec still contains fences, or a site is out of
    /// range.
    pub fn with_fences(&self, sites: &[FenceSite]) -> AppSpec {
        assert_eq!(
            self.fence_count(),
            0,
            "fences are inserted into the fence-free program"
        );
        let mut out = self.clone();
        for (pi, p) in out.phases.iter_mut().enumerate() {
            let local: Vec<usize> = sites
                .iter()
                .filter(|(sp, _)| *sp == pi)
                .map(|&(_, idx)| idx)
                .collect();
            if !local.is_empty() {
                p.program = transform::with_fences(&p.program, &local);
            }
        }
        out
    }

    /// Insert a fence of the chosen level after each listed site —
    /// the scoped variant of [`AppSpec::with_fences`], used by the
    /// analyzer-seeded hardening search to place cheap block fences
    /// where the communication is provably intra-block.
    ///
    /// # Panics
    ///
    /// Panics if this spec still contains fences, or a site is out of
    /// range.
    pub fn with_leveled_fences(&self, sites: &[(FenceSite, FenceLevel)]) -> AppSpec {
        assert_eq!(
            self.fence_count(),
            0,
            "fences are inserted into the fence-free program"
        );
        let mut out = self.clone();
        for (pi, p) in out.phases.iter_mut().enumerate() {
            let local: Vec<(usize, FenceLevel)> = sites
                .iter()
                .filter(|((sp, _), _)| *sp == pi)
                .map(|&((_, idx), level)| (idx, level))
                .collect();
            if !local.is_empty() {
                p.program = transform::with_leveled_fences(&p.program, &local);
            }
        }
        out
    }

    /// The conservative strategy: a fence after every access.
    pub fn with_all_fences(&self) -> AppSpec {
        let stripped = if self.fence_count() > 0 {
            self.strip()
        } else {
            self.clone()
        };
        let sites = stripped.fence_sites();
        stripped.with_fences(&sites)
    }
}

/// An application under test: a spec plus its functional post-condition
/// (Tab. 4's third column). Implemented by every case study in
/// `wmm-apps`.
pub trait Application: Sync {
    /// The paper's short name (e.g. `"cbe-dot"`).
    fn name(&self) -> &str;

    /// The application as shipped (the original variants of `sdk-red`,
    /// `cub-scan` and `ls-bh` contain fences; the rest are fence-free).
    fn spec(&self) -> &AppSpec;

    /// Check the post-condition against the final memory image.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation for an erroneous run.
    fn check(&self, memory: &[Word]) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmm_sim::ir::builder::KernelBuilder;

    fn two_phase_spec() -> AppSpec {
        let mut b = KernelBuilder::new("p0");
        let a = b.const_(0);
        let v = b.const_(1);
        b.store_global(a, v);
        b.fence_device();
        b.store_global(a, v);
        let p0 = b.finish().unwrap();

        let mut b = KernelBuilder::new("p1");
        let a = b.const_(1);
        let v = b.load_global(a);
        b.store_global(a, v);
        let p1 = b.finish().unwrap();

        AppSpec {
            name: "t".into(),
            phases: vec![
                Phase {
                    program: p0,
                    blocks: 1,
                    threads_per_block: 32,
                    shared_words: 0,
                },
                Phase {
                    program: p1,
                    blocks: 2,
                    threads_per_block: 32,
                    shared_words: 0,
                },
            ],
            global_words: 64,
            init: vec![],
            max_turns_per_phase: 100_000,
        }
    }

    #[test]
    fn strip_removes_all_fences() {
        let s = two_phase_spec();
        assert_eq!(s.fence_count(), 1);
        let stripped = s.strip();
        assert_eq!(stripped.fence_count(), 0);
    }

    #[test]
    fn sites_span_phases() {
        let s = two_phase_spec().strip();
        let sites = s.fence_sites();
        // Phase 0 has two stores, phase 1 a load and a store.
        assert_eq!(sites.len(), 4);
        assert!(sites.iter().any(|&(p, _)| p == 0));
        assert!(sites.iter().any(|&(p, _)| p == 1));
    }

    #[test]
    fn with_fences_inserts_subset() {
        let s = two_phase_spec().strip();
        let sites = s.fence_sites();
        let f = s.with_fences(&sites[..2]);
        assert_eq!(f.fence_count(), 2);
    }

    #[test]
    fn with_all_fences_covers_every_site() {
        let s = two_phase_spec();
        let all = s.with_all_fences();
        assert_eq!(all.fence_count(), 4);
        // Idempotent in count: stripping and refencing yields the same.
        assert_eq!(all.strip().with_all_fences().fence_count(), 4);
    }

    #[test]
    #[should_panic(expected = "fence-free")]
    fn sites_on_fenced_spec_panic() {
        let _ = two_phase_spec().fence_sites();
    }
}
