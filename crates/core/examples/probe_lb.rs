//! Diagnostic: LB outcome histogram and bypass counts under pinned stress.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wmm_core::stress::{build_systematic_at, litmus_stress_threads, Scratchpad};
use wmm_gen::Shape;
use wmm_litmus::{LitmusLayout, LitmusOutcome};
use wmm_sim::chip::Chip;
use wmm_sim::exec::Gpu;

fn main() {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let seq = chip.preferred_seq.clone();
    for (t, l) in [(Shape::Lb, 64u32), (Shape::Mp, 64), (Shape::Sb, 64)] {
        let inst = t.instance(LitmusLayout::standard(64, pad.required_words()));
        let mut gpu = Gpu::new(chip.clone());
        let mut hist = wmm_litmus::Histogram::new();
        let mut total_byp = 0u64;
        let mut app_turns = 0u64;
        for i in 0..300u64 {
            let mut rng = SmallRng::seed_from_u64(i * 77 + 1);
            let threads = litmus_stress_threads(&chip, &mut rng);
            let s = build_systematic_at(pad, &seq, &[l], threads, 40);
            let spec = inst.launch(s.groups, s.init, false);
            let r = gpu.run(&spec, rng.gen());
            total_byp += r.bypasses;
            app_turns += r.app_turns;
            let obs = inst.observe(&r);
            let weak = inst.is_weak(&obs);
            hist.record(LitmusOutcome {
                obs,
                weak,
                channels: r.channels,
            });
        }
        println!(
            "{t}: avg bypasses/run = {:.2}, avg app_turns = {}, channels = {}",
            total_byp as f64 / 300.0,
            app_turns / 300,
            hist.channels()
        );
        println!("{}", inst.display_histogram(&hist));
    }
}
