//! Calibration probe: weak-behaviour rates per (test, d, stress location).
use wmm_core::campaign::CampaignBuilder;
use wmm_core::stress::{Scratchpad, StressArtifacts};
use wmm_gen::Shape;
use wmm_litmus::LitmusLayout;
use wmm_sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let seq = chip.preferred_seq.clone();
    let c = 200u32;
    // Native rates first.
    for t in Shape::TRIO {
        let inst = t.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = CampaignBuilder::new(&chip)
            .count(1000)
            .base_seed(1)
            .build()
            .run_litmus(&inst);
        println!("native {t} d=64: {}/{}", h.weak(), h.total());
    }
    // One pinned kernel re-targeted across the whole location grid.
    let artifacts = StressArtifacts::pinned(pad, &seq, &[0], 40);
    for t in Shape::TRIO {
        for d in [0u32, 32, 64] {
            let inst = t.instance(LitmusLayout::standard(d, pad.required_words()));
            print!("{t} d={d:3}: ");
            for l in (0..256).step_by(32) {
                let h = CampaignBuilder::new(&chip)
                    .stress(artifacts.with_locations(&[l]))
                    .count(c)
                    .base_seed(42)
                    .build()
                    .run_litmus(&inst);
                print!("{:4}", h.weak());
            }
            println!("   (per {c} runs, l=0,32,..224)");
        }
    }
}
