//! Calibration probe: weak-behaviour rates per (test, d, stress location).
use rand::rngs::SmallRng;
use wmm_core::stress::{build_systematic_at, litmus_stress_threads, Scratchpad};
use wmm_gen::Shape;
use wmm_litmus::{run_many, LitmusLayout, RunManyConfig};
use wmm_sim::chip::Chip;

fn main() {
    let chip = Chip::by_short("Titan").unwrap();
    let pad = Scratchpad::new(2048, 2048);
    let seq = chip.preferred_seq.clone();
    let c = 200u32;
    // Native rates first.
    for t in Shape::TRIO {
        let inst = t.instance(LitmusLayout::standard(64, pad.required_words()));
        let h = run_many(&chip, &inst, |_| (Vec::new(), Vec::new()), RunManyConfig { count: 1000, base_seed: 1, ..Default::default() });
        println!("native {t} d=64: {}/{}", h.weak(), h.total());
    }
    for t in Shape::TRIO {
        for d in [0u32, 32, 64] {
            let inst = t.instance(LitmusLayout::standard(d, pad.required_words()));
            print!("{t} d={d:3}: ");
            for l in (0..256).step_by(32) {
                let chip2 = chip.clone();
                let pad2 = pad;
                let seq2 = seq.clone();
                let h = run_many(
                    &chip,
                    &inst,
                    move |rng: &mut SmallRng| {
                        let threads = litmus_stress_threads(&chip2, rng);
                        let s = build_systematic_at(pad2, &seq2, &[l], threads, 40);
                        (s.groups, s.init)
                    },
                    RunManyConfig { count: c, base_seed: 42, ..Default::default() },
                );
                print!("{:4}", h.weak());
            }
            println!("   (per {c} runs, l=0,32,..224)");
        }
    }
}
