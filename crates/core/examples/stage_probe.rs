//! Probe the sequence and spread stages separately for one chip.
use wmm_core::tuning::{sequence, spread, TuningConfig};
use wmm_gen::Shape;
use wmm_sim::chip::Chip;

fn main() {
    let short = std::env::args().nth(1).unwrap_or_else(|| "Titan".into());
    let stage = std::env::args().nth(2).unwrap_or_else(|| "both".into());
    let chip = Chip::by_short(&short).expect("chip");
    let mut cfg = TuningConfig::scaled();
    cfg.execs = 60;
    if stage == "seq" || stage == "both" {
        let scores = sequence::score_sequences(&chip, chip.patch_words, &cfg);
        let win = sequence::most_effective(&scores);
        println!(
            "{short} seq winner: '{}' {:?} (expected '{}')",
            win.seq, win.scores, chip.preferred_seq
        );
        for t in Shape::TRIO {
            let ranked = scores.ranked_for(t);
            let top: Vec<String> = ranked
                .iter()
                .take(3)
                .map(|e| format!("{}", e.seq))
                .collect();
            let bot: Vec<String> = ranked
                .iter()
                .rev()
                .take(3)
                .map(|e| format!("{}", e.seq))
                .collect();
            let pos = ranked
                .iter()
                .position(|e| e.seq == chip.preferred_seq)
                .unwrap()
                + 1;
            println!("  {t}: top3={top:?} bottom3={bot:?} preferred-rank={pos}");
        }
    }
    if stage == "spread" || stage == "both" {
        let ss = spread::score_spreads(&chip, chip.patch_words, &chip.preferred_seq, &cfg);
        println!("{short} spread curve:");
        for (m, s) in &ss.entries {
            println!(
                "  m={m:2}: MP={} LB={} SB={} total={}",
                s[0],
                s[1],
                s[2],
                s[0] + s[1] + s[2]
            );
        }
        println!("best = {}", spread::best_spread(&ss));
    }
}
