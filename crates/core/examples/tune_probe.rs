//! End-to-end tuning probe for one chip.
use wmm_core::tuning::{tune_chip, TuningConfig};
use wmm_sim::chip::Chip;

fn main() {
    let short = std::env::args().nth(1).unwrap_or_else(|| "Titan".into());
    let chip = Chip::by_short(&short).expect("chip");
    let mut cfg = TuningConfig::scaled();
    cfg.execs = 48; // keep the probe quick on one core
    let t = tune_chip(&chip, &cfg);
    println!(
        "{}: patch={} seq='{}' spread={} (expected patch={} seq='{}' spread=2) [{} execs, {:?}]",
        t.chip,
        t.patch_words,
        t.seq,
        t.spread,
        chip.patch_words,
        chip.preferred_seq,
        t.executions,
        t.elapsed
    );
}
