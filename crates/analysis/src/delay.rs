//! Cross-thread conflict graph and Shasha–Snir delay-set detection.
//!
//! Events are (analysis thread, instruction) pairs over the reachable
//! memory accesses of each thread's pruned CFG. Two events *conflict*
//! when they come from different threads, touch the same [`Space`],
//! may overlap in address, and at least one may write; shared-space
//! conflicts additionally require the two threads to share a block,
//! because shared memory is per-block.
//!
//! A program-order pair (a, b) in one thread is a *delay* when a mixed
//! path b ⇝ a exists through the union of program-order and conflict
//! edges using at least one conflict edge — the critical-cycle
//! condition of Shasha & Snir. Same-address pairs are exempt from this
//! *reordering* channel: the in-flight window, like real chips'
//! store buffers, preserves per-location coherence, so only
//! cross-location reorderings can break sequential consistency there.
//!
//! Per-location coherence is **not** a chip-independent guarantee,
//! though. On chips whose SM-private L1 caches are incoherent, a plain
//! global load may hit a stale line created by a remote SM's write, so
//! a same-address load-load pair (`CoRR` and friends) can observe new
//! then old. [`l1_read_read_edges`] computes those pairs as an extra,
//! chip-gated edge set: callers with an incoherent-L1
//! [`Chip`](wmm_sim::chip::Chip) union it into the delay set (see
//! `analyze_litmus_on_chip`), while the chip-independent analysis keeps
//! the coherence exemption.
//!
//! Each delay edge carries the *minimal* fence level that orders it:
//! [`FenceLevel::Block`] when both endpoints are provably shared-space
//! (every conflict partner then lives in the same block), otherwise
//! [`FenceLevel::Device`]. An edge already separated by a sufficient
//! fence — or by a [`Inst::Barrier`], which drains the whole in-flight
//! window — on every CFG path is reported as `fenced`.

use crate::absint::{analyze_thread, AbsVal, ThreadAbs, ThreadCtx};
use wmm_sim::ir::{FenceLevel, Inst, Program, Space};

/// One analysis thread: concrete identity plus its abstraction.
#[derive(Debug, Clone)]
pub struct ThreadModel {
    /// The thread's concrete special registers.
    pub ctx: ThreadCtx,
    /// Its abstract execution.
    pub abs: ThreadAbs,
    /// Reachable memory-access instruction indices, in program order.
    pub accesses: Vec<usize>,
    /// `reach[i][j]`: a CFG path of length ≥ 1 exists from `i` to `j`.
    reach: Vec<Vec<bool>>,
}

impl ThreadModel {
    /// Abstractly execute `p` as the thread `ctx`.
    pub fn build(p: &Program, ctx: ThreadCtx) -> Self {
        let abs = analyze_thread(p, &ctx);
        let n = p.insts.len();
        let accesses: Vec<usize> = p
            .memory_access_indices()
            .into_iter()
            .filter(|&i| abs.reachable[i])
            .collect();
        let mut reach = vec![vec![false; n]; n];
        for (start, row) in reach.iter_mut().enumerate() {
            // BFS over feasible successors; paths of length >= 1.
            let mut stack: Vec<usize> = abs.succs[start].clone();
            while let Some(j) = stack.pop() {
                if j < n && !row[j] {
                    row[j] = true;
                    stack.extend(abs.succs[j].iter().copied());
                }
            }
        }
        ThreadModel {
            ctx,
            abs,
            accesses,
            reach,
        }
    }

    /// Is there a program-order path (length ≥ 1) from `i` to `j`?
    pub fn po(&self, i: usize, j: usize) -> bool {
        self.reach[i][j]
    }
}

/// A memory event: instruction `inst` executed by analysis thread
/// `thread` (an index into the thread-model slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Index of the analysis thread.
    pub thread: usize,
    /// Instruction index in the program.
    pub inst: usize,
}

/// A program-order pair that participates in a critical cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayEdge {
    /// Index of the analysis thread the pair belongs to.
    pub thread: usize,
    /// First access of the pair (fence site: "fence after this").
    pub from: usize,
    /// Second access of the pair.
    pub to: usize,
    /// Minimal fence level that orders the pair.
    pub level: FenceLevel,
    /// True when every CFG path `from` → `to` already crosses a
    /// sufficient fence or barrier.
    pub fenced: bool,
}

fn addr_of(t: &ThreadModel, i: usize) -> &AbsVal {
    t.abs.addr_at[i]
        .as_ref()
        .expect("memory accesses carry an address")
}

/// Do events `(ta, ia)` and `(tb, ib)` conflict?
fn conflicts(p: &Program, ts: &[ThreadModel], a: Event, b: Event) -> bool {
    if a.thread == b.thread {
        return false;
    }
    let (ia, ib) = (&p.insts[a.inst], &p.insts[b.inst]);
    let (Some(sa), Some(sb)) = (ia.space(), ib.space()) else {
        return false;
    };
    if sa != sb || !(ia.may_write() || ib.may_write()) {
        return false;
    }
    if sa == Space::Shared && ts[a.thread].ctx.bid != ts[b.thread].ctx.bid {
        return false; // shared memory is per-block
    }
    addr_of(&ts[a.thread], a.inst).overlaps(addr_of(&ts[b.thread], b.inst))
}

/// Are the two accesses provably the same single address?
fn provably_same_addr(ts: &[ThreadModel], t: usize, i: usize, j: usize) -> bool {
    match (
        addr_of(&ts[t], i).as_singleton(),
        addr_of(&ts[t], j).as_singleton(),
    ) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Is a fence instruction sufficient to order an edge of `level`?
fn orders(inst: &Inst, level: FenceLevel) -> bool {
    match inst {
        // A barrier drains the thread's entire in-flight window before
        // any later access issues, so it orders everything a device
        // fence would.
        Inst::Barrier => true,
        Inst::Fence(FenceLevel::Device) => true,
        Inst::Fence(FenceLevel::Block) => level == FenceLevel::Block,
        _ => false,
    }
}

/// True when every feasible CFG path `from` → `to` in thread `t`
/// crosses an instruction that [`orders`] the edge.
fn edge_fenced(p: &Program, t: &ThreadModel, from: usize, to: usize, level: FenceLevel) -> bool {
    let n = p.insts.len();
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = t.abs.succs[from].clone();
    while let Some(i) = stack.pop() {
        if i >= n || seen[i] {
            continue;
        }
        seen[i] = true;
        if i == to {
            return false; // found an unordered path
        }
        if orders(&p.insts[i], level) {
            continue; // paths through here are ordered
        }
        stack.extend(t.abs.succs[i].iter().copied());
    }
    true
}

/// Compute the incoherent-L1 read-read edges of `p`: program-order
/// pairs of **plain global loads** in one thread that may read the same
/// address, where a conflicting global write exists in a thread of
/// another block. On a chip with incoherent SM-private L1s the second
/// load may hit a stale line the remote write left behind, observing
/// new-then-old — the structural violation of `CoRR` — so the pair
/// needs a device fence (which refreshes the home SM's L1) just like a
/// reordering delay.
///
/// Only plain loads participate: atomics read through to L2 (always
/// fresh), and the emitted kernels' rendezvous counters are atomic
/// RMWs, so synchronisation idioms produce no edges here. Same-block
/// writers are excluded — threads of one block share a home SM, and a
/// writer invalidates its own SM's line, so staleness needs the writer
/// on a *different* SM (conservatively: a different block).
///
/// Chip-gated by the caller: these edges exist only where
/// `Chip::l1_weak()` holds; the chip-independent [`delay_edges`] never
/// includes them.
pub fn l1_read_read_edges(p: &Program, ts: &[ThreadModel]) -> Vec<DelayEdge> {
    let is_plain_global_load = |i: usize| {
        matches!(
            p.insts[i],
            Inst::Load {
                space: Space::Global,
                ..
            }
        )
    };
    let mut out = Vec::new();
    for (t, tm) in ts.iter().enumerate() {
        for &i in &tm.accesses {
            if !is_plain_global_load(i) {
                continue;
            }
            for &j in &tm.accesses {
                if i == j || !tm.po(i, j) || !is_plain_global_load(j) {
                    continue;
                }
                if !addr_of(tm, i).overlaps(addr_of(tm, j)) {
                    continue;
                }
                // A stale hit needs a remote-SM write to create the
                // stale line.
                let remote_writer = ts.iter().enumerate().any(|(u, um)| {
                    u != t
                        && um.ctx.bid != tm.ctx.bid
                        && um.accesses.iter().any(|&k| {
                            p.insts[k].may_write()
                                && p.insts[k].space() == Some(Space::Global)
                                && addr_of(um, k).overlaps(addr_of(tm, i))
                        })
                });
                if !remote_writer {
                    continue;
                }
                out.push(DelayEdge {
                    thread: t,
                    from: i,
                    to: j,
                    level: FenceLevel::Device,
                    fenced: edge_fenced(p, tm, i, j, FenceLevel::Device),
                });
            }
        }
    }
    out
}

/// Compute all delay edges of `p` under the given thread models.
pub fn delay_edges(p: &Program, ts: &[ThreadModel]) -> Vec<DelayEdge> {
    // All events, and the conflict adjacency between them.
    let events: Vec<Event> = ts
        .iter()
        .enumerate()
        .flat_map(|(t, tm)| {
            tm.accesses
                .iter()
                .map(move |&i| Event { thread: t, inst: i })
        })
        .collect();
    let ne = events.len();
    let mut conflict_adj: Vec<Vec<usize>> = vec![Vec::new(); ne];
    for x in 0..ne {
        for y in x + 1..ne {
            if conflicts(p, ts, events[x], events[y]) {
                conflict_adj[x].push(y);
                conflict_adj[y].push(x);
            }
        }
    }
    // Program-order adjacency over the reachability closure.
    let mut po_adj: Vec<Vec<usize>> = vec![Vec::new(); ne];
    let idx_of = |t: usize, i: usize| -> usize {
        // Events are grouped by thread in `events`, in access order.
        let base: usize = ts[..t].iter().map(|tm| tm.accesses.len()).sum();
        base + ts[t].accesses.iter().position(|&a| a == i).unwrap()
    };
    for (x, e) in events.iter().enumerate() {
        let tm = &ts[e.thread];
        for &j in &tm.accesses {
            if tm.po(e.inst, j) {
                po_adj[x].push(idx_of(e.thread, j));
            }
        }
    }

    // A po pair (a, b) is a delay iff a mixed path b ⇝ a uses at least
    // one conflict edge. BFS over (event, used-conflict) states.
    let is_delay = |a: usize, b: usize| -> bool {
        let mut seen = vec![[false; 2]; ne];
        let mut stack: Vec<(usize, bool)> = vec![(b, false)];
        seen[b][0] = true;
        while let Some((x, used)) = stack.pop() {
            if x == a && used {
                return true;
            }
            for &y in &po_adj[x] {
                if !seen[y][usize::from(used)] {
                    seen[y][usize::from(used)] = true;
                    stack.push((y, used));
                }
            }
            for &y in &conflict_adj[x] {
                if !seen[y][1] {
                    seen[y][1] = true;
                    stack.push((y, true));
                }
            }
        }
        false
    };

    let mut out = Vec::new();
    for (t, tm) in ts.iter().enumerate() {
        for &i in &tm.accesses {
            for &j in &tm.accesses {
                if !tm.po(i, j) || provably_same_addr(ts, t, i, j) {
                    continue;
                }
                let (a, b) = (idx_of(t, i), idx_of(t, j));
                if !is_delay(a, b) {
                    continue;
                }
                let level = match (p.insts[i].space(), p.insts[j].space()) {
                    (Some(Space::Shared), Some(Space::Shared)) => FenceLevel::Block,
                    _ => FenceLevel::Device,
                };
                out.push(DelayEdge {
                    thread: t,
                    from: i,
                    to: j,
                    level,
                    fenced: edge_fenced(p, tm, i, j, level),
                });
            }
        }
    }
    out
}
