//! Analysis results: delay warnings, per-site verdicts, quiet
//! certificates.

use std::collections::BTreeMap;
use std::fmt;

use crate::delay::DelayEdge;
use wmm_sim::ir::{FenceLevel, Program, Space};

fn space_name(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

fn level_name(l: FenceLevel) -> &'static str {
    match l {
        FenceLevel::Block => "block",
        FenceLevel::Device => "device",
    }
}

/// One warning: an unfenced delay pair, aggregated over all analysis
/// threads that exhibit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayWarning {
    /// First access of the pair (the natural fence site).
    pub from: usize,
    /// Second access of the pair.
    pub to: usize,
    /// Space of the first access.
    pub from_space: Space,
    /// Space of the second access.
    pub to_space: Space,
    /// Minimal fence level that orders the pair (strongest over all
    /// threads exhibiting it).
    pub level: FenceLevel,
    /// Analysis threads that exhibit the unfenced pair.
    pub threads: Vec<usize>,
}

impl fmt::Display for DelayWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay {}#{} -> {}#{}: unfenced critical cycle, minimal fence = {} (threads {:?})",
            space_name(self.from_space),
            self.from,
            space_name(self.to_space),
            self.to,
            level_name(self.level),
            self.threads,
        )
    }
}

/// Static verdict for one fence site (a memory-access instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Some delay pair starting here needs the given level.
    Required(FenceLevel),
    /// Delay pairs start here, but all of them are intra-block
    /// shared-space: a block fence suffices.
    DemotableToBlock,
    /// No delay pair starts here; a fence after this access orders
    /// nothing the memory model can break.
    RemovalCandidate,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Required(l) => write!(
                f,
                "Required({})",
                match l {
                    FenceLevel::Block => "Block",
                    FenceLevel::Device => "Device",
                }
            ),
            Verdict::DemotableToBlock => write!(f, "DemotableToBlock"),
            Verdict::RemovalCandidate => write!(f, "RemovalCandidate"),
        }
    }
}

/// The verdict for one memory-access instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// Instruction index of the access (a `fence_sites` site).
    pub index: usize,
    /// The access's memory space.
    pub space: Space,
    /// The static verdict.
    pub verdict: Verdict,
}

impl fmt::Display for SiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site #{} ({}): {}",
            self.index,
            space_name(self.space),
            self.verdict
        )
    }
}

/// The full analysis of one program under a launch geometry.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Unfenced delay pairs, one warning per distinct (from, to).
    pub warnings: Vec<DelayWarning>,
    /// Verdicts, one per memory-access instruction, in program order.
    pub sites: Vec<SiteReport>,
    /// Distinct delay pairs already ordered by fences/barriers in every
    /// thread that exhibits them — the evidence behind a quiet
    /// certificate on a fenced program.
    pub ordered_edges: usize,
}

impl ProgramAnalysis {
    /// Quiet certificate: no unfenced critical cycle anywhere.
    pub fn quiet(&self) -> bool {
        self.warnings.is_empty()
    }

    /// The strongest fence level any warning demands, if any warn.
    pub fn max_warning_level(&self) -> Option<FenceLevel> {
        if self.warnings.is_empty() {
            None
        } else if self.warnings.iter().any(|w| w.level == FenceLevel::Device) {
            Some(FenceLevel::Device)
        } else {
            Some(FenceLevel::Block)
        }
    }

    /// The verdict for the access at instruction `inst`, if it is one.
    pub fn verdict_of(&self, inst: usize) -> Option<Verdict> {
        self.sites
            .iter()
            .find(|s| s.index == inst)
            .map(|s| s.verdict)
    }
}

/// Fold raw delay edges into warnings, ordered-edge counts, and
/// per-site verdicts for `p`.
pub fn summarize(p: &Program, edges: &[DelayEdge]) -> ProgramAnalysis {
    // Group by (from, to). A pair warns when any thread exhibits it
    // unfenced; it counts as ordered when every exhibiting thread has
    // it fenced.
    let mut groups: BTreeMap<(usize, usize), (FenceLevel, Vec<usize>, bool)> = BTreeMap::new();
    for e in edges {
        let g = groups
            .entry((e.from, e.to))
            .or_insert((FenceLevel::Block, Vec::new(), true));
        if e.level == FenceLevel::Device {
            g.0 = FenceLevel::Device;
        }
        if !e.fenced {
            g.2 = false;
            if !g.1.contains(&e.thread) {
                g.1.push(e.thread);
            }
        }
    }
    let mut warnings = Vec::new();
    let mut ordered_edges = 0;
    for ((from, to), (level, threads, all_fenced)) in &groups {
        if *all_fenced {
            ordered_edges += 1;
        } else {
            warnings.push(DelayWarning {
                from: *from,
                to: *to,
                from_space: p.insts[*from]
                    .space()
                    .expect("delay endpoints are accesses"),
                to_space: p.insts[*to].space().expect("delay endpoints are accesses"),
                level: *level,
                threads: threads.clone(),
            });
        }
    }

    // Per-site verdicts consider all structural delay pairs (fenced or
    // not): the verdict says what a fence after the site must order,
    // independent of whether the program already carries one.
    let sites = p
        .memory_access_indices()
        .into_iter()
        .map(|i| {
            let mut any = false;
            let mut needs_device = false;
            for e in edges.iter().filter(|e| e.from == i) {
                any = true;
                needs_device |= e.level == FenceLevel::Device;
            }
            let verdict = if !any {
                Verdict::RemovalCandidate
            } else if needs_device {
                Verdict::Required(FenceLevel::Device)
            } else {
                Verdict::DemotableToBlock
            };
            SiteReport {
                index: i,
                space: p.insts[i].space().expect("sites are accesses"),
                verdict,
            }
        })
        .collect();

    ProgramAnalysis {
        warnings,
        sites,
        ordered_edges,
    }
}
